"""Functional correctness of all 16 benchmarks, both APIs, both GPUs.

Every benchmark validates its device results against an independent
numpy (or pure-python) reference, so ``r.correct`` is a real end-to-end
check through builder -> front end -> ptxas -> SIMT simulator -> runtime.
"""
import numpy as np
import pytest

from repro.arch import GTX280, GTX480
from repro.benchsuite import (
    REAL_WORLD,
    REGISTRY,
    SYNTHETIC,
    TABLE2,
    get_benchmark,
    host_for,
)

ALL_NAMES = SYNTHETIC + REAL_WORLD


@pytest.mark.parametrize("name", ALL_NAMES)
def test_correct_on_gtx480_both_apis(name):
    for api in ("cuda", "opencl"):
        r = get_benchmark(name).run(host_for(api, GTX480), size="small")
        assert r.ok(), f"{name}/{api}: {r.failure}"
        assert r.value > 0 or not r.unit.endswith("sec")
        assert r.kernel_seconds > 0


@pytest.mark.parametrize("name", ["Sobel", "FFT", "RdxS", "FDTD", "BFS", "Scan"])
def test_correct_on_gtx280_both_apis(name):
    for api in ("cuda", "opencl"):
        r = get_benchmark(name).run(host_for(api, GTX280), size="small")
        assert r.ok(), f"{name}/{api}: {r.failure}"


class TestRegistry:
    def test_sixteen_benchmarks(self):
        assert len(REGISTRY) == 16
        assert len(REAL_WORLD) == 14 and len(SYNTHETIC) == 2

    def test_table2_metadata_matches_classes(self):
        for row in TABLE2:
            bench = get_benchmark(row.name)
            assert bench.metric.unit.lower().startswith(
                row.metric.split("/")[0].lower()[:2]
            ) or bench.metric.unit == row.metric

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("nope")

    def test_paper_suites_attributed(self):
        suites = {r.name: r.suite for r in TABLE2}
        assert suites["BFS"] == "Rodinia"
        assert suites["Sobel"] == "SELF" and suites["TranP"] == "SELF"
        assert suites["FFT"] == "SHOC"
        assert suites["RdxS"] == "NSDK"


class TestOptionDefaults:
    def test_sobel_asymmetric_constant_default(self):
        from repro.kir.dialect import CUDA, OPENCL

        b = get_benchmark("Sobel")
        assert b.options_for(CUDA, None)["use_constant"] is False
        assert b.options_for(OPENCL, None)["use_constant"] is True

    def test_md_spmv_texture_default(self):
        from repro.kir.dialect import CUDA, OPENCL

        for name in ("MD", "SPMV"):
            b = get_benchmark(name)
            assert b.options_for(CUDA, None)["use_texture"] is True
            assert b.options_for(OPENCL, None)["use_texture"] is False

    def test_fdtd_pragma_defaults(self):
        from repro.kir.dialect import CUDA, OPENCL

        b = get_benchmark("FDTD")
        assert b.options_for(CUDA, None)["unroll_a"] == 9
        assert b.options_for(OPENCL, None)["unroll_a"] is None

    def test_overrides_win(self):
        from repro.kir.dialect import CUDA

        b = get_benchmark("Sobel")
        assert b.options_for(CUDA, {"use_constant": True})["use_constant"] is True

    def test_opencl_never_gets_texture_kernels(self):
        from repro.kir.dialect import OPENCL

        b = get_benchmark("MD")
        kerns = b.kernels(
            OPENCL, b.options_for(OPENCL, {"use_texture": True}), {"WARP_SIZE": 32},
            b.sizes()["small"],
        )
        assert not any(k.uses_texture() for k in kerns)


class TestWarpSizeBug:
    """The RdxS Table VI mechanism, pinned down."""

    def test_correct_when_warp_is_32(self):
        r = get_benchmark("RdxS").run(host_for("opencl", GTX480), size="small")
        assert r.correct

    def test_fails_when_wavefront_is_64(self):
        from repro.arch import HD5870

        r = get_benchmark("RdxS").run(host_for("opencl", HD5870), size="small")
        assert not r.correct and r.failure == "FL"

    def test_fails_on_cpu_lanes(self):
        from repro.arch import INTEL920

        r = get_benchmark("RdxS").run(host_for("opencl", INTEL920), size="small")
        assert not r.correct and r.failure == "FL"


class TestData:
    def test_layered_graph_csr_valid(self):
        from repro.benchsuite.data import layered_graph

        row, cols, n = layered_graph(4, 16)
        assert row[0] == 0 and row[-1] == len(cols)
        assert (np.diff(row) >= 0).all()
        assert cols.min() >= 0 and cols.max() < n

    def test_banded_csr_within_band(self):
        from repro.benchsuite.data import banded_csr

        rowptr, cols, vals = banded_csr(64, band=8, nnz_per_row=4)
        for r in range(64):
            cs = cols[rowptr[r] : rowptr[r + 1]]
            assert (np.abs(cs - r) <= 8).all()
            assert len(set(cs.tolist())) == len(cs)  # no duplicates

    def test_generators_deterministic(self):
        from repro.benchsuite.data import gray_image

        assert np.array_equal(gray_image(16, 16, seed=1), gray_image(16, 16, seed=1))
        assert not np.array_equal(
            gray_image(16, 16, seed=1), gray_image(16, 16, seed=2)
        )

    def test_neighbor_lists_exclude_self(self):
        from repro.benchsuite.data import neighbor_lists

        nl = neighbor_lists(32, 6).reshape(32, 6)
        for i in range(32):
            assert i not in nl[i]
