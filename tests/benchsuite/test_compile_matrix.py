"""Compile matrix: every benchmark kernel builds under every dialect and
every device's build defines, and respects each device's register budget.

Cheap (compile-only) but broad: this is what catches a lowering or pass
regression that only manifests for one benchmark on one platform.
"""
import pytest

from repro.arch import ALL_DEVICES
from repro.benchsuite import REAL_WORLD, SYNTHETIC, get_benchmark
from repro.compiler import compile_cuda, compile_opencl
from repro.kir.dialect import CUDA, OPENCL
from repro.ptx import verify

ALL_NAMES = SYNTHETIC + REAL_WORLD


@pytest.mark.parametrize("name", ALL_NAMES)
def test_compiles_in_both_dialects_with_nvidia_defines(name):
    bench = get_benchmark(name)
    params = bench.sizes()["small"]
    for dialect, comp, max_regs in (
        (CUDA, compile_cuda, 124),
        (OPENCL, compile_opencl, 124),
    ):
        opts = bench.options_for(dialect, None)
        for kern in bench.kernels(dialect, opts, {"WARP_SIZE": 32}, params):
            ptx = comp(kern, max_regs=max_regs)
            verify(ptx)
            assert ptx.resources.registers <= max_regs
            assert ptx.static_size() > 0


@pytest.mark.parametrize("warp_size", [4, 32, 64])
def test_warp_size_parameterized_kernels_build(warp_size):
    """RdxS and warp-SPMV bake WARP_SIZE at build time (Table VI)."""
    for name, options in (("RdxS", None), ("SPMV", {"variant": "warp"})):
        bench = get_benchmark(name)
        opts = bench.options_for(OPENCL, options)
        kerns = bench.kernels(
            OPENCL, opts, {"WARP_SIZE": warp_size}, bench.sizes()["small"]
        )
        for kern in kerns:
            ptx = compile_opencl(kern, max_regs=124)
            verify(ptx)
            assert ptx.defines == {}  # defines applied at build(), not here


@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernels_fit_every_nvidia_device_budget(name):
    bench = get_benchmark(name)
    params = bench.sizes()["small"]
    for dev in ("GTX280", "GTX480"):
        spec = ALL_DEVICES[dev]
        opts = bench.options_for(OPENCL, None)
        for kern in bench.kernels(OPENCL, opts, {"WARP_SIZE": 32}, params):
            budget = min(
                spec.max_regs_per_thread,
                max(16, spec.regfile_per_cu // max(kern.wg_hint, 32)),
            )
            ptx = compile_opencl(kern, max_regs=budget)
            assert ptx.resources.registers <= budget, kern.name


def test_cuda_and_opencl_kernels_share_memory_footprint():
    """Fairness step 3: the two dialect builds of one benchmark must
    declare identical shared memory and touch the same buffers."""
    for name in ALL_NAMES:
        bench = get_benchmark(name)
        params = bench.sizes()["small"]
        # equalize the optional optimizations so only the dialect differs
        common = {}
        defaults = bench.default_options
        for key, v in defaults.items():
            if isinstance(v, dict):
                common[key] = v["opencl"]
        ck = bench.kernels(
            CUDA, bench.options_for(CUDA, common), {"WARP_SIZE": 32}, params
        )
        ok = bench.kernels(
            OPENCL, bench.options_for(OPENCL, common), {"WARP_SIZE": 32}, params
        )
        assert [k.name for k in ck] == [k.name for k in ok], name
        for a, b in zip(ck, ok):
            assert a.shared_bytes() == b.shared_bytes(), name
            assert [p.name for p in a.params] == [p.name for p in b.params], name
