import pytest

from repro.kir import AddrSpace, BufferRef, Scalar
from repro.kir.expr import (
    BinOp,
    Const,
    Load,
    Select,
    SpecialReg,
    SReg,
    UnOp,
    Var,
    as_expr,
)


@pytest.fixture
def x():
    return Var("x", Scalar.S32)


@pytest.fixture
def f():
    return Var("f", Scalar.F32)


class TestOperatorSugar:
    def test_add_builds_binop(self, x):
        e = x + 1
        assert isinstance(e, BinOp) and e.op == "add"
        assert isinstance(e.b, Const) and e.b.value == 1

    def test_radd_swaps_operands(self, x):
        e = 1 + x
        assert e.op == "add" and isinstance(e.a, Const)

    def test_literal_adopts_operand_int_type(self):
        u = Var("u", Scalar.U32)
        e = u + 1
        assert e.b.dtype is Scalar.U32

    def test_float_literal_f32(self, f):
        e = f * 2.0
        assert e.b.dtype is Scalar.F32

    def test_float_literal_widens_to_f64(self):
        d = Var("d", Scalar.F64)
        e = d * 2.0
        assert e.b.dtype is Scalar.F64

    def test_comparison_yields_pred(self, x):
        assert (x < 5).dtype is Scalar.PRED
        assert (x >= 5).dtype is Scalar.PRED
        assert x.eq(5).dtype is Scalar.PRED
        assert x.ne(5).dtype is Scalar.PRED

    def test_shift_and_mask(self, x):
        assert (x >> 2).op == "shr"
        assert (x << 2).op == "shl"
        assert (x & 3).op == "and"
        assert (16 >> x).op == "shr" and isinstance((16 >> x).a, Const)

    def test_logic_requires_integer(self, f):
        with pytest.raises(TypeError):
            f & 3

    def test_mod_and_div(self, x):
        assert (x % 4).op == "rem"
        assert (x / 4).op == "div"
        assert (x // 4).op == "div"

    def test_neg(self, x):
        e = -x
        assert isinstance(e, UnOp) and e.op == "neg"

    def test_logical_combinators(self, x):
        e = (x < 3).logical_and(x > 0)
        assert e.op == "land" and e.dtype is Scalar.PRED


class TestStructuralKeys:
    def test_equal_structure_same_key(self, x):
        assert (x + 1).key() == (x + 1).key()

    def test_different_structure_different_key(self, x):
        assert (x + 1).key() != (x + 2).key()
        assert (x + 1).key() != (x - 1).key()

    def test_load_key_includes_texture_flag(self):
        b = BufferRef("b", Scalar.F32)
        i = Var("i", Scalar.S32)
        plain = Load(b, i)
        tex = Load(b, i, via_texture=True)
        assert plain.key() != tex.key()


class TestNodes:
    def test_unknown_binop_rejected(self, x):
        with pytest.raises(ValueError):
            BinOp("bogus", x, x)

    def test_unknown_unop_rejected(self, x):
        with pytest.raises(ValueError):
            UnOp("bogus", x)

    def test_select_needs_predicate(self, x):
        with pytest.raises(TypeError):
            Select(x, x, x)

    def test_select_type_from_branch(self, x):
        s = Select(x < 1, x, Const(0, Scalar.S32))
        assert s.dtype is Scalar.S32

    def test_buffer_getitem_builds_load(self):
        b = BufferRef("data", Scalar.F32)
        l = b[Var("i", Scalar.S32)]
        assert isinstance(l, Load) and l.dtype is Scalar.F32

    def test_buffer_index_literal_coerced(self):
        b = BufferRef("data", Scalar.F32)
        l = b[3]
        assert isinstance(l.index, Const)

    def test_sreg_is_u32(self):
        assert SpecialReg(SReg.TID_X).dtype is Scalar.U32

    def test_cvt_result_types(self, f, x):
        assert UnOp("f2i", f).dtype is Scalar.S32
        assert UnOp("i2f", x).dtype is Scalar.F32
        assert UnOp("f2u", f).dtype is Scalar.U32

    def test_as_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            as_expr(object())

    def test_as_expr_bool(self):
        c = as_expr(True)
        assert c.dtype is Scalar.PRED and c.value is True


def test_expr_equality_is_identity_not_dtype():
    # regression: a dataclass-generated __eq__ on the Expr base compared
    # only dtype, making any two same-typed expressions "equal" — which
    # let map_stmts drop rewrites inside nested bodies
    assert Const(1, Scalar.S32) != Var("x", Scalar.S32)
    e = BinOp("add", Var("x", Scalar.S32), Const(1, Scalar.S32))
    twin = BinOp("add", Var("x", Scalar.S32), Const(1, Scalar.S32))
    assert e != twin  # identity semantics
    assert e.key() == twin.key()  # structural comparison goes via key()
