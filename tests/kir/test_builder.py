import pytest

from repro.kir import (
    AddrSpace,
    Barrier,
    CUDA,
    For,
    If,
    KernelBuilder,
    KernelValidationError,
    Let,
    OPENCL,
    Scalar,
    Store,
    UNROLL_FULL,
)


def test_simple_kernel_shape():
    k = KernelBuilder("k", CUDA)
    a = k.buffer("a", Scalar.F32)
    n = k.scalar("n", Scalar.S32)
    i = k.let("i", k.global_id(0))
    with k.if_(i < n):
        k.store(a, i, 1.0)
    kern = k.finish()
    assert kern.name == "k"
    assert kern.dialect == "cuda"
    assert [type(s) for s in kern.body] == [Let, If]
    assert len(kern.params) == 2


def test_duplicate_names_rejected():
    k = KernelBuilder("k", CUDA)
    k.buffer("a", Scalar.F32)
    with pytest.raises(ValueError, match="duplicate"):
        k.scalar("a")


def test_shared_declaration_and_bytes():
    k = KernelBuilder("k", CUDA)
    sh = k.shared("tile", Scalar.F32, 17 * 16)
    out = k.buffer("o", Scalar.F32)
    k.store(sh, k.tid.x, 0.0)
    k.barrier()
    k.store(out, k.tid.x, sh[k.tid.x])
    kern = k.finish()
    assert kern.shared_bytes() == 17 * 16 * 4
    assert sh.space is AddrSpace.SHARED


def test_texture_rejected_in_opencl():
    k = KernelBuilder("k", OPENCL)
    a = k.buffer("a", Scalar.F32)
    with pytest.raises(TypeError, match="texture"):
        k.texload(a, 0)


def test_texture_allowed_in_cuda():
    k = KernelBuilder("k", CUDA)
    a = k.buffer("a", Scalar.F32)
    o = k.buffer("o", Scalar.F32)
    k.store(o, k.tid.x, k.texload(a, k.tid.x))
    assert k.finish().uses_texture()


def test_for_loop_records_unroll_pragma():
    k = KernelBuilder("k", CUDA)
    o = k.buffer("o", Scalar.F32)
    with k.for_("i", 0, 8, unroll=k.unroll(point="a")) as i:
        k.store(o, i, 0.0)
    kern = k.finish()
    loop = kern.body[0]
    assert isinstance(loop, For)
    assert loop.unroll.factor == UNROLL_FULL
    assert loop.unroll.point == "a"


def test_unbalanced_context_rejected():
    k = KernelBuilder("k", CUDA)
    k._stack.append([])  # simulate an unclosed with-block
    with pytest.raises(RuntimeError, match="unbalanced"):
        k.finish()


def test_global_id_expansion_matches_both_dialects():
    for d in (CUDA, OPENCL):
        k = KernelBuilder("k", d)
        e = k.global_id(1)
        # ctaid.y * ntid.y + tid.y regardless of dialect
        assert e.key()[0] == "bin" and e.op == "add"


def test_barrier_inside_divergent_if_rejected():
    k = KernelBuilder("k", CUDA)
    o = k.buffer("o", Scalar.F32)
    with k.if_(k.tid.x < 1):
        k.barrier()
        k.store(o, 0, 1.0)
    with pytest.raises(KernelValidationError, match="barrier"):
        k.finish()


def test_store_to_const_buffer_rejected():
    k = KernelBuilder("k", CUDA)
    c = k.buffer("c", Scalar.F32, AddrSpace.CONST)
    k.store(c, 0, 1.0)
    with pytest.raises(KernelValidationError, match="read-only"):
        k.finish()


def test_fresh_generates_unique_names():
    k = KernelBuilder("k", CUDA)
    v1 = k.fresh(1)
    v2 = k.fresh(2)
    assert v1.name != v2.name


def test_math_helpers_build_unops():
    k = KernelBuilder("k", CUDA)
    assert k.sqrt(1.0).op == "sqrt"
    assert k.rsqrt(1.0).op == "rsqrt"
    assert k.sin(1.0).op == "sin"
    assert k.cos(1.0).op == "cos"
    assert k.exp(1.0).op == "exp"
    assert k.abs(-1.0).op == "abs"
    assert k.floor(1.5).op == "floor"
    assert k.f2i(1.5).op == "f2i"
    assert k.i2f(1).op == "i2f"
    assert k.f2u(1.0).op == "f2u"


def test_min_max_helpers():
    k = KernelBuilder("k", CUDA)
    x = k.let("x", 3)
    assert k.min(x, 5).op == "min"
    assert k.max(0, x).op == "max"


def test_while_loop():
    k = KernelBuilder("k", OPENCL)
    o = k.buffer("o", Scalar.S32)
    j = k.let("j", 0)
    with k.while_(j < 4):
        k.store(o, j, j)
        k.assign(j, j + 1)
    kern = k.finish()
    assert kern.body[1].__class__.__name__ == "While"
