from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar, render
from repro.kir.types import AddrSpace


def _sample(dialect):
    k = KernelBuilder("sample", dialect)
    a = k.buffer("a", Scalar.F32)
    c = k.buffer("filt", Scalar.F32, AddrSpace.CONST)
    o = k.buffer("o", Scalar.F32)
    sh = k.shared("tile", Scalar.F32, 16)
    n = k.scalar("n", Scalar.S32)
    i = k.let("i", k.global_id(0))
    with k.if_(i < n):
        k.store(sh, k.tid.x, a[i] * c[0])
    k.barrier()
    k.store(o, i, sh[k.tid.x])
    return k.finish()


def test_cuda_spellings():
    src = render(_sample(CUDA))
    assert "__global__ void sample" in src
    assert "threadIdx.x" in src
    assert "blockIdx.x" in src
    assert "__syncthreads()" in src
    assert "__shared__ float tile[16];" in src
    assert "__constant__ float* filt" in src


def test_opencl_spellings():
    src = render(_sample(OPENCL))
    assert "__kernel void sample" in src
    assert "get_local_id(0)" in src
    assert "get_group_id(0)" in src
    assert "barrier(CLK_LOCAL_MEM_FENCE)" in src
    assert "__local float tile[16];" in src
    assert "__global float* a" in src


def test_dialect_neutral_structure_identical():
    """The fairness argument: same AST -> same algorithm, only spellings
    differ.  Normalizing the spellings must yield identical text."""
    cu = render(_sample(CUDA))
    cl = render(_sample(OPENCL))
    subst = [
        ("__global__ void", "KERNEL"),
        ("__kernel void", "KERNEL"),
        ("threadIdx.x", "TID0"),
        ("get_local_id(0)", "TID0"),
        ("blockIdx.x", "CTA0"),
        ("get_group_id(0)", "CTA0"),
        ("blockDim.x", "NTID0"),
        ("get_local_size(0)", "NTID0"),
        ("__syncthreads()", "BAR"),
        ("barrier(CLK_LOCAL_MEM_FENCE)", "BAR"),
        ("__shared__ ", "LOCAL "),
        ("__local ", "LOCAL "),
        ("__constant__ ", "CONST "),
        ("__constant ", "CONST "),
        ("__global ", ""),
    ]
    for old, new in subst:
        cu = cu.replace(old, new)
        cl = cl.replace(old, new)
    assert cu == cl


def test_unroll_pragma_rendered():
    k = KernelBuilder("u", CUDA)
    o = k.buffer("o", Scalar.F32)
    with k.for_("i", 0, 9, unroll=k.unroll(9, point="a")) as i:
        k.store(o, i, 0.0)
    src = render(k.finish())
    assert "#pragma unroll 9" in src
    assert "unroll point: a" in src


def test_ternary_vs_select():
    k = KernelBuilder("s", CUDA)
    o = k.buffer("o", Scalar.F32)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, k.select(t < 1, 1.0, 2.0))
    cu = render(k.finish())
    assert "?" in cu

    k2 = KernelBuilder("s", OPENCL)
    o2 = k2.buffer("o", Scalar.F32)
    t2 = k2.let("t", k2.tid.x, Scalar.S32)
    k2.store(o2, t2, k2.select(t2 < 1, 1.0, 2.0))
    cl = render(k2.finish())
    assert "select(" in cl
