import numpy as np
import pytest

from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar, eval_kernel
from repro.kir.expr import Const, Select, UnOp


def test_vecadd():
    k = KernelBuilder("v", CUDA)
    a = k.buffer("a", Scalar.F32)
    b = k.buffer("b", Scalar.F32)
    c = k.buffer("c", Scalar.F32)
    i = k.let("i", k.global_id(0))
    k.store(c, i, a[i] + b[i])
    kern = k.finish()
    A = np.arange(16, dtype=np.float32)
    B = np.ones(16, dtype=np.float32)
    C = np.zeros(16, dtype=np.float32)
    eval_kernel(kern, 2, 8, {"a": A, "b": B, "c": C})
    assert np.allclose(C, A + B)


def test_barrier_shared_cooperation():
    k = KernelBuilder("r", OPENCL)
    x = k.buffer("x", Scalar.S32)
    y = k.buffer("y", Scalar.S32)
    sh = k.shared("sh", Scalar.S32, 8)
    t = k.let("t", k.tid.x)
    k.store(sh, t, x[k.global_id(0)])
    k.barrier()
    k.store(y, k.global_id(0), sh[7 - t])
    kern = k.finish()
    X = np.arange(8, dtype=np.int32)
    Y = np.zeros(8, dtype=np.int32)
    eval_kernel(kern, 1, 8, {"x": X, "y": Y})
    assert (Y == X[::-1]).all()


def test_divergent_if_else():
    k = KernelBuilder("d", CUDA)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    v = k.let("v", 0)
    with k.if_else((t & 1).eq(0)) as orelse:
        k.assign(v, 10)
    # populate the else branch through collect
    kern = None
    # simpler: use emit_if
    k2 = KernelBuilder("d2", CUDA)
    o2 = k2.buffer("o", Scalar.S32)
    t2 = k2.let("t", k2.tid.x, Scalar.S32)
    v2 = k2.let("v", 0)
    with k2.collect() as then:
        k2.assign(v2, 10)
    with k2.collect() as els:
        k2.assign(v2, 20)
    k2.emit_if((t2 & 1).eq(0), then, els)
    k2.store(o2, t2, v2)
    kern = k2.finish()
    O = np.zeros(8, dtype=np.int32)
    eval_kernel(kern, 1, 8, {"o": O})
    assert (O == np.where(np.arange(8) % 2 == 0, 10, 20)).all()


def test_loop_with_dynamic_bounds():
    k = KernelBuilder("l", CUDA)
    rp = k.buffer("rp", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    acc = k.let("acc", 0)
    with k.for_("j", rp[t], rp[t + 1]) as j:
        k.assign(acc, acc + j)
    k.store(o, t, acc)
    kern = k.finish()
    RP = np.array([0, 2, 5, 9, 9], dtype=np.int32)
    O = np.zeros(4, dtype=np.int32)
    eval_kernel(kern, 1, 4, {"rp": RP, "o": O})
    assert O.tolist() == [0 + 1, 2 + 3 + 4, 5 + 6 + 7 + 8, 0]


def test_integer_wraparound_u32():
    k = KernelBuilder("w", CUDA)
    o = k.buffer("o", Scalar.U32)
    t = k.let("t", k.tid.x)  # u32
    k.store(o, t, t - 1)
    kern = k.finish()
    O = np.zeros(2, dtype=np.uint32)
    eval_kernel(kern, 1, 2, {"o": O})
    assert O[0] == np.uint32(0xFFFFFFFF)
    assert O[1] == 0


def test_divergent_barrier_detected():
    # construct manually since the validator refuses to build this
    from repro.kir.stmt import Barrier, If, Kernel, Store
    from repro.kir.expr import BufferRef, Const, SpecialReg, SReg

    buf = BufferRef("o", Scalar.S32)
    t = SpecialReg(SReg.TID_X)
    bad = Kernel(
        "bad",
        [buf],
        [If(t < Const(1, Scalar.U32), (Barrier(),), ())],
        dialect="cuda",
    )
    with pytest.raises(RuntimeError, match="divergent barrier"):
        eval_kernel(bad, 1, 4, {"o": np.zeros(4, dtype=np.int32)})


def test_math_functions_match_numpy():
    k = KernelBuilder("m", CUDA)
    x = k.buffer("x", Scalar.F32)
    o = k.buffer("o", Scalar.F32)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, k.sqrt(x[t]) + k.sin(x[t]) * k.cos(x[t]))
    kern = k.finish()
    X = np.linspace(0.1, 3.0, 8).astype(np.float32)
    O = np.zeros(8, dtype=np.float32)
    eval_kernel(kern, 1, 8, {"x": X, "o": O})
    assert np.allclose(O, np.sqrt(X) + np.sin(X) * np.cos(X), rtol=1e-5)


def test_unop_not_on_pred_is_logical():
    # regression: ~int(True) is -2, which is truthy — `not` on a PRED
    # must be a logical negation
    k = KernelBuilder("lnot", CUDA)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, Select(UnOp("not", t.eq(0)), Const(7, Scalar.S32), Const(3, Scalar.S32)))
    out = np.zeros(2, dtype=np.int32)
    eval_kernel(k.finish(), 1, 2, {"o": out})
    assert list(out) == [3, 7]
