import pytest

from repro.kir import CUDA, KernelBuilder, KernelValidationError, OPENCL, Scalar
from repro.kir.expr import BufferRef, Const, Load, Var
from repro.kir.stmt import Assign, Barrier, For, If, Kernel, Let, Store, While
from repro.kir.types import AddrSpace
from repro.kir.validate import validate


def _kernel(body, params=None, shared=(), dialect="cuda"):
    return Kernel(
        "k", list(params or []), list(body), dialect=dialect, shared=list(shared)
    )


def test_use_of_undeclared_variable():
    buf = BufferRef("o", Scalar.S32)
    bad = _kernel([Store(buf, Const(0, Scalar.S32), Var("ghost", Scalar.S32))], [buf])
    with pytest.raises(KernelValidationError, match="undeclared variable"):
        validate(bad)


def test_store_to_undeclared_buffer():
    ghost = BufferRef("ghost", Scalar.S32)
    bad = _kernel([Store(ghost, Const(0, Scalar.S32), Const(1, Scalar.S32))], [])
    with pytest.raises(KernelValidationError, match="undeclared buffer"):
        validate(bad)


def test_assignment_before_declaration():
    buf = BufferRef("o", Scalar.S32)
    bad = _kernel([Assign(Var("x", Scalar.S32), Const(1, Scalar.S32))], [buf])
    with pytest.raises(KernelValidationError, match="undeclared"):
        validate(bad)


def test_redeclaration_rejected():
    buf = BufferRef("o", Scalar.S32)
    x = Var("x", Scalar.S32)
    bad = _kernel(
        [Let(x, Const(1, Scalar.S32)), Let(x, Const(2, Scalar.S32))], [buf]
    )
    with pytest.raises(KernelValidationError, match="redeclaration"):
        validate(bad)


def test_texture_fetch_requires_cuda_dialect():
    buf = BufferRef("a", Scalar.F32)
    out = BufferRef("o", Scalar.F32)
    body = [
        Store(out, Const(0, Scalar.S32), Load(buf, Const(0, Scalar.S32), via_texture=True))
    ]
    validate(_kernel(body, [buf, out], dialect="cuda"))
    with pytest.raises(KernelValidationError, match="texture"):
        validate(_kernel(body, [buf, out], dialect="opencl"))


def test_shared_buffer_needs_length():
    buf = BufferRef("o", Scalar.S32)
    sh = BufferRef("sh", Scalar.S32, AddrSpace.SHARED, length=None)
    bad = _kernel([], [buf], shared=[sh])
    with pytest.raises(KernelValidationError, match="static length"):
        validate(bad)


def test_barrier_in_while_rejected():
    buf = BufferRef("o", Scalar.S32)
    bad = _kernel(
        [While(Const(True, Scalar.PRED), (Barrier(),))], [buf]
    )
    with pytest.raises(KernelValidationError, match="barrier"):
        validate(bad)


def test_barrier_in_uniform_for_allowed():
    k = KernelBuilder("k", OPENCL)
    o = k.buffer("o", Scalar.S32)
    sh = k.shared("sh", Scalar.S32, 4)
    with k.for_("i", 0, 4) as i:
        k.store(sh, k.tid.x, i)
        k.barrier()
    k.store(o, k.tid.x, sh[k.tid.x])
    k.finish()  # validates internally


def test_unknown_dialect_rejected():
    bad = _kernel([], [], dialect="metal")
    with pytest.raises(KernelValidationError, match="dialect"):
        validate(bad)


def test_loop_variable_shadowing_rejected():
    k = KernelBuilder("k", CUDA)
    o = k.buffer("o", Scalar.S32)
    x = k.let("x", 0)
    with pytest.raises(ValueError, match="duplicate"):
        with k.for_("x", 0, 4) as i:
            pass


def test_shared_space_param_rejected():
    # parameters are host-passed pointers; a SHARED space there would
    # silently mis-lower (found round-tripping rewritten ASTs)
    sh = BufferRef("sh", Scalar.S32, AddrSpace.SHARED, length=8)
    with pytest.raises(KernelValidationError, match="GLOBAL or CONST"):
        validate(_kernel([], [sh]))


def test_shared_decl_with_wrong_space_rejected():
    g = BufferRef("scratch", Scalar.S32, AddrSpace.GLOBAL, length=8)
    with pytest.raises(KernelValidationError, match="has space GLOBAL"):
        validate(_kernel([], [], shared=[g]))


def test_nonpositive_const_step_rejected():
    i = Var("i", Scalar.S32)
    loop = For(i, Const(0, Scalar.S32), Const(4, Scalar.S32), Const(0, Scalar.S32), ())
    with pytest.raises(KernelValidationError, match="non-positive"):
        validate(_kernel([loop]))


def test_assignment_to_loop_variable_rejected():
    i = Var("i", Scalar.S32)
    body = (Assign(i, Const(0, Scalar.S32)),)
    loop = For(i, Const(0, Scalar.S32), Const(4, Scalar.S32), Const(1, Scalar.S32), body)
    with pytest.raises(KernelValidationError, match="induction"):
        validate(_kernel([loop]))
