import numpy as np
import pytest

from repro.kir.types import AddrSpace, Scalar, is_float, is_integer, np_dtype, sizeof


class TestScalar:
    def test_sizes(self):
        assert sizeof(Scalar.F32) == 4
        assert sizeof(Scalar.S32) == 4
        assert sizeof(Scalar.U32) == 4
        assert sizeof(Scalar.F64) == 8
        assert sizeof(Scalar.S64) == 8
        assert sizeof(Scalar.U64) == 8
        assert sizeof(Scalar.PRED) == 1

    def test_numpy_mapping(self):
        assert np_dtype(Scalar.F32) is np.float32
        assert np_dtype(Scalar.S32) is np.int32
        assert np_dtype(Scalar.U32) is np.uint32
        assert np_dtype(Scalar.PRED) is np.bool_

    def test_numpy_size_consistency(self):
        for t in Scalar:
            if t is Scalar.PRED:
                continue
            assert np.dtype(np_dtype(t)).itemsize == sizeof(t)

    def test_integer_float_partition(self):
        ints = {t for t in Scalar if is_integer(t)}
        floats = {t for t in Scalar if is_float(t)}
        assert ints == {Scalar.U32, Scalar.S32, Scalar.U64, Scalar.S64}
        assert floats == {Scalar.F32, Scalar.F64}
        assert not ints & floats
        assert Scalar.PRED not in ints | floats


class TestAddrSpace:
    def test_all_spaces_present(self):
        names = {s.name for s in AddrSpace}
        assert names == {"GLOBAL", "CONST", "SHARED", "LOCAL", "TEXTURE", "PARAM"}

    def test_values_match_ptx_names(self):
        assert AddrSpace.GLOBAL.value == "global"
        assert AddrSpace.SHARED.value == "shared"
        assert AddrSpace.TEXTURE.value == "tex"
