"""Property tests: random legal rule sequences preserve everything.

The composition property is the tentpole guarantee: *any* chain of
catalog rules, applied at legally-matched sites in any order, yields a
kernel that (a) still validates, (b) produces byte-identical output
under the reference evaluator, (c) is already in normal form, and
(d) round-trips through its variant token.

Locally this runs 200 examples per dialect-mixing property; CI sets
``HYPOTHESIS_PROFILE=ci`` (or ``CI=1``) to run a faster pass.
"""
import os

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kir import CUDA, OPENCL
from repro.kir.rewrite import (
    RewriteError,
    Variant,
    VariantPlan,
    apply_apps,
    apply_variant,
    kernel_key,
    normalize,
)
from repro.kir.validate import validate

from .conftest import build_micro, eval_micro

settings.register_profile(
    "rewrite-local",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "rewrite-ci",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
_PROFILE = os.environ.get(
    "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "rewrite-local"
)
settings.load_profile("rewrite-ci" if _PROFILE == "ci" else _PROFILE)


def _draw_sequence(data, base, max_depth=3):
    """Interactively compose a random legal rule sequence.

    Sites are re-enumerated after every application, so each drawn app
    is legal *for the kernel it applies to* — exactly the invariant
    ``VariantPlan`` maintains, generalized to arbitrary depth.
    """
    k = base
    apps = []
    depth = data.draw(st.integers(1, max_depth), label="depth")
    for _ in range(depth):
        avail = VariantPlan([k], limit=256)._apps_for(k)
        if not avail:
            break
        app = data.draw(st.sampled_from(avail), label="app")
        k = apply_apps(k, [app])
        apps.append(app)
    return k, tuple(apps)


@given(data=st.data())
def test_random_legal_sequences_preserve_semantics(data):
    dialect = data.draw(st.sampled_from([CUDA, OPENCL]), label="dialect")
    base = build_micro(dialect)
    baseline = eval_micro(base)
    k, apps = _draw_sequence(data, base)

    # validity: re-validation after the full chain
    validate(k)
    # preservation: byte-identical evaluator output
    np.testing.assert_array_equal(
        eval_micro(k), baseline, err_msg="+".join(a.token for a in apps)
    )
    # idempotence of normalization
    assert kernel_key(normalize(k)) == kernel_key(k)


@given(data=st.data())
def test_sequences_round_trip_through_tokens(data):
    dialect = data.draw(st.sampled_from([CUDA, OPENCL]), label="dialect")
    base = build_micro(dialect)
    k, apps = _draw_sequence(data, base)
    if not apps:
        return
    token = Variant(base.name, apps).token
    (replayed,) = apply_variant([base], token)
    assert kernel_key(replayed) == kernel_key(k)


@given(data=st.data())
def test_enumerated_compositions_never_raise(data):
    """Whatever the plan enumerates must apply cleanly from the token."""
    base = build_micro(data.draw(st.sampled_from([CUDA, OPENCL]), label="dialect"))
    variants = VariantPlan([base]).variants()
    v = data.draw(st.sampled_from(variants), label="variant")
    try:
        (k,) = apply_variant([base], v.token)
    except RewriteError as e:  # pragma: no cover - the property under test
        raise AssertionError(f"planned variant {v.token} failed: {e}")
    validate(k)
