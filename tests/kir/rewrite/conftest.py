"""Shared micro-kernels for the rewrite-engine tests.

``build_micro`` is the canonical micro-kernel: it is deliberately shaped
so that *every* rule in the catalog has at least one legal site —

* loop ``i`` (constant trip 8, accumulator): unroll / pragma / tile
* loop ``j`` (straight-line let/store, trip 4): vec (and unroll/tile)
* the ``v * v`` repetition in the store: cse
* buffer ``c`` (read-only global): promote, and texify under CUDA
* buffer ``d`` (constant): demote
* ``build_tex_micro``'s texture load: untex

``eval_micro`` runs a (possibly rewritten) micro-kernel through the
reference evaluator on fixed inputs and returns the output array, so
preservation can be asserted byte-for-byte.
"""
import numpy as np
import pytest

from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar, eval_kernel
from repro.kir.expr import Const
from repro.kir.types import AddrSpace


def build_micro(dialect=CUDA):
    k = KernelBuilder("micro", dialect, wg_hint=32)
    a = k.buffer("a", Scalar.S32)
    c = k.buffer("c", Scalar.S32)
    d = k.buffer("d", Scalar.S32, AddrSpace.CONST)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    acc = k.let("acc", Const(0, Scalar.S32))
    with k.for_("i", 0, 8) as i:
        k.assign(acc, acc + c[(t + i) % 16] * d[i % 4])
    with k.for_("j", 0, 4) as j:
        v = k.let("v", a[t * 4 + j] + acc)
        k.store(o, t * 4 + j, v * v + (v * v) % 7)
    return k.finish()


def build_tex_micro():
    k = KernelBuilder("texmicro", CUDA, wg_hint=32)
    a = k.buffer("a", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, k.texload(a, t) + 1)
    return k.finish()


def eval_micro(kernel, block=4):
    a = (np.arange(16, dtype=np.int64) * 3 - 7).astype(np.int32)
    c = (np.arange(16, dtype=np.int64) ** 2 % 23).astype(np.int32)
    d = np.array([2, -3, 5, 7], dtype=np.int32)
    o = np.zeros(16, dtype=np.int32)
    eval_kernel(kernel, 1, block, {"a": a, "c": c, "d": d, "o": o})
    return o


@pytest.fixture
def micro():
    return build_micro(CUDA)


@pytest.fixture
def micro_cl():
    return build_micro(OPENCL)


@pytest.fixture
def tex_micro():
    return build_tex_micro()
