"""The acceptance matrix: every planned variant of the two ported
benchmarks is byte-identical to its baseline on GTX480, GTX280, and
Cell/BE.

Identity is judged over the canonical result payload (the same
wall-clock-free document ``canonical_results_json`` builds): correctness
verdict, failure tag, and the sha256 of the output buffer.  Variants the
ABT preflight rules out on a device are reported inadmissible, not
compared — a variant may exceed a device limit, it just must never
compute different bytes.
"""
import json

import pytest

from repro import exec as rexec
from repro.arch.specs import ALL_DEVICES

DEVICES = ["GTX480", "GTX280", "Cell/BE"]
BENCHMARKS = ["Sobel", "FDTD"]


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("name", BENCHMARKS)
def test_all_variants_byte_identical_to_baseline(sweep_executor, name, device):
    spec = ALL_DEVICES[device]
    apis = ["cuda", "opencl"] if spec.supports_cuda() else ["opencl"]
    for api in apis:
        unit = rexec.make_unit(name, api, spec, "small")
        checks = rexec.check_unit_variants(sweep_executor, unit)
        assert checks, f"plan generated no variants for {name}/{api}@{device}"
        ran = [c for c in checks if c.status in ("preserved", "different")]
        assert ran, f"every variant of {name}/{api}@{device} was gated out"
        bad = [c for c in checks if c.violation]
        assert not bad, "semantics violations:\n" + rexec.render_checks(bad)


def test_variant_manifest_round_trips(sweep_executor):
    unit = rexec.make_unit("Sobel", "cuda", ALL_DEVICES["GTX480"], "small")
    checks = rexec.check_unit_variants(sweep_executor, unit)
    doc = json.loads(rexec.variant_manifest(checks))
    assert doc["schema"] == 1
    assert doc["total"] == len(checks)
    assert doc["violations"] == 0
    tokens = [r["variant"] for r in doc["checks"]]
    assert tokens == sorted(tokens)
