"""Golden files: the pretty-printed output of each rule, pinned.

One file per catalog rule, applied at a canonical site of the
micro-kernel (``untex`` uses the texture micro-kernel).  A golden diff
is a *deliberate* change to what a rule emits: regenerate with

    REPRO_REGOLD=1 python -m pytest tests/kir/rewrite/test_golden.py

and review the diff like any other source change.
"""
import os
import pathlib

import pytest

from repro.kir import render
from repro.kir.rewrite import apply_apps, parse_variant

from .conftest import build_micro, build_tex_micro

GOLDEN = pathlib.Path(__file__).parent / "golden"

#: (golden file stem, variant token); sites are canonical micro sites
CASES = [
    ("unroll_partial", "micro!unroll:i:2"),
    ("unroll_full", "micro!unroll:j:full"),
    ("pragma", "micro!pragma:i:4"),
    ("tile", "micro!tile:i:4"),
    ("vec", "micro!vec:j:2"),
    ("cse", "micro!cse:body"),
    ("promote", "micro!promote:c"),
    ("demote", "micro!demote:d"),
    ("texify", "micro!texify:c"),
    ("untex", "texmicro!untex:a"),
]


def _render_case(token: str) -> str:
    v = parse_variant(token)
    base = build_tex_micro() if v.kernel == "texmicro" else build_micro()
    rewritten = apply_apps(base, v.apps)
    return f"// {token}\n{render(rewritten)}"


@pytest.mark.parametrize("stem,token", CASES, ids=[c[0] for c in CASES])
def test_rule_output_matches_golden(stem, token):
    got = _render_case(token)
    path = GOLDEN / f"{stem}.cu"
    if os.environ.get("REPRO_REGOLD"):
        GOLDEN.mkdir(exist_ok=True)
        path.write_text(got)
    assert path.exists(), f"golden file missing; regenerate with REPRO_REGOLD=1"
    assert got == path.read_text(), (
        f"pretty-printed output of {token} changed; if intended, "
        "regenerate with REPRO_REGOLD=1 and review the diff"
    )


def test_golden_set_covers_whole_catalog():
    from repro.kir.rewrite import CATALOG

    pinned = {parse_variant(token).apps[0].rule for _, token in CASES}
    assert pinned == set(CATALOG)
