// micro!unroll:j:full
__global__ void micro(int* a, int* c, __constant__ int* d, int* o)
{
    int t = threadIdx.x;
    int acc = 0;
    for (int i = 0; i < 8; i += 1) {
        acc = (acc + (c[((t + i) % 16)] * d[(i % 4)]));
    }
    int v__uj0 = (a[((t * 4) + 0)] + acc);
    o[((t * 4) + 0)] = ((v__uj0 * v__uj0) + ((v__uj0 * v__uj0) % 7));
    int v__uj1 = (a[((t * 4) + 1)] + acc);
    o[((t * 4) + 1)] = ((v__uj1 * v__uj1) + ((v__uj1 * v__uj1) % 7));
    int v__uj2 = (a[((t * 4) + 2)] + acc);
    o[((t * 4) + 2)] = ((v__uj2 * v__uj2) + ((v__uj2 * v__uj2) % 7));
    int v__uj3 = (a[((t * 4) + 3)] + acc);
    o[((t * 4) + 3)] = ((v__uj3 * v__uj3) + ((v__uj3 * v__uj3) % 7));
}