// micro!vec:j:2
__global__ void micro(int* a, int* c, __constant__ int* d, int* o)
{
    int t = threadIdx.x;
    int acc = 0;
    for (int i = 0; i < 8; i += 1) {
        acc = (acc + (c[((t + i) % 16)] * d[(i % 4)]));
    }
    for (int j = 0; j < 4; j += 2) {
        int v__vj0 = (a[((t * 4) + j)] + acc);
        int v__vj1 = (a[((t * 4) + (j + 1))] + acc);
        o[((t * 4) + j)] = ((v__vj0 * v__vj0) + ((v__vj0 * v__vj0) % 7));
        o[((t * 4) + (j + 1))] = ((v__vj1 * v__vj1) + ((v__vj1 * v__vj1) % 7));
    }
}