// texmicro!untex:a
__global__ void texmicro(int* a, int* o)
{
    int t = threadIdx.x;
    o[t] = (a[t] + 1);
}