// micro!unroll:i:2
__global__ void micro(int* a, int* c, __constant__ int* d, int* o)
{
    int t = threadIdx.x;
    int acc = 0;
    for (int i = 0; i < 8; i += 2) {
        acc = (acc + (c[((t + i) % 16)] * d[(i % 4)]));
        acc = (acc + (c[((t + (i + 1)) % 16)] * d[((i + 1) % 4)]));
    }
    for (int j = 0; j < 4; j += 1) {
        int v = (a[((t * 4) + j)] + acc);
        o[((t * 4) + j)] = ((v * v) + ((v * v) % 7));
    }
}