// micro!tile:i:4
__global__ void micro(int* a, int* c, __constant__ int* d, int* o)
{
    int t = threadIdx.x;
    int acc = 0;
    for (int i_t0 = 0; i_t0 < 8; i_t0 += 4) {
        for (int i = i_t0; i < (i_t0 + 4); i += 1) {
            acc = (acc + (c[((t + i) % 16)] * d[(i % 4)]));
        }
    }
    for (int j = 0; j < 4; j += 1) {
        int v = (a[((t * 4) + j)] + acc);
        o[((t * 4) + j)] = ((v * v) + ((v * v) % 7));
    }
}