"""Per-rule unit tests: legality conditions and application shapes."""
import numpy as np
import pytest

from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar
from repro.kir.expr import BinOp, Const, Load, Select, Var
from repro.kir.rewrite import (
    MatchContext,
    RewriteError,
    VariantPlan,
    apply_binding,
    find_site,
    make_rule,
    sites,
)
from repro.kir.rewrite.rules import (
    CSERule,
    PragmaUnrollRule,
    REWRITE_MAX_EXPANSION,
    TileRule,
    UnrollRule,
    VectorizeRule,
)
from repro.kir.stmt import Assign, For, If, Kernel, Let, Store, UNROLL_FULL
from repro.kir.types import AddrSpace
from repro.kir.visit import walk_exprs, walk_stmts
from repro.kir.validate import validate

from .conftest import eval_micro


def _apply(kernel, rule_name, site, arg=""):
    rule = make_rule(rule_name, arg)
    return apply_binding(kernel, rule, find_site(rule, kernel, site))


# ---------------------------------------------------------------------------
# factor parsing / catalog
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", ["0", "1", "-2", "x", "2.5", ""])
def test_unroll_factor_parse_rejects(bad):
    with pytest.raises(RewriteError):
        make_rule("unroll", bad)


@pytest.mark.parametrize("name", ["tile", "vec"])
def test_tile_and_vec_reject_full(name):
    with pytest.raises(RewriteError, match="number"):
        make_rule(name, "full")


def test_noarg_rules_reject_arguments():
    with pytest.raises(RewriteError, match="takes no argument"):
        make_rule("promote", "4")


def test_unknown_rule_rejected():
    with pytest.raises(RewriteError, match="unknown"):
        make_rule("frobnicate")


# ---------------------------------------------------------------------------
# unroll
# ---------------------------------------------------------------------------


def test_unroll_sites_on_micro(micro):
    assert [b["site"] for b in sites(UnrollRule(2), micro)] == ["i", "j"]
    # factor >= trip is canonically spelled `full`: 8 matches neither loop
    assert sites(UnrollRule(8), micro) == []
    assert [b["site"] for b in sites(UnrollRule("full"), micro)] == ["i", "j"]


def test_unroll_full_removes_loop(micro):
    k = _apply(micro, "unroll", "j", "full")
    loops = [s for s in walk_stmts(k.body) if isinstance(s, For)]
    assert [f.var.name for f in loops] == ["i"]


def test_unroll_partial_keeps_loop_with_wider_step(micro):
    k = _apply(micro, "unroll", "i", "4")
    loop = next(s for s in walk_stmts(k.body) if isinstance(s, For) and s.var.name == "i")
    assert loop.step.value == 4
    assert len(loop.body) == 4  # four renamed copies of the one-statement body


def test_unroll_refuses_loop_that_reassigns_its_var():
    i = Var("i", Scalar.S32)
    loop = For(
        i,
        Const(0, Scalar.S32),
        Const(4, Scalar.S32),
        Const(1, Scalar.S32),
        (Assign(i, BinOp("add", i, Const(1, Scalar.S32))),),
    )
    k = Kernel("k", [], [loop], dialect="cuda")
    assert UnrollRule(2).matches(loop, MatchContext.of(k)) is None


def test_unroll_refuses_pathological_trip():
    k = KernelBuilder("big", CUDA)
    o = k.buffer("o", Scalar.S32)
    with k.for_("i", 0, REWRITE_MAX_EXPANSION + 1) as i:
        k.store(o, i, i)
    kern = k.finish()
    assert sites(UnrollRule(2), kern) == []


# ---------------------------------------------------------------------------
# pragma
# ---------------------------------------------------------------------------


def test_pragma_attaches_annotation_once(micro):
    k = _apply(micro, "pragma", "i", "4")
    loop = next(s for s in walk_stmts(k.body) if isinstance(s, For) and s.var.name == "i")
    assert loop.unroll.factor == 4 and loop.unroll.point == "i"
    # an annotated loop is no longer a pragma site
    assert [b["site"] for b in sites(PragmaUnrollRule(2), k)] == ["j"]


def test_pragma_full_spells_unroll_full(micro):
    k = _apply(micro, "pragma", "j", "full")
    loop = next(s for s in walk_stmts(k.body) if isinstance(s, For) and s.var.name == "j")
    assert loop.unroll.factor == UNROLL_FULL


# ---------------------------------------------------------------------------
# tile
# ---------------------------------------------------------------------------


def test_tile_strip_mines_keeping_inner_var(micro):
    k = _apply(micro, "tile", "i", "4")
    outer = next(
        s for s in walk_stmts(k.body) if isinstance(s, For) and s.var.name != "i"
    )
    assert outer.var.name.startswith("i_t")
    assert outer.step.value == 4
    (inner,) = outer.body
    assert isinstance(inner, For) and inner.var.name == "i"
    assert inner.start is outer.var  # inner runs [outer, outer + 4)


def test_tile_requires_dividing_factor(micro):
    # loop j has trip 4: tile 4 would leave an empty outer loop, tile 3
    # does not divide — neither is a site
    assert [b["site"] for b in sites(TileRule(4), micro)] == ["i"]
    assert sites(TileRule(3), micro) == []


# ---------------------------------------------------------------------------
# vec
# ---------------------------------------------------------------------------


def test_vec_matches_only_streaming_loop(micro):
    # loop i has an Assign in the body; only j is a load/store stream
    assert [b["site"] for b in sites(VectorizeRule(2), micro)] == ["j"]


def test_vec_emits_all_loads_before_stores(micro):
    k = _apply(micro, "vec", "j", "2")
    loop = next(s for s in walk_stmts(k.body) if isinstance(s, For) and s.var.name == "j")
    assert loop.step.value == 2
    kinds = [type(s) for s in loop.body]
    assert kinds == [Let, Let, Store, Store]


def test_vec_refuses_loop_reading_its_own_output():
    k = KernelBuilder("rw", CUDA)
    o = k.buffer("o", Scalar.S32)
    with k.for_("j", 0, 4) as j:
        v = k.let("v", o[j])
        k.store(o, j + 4, v)
    assert sites(VectorizeRule(2), k.finish()) == []


def test_vec_refuses_control_flow_in_body():
    k = KernelBuilder("cf", CUDA)
    a = k.buffer("a", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    with k.for_("j", 0, 4) as j:
        with k.if_(j < 2):
            k.store(o, j, a[j])
    assert sites(VectorizeRule(2), k.finish()) == []


# ---------------------------------------------------------------------------
# cse
# ---------------------------------------------------------------------------


def test_cse_hoists_repeated_subexpression(micro):
    k = _apply(micro, "cse", "body")
    hoisted = [
        s
        for s in walk_stmts(k.body)
        if isinstance(s, Let) and s.var.name.startswith("_cse")
    ]
    assert hoisted, "no _cse let emitted"
    # the hoisted expression is the repeated v * v
    assert hoisted[0].value.key() == BinOp(
        "mul", Var("v", Scalar.S32), Var("v", Scalar.S32)
    ).key()


def test_cse_skips_load_only_reachable_through_select():
    # c[t] * 2 repeats, but only inside Select arms: hoisting would
    # evaluate a load the original program may never perform
    k = KernelBuilder("sel", CUDA)
    c = k.buffer("c", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    guarded = c[t] * 2
    k.store(o, t, Select(t < 1, guarded, BinOp("add", guarded, Const(1, Scalar.S32))))
    assert sites(CSERule(), k.finish()) == []


def test_cse_does_not_touch_loop_bounds():
    # stop is re-evaluated per iteration: no CSE site may come from it
    k = KernelBuilder("bounds", CUDA)
    o = k.buffer("o", Scalar.S32)
    n = k.scalar("n", Scalar.S32)
    with k.for_("i", 0, (n * 2) + (n * 2)) as i:
        pass
    k.store(o, 0, Const(0, Scalar.S32))
    assert sites(CSERule(), k.finish()) == []


# ---------------------------------------------------------------------------
# address-space rules
# ---------------------------------------------------------------------------


def test_space_rule_sites(micro, micro_cl, tex_micro):
    tokens = lambda name, k: [b["site"] for b in sites(make_rule(name), k)]
    assert tokens("promote", micro) == ["a", "c"]  # o is stored: not a site
    assert tokens("demote", micro) == ["d"]
    assert tokens("texify", micro) == ["a", "c"]
    assert tokens("texify", micro_cl) == []  # CUDA-only path
    assert tokens("untex", micro) == []
    assert tokens("untex", tex_micro) == ["a"]


def test_promote_moves_buffer_and_loads_to_const(micro):
    k = _apply(micro, "promote", "c")
    buf = next(p for p in k.params if p.name == "c")
    assert buf.space is AddrSpace.CONST
    for s in walk_stmts(k.body):
        for e in walk_exprs(s.value) if isinstance(s, (Let, Assign)) else ():
            if isinstance(e, Load) and e.buf.name == "c":
                assert e.buf.space is AddrSpace.CONST
    validate(k)


def test_texify_flips_load_path_not_space(micro):
    k = _apply(micro, "texify", "c")
    assert next(p for p in k.params if p.name == "c").space is AddrSpace.GLOBAL
    loads = [
        e
        for s in walk_stmts(k.body)
        if isinstance(s, (Let, Assign))
        for e in walk_exprs(s.value)
        if isinstance(e, Load) and e.buf.name == "c"
    ]
    assert loads and all(e.via_texture for e in loads)


def test_untex_inverts_texify(tex_micro):
    from repro.kir.rewrite import kernel_key

    k = _apply(_apply(tex_micro, "untex", "a"), "texify", "a")
    assert kernel_key(k) == kernel_key(tex_micro)


def test_find_site_unknown_site_raises(micro):
    with pytest.raises(RewriteError, match="no site"):
        find_site(make_rule("promote"), micro, "nope")


# ---------------------------------------------------------------------------
# the engine's whole claim, in miniature: every enumerated single-rule
# application preserves the reference-evaluator output byte-for-byte
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dialect_name", ["cuda", "opencl"])
def test_every_enumerated_app_preserves_eval(dialect_name, micro, micro_cl):
    from repro.kir.rewrite import apply_apps

    base = micro if dialect_name == "cuda" else micro_cl
    baseline = eval_micro(base)
    plan = VariantPlan([base], limit=256)
    apps = plan._apps_for(base)
    assert len(apps) >= 10  # the micro-kernel is shaped to exercise the catalog
    for app in apps:
        got = eval_micro(apply_apps(base, [app]))
        np.testing.assert_array_equal(got, baseline, err_msg=app.token)
