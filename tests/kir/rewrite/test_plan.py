"""Variant tokens and the plan enumerator."""
import pytest

from repro.kir import CUDA, KernelBuilder, Scalar
from repro.kir.rewrite import (
    RewriteError,
    RuleApp,
    Variant,
    VariantPlan,
    apply_apps,
    apply_variant,
    kernel_key,
    normalize,
    parse_variant,
)

from .conftest import build_micro


# ---------------------------------------------------------------------------
# token grammar
# ---------------------------------------------------------------------------


def test_ruleapp_token_round_trip():
    for app in [RuleApp("unroll", "i", "4"), RuleApp("promote", "filt")]:
        assert RuleApp.parse(app.token) == app


def test_variant_token_round_trip():
    v = Variant("micro", (RuleApp("promote", "c"), RuleApp("unroll", "i", "full")))
    assert v.token == "micro!promote:c+unroll:i:full"
    assert parse_variant(v.token) == v


@pytest.mark.parametrize(
    "bad",
    [
        "micro",  # no rule list
        "!promote:c",  # no kernel
        "micro!",  # empty rule list
        "micro!promote",  # app without a site
        "micro!frobnicate:c",  # unknown rule
        "micro!unroll:i:4:9",  # too many fields
        "micro!un roll:i",  # bad characters
    ],
)
def test_malformed_tokens_rejected(bad):
    with pytest.raises(RewriteError):
        parse_variant(bad)


# ---------------------------------------------------------------------------
# apply_variant over kernel lists
# ---------------------------------------------------------------------------


def test_apply_variant_rewrites_named_kernel_only(micro, tex_micro):
    out = apply_variant([micro, tex_micro], "micro!promote:c")
    assert out[1] is tex_micro  # untouched, not copied
    assert kernel_key(out[0]) != kernel_key(micro)


def test_apply_variant_unknown_kernel_raises(micro):
    with pytest.raises(RewriteError, match="names kernel"):
        apply_variant([micro], "ghost!promote:c")


# ---------------------------------------------------------------------------
# enumeration
# ---------------------------------------------------------------------------


def test_plan_is_deterministic(micro):
    tokens = lambda: [v.token for v in VariantPlan([build_micro(CUDA)]).variants()]
    first = tokens()
    assert first == tokens()
    assert len(first) == len(set(first)), "duplicate variant tokens"


def test_every_planned_variant_is_appliable(micro):
    for v in VariantPlan([micro]).variants():
        out = apply_variant([micro], v.token)
        # normalization is already applied and idempotent
        assert kernel_key(out[0]) == kernel_key(normalize(out[0]))


def test_depth_one_variants_win_under_limit(micro):
    capped = VariantPlan([micro], limit=5).variants()
    assert len(capped) == 5
    assert all(len(v.apps) == 1 for v in capped)


def test_compose_off_yields_singles_only(micro):
    for v in VariantPlan([micro], compose=False).variants():
        assert len(v.apps) == 1


def test_compositions_pair_space_with_loop_rules(micro):
    plan = VariantPlan([micro], limit=256)
    composed = [v for v in plan.variants() if len(v.apps) == 2]
    assert composed, "no compositions generated"
    from repro.kir.rewrite.plan import _LOOP_RULES, _SPACE_RULES

    for v in composed:
        assert v.apps[0].rule in _SPACE_RULES and v.apps[1].rule in _LOOP_RULES
        apply_apps(micro, v.apps)  # still legal


def test_full_unroll_budget_gates_expansion():
    def loopy():
        k = KernelBuilder("loopy", CUDA)
        o = k.buffer("o", Scalar.S32)
        with k.for_("i", 0, 64) as i:
            a = k.let("a", i + 1)
            b = k.let("b", a + a)
            k.store(o, i, b)
        return k.finish()

    tokens = lambda budget: [
        v.token
        for v in VariantPlan([loopy()], full_unroll_budget=budget).variants()
    ]
    assert "loopy!unroll:i:full" not in tokens(128)  # 64 iters x 3 stmts = 192
    assert "loopy!unroll:i:full" in tokens(192)


def test_plan_covers_kernel_set_in_order(micro, tex_micro):
    variants = VariantPlan([micro, tex_micro]).variants()
    names = [v.kernel for v in variants]
    assert names.index("micro") < names.index("texmicro")
    assert any(v.token == "texmicro!untex:a" for v in variants)
