"""Traversal and transform helpers in :mod:`repro.kir.visit`.

The transform paths (``map_expr``/``map_stmts``/``map_stmt_exprs``)
carry the rewrite engine; the identity-vs-equality regression at the
bottom pins the subtle bug class they must never regress into.
"""
from repro.kir.expr import BinOp, Const, Load, BufferRef, Select, SpecialReg, SReg, UnOp, Var
from repro.kir.stmt import Assign, Barrier, For, If, Let, Store, While
from repro.kir.types import Scalar
from repro.kir.visit import (
    any_expr,
    map_expr,
    map_stmt_exprs,
    map_stmts,
    stmt_exprs,
    sub_exprs,
    walk_exprs,
    walk_stmts,
)

S32 = Scalar.S32


def _c(v):
    return Const(v, S32)


def _v(name):
    return Var(name, S32)


BUF = BufferRef("b", S32)


# ---------------------------------------------------------------------------
# read-only walkers
# ---------------------------------------------------------------------------


def test_sub_exprs_per_node_type():
    b = BinOp("add", _c(1), _c(2))
    assert sub_exprs(b) == (b.a, b.b)
    u = UnOp("neg", _c(1))
    assert sub_exprs(u) == (u.a,)
    s = Select(_c(1) < _c(2), _c(3), _c(4))
    assert sub_exprs(s) == (s.pred, s.a, s.b)
    ld = Load(BUF, _c(0))
    assert sub_exprs(ld) == (ld.index,)
    assert sub_exprs(_c(5)) == ()


def test_walk_exprs_is_preorder_and_complete():
    e = BinOp("mul", BinOp("add", _v("x"), _c(1)), UnOp("neg", Load(BUF, _v("i"))))
    kinds = [type(n).__name__ for n in walk_exprs(e)]
    assert kinds == ["BinOp", "BinOp", "Var", "Const", "UnOp", "Load", "Var"]


def test_walk_stmts_descends_all_bodies():
    inner = Store(BUF, _c(0), _c(1))
    body = [
        If(_c(1) < _c(2), (inner,), (Barrier(),)),
        While(_c(0) < _c(1), (Assign(_v("x"), _c(2)),)),
    ]
    assert len(list(walk_stmts(body))) == 5


def test_stmt_exprs_covers_every_direct_position():
    i = _v("i")
    let = Let(i, _c(1))
    assert stmt_exprs(let) == (let.value,)
    st = Store(BUF, _c(0), _c(1))
    assert stmt_exprs(st) == (st.index, st.value)
    f = For(i, _c(0), _c(4), _c(1), ())
    assert stmt_exprs(f) == (f.start, f.stop, f.step)
    assert stmt_exprs(Barrier()) == ()


def test_any_expr_reaches_nested_loads():
    body = [For(_v("i"), _c(0), _c(4), _c(1), (Let(_v("x"), Load(BUF, _v("i"))),))]
    assert any_expr(body, lambda e: isinstance(e, Load))
    assert not any_expr(body, lambda e: isinstance(e, SpecialReg))


# ---------------------------------------------------------------------------
# map_expr
# ---------------------------------------------------------------------------


def test_map_expr_rebuilds_parents_of_replaced_leaf():
    e = BinOp("add", _v("x"), BinOp("mul", _v("x"), _c(2)))
    two = _c(7)
    out = map_expr(e, lambda n: two if isinstance(n, Var) else n)
    assert out is not e
    assert out.a is two and out.b.a is two


def test_map_expr_shares_untouched_subtrees():
    left = BinOp("mul", _v("y"), _c(3))
    e = BinOp("add", left, _v("x"))
    out = map_expr(e, lambda n: _c(0) if isinstance(n, Var) and n.name == "x" else n)
    assert out.a is left  # untouched branch not copied
    assert out.b.value == 0


def test_map_expr_identity_returns_same_object():
    e = Select(_v("p") < _c(1), Load(BUF, _v("i")), _c(0))
    assert map_expr(e, lambda n: n) is e


# ---------------------------------------------------------------------------
# map_stmts
# ---------------------------------------------------------------------------


def _loop(body, var="i", trip=4):
    return For(_v(var), _c(0), _c(trip), _c(1), tuple(body))


def test_map_stmts_splices_lists_and_deletes_none():
    a, b, c = Let(_v("a"), _c(1)), Let(_v("b"), _c(2)), Let(_v("c"), _c(3))

    def fn(s):
        if s is a:
            return [a, Assign(_v("a"), _c(9))]  # splice two for one
        if s is b:
            return None  # delete
        return s

    out = map_stmts([a, b, c], fn)
    assert len(out) == 3
    assert out[0] is a and isinstance(out[1], Assign) and out[2] is c


def test_map_stmts_identity_shares_statements():
    body = [_loop([Let(_v("x"), _c(1))]), Barrier()]
    out = map_stmts(body, lambda s: s)
    assert out[0] is body[0] and out[1] is body[1]


def test_map_stmts_rebuilds_nested_parents():
    target = Let(_v("x"), _c(1))
    replacement = Let(_v("x"), _c(2))
    loop = _loop([target])
    cond = If(_c(0) < _c(1), (loop,), ())
    (out,) = map_stmts([cond], lambda s: replacement if s is target else s)
    assert out is not cond
    assert out.then[0].body[0] is replacement
    assert out.orelse == ()


def test_map_stmts_regression_structurally_equal_replacement_not_dropped():
    # regression: statement dataclasses compare field-wise and expression
    # __eq__ is not structural, so a rebuilt subtree could compare
    # "equal" to the original — change detection must be by identity,
    # or a rewrite nested under If/For is silently discarded
    target = Let(_v("x"), _c(1))
    twin = Let(_v("x"), _c(1))  # structurally identical, distinct object
    cond = If(_c(0) < _c(1), (_loop([target]),), ())
    (out,) = map_stmts([cond], lambda s: twin if s is target else s)
    assert out.then[0].body[0] is twin


def test_map_stmts_rebuilds_while_and_else_branch():
    target = Assign(_v("x"), _c(1))
    new = Assign(_v("x"), _c(5))
    body = [
        Let(_v("x"), _c(0)),
        While(_v("x") < _c(3), (target,)),
        If(_v("x") < _c(1), (), (target,)),
    ]
    out = map_stmts(body, lambda s: new if s is target else s)
    assert out[1].body[0] is new
    assert out[2].orelse[0] is new


# ---------------------------------------------------------------------------
# map_stmt_exprs
# ---------------------------------------------------------------------------


def test_map_stmt_exprs_touches_direct_exprs_only():
    inner = Store(BUF, _v("i"), _v("x"))
    loop = For(_v("i"), _c(0), BinOp("add", _v("n"), _c(0)), _c(1), (inner,))

    out = map_stmt_exprs(
        loop, lambda e: _c(8) if isinstance(e, Var) and e.name == "n" else e
    )
    assert out.stop.a.value == 8
    assert out.body[0] is inner  # nested bodies are not entered


def test_map_stmt_exprs_identity_returns_same_statement():
    s = Store(BUF, _v("i"), BinOp("add", _v("x"), _c(1)))
    assert map_stmt_exprs(s, lambda e: e) is s
    b = Barrier()
    assert map_stmt_exprs(b, lambda e: e) is b


def test_map_stmt_exprs_rebuilds_each_statement_kind():
    v = _v("x")
    repl = lambda e: _c(9) if isinstance(e, Var) and e.name == "x" else e
    assert map_stmt_exprs(Let(_v("y"), v), repl).value.value == 9
    assert map_stmt_exprs(Assign(_v("y"), v), repl).value.value == 9
    assert map_stmt_exprs(If(v < _c(1), (), ()), repl).cond.a.value == 9
    assert map_stmt_exprs(While(v < _c(1), ()), repl).cond.a.value == 9
