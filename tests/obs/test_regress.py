"""Bench drift attribution + the append-only bench trajectory."""
import json

import pytest

from repro.bench import (
    append_history,
    history_record,
    load_history,
    make_payload,
)
from repro.obs import regress as rg
from repro.obs.__main__ import main as obs_main


def payload(**overrides):
    values = {
        "sim.kernel_seconds": 1.0,
        "sim.launches": 100.0,
        "wall.cold_s": 10.0,
    }
    values.update(overrides)
    return make_payload(values, tag="t", size="small", jobs=1)


class TestCompare:
    def test_identical_snapshots_all_ok(self):
        rows = rg.compare(payload(), payload())
        assert {r["status"] for r in rows} == {"ok"}
        assert rg.regressed(rows) == []

    def test_twenty_five_percent_slowdown_regresses(self):
        rows = rg.compare(payload(), payload(**{"sim.kernel_seconds": 1.25}))
        by = {r["metric"]: r for r in rows}
        assert by["sim.kernel_seconds"]["status"] == "regressed"
        assert by["sim.kernel_seconds"]["delta_pct"] == pytest.approx(25.0)
        assert by["sim.launches"]["status"] == "ok"

    def test_improvement_is_not_a_regression(self):
        rows = rg.compare(payload(), payload(**{"sim.kernel_seconds": 0.5}))
        by = {r["metric"]: r for r in rows}
        assert by["sim.kernel_seconds"]["status"] == "improved"
        assert rg.regressed(rows) == []

    def test_drift_within_threshold_ok(self):
        rows = rg.compare(payload(), payload(**{"sim.kernel_seconds": 1.19}))
        assert {r["status"] for r in rows} == {"ok"}

    def test_zero_base_tolerates_float_dust_only(self):
        rows = rg.compare(
            payload(**{"sim.launches": 0.0}),
            payload(**{"sim.launches": 1e-12}),
        )
        by = {r["metric"]: r for r in rows}
        assert by["sim.launches"]["status"] == "ok"
        rows = rg.compare(
            payload(**{"sim.launches": 0.0}),
            payload(**{"sim.launches": 5.0}),
        )
        assert rg.compare(payload(), payload())  # sanity
        by = {r["metric"]: r for r in rows}
        assert by["sim.launches"]["status"] == "regressed"

    def test_missing_metric_flagged(self):
        base, cur = payload(), payload()
        del cur["metrics"]["wall.cold_s"]
        by = {r["metric"]: r for r in rg.compare(base, cur)}
        assert by["wall.cold_s"]["status"] == "missing"

    def test_accepts_both_metric_shapes(self):
        # BENCH payload {..{"value": v}..} vs history record {..: v}
        rows = rg.compare(history_record(payload()), payload())
        assert {r["status"] for r in rows} == {"ok"}


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(payload(), path)
        append_history(payload(**{"sim.kernel_seconds": 2.0}), path)
        records = load_history(path)
        assert len(records) == 2
        assert records[0]["metrics"]["sim.kernel_seconds"] == 1.0
        assert records[1]["metrics"]["sim.kernel_seconds"] == 2.0
        assert records[0]["tag"] == "t" and records[0]["size"] == "small"

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(payload(), path)
        with open(path, "a") as f:
            f.write('{"schema": 1, "torn')
        assert len(load_history(path)) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


class TestCli:
    def test_exit_codes_gate_regressions(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(payload()))
        b.write_text(json.dumps(payload(**{"sim.kernel_seconds": 1.25})))
        assert obs_main(["regress", str(a), str(a)]) == 0
        assert obs_main(["regress", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out

    def test_history_mode_compares_last_two(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        append_history(payload(), path)
        append_history(payload(**{"sim.kernel_seconds": 1.25}), path)
        assert obs_main(["regress", "--history", str(path)]) == 1
        assert obs_main(
            ["regress", "--history", str(path), "--threshold", "0.5"]
        ) == 0

    def test_history_mode_needs_two_records(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(payload(), path)
        with pytest.raises(SystemExit, match="need >= 2"):
            obs_main(["regress", "--history", str(path)])
