"""Critical-path attribution: interval union, shares, top spans, diff."""
import json

import pytest

from repro.obs import critpath as cp

US = 1e6


def ev(name, cat, t0_s, dur_s):
    return {"name": name, "cat": cat, "ph": "X",
            "ts": t0_s * US, "dur": dur_s * US}


def trace():
    return [
        {"name": "process_name", "ph": "M", "args": {"name": "x"}},
        ev("sweep", "engine", 0.0, 10.0),
        # two overlapping worker slices: 2s of wall, not 3s of CPU
        ev("unit-a", "unit", 1.0, 2.0),
        ev("unit-b", "unit", 2.0, 1.0),
        ev("put", "cache", 4.0, 0.5),
        {"name": "fault", "cat": "fault", "ph": "i", "ts": 5.0 * US},
    ]


class TestAnalyze:
    def test_busy_is_union_not_sum(self):
        result = cp.analyze(trace())
        by = {c["cat"]: c for c in result["categories"]}
        assert by["unit"]["busy_s"] == pytest.approx(2.0)
        assert by["unit"]["slices"] == 2
        assert by["engine"]["busy_s"] == pytest.approx(10.0)
        assert by["cache"]["busy_s"] == pytest.approx(0.5)

    def test_wall_and_shares(self):
        result = cp.analyze(trace())
        assert result["wall_s"] == pytest.approx(10.0)
        by = {c["cat"]: c for c in result["categories"]}
        assert by["unit"]["share"] == pytest.approx(0.2)
        assert result["instants"] == 1
        assert result["slices"] == 4

    def test_top_spans_longest_first(self):
        result = cp.analyze(trace(), top=2)
        assert [s["name"] for s in result["top_spans"]] == ["sweep", "unit-a"]

    def test_categories_sorted_by_busy_desc(self):
        cats = [c["cat"] for c in cp.analyze(trace())["categories"]]
        assert cats == ["engine", "unit", "cache"]

    def test_empty_trace(self):
        result = cp.analyze([])
        assert result["wall_s"] == 0.0 and result["categories"] == []


class TestDiff:
    def test_per_category_delta_and_ratio(self):
        base = cp.analyze(trace())
        slower = trace() + [ev("put2", "cache", 6.0, 1.5)]
        rows = cp.diff(base, cp.analyze(slower))
        by = {r["cat"]: r for r in rows}
        assert by["cache"]["delta_s"] == pytest.approx(1.5)
        assert by["cache"]["ratio"] == pytest.approx(4.0)
        assert by["engine"]["delta_s"] == pytest.approx(0.0)

    def test_category_only_on_one_side(self):
        base = cp.analyze([ev("a", "engine", 0, 1)])
        cur = cp.analyze([ev("b", "launch", 0, 2)])
        by = {r["cat"]: r for r in cp.diff(base, cur)}
        assert by["engine"]["current_s"] == 0.0
        assert by["launch"]["ratio"] is None


class TestLoadTrace:
    def test_reads_chrome_trace_document(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": trace()}))
        assert len(cp.load_trace(path)) == len(trace())

    def test_bare_event_list_accepted(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace()))
        assert len(cp.load_trace(path)) == len(trace())

    def test_non_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"not": "a trace"}')
        with pytest.raises(ValueError, match="traceEvents"):
            cp.load_trace(path)

    def test_render_smoke(self):
        text = cp.render(cp.analyze(trace()), label="t")
        assert "critpath[t]" in text and "engine" in text
