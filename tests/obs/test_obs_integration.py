"""End-to-end: a real sweep's artifacts drive the whole obs surface.

Runs actual work units through :class:`SweepExecutor` with a journal
attached (the heartbeat thread starts automatically), then observes the
run purely through what landed on disk — journal, metrics snapshot —
the way ``python -m repro.obs`` would from another process.
"""
import pytest

from repro import exec as rexec
from repro.arch.specs import GTX480
from repro.exec.journal import RunJournal
from repro.obs import RunTracker, find_run
from repro.obs import openmetrics as om
from repro.obs.__main__ import main as obs_main
from repro.telemetry import metrics as tmetrics

UNITS = [
    rexec.make_unit("TranP", "cuda", GTX480, "small"),
    rexec.make_unit("TranP", "opencl", GTX480, "small"),
]


@pytest.fixture
def swept(tmp_path, monkeypatch):
    # a long interval: the thread exists but beats stay quiet, so the
    # journal contents (and this test) are scheduling-independent; the
    # close-time flush still writes the metrics snapshot
    monkeypatch.setenv("REPRO_HEARTBEAT_S", "60")
    j = RunJournal.create(tmp_path, "itest", command="repro.test")
    ex = rexec.SweepExecutor(cache=tmp_path, progress="off", journal=j)
    with rexec.use_executor(ex):
        ex.prewarm(UNITS)
    j.close("complete")
    return tmp_path


def test_status_reflects_the_sweep(swept):
    s = find_run(swept, "itest").status()
    assert s.state == "complete"
    assert s.done == len(UNITS)
    assert s.failed == 0 and s.in_flight == 0
    assert s.progress_pct == 100.0
    assert s.torn_lines == 0


def test_metrics_snapshot_flushed_and_exports(swept):
    doc = tmetrics.load_snapshot_file(tmetrics.snapshot_path(swept, "itest"))
    assert doc["run_id"] == "itest"
    text = om.render(doc["metrics"], run_id="itest")
    assert om.lint(text) == []
    assert "repro_exec_serve_run_total" in text


def test_obs_cli_against_real_artifacts(swept, capsys):
    assert obs_main(["ls", "--cache-dir", str(swept)]) == 0
    assert obs_main(
        ["status", "--latest", "--once", "--cache-dir", str(swept)]
    ) == 0
    assert obs_main(
        ["metrics", "itest", "--check", "--cache-dir", str(swept)]
    ) == 0
    out = capsys.readouterr().out
    assert "itest" in out and "# EOF" in out


def test_status_of_live_heartbeating_run(tmp_path, monkeypatch):
    # fast beats: observe the run as live while the journal is open
    monkeypatch.setenv("REPRO_HEARTBEAT_S", "0.05")
    import time

    j = RunJournal.create(tmp_path, "live", command="repro.test")
    ex = rexec.SweepExecutor(cache=tmp_path, progress="off", journal=j)
    try:
        with rexec.use_executor(ex):
            ex.prewarm(UNITS[:1])
        deadline = time.time() + 5.0
        tracker = RunTracker(j.path)
        while time.time() < deadline:
            s = tracker.poll().status()
            if s.live and s.heartbeat_interval_s == 0.05:
                break
            time.sleep(0.05)
        else:
            pytest.fail("no fresh heartbeat observed within 5s")
        assert s.state == "running"
    finally:
        j.close("complete")
    s = RunTracker(j.path).poll().status()
    assert s.state == "complete" and s.live is None
