"""Journal following + run-status derivation, out of process.

The contract under test: the follower consumes only newline-terminated
lines (a writer's torn tail is invisible until completed), and the
tracker derives the same unit classification as journal replay while
adding what replay doesn't need — progress, ETA, throughput, and
heartbeat-based liveness.
"""
import json

import pytest

from repro.exec.journal import RunJournal, journal_dir
from repro.obs import JournalFollower, RunTracker, find_run, runs
from repro.obs.registry import STALE_BEATS


def write_lines(path, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as f:
        for rec in records:
            f.write(json.dumps(rec) + "\n")


class TestJournalFollower:
    def test_incremental_reads(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_lines(path, [{"t": "run"}, {"t": "plan"}])
        fo = JournalFollower(path)
        assert [r["t"] for r in fo.poll()] == ["run", "plan"]
        assert fo.poll() == []  # nothing new
        write_lines(path, [{"t": "done", "d": "x"}])
        assert [r["t"] for r in fo.poll()] == ["done"]

    def test_torn_tail_not_consumed_until_complete(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_lines(path, [{"t": "run"}])
        with open(path, "a") as f:
            f.write('{"t": "done", "d": "ab')  # mid-append
        fo = JournalFollower(path)
        assert [r["t"] for r in fo.poll()] == ["run"]
        assert fo.torn_lines == 0  # partial tail is pending, not torn
        with open(path, "a") as f:
            f.write('c"}\n')  # the append completes
        assert [r["t"] for r in fo.poll()] == ["done"]

    def test_complete_but_corrupt_line_counted_and_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_lines(path, [{"t": "run"}])
        with open(path, "a") as f:
            f.write("not json at all\n")
        write_lines(path, [{"t": "plan"}])
        fo = JournalFollower(path)
        assert [r["t"] for r in fo.poll()] == ["run", "plan"]
        assert fo.torn_lines == 1

    def test_missing_file_is_empty_not_fatal(self, tmp_path):
        assert JournalFollower(tmp_path / "nope.jsonl").poll() == []


def demo_journal(tmp_path, run_id="demo", hb_unix=None, close=None):
    """A 6-unit run: 2 cached, 1 done, 1 failed, 1 in-flight, 1 queued."""
    path = journal_dir(tmp_path) / f"{run_id}.jsonl"
    recs = [
        {"t": "run", "run_id": run_id, "command": "repro.benchsuite",
         "pid": 4242, "resumed_from": None, "unix": 1000.0},
        {"t": "plan", "units": 6, "todo": 4, "unix": 1000.5},
        {"t": "start", "d": "aaa", "label": "MD/cuda", "unix": 1001.0},
        {"t": "done", "d": "aaa", "source": "run", "unix": 1003.0},
        {"t": "start", "d": "bbb", "label": "FFT/cuda", "unix": 1003.5},
        {"t": "fail", "d": "bbb", "kind": "CRASH", "injected": True,
         "unix": 1004.0},
        {"t": "start", "d": "ccc", "label": "Sobel/opencl", "unix": 1004.5},
    ]
    if hb_unix is not None:
        recs.append({"t": "hb", "unix": hb_unix, "pid": 4242,
                     "interval": 5.0, "done": 1, "failed": 1})
    if close is not None:
        recs.append({"t": "state", "state": close, "unix": 1006.0})
    write_lines(path, recs)
    return path


class TestRunTracker:
    def test_unit_accounting(self, tmp_path):
        s = RunTracker(demo_journal(tmp_path)).poll().status(now=1005.0)
        assert s.run_id == "demo"
        assert s.command == "repro.benchsuite"
        assert s.pid == 4242
        assert (s.planned, s.cached, s.done, s.failed) == (6, 2, 1, 1)
        assert (s.in_flight, s.queued) == (1, 1)
        assert s.progress_pct == pytest.approx(100.0 * 4 / 6)
        assert s.fail_kinds == {"CRASH": 1}
        assert s.injected_failures == 1

    def test_eta_and_throughput_from_record_timestamps(self, tmp_path):
        s = RunTracker(demo_journal(tmp_path)).poll().status(now=1005.0)
        # one completed unit took 2.0s -> 2 remaining units ~ 4.0s
        assert s.eta_s == pytest.approx(4.0)
        # 1 done over the 3.0s between run header and its done record
        assert s.throughput_ups == pytest.approx(1.0 / 3.0)

    def test_done_after_fail_wins(self, tmp_path):
        path = demo_journal(tmp_path)
        write_lines(path, [
            {"t": "start", "d": "bbb", "label": "FFT/cuda", "unix": 1005.0},
            {"t": "done", "d": "bbb", "source": "run", "unix": 1006.0},
        ])
        s = RunTracker(path).poll().status(now=1006.0)
        assert (s.done, s.failed) == (2, 0)
        assert s.fail_kinds == {}

    def test_terminal_state_has_no_liveness(self, tmp_path):
        path = demo_journal(tmp_path, hb_unix=1005.0, close="complete")
        s = RunTracker(path).poll().status(now=99999.0)
        assert s.state == "complete"
        assert s.live is None
        assert s.stale_units == []
        assert s.eta_s is None  # nothing left to estimate for a closed run

    def test_fresh_heartbeat_means_live(self, tmp_path):
        path = demo_journal(tmp_path, hb_unix=1005.0)
        s = RunTracker(path).poll().status(now=1005.0 + 5.0)
        assert s.live is True
        assert s.heartbeat_age_s == pytest.approx(5.0)
        assert s.heartbeat_interval_s == 5.0
        assert s.stale_units == []

    def test_missed_heartbeats_mean_stale(self, tmp_path):
        path = demo_journal(tmp_path, hb_unix=1005.0)
        s = RunTracker(path).poll().status(
            now=1005.0 + STALE_BEATS * 5.0 + 0.1
        )
        assert s.live is False
        # the dead run's in-flight unit is exactly what --resume re-runs
        assert s.stale_units == ["Sobel/opencl"]

    def test_no_heartbeat_falls_back_to_record_age(self, tmp_path):
        path = demo_journal(tmp_path)  # schema-1 style: no hb records
        assert RunTracker(path).poll().status(now=1005.0).live is True
        assert RunTracker(path).poll().status(now=99999.0).live is False

    def test_resumed_plan_replaces_original(self, tmp_path):
        path = demo_journal(tmp_path)
        write_lines(path, [{"t": "plan", "units": 6, "todo": 2,
                            "unix": 1010.0}])
        s = RunTracker(path).poll().status(now=1010.0)
        assert (s.planned, s.cached) == (6, 4)

    def test_tracker_tolerates_real_journal(self, tmp_path):
        j = RunJournal.create(tmp_path, "real", command="repro.test")
        j.record_plan(2, 2)
        j.record_start("aaa", "MD/cuda")
        j.record_done("aaa")
        j.close("interrupted")
        s = RunTracker(j.path).poll().status()
        assert s.state == "interrupted"
        assert (s.done, s.in_flight) == (1, 0)


class TestDiscovery:
    def test_runs_sorted_newest_first(self, tmp_path):
        demo_journal(tmp_path, run_id="older")
        path = demo_journal(tmp_path, run_id="newer")
        write_lines(path, [{"t": "hb", "unix": 2000.0, "interval": 5.0}])
        assert [t.run_id for t in runs(tmp_path)] == ["newer", "older"]

    def test_find_run_latest_and_by_id(self, tmp_path):
        demo_journal(tmp_path, run_id="only")
        assert find_run(tmp_path, None).run_id == "only"
        assert find_run(tmp_path, "latest").run_id == "only"
        assert find_run(tmp_path, "only").run_id == "only"

    def test_find_run_missing_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no run journals"):
            find_run(tmp_path, None)
        demo_journal(tmp_path, run_id="only")
        with pytest.raises(SystemExit, match="no journal for run"):
            find_run(tmp_path, "never-ran")
