"""Golden files: byte-stable ``repro.obs`` output for pinned journals.

``--once`` output must depend only on journal bytes — every timestamp
in these fixtures is pinned, so the rendered status blocks are pinned
too.  A golden diff is a deliberate change to what operators see:
regenerate with

    REPRO_REGOLD=1 python -m pytest tests/obs/test_status_golden.py

and review the diff like any other source change.
"""
import os
import pathlib

from repro.obs.__main__ import main as obs_main
from repro.obs import openmetrics as om

from .test_openmetrics import sample_snapshot
from .test_registry import demo_journal, write_lines

GOLDEN = pathlib.Path(__file__).parent / "golden"


def check_golden(name, got):
    path = GOLDEN / name
    if os.environ.get("REPRO_REGOLD"):
        GOLDEN.mkdir(exist_ok=True)
        path.write_text(got)
    assert path.exists(), f"golden file {name} missing; REPRO_REGOLD=1"
    assert got == path.read_text(), (
        f"{name} changed; if intended, regenerate with REPRO_REGOLD=1 "
        "and review the diff"
    )


def test_status_once_running(tmp_path, capsys):
    demo_journal(tmp_path, hb_unix=1005.0)
    assert obs_main(
        ["status", "demo", "--once", "--cache-dir", str(tmp_path)]
    ) == 0
    check_golden("status_running.txt", capsys.readouterr().out)


def test_status_once_complete(tmp_path, capsys):
    demo_journal(tmp_path, hb_unix=1005.0, close="complete")
    assert obs_main(
        ["status", "demo", "--once", "--cache-dir", str(tmp_path)]
    ) == 0
    check_golden("status_complete.txt", capsys.readouterr().out)


def test_watch_once_matches_status_once(tmp_path, capsys):
    demo_journal(tmp_path, hb_unix=1005.0)
    assert obs_main(
        ["watch", "--latest", "--once", "--cache-dir", str(tmp_path)]
    ) == 0
    check_golden("status_running.txt", capsys.readouterr().out)


def test_status_once_stale_run(tmp_path, capsys):
    # a crashed run: running state, no heartbeat for a long time; the
    # once-snapshot pins now to the last record, so the view is of a
    # *later* observation stamped into the journal by a final hb gap
    path = demo_journal(tmp_path, hb_unix=1005.0)
    write_lines(path, [{"t": "hb", "unix": 1006.0, "pid": 4242,
                        "interval": 0.01, "done": 1, "failed": 1}])
    assert obs_main(
        ["status", "demo", "--once", "--cache-dir", str(tmp_path)]
    ) == 0
    # interval 0.01 but hb age is 0 in --once mode: still live; the
    # stale path needs wall time and is covered in test_registry
    check_golden("status_tiny_interval.txt", capsys.readouterr().out)


def test_ls_table(tmp_path, capsys):
    demo_journal(tmp_path, run_id="run-b", hb_unix=1005.0)
    demo_journal(tmp_path, run_id="run-a", close="complete")
    assert obs_main(["ls", "--cache-dir", str(tmp_path)]) == 0
    check_golden("ls.txt", capsys.readouterr().out)


def test_openmetrics_textfile():
    check_golden(
        "metrics.prom", om.render(sample_snapshot(), run_id="demo")
    )
    assert om.lint(om.render(sample_snapshot(), run_id="demo")) == []
