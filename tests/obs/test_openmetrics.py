"""OpenMetrics rendering: mapping rules, determinism, and the linter."""
from repro.obs import openmetrics as om
from repro.telemetry.metrics import MetricsRegistry


def sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("cache.puts").inc(32)
    g = reg.gauge("pool.pending")
    g.set(7)
    g.set(3)
    h = reg.histogram("unit_s", (0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    return reg.snapshot()


class TestRender:
    def test_counter_gets_total_suffix(self):
        text = om.render(sample_snapshot(), run_id="r1")
        assert "# TYPE repro_cache_puts_total counter" in text
        assert 'repro_cache_puts_total{run_id="r1"} 32' in text

    def test_gauge_renders_value_and_high_water_mark(self):
        text = om.render(sample_snapshot(), run_id="r1")
        assert 'repro_pool_pending{run_id="r1"} 3' in text
        assert 'repro_pool_pending_max{run_id="r1"} 7' in text

    def test_histogram_buckets_cumulative_with_inf_sum_count(self):
        text = om.render(sample_snapshot(), run_id="r1")
        assert 'repro_unit_s_bucket{run_id="r1",le="0.1"} 1' in text
        assert 'repro_unit_s_bucket{run_id="r1",le="1"} 3' in text
        assert 'repro_unit_s_bucket{run_id="r1",le="+Inf"} 4' in text
        assert 'repro_unit_s_sum{run_id="r1"} 6.05' in text
        assert 'repro_unit_s_count{run_id="r1"} 4' in text

    def test_families_sorted_and_terminated(self):
        text = om.render(sample_snapshot(), run_id="r1")
        assert text.endswith("# EOF\n")
        families = [
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert families == sorted(families)

    def test_byte_deterministic(self):
        a = om.render(sample_snapshot(), run_id="r1")
        b = om.render(sample_snapshot(), run_id="r1")
        assert a == b

    def test_metric_name_sanitised(self):
        assert om.metric_name("journal.append_s") == "repro_journal_append_s"
        assert om.metric_name("weird metric!") == "repro_weird_metric_"

    def test_run_id_label_escaped(self):
        text = om.render(sample_snapshot(), run_id='r"1\\x')
        assert 'run_id="r\\"1\\\\x"' in text


class TestLint:
    def test_rendered_output_lints_clean(self):
        assert om.lint(om.render(sample_snapshot(), run_id="r1")) == []

    def test_missing_eof(self):
        text = om.render(sample_snapshot(), run_id="r1")
        problems = om.lint(text.replace("# EOF\n", ""))
        assert any("EOF" in p for p in problems)

    def test_duplicate_family_flagged(self):
        text = (
            "# HELP repro_x_total c\n# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "# HELP repro_x_total c\n# TYPE repro_x_total counter\n"
            "repro_x_total 2\n# EOF"
        )
        assert any("duplicate" in p for p in om.lint(text))

    def test_undeclared_sample_flagged(self):
        text = "repro_orphan_total 1\n# EOF"
        assert any("undeclared" in p for p in om.lint(text))

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'  # shrank: not cumulative
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\nrepro_h_count 5\n# EOF"
        )
        assert any("cumulative" in p for p in om.lint(text))
