"""Sweep lifecycle: exit codes, drain, preflight agreement, degraded mode.

The acceptance test of the PR lives here: for every benchsuite unit the
CLIs can construct on a CUDA and a non-CUDA device, the ABT preflight
verdict (computed before any launch) agrees with what the simulator
actually does at enqueue — ``would_abt`` iff the executed unit comes
back tagged ``failure == "ABT"`` (Table VI).
"""
import signal

import pytest

from repro import exec as rexec
from repro.arch import CELLBE, GTX480
from repro.benchsuite.registry import REAL_WORLD, SYNTHETIC
from repro.errors import ABORT_CODES, FailureKind, SweepInterrupted
from repro.exec import lifecycle
from repro.exec.journal import RunJournal


class TestRunOutcome:
    def test_clean(self):
        assert lifecycle.run_outcome(False, 0) == ("complete", 0)

    def test_failed(self):
        assert lifecycle.run_outcome(False, 3) == ("failed", 1)

    def test_interrupted(self):
        assert lifecycle.run_outcome(True, 0) == ("interrupted", 75)

    def test_interrupted_wins_over_failures(self):
        # an interrupted run is resumable even if some units failed:
        # the rerun retries them, so EX_TEMPFAIL is the honest answer
        assert lifecycle.run_outcome(True, 5) == ("interrupted", 75)

    def test_exit_codes_are_distinct(self):
        codes = {
            lifecycle.EXIT_CLEAN,
            lifecycle.EXIT_FAILED,
            lifecycle.EXIT_INTERRUPTED,
        }
        assert codes == {0, 1, 75}


class _FakeExecutor:
    def __init__(self):
        self.drained_with = None

    def request_drain(self, grace=None):
        self.drained_with = grace


class TestGracefulShutdown:
    def test_first_signal_drains(self):
        ex = _FakeExecutor()
        gs = lifecycle.GracefulShutdown(ex, grace=5.0)
        gs._handler(signal.SIGINT, None)
        assert gs.interrupted and gs.signum == signal.SIGINT
        assert ex.drained_with == 5.0

    def test_second_signal_hard_stops(self):
        gs = lifecycle.GracefulShutdown(_FakeExecutor(), grace=1.0)
        gs._handler(signal.SIGTERM, None)
        with pytest.raises(KeyboardInterrupt, match="hard stop"):
            gs._handler(signal.SIGTERM, None)

    def test_handlers_installed_and_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with lifecycle.GracefulShutdown(_FakeExecutor()) as gs:
            assert signal.getsignal(signal.SIGINT) == gs._handler
            assert signal.getsignal(signal.SIGTERM) == gs._handler
        assert signal.getsignal(signal.SIGINT) == before

    def test_without_executor(self):
        gs = lifecycle.GracefulShutdown(None)
        gs._handler(signal.SIGINT, None)  # no executor: just flags
        assert gs.interrupted


def _suite_units(spec, size="small"):
    """Every unit the benchsuite CLI would run on ``spec`` (its rules:
    every benchmark, both APIs where the device supports CUDA)."""
    apis = ["cuda", "opencl"] if spec.supports_cuda() else ["opencl"]
    return [
        rexec.make_unit(name, api, spec, size)
        for name in (SYNTHETIC + REAL_WORLD)
        for api in apis
    ]


PREFLIGHT_UNITS = _suite_units(CELLBE) + _suite_units(GTX480)


class TestPreflightAgreement:
    """Acceptance: preflight verdicts match simulator ABT outcomes."""

    @pytest.mark.parametrize(
        "unit", PREFLIGHT_UNITS, ids=[u.label() for u in PREFLIGHT_UNITS]
    )
    def test_verdict_matches_launch_outcome(self, unit):
        v = lifecycle.preflight_unit(unit)
        ur = rexec.run_unit(unit)
        actually_abt = ur.bench.failure == FailureKind.ABT.value
        assert v.would_abt == actually_abt, (
            f"{unit.label()}: preflight said would_abt={v.would_abt} "
            f"({v.code}), simulator said failure={ur.bench.failure!r}"
        )
        if v.would_abt:
            assert v.code in ABORT_CODES
            assert v.kind == FailureKind.ABT.value
            assert v.kernel and v.threads > 0

    def test_cell_be_predicts_the_papers_abt_rows(self):
        # Table VI: FFT and DXTC abort on Cell/BE for lack of resources
        abt = {
            u.benchmark
            for u in _suite_units(CELLBE)
            if lifecycle.preflight_unit(u).would_abt
        }
        assert "FFT" in abt and "DXTC" in abt
        assert "MD" not in abt and "Sobel" not in abt

    def test_cuda_on_non_cuda_device_is_not_abt(self):
        u = rexec.make_unit("MD", "cuda", CELLBE, "small")
        v = lifecycle.preflight_unit(u)
        assert not v.would_abt and v.note == "cuda-unsupported"

    def test_verdict_as_dict_round_trips(self):
        u = rexec.make_unit("FFT", "opencl", CELLBE, "small")
        d = lifecycle.preflight_unit(u).as_dict()
        assert d["label"] == u.label() and d["would_abt"] is True

    def test_advisory_results_identical_with_guard_off(self):
        # the guard must not perturb results: same unit, preflight on
        # vs off, byte-identical canonical rows
        u = rexec.make_unit("FFT", "opencl", CELLBE, "small")
        on = rexec.SweepExecutor(preflight=True)
        off = rexec.SweepExecutor(preflight=False)
        on.prewarm([u]); off.prewarm([u])
        assert on.stats.preflight_checked == 1
        assert off.stats.preflight_checked == 0
        a = rexec.canonical_results_json([on.run_unit(u)])
        b = rexec.canonical_results_json([off.run_unit(u)])
        assert a == b

    def test_engine_reports_predicted_abt(self):
        ex = rexec.SweepExecutor(preflight=True)
        ex.prewarm([rexec.make_unit("FFT", "opencl", CELLBE, "small")])
        assert len(ex.stats.preflight) == 1
        row = ex.stats.preflight[0]
        assert row["would_abt"] and row["code"] in ABORT_CODES
        # the sweep summary ships the full verdict rows (Table VI
        # forecast) for --sweep-json consumers
        assert ex.stats.summary()["preflight_abt"] == [row]


UNIT = rexec.make_unit("TranP", "cuda", GTX480, "small")


class TestDrain:
    def test_request_drain_idempotent(self):
        ex = rexec.SweepExecutor()
        assert not ex.draining
        ex.request_drain(10.0)
        deadline = ex._drain_deadline
        ex.request_drain(99999.0)  # first call wins
        assert ex.draining and ex._drain_deadline == deadline

    def test_cold_unit_refused_while_draining(self):
        ex = rexec.SweepExecutor()
        ex.request_drain(0.0)
        with pytest.raises(SweepInterrupted):
            ex.run_unit(UNIT)

    def test_warm_unit_still_served_while_draining(self):
        ex = rexec.SweepExecutor()
        ex.run_unit(UNIT)
        ex.request_drain(0.0)
        ur = ex.run_unit(UNIT)  # memoized: no new admission needed
        assert ur.cached

    def test_prewarm_stops_admission_while_draining(self):
        ex = rexec.SweepExecutor()
        ex.request_drain(0.0)
        ex.prewarm([UNIT])
        assert ex.stats.misses == 0  # nothing was simulated


class TestDegradedMode:
    def test_demotes_at_threshold(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        ex = rexec.SweepExecutor(jobs=4, demote_after=3, journal=j)
        ex._note_pool_incident(1, "a")
        ex._note_pool_incident(1, "b")
        assert not ex.demoted and ex.jobs == 4
        ex._note_pool_incident(1, "c")
        assert ex.demoted and ex.jobs == 1
        assert ex.stats.demoted == {"incidents": 3, "reason": "c"}
        j.close("complete")
        from repro.exec import journal as jmod

        assert jmod.load(j.path).demoted

    def test_demote_is_permanent_and_idempotent(self):
        ex = rexec.SweepExecutor(jobs=4, demote_after=1)
        ex._note_pool_incident(1, "first")
        ex._note_pool_incident(5, "later")
        assert ex.stats.demoted["incidents"] == 1
        assert ex.stats.demoted["reason"] == "first"

    def test_kill_storm_demotes_and_sweep_completes(self):
        # the integration path: repeated worker deaths at --jobs 2 trip
        # the threshold, the run finishes sequentially, every unit is
        # accounted for (killed one as an injected failure)
        units = [
            rexec.make_unit("TranP", api, dev, "small")
            for api in ("cuda", "opencl")
            for dev in (CELLBE, GTX480)
            if not (api == "cuda" and not dev.supports_cuda())
        ]
        target = units[0].label()
        ex = rexec.SweepExecutor(
            jobs=2, demote_after=1, faults=f"kill:{target}"
        )
        ex.prewarm(units)
        assert ex.demoted
        assert ex.stats.summary()["demoted"]["incidents"] >= 1
        fails = {f.label for f in ex.stats.failures}
        assert fails == {target}
        assert all(f.injected for f in ex.stats.failures)
        # the bystanders all completed despite the broken pools
        done = {r.label for r in ex.stats.records}
        assert done == {u.label() for u in units} - fails


class TestOpenJournal:
    def test_resume_without_cache_rejected(self):
        import argparse

        args = argparse.Namespace(resume="auto")
        with pytest.raises(SystemExit, match="--resume needs the result cache"):
            lifecycle.open_journal(args, None, "rid", "repro.test")

    def test_no_cache_no_journal(self):
        import argparse

        args = argparse.Namespace(resume=None)
        assert lifecycle.open_journal(args, None, "rid", "t") == (None, None)

    def test_fresh_journal_created(self, tmp_path):
        import argparse

        args = argparse.Namespace(resume=None)
        j, rep = lifecycle.open_journal(
            args, tmp_path, "rid-1", "repro.test", ["--all"]
        )
        assert rep is None and j.run_id == "rid-1" and j.path.exists()
        j.close("complete")

    def test_resume_chains_run_ids(self, tmp_path):
        import argparse

        first = RunJournal.create(tmp_path, "rid-1")
        first.record_start("aaa", "x")
        first.close("interrupted")
        args = argparse.Namespace(resume="rid-1")
        j, rep = lifecycle.open_journal(args, tmp_path, "rid-2", "repro.test")
        assert rep.run_id == "rid-1" and rep.in_flight == {"aaa"}
        j.close("complete")
        from repro.exec import journal as jmod

        assert jmod.load(j.path).resumed_from == "rid-1"


class TestLifecycleSummary:
    def test_minimal(self):
        out = lifecycle.lifecycle_summary("complete", 0)
        assert out == {
            "state": "complete",
            "exit_code": 0,
            "journal": None,
            "resumed_from": None,
        }

    def test_with_executor(self, tmp_path):
        j = RunJournal.create(tmp_path, "rid")
        ex = rexec.SweepExecutor()
        out = lifecycle.lifecycle_summary(
            "interrupted", 75, journal=j, executor=ex
        )
        assert out["exit_code"] == 75
        assert out["journal"] == str(j.path)
        assert out["preflight_checked"] == 0 and out["demoted"] is None
        j.close("interrupted")
