"""Cache hardening: corrupt entries behave as misses + quarantine.

Satellite: truncated JSON, valid-JSON-wrong-schema, and
schema-version-mismatch entries are each quarantined (not crashes), and
a warm rerun after quarantine is byte-identical to a cold run.
"""
import json

import pytest

from repro import exec as rexec
from repro.arch.specs import GTX480
from repro.errors import CacheCorruptionError
from repro.exec.cache import SCHEMA_VERSION, validate_payload

from .test_engine import canon

UNIT = rexec.make_unit("TranP", "cuda", GTX480, "small")


def _populate(tmp_path):
    """Cold-run UNIT into a disk cache; returns (digest, entry path)."""
    ex = rexec.SweepExecutor(cache=tmp_path)
    ex.run_unit(UNIT)
    digest = ex.digest_of(UNIT)
    path = ex.cache.path_for(digest)
    assert path.exists()
    return digest, path


def _fresh_lookup(tmp_path, digest):
    return rexec.ResultCache(tmp_path).get(digest)


class TestValidatePayload:
    def test_accepts_round_trip(self):
        payload = rexec.result_to_json(rexec.execute(UNIT))
        validate_payload(payload)  # no raise
        assert payload["schema"] == SCHEMA_VERSION

    def test_rejects_non_dict(self):
        with pytest.raises(CacheCorruptionError):
            validate_payload([1, 2, 3])

    def test_rejects_missing_keys(self):
        with pytest.raises(CacheCorruptionError, match="missing keys"):
            validate_payload({"schema": SCHEMA_VERSION, "unit": {}})

    def test_rejects_wrong_schema_version(self):
        payload = rexec.result_to_json(rexec.execute(UNIT))
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(CacheCorruptionError, match="schema version"):
            validate_payload(payload)

    def test_result_from_json_raises_typed_not_keyerror(self):
        with pytest.raises(CacheCorruptionError):
            rexec.result_from_json({"bogus": True})


class TestQuarantine:
    def test_truncated_json_is_miss_plus_quarantine(self, tmp_path, capsys):
        digest, path = _populate(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn write
        assert _fresh_lookup(tmp_path, digest) is None
        qfile = tmp_path / "quarantine" / path.name
        assert qfile.exists()
        assert "unparseable JSON" in qfile.with_suffix(".reason").read_text()
        assert not path.exists()
        assert "quarantined corrupt cache entry" in capsys.readouterr().err

    def test_wrong_shape_json_is_miss_plus_quarantine(self, tmp_path):
        digest, path = _populate(tmp_path)
        path.write_text(json.dumps({"totally": "unrelated"}))
        assert _fresh_lookup(tmp_path, digest) is None
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_schema_version_mismatch_is_miss_plus_quarantine(self, tmp_path):
        digest, path = _populate(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        assert _fresh_lookup(tmp_path, digest) is None
        qdir = tmp_path / "quarantine"
        assert (qdir / path.name).exists()
        assert "schema version" in (qdir / path.name).with_suffix(
            ".reason"
        ).read_text()

    def test_quarantined_entries_do_not_count(self, tmp_path):
        digest, path = _populate(tmp_path)
        cache = rexec.ResultCache(tmp_path)
        assert len(cache) == 1
        path.write_text("{broken")
        assert cache.get(digest) is None
        assert len(cache) == 0

    def test_warm_rerun_after_quarantine_matches_cold(self, tmp_path):
        digest, path = _populate(tmp_path)
        cold = rexec.SweepExecutor(cache=tmp_path).run_unit(UNIT)
        # corrupt the entry; the next executor re-simulates and re-stores
        path.write_text("}{ not json")
        ex = rexec.SweepExecutor(cache=tmp_path)
        refilled = ex.run_unit(UNIT)
        assert not refilled.cached  # served by simulation, not the cache
        assert ex.stats.misses == 1
        assert canon(refilled, wall=False) == canon(cold, wall=False)
        # ... and the re-stored entry now serves byte-identical hits
        warm = rexec.SweepExecutor(cache=tmp_path).run_unit(UNIT)
        assert warm.cached
        assert canon(warm) == canon(refilled)


class TestAtomicWrites:
    """Satellite: cache writes are atomic (tmp + fsync + os.replace)."""

    def test_put_leaves_no_tmp_behind(self, tmp_path):
        digest, path = _populate(tmp_path)
        leftovers = list(tmp_path.glob("[0-9a-f][0-9a-f]/*.tmp.*"))
        assert leftovers == []

    def test_put_cleans_tmp_on_write_failure(self, tmp_path, monkeypatch):
        cache = rexec.ResultCache(tmp_path)
        payload = rexec.result_to_json(rexec.execute(UNIT))
        import os as _os

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(_os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            cache.put("ab" * 32, payload)
        monkeypatch.undo()
        assert list(tmp_path.glob("[0-9a-f][0-9a-f]/*")) == []

    def test_purge_tmp_sweeps_corpses_not_live_writers(self, tmp_path):
        import os as _os

        cache = rexec.ResultCache(tmp_path)
        shard = tmp_path / "ab"
        shard.mkdir()
        corpse = shard / ("x" * 64 + ".tmp.99999999")  # a dead pid's tmp
        corpse.write_text("{torn")
        live = shard / ("y" * 64 + f".tmp.{_os.getpid()}")  # our own
        live.write_text("{in progress")
        assert cache.purge_tmp() == 1
        assert not corpse.exists() and live.exists()
        assert cache.purge_tmp() == 0  # idempotent

    def test_purge_tmp_on_missing_root(self, tmp_path):
        assert rexec.ResultCache(tmp_path / "never-created").purge_tmp() == 0

    def test_purge_tmp_never_touches_entries(self, tmp_path):
        digest, path = _populate(tmp_path)
        cache = rexec.ResultCache(tmp_path)
        cache.purge_tmp()
        assert path.exists()
        assert cache.get(digest) is not None


class TestCanonicalResults:
    """The deterministic results document the resume test compares."""

    def test_canonical_payload_zeroes_only_wall_clocks(self):
        payload = rexec.result_to_json(rexec.execute(UNIT))
        out = rexec.canonical_payload(payload)
        assert out["seconds"] == 0.0
        assert out["profile"]["compile_s"] == 0.0
        # nothing else changed, and the input was not mutated
        redo = json.loads(json.dumps(payload))
        redo["seconds"] = 0.0
        redo["profile"]["compile_s"] = 0.0
        assert out == redo
        assert payload["seconds"] != 0.0 or payload is not out

    def test_canonical_results_json_order_independent(self):
        ex = rexec.SweepExecutor()
        from repro.arch.specs import GTX280

        units = [
            rexec.make_unit("TranP", api, dev, "small")
            for api in ("cuda", "opencl")
            for dev in (GTX280, GTX480)
        ]
        results = [ex.run_unit(u) for u in units]
        a = rexec.canonical_results_json(results)
        b = rexec.canonical_results_json(list(reversed(results)))
        assert a == b
        doc = json.loads(a)
        assert doc["schema"] == SCHEMA_VERSION
        assert len(doc["results"]) == len(units)

    def test_canonical_json_identical_across_independent_runs(self):
        a = rexec.canonical_results_json(
            [rexec.SweepExecutor().run_unit(UNIT)]
        )
        b = rexec.canonical_results_json(
            [rexec.SweepExecutor().run_unit(UNIT)]
        )
        assert a == b
