"""Cache hardening: corrupt entries behave as misses + quarantine.

Satellite: truncated JSON, valid-JSON-wrong-schema, and
schema-version-mismatch entries are each quarantined (not crashes), and
a warm rerun after quarantine is byte-identical to a cold run.
"""
import json

import pytest

from repro import exec as rexec
from repro.arch.specs import GTX480
from repro.errors import CacheCorruptionError
from repro.exec.cache import SCHEMA_VERSION, validate_payload

from .test_engine import canon

UNIT = rexec.make_unit("TranP", "cuda", GTX480, "small")


def _populate(tmp_path):
    """Cold-run UNIT into a disk cache; returns (digest, entry path)."""
    ex = rexec.SweepExecutor(cache=tmp_path)
    ex.run_unit(UNIT)
    digest = ex.digest_of(UNIT)
    path = ex.cache.path_for(digest)
    assert path.exists()
    return digest, path


def _fresh_lookup(tmp_path, digest):
    return rexec.ResultCache(tmp_path).get(digest)


class TestValidatePayload:
    def test_accepts_round_trip(self):
        payload = rexec.result_to_json(rexec.execute(UNIT))
        validate_payload(payload)  # no raise
        assert payload["schema"] == SCHEMA_VERSION

    def test_rejects_non_dict(self):
        with pytest.raises(CacheCorruptionError):
            validate_payload([1, 2, 3])

    def test_rejects_missing_keys(self):
        with pytest.raises(CacheCorruptionError, match="missing keys"):
            validate_payload({"schema": SCHEMA_VERSION, "unit": {}})

    def test_rejects_wrong_schema_version(self):
        payload = rexec.result_to_json(rexec.execute(UNIT))
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(CacheCorruptionError, match="schema version"):
            validate_payload(payload)

    def test_result_from_json_raises_typed_not_keyerror(self):
        with pytest.raises(CacheCorruptionError):
            rexec.result_from_json({"bogus": True})


class TestQuarantine:
    def test_truncated_json_is_miss_plus_quarantine(self, tmp_path, capsys):
        digest, path = _populate(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn write
        assert _fresh_lookup(tmp_path, digest) is None
        qfile = tmp_path / "quarantine" / path.name
        assert qfile.exists()
        assert "unparseable JSON" in qfile.with_suffix(".reason").read_text()
        assert not path.exists()
        assert "quarantined corrupt cache entry" in capsys.readouterr().err

    def test_wrong_shape_json_is_miss_plus_quarantine(self, tmp_path):
        digest, path = _populate(tmp_path)
        path.write_text(json.dumps({"totally": "unrelated"}))
        assert _fresh_lookup(tmp_path, digest) is None
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_schema_version_mismatch_is_miss_plus_quarantine(self, tmp_path):
        digest, path = _populate(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        assert _fresh_lookup(tmp_path, digest) is None
        qdir = tmp_path / "quarantine"
        assert (qdir / path.name).exists()
        assert "schema version" in (qdir / path.name).with_suffix(
            ".reason"
        ).read_text()

    def test_quarantined_entries_do_not_count(self, tmp_path):
        digest, path = _populate(tmp_path)
        cache = rexec.ResultCache(tmp_path)
        assert len(cache) == 1
        path.write_text("{broken")
        assert cache.get(digest) is None
        assert len(cache) == 0

    def test_warm_rerun_after_quarantine_matches_cold(self, tmp_path):
        digest, path = _populate(tmp_path)
        cold = rexec.SweepExecutor(cache=tmp_path).run_unit(UNIT)
        # corrupt the entry; the next executor re-simulates and re-stores
        path.write_text("}{ not json")
        ex = rexec.SweepExecutor(cache=tmp_path)
        refilled = ex.run_unit(UNIT)
        assert not refilled.cached  # served by simulation, not the cache
        assert ex.stats.misses == 1
        assert canon(refilled, wall=False) == canon(cold, wall=False)
        # ... and the re-stored entry now serves byte-identical hits
        warm = rexec.SweepExecutor(cache=tmp_path).run_unit(UNIT)
        assert warm.cached
        assert canon(warm) == canon(refilled)
