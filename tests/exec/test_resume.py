"""Crash/resume integration: the PR's acceptance scenario, end to end.

Three real CLI processes:

1. a cold reference sweep at ``--jobs 4`` writing the canonical results
   JSON;
2. the same sweep in a fresh cache with an injected ``interrupt`` fault
   (the chaos harness SIGINTs the parent mid-sweep) — it must drain,
   exit 75, journal ``interrupted``, and write **no** results document;
3. a ``--resume`` rerun with the fault cleared — it must exit 0,
   re-simulate only what the interrupted run did not finish, and write
   results JSON **byte-identical** to the uninterrupted reference.
"""
import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.exec import journal as jmod

SRC = Path(__file__).resolve().parents[2] / "src"

BENCHES = ["BFS", "Sobel", "TranP", "Reduce", "MD", "SPMV"]
ARGS = [
    *BENCHES,
    "--device", "GTX480", "--api", "both", "--size", "small",
    "--jobs", "4", "--quiet",
]


def run_cli(args, cache, faults=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_CACHE_DIR", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return subprocess.run(
        [sys.executable, "-m", "repro.benchsuite", *args,
         "--cache-dir", str(cache)],
        capture_output=True, text=True, env=env, timeout=540,
    )


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """Run the reference / interrupted / resumed trio once for the module."""
    ref_cache = tmp_path_factory.mktemp("cache-ref")
    cache = tmp_path_factory.mktemp("cache-resume")
    ref_json = ref_cache / "results.json"
    out_json = cache / "results.json"

    reference = run_cli(ARGS + ["--results-json", str(ref_json)], ref_cache)
    interrupted = run_cli(
        ARGS + ["--results-json", str(out_json)], cache,
        faults="interrupt:Sobel/cuda*",
    )
    # checked here because the resumed run (rightly) writes this file
    partial_results_written = out_json.exists()
    resumed = run_cli(
        ARGS + ["--results-json", str(out_json), "--resume"], cache
    )
    journals = {}
    for p in jmod.journal_dir(cache).glob("*.jsonl"):
        journals[p.stem] = jmod.load(p)
    return SimpleNamespace(
        reference=reference, interrupted=interrupted, resumed=resumed,
        ref_json=ref_json, out_json=out_json, cache=cache,
        journals=journals, partial_results_written=partial_results_written,
    )


def _interrupted_replay(s):
    """The interrupted run's journal, identified by its resume hint."""
    # stderr carries "resume with: --resume <run-id>"
    run_id = s.interrupted.stderr.split("--resume")[-1].split()[0]
    return s.journals[run_id]


def _resumed_replay(s):
    first = _interrupted_replay(s)
    (rep,) = [
        r for r in s.journals.values() if r.resumed_from == first.run_id
    ]
    return rep


def test_reference_run_clean(scenario):
    s = scenario
    assert s.reference.returncode == 0, s.reference.stderr
    assert s.ref_json.exists()


def test_interrupted_run_exits_75_and_writes_no_results(scenario):
    s = scenario
    assert s.interrupted.returncode == 75, s.interrupted.stderr
    assert "resume with: --resume" in s.interrupted.stderr
    # a partial document must never masquerade as the sweep's results
    assert not s.partial_results_written


def test_interrupted_journal_state(scenario):
    rep = _interrupted_replay(scenario)
    assert rep.state == "interrupted" and rep.resumable
    assert rep.torn_lines == 0
    assert rep.completed, "the grace period should finish in-flight units"
    # the drain left real work behind for --resume: depending on where
    # the SIGINT lands, unfinished units are either journaled in-flight
    # (submitted, then cancelled) or never admitted at all — both show
    # up as completed < total
    assert len(rep.completed) < 2 * len(BENCHES), (
        "the interrupted run finished everything; nothing to resume"
    )


def test_resumed_run_exits_clean(scenario):
    s = scenario
    assert s.resumed.returncode == 0, s.resumed.stderr
    rep = _resumed_replay(s)
    assert rep.state == "complete" and not rep.resumable


def test_resumed_results_byte_identical_to_cold_run(scenario):
    s = scenario
    assert s.out_json.read_bytes() == s.ref_json.read_bytes()


def test_completed_units_not_resimulated(scenario):
    s = scenario
    first = _interrupted_replay(s)
    second = _resumed_replay(s)
    # every digest the resumed run started had NOT completed before
    started_again = (
        second.completed | second.in_flight | set(second.failed)
    )
    assert not (started_again & first.completed), (
        "resume re-simulated units the interrupted run already finished"
    )
    # and the rerun picked up everything that was left hanging
    assert first.in_flight <= started_again


def test_results_json_is_valid_canonical_doc(scenario):
    s = scenario
    doc = json.loads(s.ref_json.read_text())
    assert doc["results"], "reference run produced no rows"
    for row in doc["results"]:
        assert row["seconds"] == 0.0  # wall clocks are canonicalized away
