"""Workdir garbage collection: compaction, corpses, quarantine aging.

The invariant that matters: gc only touches provably dead artifacts.
A terminal journal compacts to the identical replay classification; a
running/interrupted journal — whose in-flight set resume needs — is
never rewritten.
"""
import json
import os
import time

from repro.exec import journal as jmod
from repro.exec.__main__ import DEFAULT_MAX_AGE_DAYS, gc_run, main
from repro.exec.journal import RunJournal


def make_journal(tmp_path, run_id, state=None):
    j = RunJournal.create(tmp_path, run_id, command="repro.test")
    j.record_plan(2, 2)
    j.record_start("aaa", "MD/cuda")
    j.record_done("aaa")
    j.record_start("bbb", "FFT/cuda")
    j.record_heartbeat(5.0, done=1, failed=0)
    if state is not None:
        j.record_done("bbb")
        j.close(state)
    return j


class TestJournalCompaction:
    def test_terminal_journal_drops_start_and_hb(self, tmp_path):
        j = make_journal(tmp_path, "fin", state="complete")
        before = [json.loads(x) for x in j.path.read_text().splitlines()]
        assert {"start", "hb"} <= {r["t"] for r in before}
        report = gc_run(tmp_path)
        assert report["journals_compacted"] == 1
        assert report["journal_bytes"] > 0
        after = [json.loads(x) for x in j.path.read_text().splitlines()]
        assert {r["t"] for r in after} == {"run", "plan", "done", "state"}

    def test_compacted_journal_replays_identically(self, tmp_path):
        j = make_journal(tmp_path, "fin", state="complete")
        before = jmod.load(j.path)
        gc_run(tmp_path)
        after = jmod.load(j.path)
        assert after.state == before.state == "complete"
        assert after.completed == before.completed
        assert after.failed == before.failed
        # in-flight is vacuous for a terminal run — and stays empty
        assert after.in_flight == set()

    def test_running_journal_untouched(self, tmp_path):
        j = make_journal(tmp_path, "live")  # no state record: maybe alive
        raw = j.path.read_text()
        report = gc_run(tmp_path)
        assert report["journals_compacted"] == 0
        assert j.path.read_text() == raw
        assert jmod.load(j.path).in_flight == {"bbb"}

    def test_interrupted_journal_compacts_but_stays_resumable(self, tmp_path):
        j = RunJournal.create(tmp_path, "intr", command="repro.test")
        j.record_start("aaa", "MD/cuda")
        j.record_done("aaa")
        j.close("interrupted")
        gc_run(tmp_path)
        rep = jmod.load(j.path)
        assert rep.state == "interrupted" and rep.resumable
        assert rep.completed == {"aaa"}

    def test_already_compact_journal_is_a_noop(self, tmp_path):
        j = make_journal(tmp_path, "fin", state="complete")
        gc_run(tmp_path)
        assert gc_run(tmp_path)["journals_compacted"] == 0


class TestCorpsesAndQuarantine:
    def test_tmp_corpses_swept_across_dirs(self, tmp_path):
        make_journal(tmp_path, "fin", state="complete")
        shard = tmp_path / "ab"
        shard.mkdir()
        (shard / "deadbeef.json.tmp.99999").write_text("x" * 64)
        (tmp_path / "metrics").mkdir(exist_ok=True)
        (tmp_path / "metrics" / "run.tmp.99999").write_text("y" * 32)
        report = gc_run(tmp_path)
        assert report["tmp_removed"] == 2
        assert report["tmp_bytes"] == 96
        assert not (shard / "deadbeef.json.tmp.99999").exists()

    def test_own_pid_tmp_files_spared(self, tmp_path):
        shard = tmp_path / "ab"
        shard.mkdir()
        live = shard / f"entry.json.tmp.{os.getpid()}"
        live.write_text("mid-write")
        assert gc_run(tmp_path)["tmp_removed"] == 0
        assert live.exists()

    def test_quarantine_aged_out_with_sidecar(self, tmp_path):
        q = tmp_path / "quarantine"
        q.mkdir()
        old = q / "bad.json"
        old.write_text("{}")
        sidecar = q / "bad.reason"
        sidecar.write_text("torn\n")
        fresh = q / "new.json"
        fresh.write_text("{}")
        past = time.time() - (DEFAULT_MAX_AGE_DAYS + 1) * 86400
        os.utime(old, (past, past))
        os.utime(sidecar, (past, past))
        report = gc_run(tmp_path)
        assert report["quarantine_removed"] == 2
        assert not old.exists() and not sidecar.exists()
        assert fresh.exists()

    def test_max_age_zero_prunes_everything(self, tmp_path):
        q = tmp_path / "quarantine"
        q.mkdir()
        (q / "bad.json").write_text("{}")
        assert gc_run(tmp_path, max_age_days=0.0, now=time.time() + 1)[
            "quarantine_removed"
        ] == 1


class TestMetricsSnapshots:
    def make_snapshot(self, tmp_path, run_id):
        mdir = tmp_path / "metrics"
        mdir.mkdir(exist_ok=True)
        snap = mdir / f"{run_id}.json"
        snap.write_text('{"metrics": {}}')
        return snap

    def test_terminal_run_snapshot_pruned(self, tmp_path):
        make_journal(tmp_path, "fin", state="complete")
        snap = self.make_snapshot(tmp_path, "fin")
        report = gc_run(tmp_path)
        assert report["metrics_removed"] == 1
        assert report["metrics_bytes"] > 0
        assert report["bytes_reclaimed"] >= report["metrics_bytes"]
        assert not snap.exists()

    def test_live_run_snapshot_spared(self, tmp_path):
        # no terminal state record: the run may still be watched live
        make_journal(tmp_path, "live")
        snap = self.make_snapshot(tmp_path, "live")
        report = gc_run(tmp_path)
        assert report["metrics_removed"] == 0
        assert snap.exists()

    def test_journalless_snapshot_ages_out(self, tmp_path):
        # e.g. the serve daemon's liveness snapshot after the daemon is
        # long gone (its journal-free run-id never had a journal)
        snap = self.make_snapshot(tmp_path, "serve")
        past = time.time() - (DEFAULT_MAX_AGE_DAYS + 1) * 86400
        os.utime(snap, (past, past))
        report = gc_run(tmp_path)
        assert report["metrics_removed"] == 1
        assert not snap.exists()

    def test_journalless_fresh_snapshot_spared(self, tmp_path):
        # a live daemon refreshes its snapshot's mtime every heartbeat
        snap = self.make_snapshot(tmp_path, "serve")
        report = gc_run(tmp_path)
        assert report["metrics_removed"] == 0
        assert snap.exists()

    def test_dry_run_spares_snapshots_but_reports(self, tmp_path):
        make_journal(tmp_path, "fin", state="complete")
        snap = self.make_snapshot(tmp_path, "fin")
        report = gc_run(tmp_path, dry_run=True)
        assert report["metrics_removed"] == 1
        assert snap.exists()

    def test_serve_tmp_corpses_swept(self, tmp_path):
        sdir = tmp_path / "serve" / "err"
        sdir.mkdir(parents=True)
        (tmp_path / "serve" / "endpoint.tmp.99999").write_text("x")
        (sdir / "7.tmp.99999").write_text("y")
        report = gc_run(tmp_path)
        assert report["tmp_removed"] == 2
        assert not (sdir / "7.tmp.99999").exists()


class TestDryRunAndCli:
    def test_dry_run_reports_without_deleting(self, tmp_path):
        j = make_journal(tmp_path, "fin", state="complete")
        raw = j.path.read_text()
        shard = tmp_path / "ab"
        shard.mkdir()
        (shard / "x.json.tmp.99999").write_text("x")
        report = gc_run(tmp_path, dry_run=True)
        assert report["bytes_reclaimed"] > 0
        assert j.path.read_text() == raw
        assert (shard / "x.json.tmp.99999").exists()

    def test_cli_json_report(self, tmp_path, capsys):
        make_journal(tmp_path, "fin", state="complete")
        assert main(["gc", "--cache-dir", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["journals_compacted"] == 1
        assert report["bytes_reclaimed"] == report["journal_bytes"]

    def test_cli_missing_dir_is_clean(self, tmp_path, capsys):
        assert main(["gc", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "reclaimed:  0 bytes" in capsys.readouterr().out
