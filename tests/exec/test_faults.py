"""Chaos tests: repro.faults drives the engine's fault tolerance.

The acceptance scenario: with injected worker exceptions, worker kills,
hangs, transients, and cache corruption, the sweep always completes;
exactly the injected units are recorded as FailedUnits with the right
FailureKinds; everything else is byte-identical to a fault-free run.
"""
import json

import pytest

from repro import exec as rexec
from repro import faults
from repro.arch.specs import GTX280, GTX480
from repro.errors import FailureKind, TransientError, UnitFailed, WorkerCrash

from .test_engine import canon

UNITS = [
    rexec.make_unit("TranP", api, dev, "small")
    for api in ("cuda", "opencl")
    for dev in (GTX280, GTX480)
]
LABELS = [u.label() for u in UNITS]


def label_of(fail):
    return fail.label


class TestInjectorPlans:
    def test_compact_parse(self):
        inj = faults.from_spec("seed=7;raise:MD/opencl*;hang:*BFS*:0.5:1:2.5")
        assert inj.seed == 7
        assert inj.rules[0] == faults.FaultRule(kind="raise", pattern="MD/opencl*")
        assert inj.rules[1].prob == 0.5 and inj.rules[1].seconds == 2.5

    def test_json_parse(self):
        inj = faults.from_spec(
            '{"seed": 3, "rules": [{"kind": "transient", "pattern": "x*", '
            '"attempts": 2}]}'
        )
        assert inj.seed == 3 and inj.rules[0].attempts == 2

    def test_empty_and_none(self):
        assert faults.from_spec(None) is None
        assert faults.from_spec("") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.from_spec("explode:*")

    def test_env_plumbing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise:nothing-matches-this*")
        ex = rexec.SweepExecutor()
        assert ex.faults is not None
        assert ex.faults.rules[0].kind == "raise"
        monkeypatch.delenv("REPRO_FAULTS")
        assert rexec.SweepExecutor().faults is None

    def test_rolls_are_deterministic(self):
        inj = faults.FaultInjector(
            seed=1, rules=(faults.FaultRule("raise", "*", prob=0.5),)
        )
        picks = [bool(inj.planned(l)) for l in LABELS]
        assert picks == [bool(inj.planned(l)) for l in LABELS]  # stable
        other = faults.FaultInjector(
            seed=2, rules=(faults.FaultRule("raise", "*", prob=0.5),)
        )
        # a different seed reshuffles (over enough labels)
        many = [f"unit-{i}" for i in range(64)]
        assert [bool(inj.planned(l)) for l in many] != [
            bool(other.planned(l)) for l in many
        ]

    def test_prob_bounds(self):
        always = faults.FaultInjector(rules=(faults.FaultRule("raise", "*", prob=1.0),))
        never = faults.FaultInjector(rules=(faults.FaultRule("raise", "*", prob=0.0),))
        assert all(always.planned(l) for l in LABELS)
        assert not any(never.planned(l) for l in LABELS)


def fault_free():
    """Reference results with no injection, canonicalized."""
    ex = rexec.SweepExecutor()
    return {u: canon(ex.run_unit(u), wall=False) for u in UNITS}


class TestSequentialChaos:
    def test_injected_raise_quarantines_only_that_unit(self):
        target = LABELS[0]
        ex = rexec.SweepExecutor(faults=f"raise:{target}")
        assert ex.prewarm(UNITS) == len(UNITS)
        # exactly the injected unit failed, with attribution
        assert [label_of(f) for f in ex.stats.failures] == [target]
        fail = ex.stats.failures[0]
        assert fail.kind == FailureKind.ERROR.value
        assert fail.injected and fail.attempts == 1
        assert "injected fault" in fail.error
        assert ex.stats.unexpected_failures() == []
        # the survivors are byte-identical to a fault-free run
        reference = fault_free()
        for u in UNITS[1:]:
            assert canon(ex.run_unit(u), wall=False) == reference[u]
        # the poisoned unit raises instead of re-executing
        with pytest.raises(UnitFailed, match="ERROR"):
            ex.run_unit(UNITS[0])
        # ... and a repeat prewarm does not retry it
        assert ex.prewarm(UNITS) == 0
        assert len(ex.stats.failures) == 1

    def test_transient_succeeds_within_retry_budget(self):
        target = LABELS[0]
        ex = rexec.SweepExecutor(
            faults=f"transient:{target}:1.0:2", retries=2, backoff=0.001
        )
        res = ex.run_unit(UNITS[0])
        assert ex.stats.failures == []
        assert canon(res, wall=False) == fault_free()[UNITS[0]]

    def test_transient_beyond_budget_is_terminal(self):
        target = LABELS[0]
        ex = rexec.SweepExecutor(
            faults=f"transient:{target}:1.0:9", retries=1, backoff=0.001
        )
        with pytest.raises(UnitFailed, match="TRANSIENT"):
            ex.run_unit(UNITS[0])
        fail = ex.stats.failures[0]
        assert fail.kind == FailureKind.TRANSIENT.value
        assert fail.attempts == 2  # first try + one retry
        assert fail.injected

    def test_hang_is_cut_off_by_timeout(self):
        target = LABELS[0]
        ex = rexec.SweepExecutor(
            faults=f"hang:{target}:1.0:1:30", timeout=0.5, retries=0
        )
        with pytest.raises(UnitFailed, match="TIMEOUT"):
            ex.run_unit(UNITS[0])
        fail = ex.stats.failures[0]
        assert fail.kind == FailureKind.TIMEOUT.value
        assert fail.injected  # the planned hang is what tripped the alarm
        assert "--timeout=0.5s" in fail.error
        # the timer is disarmed: later units run fine however long they take
        assert canon(ex.run_unit(UNITS[1]), wall=False) == fault_free()[UNITS[1]]

    def test_kill_in_main_process_is_a_crash_not_an_exit(self):
        # sequential path: the injector must never os._exit the caller
        target = LABELS[0]
        ex = rexec.SweepExecutor(faults=f"kill:{target}")
        assert ex.prewarm(UNITS) == len(UNITS)
        fail = ex.stats.failures[0]
        assert label_of(fail) == target
        assert fail.kind == FailureKind.CRASH.value and fail.injected

    def test_run_units_returns_partial_results(self):
        ex = rexec.SweepExecutor(faults=f"raise:{LABELS[2]}")
        out = ex.run_units(UNITS)
        assert len(out) == len(UNITS) - 1
        assert [label_of(f) for f in ex.stats.failures] == [LABELS[2]]

    def test_summary_includes_failures(self):
        ex = rexec.SweepExecutor(faults=f"raise:{LABELS[0]}")
        ex.run_units(UNITS)
        summary = ex.stats.summary()
        assert len(summary["failures"]) == 1
        assert summary["failures"][0]["label"] == LABELS[0]
        assert summary["failures"][0]["injected"] is True
        json.dumps(summary)  # still the CI artifact


class TestParallelChaos:
    def test_worker_exception_does_not_abort_round(self):
        # satellite (a): one bad future must not drop the others' stats
        target = LABELS[1]
        ex = rexec.SweepExecutor(jobs=4, faults=f"raise:{target}")
        ex.prewarm(UNITS)
        assert [label_of(f) for f in ex.stats.failures] == [target]
        assert ex.stats.misses == len(UNITS) - 1  # everyone else completed
        reference = fault_free()
        for u in UNITS:
            if u.label() != target:
                assert canon(ex.run_unit(u), wall=False) == reference[u]

    def test_worker_kill_is_isolated_from_bystanders(self):
        # a worker dying breaks the shared pool; probing must separate
        # the poison from the collateral and keep every other result
        target = LABELS[0]
        ex = rexec.SweepExecutor(jobs=2, faults=f"kill:{target}")
        ex.prewarm(UNITS)
        kinds = {label_of(f): f.kind for f in ex.stats.failures}
        assert kinds == {target: FailureKind.CRASH.value}
        assert ex.stats.failures[0].injected
        reference = fault_free()
        for u in UNITS[1:]:
            assert canon(ex.run_unit(u), wall=False) == reference[u]
        with pytest.raises(UnitFailed, match="CRASH"):
            ex.run_unit(UNITS[0])

    def test_worker_hang_cut_off_in_worker(self):
        target = LABELS[3]
        # the timeout must be generous enough that a *bystander* unit
        # (~0.05s of simulation) never trips it under CI load, while the
        # 30s hang still overshoots it by a mile
        ex = rexec.SweepExecutor(
            jobs=2, faults=f"hang:{target}:1.0:1:30", timeout=1.0
        )
        ex.prewarm(UNITS)
        kinds = {label_of(f): f.kind for f in ex.stats.failures}
        assert kinds == {target: FailureKind.TIMEOUT.value}
        assert ex.stats.failures[0].injected
        assert ex.stats.misses == len(UNITS) - 1

    def test_parallel_transient_retries_to_success(self):
        target = LABELS[0]
        ex = rexec.SweepExecutor(
            jobs=2, faults=f"transient:{target}:1.0:1", retries=2, backoff=0.001
        )
        ex.prewarm(UNITS)
        assert ex.stats.failures == []
        assert ex.stats.misses == len(UNITS)
        assert canon(ex.run_unit(UNITS[0]), wall=False) == fault_free()[UNITS[0]]


class TestCacheCorruptionInjection:
    def test_corrupt_rule_torn_writes_are_quarantined(self, tmp_path):
        target = LABELS[0]
        ex = rexec.SweepExecutor(cache=tmp_path, faults=f"corrupt:{target}")
        cold = ex.run_unit(UNITS[0])
        assert ex.stats.failures == []  # corruption is not an exec failure
        # a fresh executor hits the torn entry: quarantined, re-simulated
        ex2 = rexec.SweepExecutor(cache=tmp_path)
        warm = ex2.run_unit(UNITS[0])
        assert not warm.cached
        assert (tmp_path / "quarantine").exists()
        assert canon(warm, wall=False) == canon(cold, wall=False)


class TestFullChaosAcceptance:
    """The ISSUE acceptance scenario, end to end on one executor."""

    def test_mixed_faults_complete_with_exact_report(self, tmp_path):
        plan = ";".join(
            [
                f"raise:{LABELS[0]}",  # worker exception
                f"kill:{LABELS[1]}",  # worker death
                f"corrupt:{LABELS[2]}",  # torn cache write
            ]
        )
        reference = fault_free()
        ex = rexec.SweepExecutor(jobs=2, cache=tmp_path, faults=plan)
        ex.prewarm(UNITS)
        report = {label_of(f): f for f in ex.stats.failures}
        assert set(report) == {LABELS[0], LABELS[1]}
        assert report[LABELS[0]].kind == FailureKind.ERROR.value
        assert report[LABELS[1]].kind == FailureKind.CRASH.value
        assert all(f.injected for f in ex.stats.failures)
        assert ex.stats.unexpected_failures() == []
        # every non-injected unit: byte-identical to the fault-free run
        for u in UNITS[2:]:
            assert canon(ex.run_unit(u), wall=False) == reference[u]


class TestInterruptFault:
    """Satellite: the `interrupt` chaos rule SIGINTs the sweep driver."""

    def test_parses(self):
        inj = faults.from_spec("seed=1;interrupt:Sobel/cuda*")
        assert inj.rules[0].kind == "interrupt"

    def test_fires_sigint_at_self_in_process(self, monkeypatch):
        import os
        import signal as _signal

        sent = []
        monkeypatch.setattr(
            "repro.faults.injector.os.kill",
            lambda pid, sig: sent.append((pid, sig)),
        )
        inj = faults.from_spec(f"interrupt:{LABELS[0]}")
        inj.fire(LABELS[0], attempt=1)
        assert sent == [(os.getpid(), _signal.SIGINT)]

    def test_only_leading_attempts_fire(self, monkeypatch):
        sent = []
        monkeypatch.setattr(
            "repro.faults.injector.os.kill",
            lambda pid, sig: sent.append(sig),
        )
        inj = faults.from_spec(f"interrupt:{LABELS[0]}")
        inj.fire(LABELS[0], attempt=2)  # the resumed run must not re-fire
        assert sent == []

    def test_targets_parent_from_pool_worker(self, monkeypatch):
        import os

        sent = []
        monkeypatch.setattr(
            "repro.faults.injector.os.kill",
            lambda pid, sig: sent.append(pid),
        )
        monkeypatch.setattr("repro.faults.injector.in_pool_worker", lambda: True)
        inj = faults.from_spec(f"interrupt:{LABELS[0]}")
        inj.fire(LABELS[0], attempt=1)
        assert sent == [os.getppid()]
