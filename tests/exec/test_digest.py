"""Property tests for the sweep cache key (ISSUE 2 satellite).

(a) identical units produce identical digests (insensitive to option
    dict ordering and to repeated construction);
(b) any perturbation of the kernel source, a DeviceSpec field, or the
    launch geometry/config changes the digest;
(c) byte-identity of cached results is covered in test_engine.py.
"""
import dataclasses

from hypothesis import given, settings, strategies as st

from repro import exec as rexec
from repro.arch.specs import GTX280, GTX480, device_by_name
from repro.exec.unit import digest_of_fingerprint, unit_fingerprint

BENCHMARKS = ["TranP", "Reduce", "Sobel", "MD"]
DEVICES = ["GTX280", "GTX480"]
APIS = ["cuda", "opencl"]
SIZES = ["small", "default"]

#: option overrides that are valid for every benchmark above (unknown
#: keys pass through options_for untouched, so any pair is usable)
OPTION_POOL = [("use_texture", False), ("use_constant", False), ("wg", 128)]


units_st = st.builds(
    rexec.make_unit,
    st.sampled_from(BENCHMARKS),
    st.sampled_from(APIS),
    st.sampled_from(DEVICES),
    st.sampled_from(SIZES),
    st.dictionaries(
        st.sampled_from([k for k, _ in OPTION_POOL]),
        st.sampled_from([False, True, 64, 128]),
        max_size=2,
    ),
)


@settings(max_examples=30, deadline=None)
@given(units_st)
def test_identical_units_identical_digests(unit):
    assert rexec.unit_digest(unit) == rexec.unit_digest(unit)


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(BENCHMARKS),
    st.sampled_from(APIS),
    st.sampled_from(DEVICES),
    st.permutations(OPTION_POOL),
)
def test_digest_insensitive_to_option_ordering(name, api, device, perm):
    a = rexec.make_unit(name, api, device, "small", dict(perm))
    b = rexec.make_unit(name, api, device, "small", dict(OPTION_POOL))
    assert a == b
    assert rexec.unit_digest(a) == rexec.unit_digest(b)


@settings(max_examples=40, deadline=None)
@given(
    units_st,
    st.sampled_from(["api", "size", "device", "benchmark", "option", "version"]),
)
def test_any_config_perturbation_changes_digest(unit, what):
    base = rexec.unit_digest(unit)
    if what == "api":
        other = dataclasses.replace(
            unit, api="opencl" if unit.api == "cuda" else "cuda"
        )
    elif what == "size":
        other = dataclasses.replace(
            unit, size="default" if unit.size == "small" else "small"
        )
    elif what == "device":
        other = dataclasses.replace(
            unit, device="GTX280" if unit.device == "GTX480" else "GTX480"
        )
    elif what == "benchmark":
        pool = [b for b in BENCHMARKS if b != unit.benchmark]
        other = dataclasses.replace(unit, benchmark=pool[0])
    elif what == "option":
        opts = dict(unit.options)
        opts["wg"] = 512 if opts.get("wg") != 512 else 256
        other = dataclasses.replace(
            unit, options=tuple(sorted(opts.items()))
        )
    else:  # version
        assert rexec.unit_digest(unit, version="other") != base
        return
    assert rexec.unit_digest(other) != base


@settings(max_examples=25, deadline=None)
@given(
    units_st,
    st.sampled_from(
        ["warp_width", "compute_units", "core_clock_mhz", "line_bytes", "l2_bytes"]
    ),
)
def test_any_spec_field_perturbation_changes_digest(unit, field):
    spec = device_by_name(unit.device)
    bumped = dataclasses.replace(spec, **{field: getattr(spec, field) + 1})
    assert rexec.unit_digest(unit) != rexec.unit_digest(unit, spec=bumped)


def test_kernel_source_is_part_of_the_key():
    # same benchmark/geometry, option only changes the generated kernel
    with_c = rexec.make_unit("Sobel", "cuda", GTX280, "small", {"use_constant": True})
    wo_c = rexec.make_unit("Sobel", "cuda", GTX280, "small", {"use_constant": False})
    fp_a, fp_b = unit_fingerprint(with_c), unit_fingerprint(wo_c)
    assert fp_a["kernels"] != fp_b["kernels"]
    # and digest is sensitive to the source text alone, all else equal
    mutated = dict(fp_a)
    mutated["kernels"] = [s + "\n// perturbed" for s in fp_a["kernels"]]
    assert digest_of_fingerprint(mutated) != digest_of_fingerprint(fp_a)


def test_timing_calibration_is_part_of_the_key():
    unit = rexec.make_unit("TranP", "cuda", GTX480, "small")
    spec = GTX480
    slower = dataclasses.replace(
        spec, timing=dataclasses.replace(spec.timing, dram_efficiency=0.5)
    )
    assert rexec.unit_digest(unit) != rexec.unit_digest(unit, spec=slower)
