"""End-to-end determinism of the sweep CLI (ISSUE 2 satellite).

The same experiment run at ``--jobs 1`` and ``--jobs 4`` must render
byte-identical tables, and a warm-cache rerun must serve every unit
from disk while rendering the same bytes.
"""
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run_cli(args, cache_dir, sweep_json=None):
    cmd = [sys.executable, "-m", "repro.experiments", *args,
           "--cache-dir", str(cache_dir)]
    if sweep_json is not None:
        cmd += ["--sweep-json", str(sweep_json)]
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_CACHE_DIR", None)
    return subprocess.run(
        cmd, cwd=REPO, env=env, capture_output=True, text=True, timeout=600
    )


def test_jobs_1_vs_4_and_warm_rerun_byte_identical(tmp_path):
    base = ["fig1", "fig2", "--size", "small"]
    seq = run_cli(base + ["--jobs", "1"], tmp_path / "seq",
                  sweep_json=tmp_path / "seq.json")
    par = run_cli(base + ["--jobs", "4"], tmp_path / "par",
                  sweep_json=tmp_path / "par.json")
    assert seq.returncode == 0, seq.stderr
    assert par.returncode == 0, par.stderr
    assert seq.stdout == par.stdout
    assert seq.stdout.count("[PASS]") > 0

    # a cold run simulates every unique unit during prewarm; the
    # experiments' own requests are then served from the memo table
    cold = json.loads((tmp_path / "seq.json").read_text())
    assert cold["misses"] > 0
    assert all(u["source"] in ("run", "mem") for u in cold["units"])

    # warm rerun over the sequential run's cache: same bytes, zero misses
    warm = run_cli(base + ["--jobs", "1"], tmp_path / "seq",
                   sweep_json=tmp_path / "warm.json")
    assert warm.returncode == 0, warm.stderr
    assert warm.stdout == seq.stdout
    stats = json.loads((tmp_path / "warm.json").read_text())
    assert stats["misses"] == 0
    assert stats["hits"] == cold["hits"]
    assert "0 simulated" in warm.stderr


def test_sweep_summary_goes_to_stderr_not_stdout(tmp_path):
    res = run_cli(["fig1", "--size", "small", "--jobs", "1"], tmp_path)
    assert res.returncode == 0, res.stderr
    assert "sweep:" in res.stderr
    assert "sweep:" not in res.stdout
    # per-experiment wall timings are stderr-only too
    assert "(fig1:" in res.stderr
    assert "(fig1:" not in res.stdout


def test_results_json_byte_identical_across_sim_modes():
    """Cold, per-block, and memoized simulation render identical bytes.

    The cold-path optimizations (block-batched stepping, launch
    memoization) are licensed by this invariant: the canonical unit
    payload must not depend on REPRO_SIM_BATCH or REPRO_SIM_MEMO.
    """
    import json as _json

    from repro import exec as rexec
    from repro.arch.specs import CELLBE, GTX280, GTX480

    units = [
        rexec.make_unit("TranP", "cuda", GTX480, "small"),
        rexec.make_unit("TranP", "opencl", GTX280, "small"),
        rexec.make_unit("MxM", "opencl", CELLBE, "small"),
    ]

    def canon_all(env):
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            ex = rexec.SweepExecutor()
            out = []
            for u in units:
                payload = rexec.result_to_json(ex.run_unit(u))
                payload["seconds"] = 0.0
                if payload.get("profile"):
                    payload["profile"]["compile_s"] = 0.0
                out.append(_json.dumps(payload, sort_keys=True))
            return out
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v

    batched = canon_all({"REPRO_SIM_BATCH": "", "REPRO_SIM_MEMO": "1"})
    per_block = canon_all({"REPRO_SIM_BATCH": "1", "REPRO_SIM_MEMO": "1"})
    no_memo = canon_all({"REPRO_SIM_BATCH": "", "REPRO_SIM_MEMO": "0"})
    assert batched == per_block == no_memo
