"""SweepExecutor behavior: memoization, disk cache, parallel fan-out.

Includes satellite (c): a cached result is byte-identical to a fresh
simulation.
"""
import json

import pytest

from repro import exec as rexec
from repro.arch.specs import GTX280, GTX480
from repro.exec import engine as engine_mod


def canon(ur, wall=True):
    """Canonical JSON bytes of a unit result.

    ``wall=False`` zeroes the only two wall-clock fields a simulation
    records (host compile seconds and wall seconds spent) so two
    *independent* simulations can be compared; everything else is
    simulated and must match bit-for-bit.
    """
    payload = rexec.result_to_json(ur)
    if not wall:
        payload["seconds"] = 0.0
        if payload["profile"]:
            payload["profile"]["compile_s"] = 0.0
    return json.dumps(payload, sort_keys=True)


UNIT = rexec.make_unit("TranP", "cuda", GTX480, "small")
UNITS = [
    rexec.make_unit("TranP", api, dev, "small")
    for api in ("cuda", "opencl")
    for dev in (GTX280, GTX480)
]


def test_memo_hit_and_counters():
    ex = rexec.SweepExecutor()
    fresh = ex.run_unit(UNIT)
    again = ex.run_unit(UNIT)
    assert not fresh.cached and again.cached
    assert ex.stats.misses == 1 and ex.stats.hits == 1
    assert canon(fresh) == canon(again)


def test_cached_result_byte_identical_to_fresh(tmp_path):
    ex = rexec.SweepExecutor(cache=tmp_path)
    fresh = ex.run_unit(UNIT)
    # a brand-new executor must hit the disk, not re-simulate
    ex2 = rexec.SweepExecutor(cache=tmp_path)
    cached = ex2.run_unit(UNIT)
    assert cached.cached
    assert ex2.stats.hits == 1 and ex2.stats.misses == 0
    assert ex2.stats.records[0].source == "disk"
    # the hit serves the stored payload bit-for-bit, wall clocks included
    assert canon(fresh) == canon(cached)
    # ... and matches an independent fresh simulation in every simulated
    # field (only the wall-clock host phases may differ run to run)
    raw = rexec.execute(UNIT)
    assert canon(cached, wall=False) == canon(
        rexec.result_from_json(rexec.result_to_json(raw)), wall=False
    )
    # profile survives the round trip as a real LaunchProfile
    assert cached.profile.kernel == "TranP/cuda"
    assert cached.profile.check() == []
    assert cached.profile.caches.keys() == fresh.profile.caches.keys()


def test_prewarm_parallel_matches_sequential(tmp_path):
    seq = rexec.SweepExecutor(jobs=1)
    par = rexec.SweepExecutor(jobs=4)
    seq.prewarm(UNITS)
    par.prewarm(UNITS)
    assert par.stats.misses == len(UNITS)
    for u in UNITS:
        assert canon(seq.run_unit(u), wall=False) == canon(
            par.run_unit(u), wall=False
        )


def test_prewarm_dedups_and_skips_cached(tmp_path):
    ex = rexec.SweepExecutor(cache=tmp_path)
    assert ex.prewarm([UNIT, UNIT, UNIT]) == 1
    assert ex.prewarm([UNIT]) == 0  # already warm
    ex2 = rexec.SweepExecutor(cache=tmp_path)
    assert ex2.prewarm([UNIT]) == 0  # warm from disk too


def test_pool_failure_falls_back_to_sequential(monkeypatch, capsys):
    def broken(*a, **k):
        raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(
        engine_mod.concurrent.futures, "ProcessPoolExecutor", broken
    )
    ex = rexec.SweepExecutor(jobs=4)
    assert ex.prewarm(UNITS[:2]) == 2
    assert ex.stats.misses == 2
    assert "falling back to sequential" in capsys.readouterr().err
    assert ex.run_unit(UNITS[0]).cached


def test_run_benchmark_routes_through_active_executor():
    ex = rexec.SweepExecutor()
    with rexec.use_executor(ex):
        r1 = rexec.run_benchmark("TranP", "cuda", GTX480, "small")
        r2 = rexec.run_benchmark("TranP", "cuda", GTX480, "small")
    assert r1.value == pytest.approx(r2.value)
    assert ex.stats.hits == 1 and ex.stats.misses == 1


def test_compare_routes_through_active_executor():
    from repro.core import compare

    ex = rexec.SweepExecutor()
    with rexec.use_executor(ex):
        out1 = compare("TranP", GTX480, size="small")
        out2 = compare("TranP", GTX480, size="small")
    assert ex.stats.misses == 2 and ex.stats.hits == 2
    assert out1.pr.pr == out2.pr.pr
    # profiles still flow through the engine (repro.prof integration)
    assert out1.cuda_profile.kernel == "TranP/cuda"
    assert out1.opencl_profile.kernel == "TranP/opencl"


def test_sweep_stats_render_and_summary():
    from repro.prof.report import render_sweep

    ex = rexec.SweepExecutor()
    ex.run_unit(UNIT)
    ex.run_unit(UNIT)
    text = render_sweep(ex.stats)
    assert "1 hit(s), 1 simulated" in text
    assert "TranP/cuda@GTX480[small]" in text
    summary = ex.stats.summary()
    assert summary["hits"] == 1 and summary["misses"] == 1
    assert len(summary["units"]) == 2
    json.dumps(summary)  # must be JSON-serializable (the CI artifact)
