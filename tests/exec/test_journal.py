"""The run journal: durable appends, replay classification, torn tails.

The WAL contract under test: every record survives a crash (append is
flush+fsync), replay classifies digests into completed / failed /
in-flight exactly, a torn final line is skipped rather than fatal, and
``latest_resumable`` finds the newest run that did not complete.
"""
import json

import pytest

from repro.exec import journal as jmod
from repro.exec.journal import JournalReplay, RunJournal


def lines_of(path):
    return [json.loads(x) for x in path.read_text().splitlines() if x.strip()]


class TestAppend:
    def test_create_writes_run_header(self, tmp_path):
        j = RunJournal.create(
            tmp_path, "run-1", command="repro.test", argv=["--all"]
        )
        recs = lines_of(j.path)
        assert recs[0]["t"] == "run"
        assert recs[0]["run_id"] == "run-1"
        assert recs[0]["command"] == "repro.test"
        assert recs[0]["argv"] == ["--all"]
        assert recs[0]["schema"] == jmod.JOURNAL_SCHEMA
        assert j.path == jmod.journal_dir(tmp_path) / "run-1.jsonl"

    def test_every_append_is_one_durable_line(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        j.record_start("d" * 40, "MD/cuda", attempt=1)
        j.record_done("d" * 40)
        # the file is readable mid-run, without any close/flush help:
        # that is the whole point of a WAL
        recs = lines_of(j.path)
        assert [r["t"] for r in recs] == ["run", "start", "done"]

    def test_close_writes_state_and_is_idempotent(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        j.close("interrupted")
        j.close("complete")  # no-op: already closed
        j.record_done("x")  # no-op after close, never a crash
        recs = lines_of(j.path)
        assert recs[-1]["t"] == "state"
        assert recs[-1]["state"] == "interrupted"

    def test_close_rejects_unknown_state(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        with pytest.raises(ValueError, match="unknown run state"):
            j.close("exploded")

    def test_context_manager_states(self, tmp_path):
        with RunJournal.create(tmp_path, "clean"):
            pass
        assert jmod.load(jmod.resolve(tmp_path, "clean")).state == "complete"
        with pytest.raises(RuntimeError):
            with RunJournal.create(tmp_path, "boom"):
                raise RuntimeError("x")
        assert jmod.load(jmod.resolve(tmp_path, "boom")).state == "failed"


class TestReplay:
    def _journal(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1", command="repro.benchsuite")
        j.record_plan(4, 3)
        j.record_start("aaa", "MD/cuda")
        j.record_done("aaa")
        j.record_start("bbb", "FFT/cuda")
        j.record_fail("bbb", "CRASH", injected=True)
        j.record_start("ccc", "Sobel/opencl")
        # ccc: started, never finished — the process dies here
        return j

    def test_classification(self, tmp_path):
        j = self._journal(tmp_path)
        rep = jmod.load(j.path)
        assert rep.run_id == "run-1"
        assert rep.command == "repro.benchsuite"
        assert rep.completed == {"aaa"}
        assert rep.failed == {"bbb": "CRASH"}
        assert rep.in_flight == {"ccc"}
        assert rep.labels["ccc"] == "Sobel/opencl"
        assert rep.state == "running"  # killed outright: no state record
        assert rep.resumable
        assert rep.torn_lines == 0

    def test_done_after_fail_wins(self, tmp_path):
        # a retry that succeeds after a recorded failure ends completed
        j = RunJournal.create(tmp_path, "run-1")
        j.record_start("aaa", "MD/cuda", attempt=1)
        j.record_fail("aaa", "TRANSIENT")
        j.record_start("aaa", "MD/cuda", attempt=2)
        j.record_done("aaa")
        rep = jmod.load(j.path)
        assert rep.completed == {"aaa"}
        assert rep.failed == {} and rep.in_flight == set()

    def test_torn_tail_tolerated(self, tmp_path):
        j = self._journal(tmp_path)
        with open(j.path, "a") as f:
            f.write('{"t": "done", "d": "cc')  # the write the kill cut short
        rep = jmod.load(j.path)
        assert rep.torn_lines == 1
        assert rep.in_flight == {"ccc"}  # the torn done never happened

    def test_complete_run_not_resumable(self, tmp_path):
        j = self._journal(tmp_path)
        j.close("complete")
        rep = jmod.load(j.path)
        assert rep.state == "complete" and not rep.resumable

    def test_interrupted_run_resumable(self, tmp_path):
        j = self._journal(tmp_path)
        j.close("interrupted")
        rep = jmod.load(j.path)
        assert rep.state == "interrupted" and rep.resumable

    def test_demote_record_round_trips(self, tmp_path):
        j = self._journal(tmp_path)
        j.record_demote(3, "worker death broke the pool")
        assert jmod.load(j.path).demoted

    def test_summary_shape(self, tmp_path):
        rep = jmod.load(self._journal(tmp_path).path)
        assert rep.summary() == {
            "from": "run-1",
            "state": "running",
            "completed": 1,
            "failed": 1,
            "in_flight": 1,
            "torn_lines": 0,
        }

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            jmod.load(tmp_path / "nope.jsonl")


class TestHeartbeat:
    def test_record_heartbeat_carries_progress(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        j.record_heartbeat(5.0, done=3, failed=1)
        hb = [r for r in lines_of(j.path) if r["t"] == "hb"][0]
        assert hb["interval"] == 5.0
        assert hb["done"] == 3 and hb["failed"] == 1
        assert hb["pid"] > 0 and hb["unix"] > 0

    def test_replay_ignores_heartbeats(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        j.record_start("aaa", "MD/cuda")
        j.record_heartbeat(5.0, done=0, failed=0)
        j.record_done("aaa")
        rep = jmod.load(j.path)
        assert rep.completed == {"aaa"}
        assert rep.torn_lines == 0  # hb is a known record, not noise

    def test_thread_beats_until_close(self, tmp_path):
        import time

        j = RunJournal.create(tmp_path, "run-1")
        flushes = []
        assert j.start_heartbeat(
            0.02, stats_fn=lambda: {"done": 7}, flush_fn=lambda: flushes.append(1)
        )
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if any(r["t"] == "hb" for r in lines_of(j.path)):
                break
            time.sleep(0.02)
        j.close("complete")
        beats = [r for r in lines_of(j.path) if r["t"] == "hb"]
        assert beats and beats[0]["done"] == 7
        assert flushes  # at minimum the final close-time flush ran
        # the thread is stopped: no beats land after close
        n = len(beats)
        time.sleep(0.1)
        assert len([r for r in lines_of(j.path) if r["t"] == "hb"]) == n

    def test_zero_interval_disables_thread(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        assert not j.start_heartbeat(0)
        assert j._hb_thread is None
        j.close("complete")

    def test_start_is_idempotent(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-1")
        assert j.start_heartbeat(60.0)
        first = j._hb_thread
        assert not j.start_heartbeat(60.0)
        assert j._hb_thread is first
        j.close("complete")

    def test_heartbeat_interval_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_S", raising=False)
        assert jmod.heartbeat_interval() == jmod.DEFAULT_HEARTBEAT_S
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0.25")
        assert jmod.heartbeat_interval() == 0.25
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "bogus")
        assert jmod.heartbeat_interval() == jmod.DEFAULT_HEARTBEAT_S

    def test_heartbeat_interval_rejects_non_positive(self, monkeypatch):
        # liveness (and serve lease TTLs) derive from this interval, so
        # zero/negative/NaN must fall back to the default, not disable
        for bad in ("0", "-3", "0.0", "nan", "-inf"):
            monkeypatch.setenv("REPRO_HEARTBEAT_S", bad)
            assert jmod.heartbeat_interval() == jmod.DEFAULT_HEARTBEAT_S

    def test_heartbeat_interval_warns_once_per_value(self, monkeypatch, capsys):
        jmod._HB_WARNED.discard("-7")
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "-7")
        assert jmod.heartbeat_interval() == jmod.DEFAULT_HEARTBEAT_S
        first = capsys.readouterr().err
        assert "REPRO_HEARTBEAT_S" in first
        assert jmod.heartbeat_interval() == jmod.DEFAULT_HEARTBEAT_S
        assert "REPRO_HEARTBEAT_S" not in capsys.readouterr().err


class TestResumeResolution:
    def test_latest_resumable_picks_newest_incomplete(self, tmp_path):
        import os

        a = RunJournal.create(tmp_path, "old-run")
        a.record_start("aaa", "x")
        b = RunJournal.create(tmp_path, "done-run")
        b.close("complete")
        c = RunJournal.create(tmp_path, "new-run")
        c.record_start("bbb", "y")
        # force a strict mtime order regardless of filesystem resolution
        os.utime(a.path, (1, 1))
        os.utime(b.path, (3, 3))
        os.utime(c.path, (2, 2))
        rep = jmod.latest_resumable(tmp_path)
        assert rep is not None and rep.run_id == "new-run"

    def test_latest_resumable_empty_dir(self, tmp_path):
        assert jmod.latest_resumable(tmp_path) is None

    def test_open_resume_by_id(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-7")
        j.record_start("aaa", "x")
        j.close("interrupted")
        rep = jmod.open_resume(tmp_path, "run-7")
        assert rep.run_id == "run-7" and rep.in_flight == {"aaa"}

    def test_open_resume_auto(self, tmp_path):
        j = RunJournal.create(tmp_path, "run-8")
        j.record_start("aaa", "x")
        j.close("interrupted")
        assert jmod.open_resume(tmp_path, "auto").run_id == "run-8"

    def test_open_resume_missing_id_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no journal"):
            jmod.open_resume(tmp_path, "never-ran")

    def test_open_resume_auto_nothing_resumable_exits(self, tmp_path):
        RunJournal.create(tmp_path, "fin").close("complete")
        with pytest.raises(SystemExit, match="no resumable journal"):
            jmod.open_resume(tmp_path, "auto")

    def test_resumable_default(self):
        assert JournalReplay(run_id="x", path=None).resumable
        assert not JournalReplay(run_id="x", path=None, state="complete").resumable
