"""Seeded retry jitter: deterministic, bounded, digest-decorrelated."""
from repro.exec.engine import retry_delay


class TestRetryDelay:
    def test_no_digest_is_pure_exponential(self):
        assert retry_delay(0.1, 1) == 0.1
        assert retry_delay(0.1, 2) == 0.2
        assert retry_delay(0.1, 3) == 0.4

    def test_same_inputs_same_delay(self):
        a = retry_delay(0.1, 2, "deadbeef")
        b = retry_delay(0.1, 2, "deadbeef")
        assert a == b  # reproducible in tests, logs, and reruns

    def test_jitter_stays_within_half_to_three_halves(self):
        for attempt in (1, 2, 3, 4):
            base = 0.1 * 2 ** (attempt - 1)
            for digest in ("aaa", "bbb", "ccc", "deadbeef"):
                d = retry_delay(0.1, attempt, digest)
                assert 0.5 * base <= d < 1.5 * base

    def test_different_digests_decorrelate(self):
        # the point of seeding by digest: concurrent retriers of
        # different units do not thundering-herd on the same schedule
        delays = {retry_delay(0.1, 1, f"digest-{i}") for i in range(16)}
        assert len(delays) > 8

    def test_different_attempts_decorrelate(self):
        d1 = retry_delay(0.1, 1, "deadbeef") / 0.1
        d2 = retry_delay(0.1, 2, "deadbeef") / 0.2
        assert d1 != d2  # fresh roll per attempt, not a fixed factor

    def test_zero_backoff_is_zero(self):
        assert retry_delay(0.0, 3, "deadbeef") == 0.0
        assert retry_delay(-1.0, 2, "deadbeef") == 0.0
