"""The exec-layer variant harness: units, digests, manifest, gating."""
import json
from types import SimpleNamespace

import pytest

from repro import exec as rexec
from repro.arch import GTX480
from repro.errors import FailureKind, UnitFailed
from repro.exec import variants as rvariants
from repro.exec.unit import unit_digest


@pytest.fixture(scope="module")
def sobel_unit():
    return rexec.make_unit("Sobel", "cuda", GTX480, "small")


def test_with_variant_rides_in_options(sobel_unit):
    vu = rvariants.with_variant(sobel_unit, "sobel!promote:filt")
    assert dict(vu.options)["rewrite"] == "sobel!promote:filt"
    assert vu.benchmark == sobel_unit.benchmark and vu.device == sobel_unit.device


def test_variant_units_have_distinct_digests(sobel_unit):
    tokens = rvariants.variants_for_unit(sobel_unit)
    assert tokens and len(tokens) == len(set(tokens))
    digests = {unit_digest(sobel_unit)}
    for tok in tokens[:3]:
        digests.add(unit_digest(rvariants.with_variant(sobel_unit, tok)))
    # baseline + each sampled variant fingerprint differently: the digest
    # covers the rewritten kernel sources
    assert len(digests) == 4


def test_violation_flag_only_for_different(sobel_unit):
    mk = lambda s: rvariants.VariantCheck(sobel_unit, "t!cse:body", s)
    assert mk("different").violation
    assert not any(mk(s).violation for s in ("preserved", "inadmissible", "failed"))


def test_manifest_is_deterministic_and_counts_violations(sobel_unit):
    checks = [
        rvariants.VariantCheck(sobel_unit, "sobel!cse:body", "preserved", digest="d1"),
        rvariants.VariantCheck(sobel_unit, "sobel!promote:filt", "different", note="x"),
    ]
    doc = rvariants.variant_manifest(checks)
    assert doc == rvariants.variant_manifest(list(reversed(checks)))
    parsed = json.loads(doc)
    assert parsed["total"] == 2 and parsed["violations"] == 1
    assert [r["variant"] for r in parsed["checks"]] == [
        "sobel!cse:body",
        "sobel!promote:filt",
    ]
    assert doc.endswith("\n")


def test_preflight_gate_reports_inadmissible(monkeypatch, sweep_executor, sobel_unit):
    monkeypatch.setattr(
        rvariants,
        "preflight_unit",
        lambda u: SimpleNamespace(would_abt=True, code="CL_OUT_OF_RESOURCES"),
    )
    checks = rvariants.check_unit_variants(
        sweep_executor, sobel_unit, tokens=["sobel!cse:body"]
    )
    assert [c.status for c in checks] == ["inadmissible"]
    assert checks[0].note == "CL_OUT_OF_RESOURCES"


def test_engine_failure_surfaces_as_failed_check(sweep_executor, sobel_unit):
    class Boom:
        def run_unit(self, unit):
            if dict(unit.options).get("rewrite"):
                raise UnitFailed("x", FailureKind.TIMEOUT)
            return sweep_executor.run_unit(unit)

    checks = rvariants.check_unit_variants(
        Boom(), sobel_unit, tokens=["sobel!cse:body"], preflight=False
    )
    assert [c.status for c in checks] == ["failed"]
    assert checks[0].note == "TIMEOUT"


def test_bad_token_surfaces_as_failed_not_preserved(sweep_executor, sobel_unit):
    # a token naming a nonexistent site dies in the engine (RewriteError
    # during kernel build); the check must report that, never "preserved"
    checks = rvariants.check_unit_variants(
        sweep_executor, sobel_unit, tokens=["sobel!promote:ghost"], preflight=False
    )
    assert [c.status for c in checks] == ["failed"]
