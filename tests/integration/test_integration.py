"""Cross-layer integration tests: the paper's effects, end to end."""
import numpy as np
import pytest

from repro.arch import CELLBE, GTX280, GTX480, HD5870, INTEL920
from repro.benchsuite import get_benchmark, host_for
from repro.core import compare


class TestTextureEffect:
    """Fig. 4/5 mechanics at test scale."""

    def test_texture_helps_cuda_md_on_gt200(self):
        b = get_benchmark("MD")
        w = b.run(host_for("cuda", GTX280), size="small", options={"use_texture": True})
        wo = b.run(host_for("cuda", GTX280), size="small", options={"use_texture": False})
        assert w.value > wo.value

    def test_removing_texture_closes_pr_gap(self):
        before = compare("MD", GTX280, size="small")
        after = compare("MD", GTX280, size="small", cuda_options={"use_texture": False})
        assert abs(1 - after.pr.pr) < abs(1 - before.pr.pr)


class TestConstantMemoryEffect:
    """Fig. 8 mechanics: GT200 has no global cache, Fermi does."""

    def test_constant_memory_big_win_on_gt200_only(self):
        b = get_benchmark("Sobel")
        speedups = {}
        for spec in (GTX280, GTX480):
            w = b.run(host_for("cuda", spec), size="small", options={"use_constant": True})
            wo = b.run(host_for("cuda", spec), size="small", options={"use_constant": False})
            speedups[spec.name] = wo.kernel_seconds / w.kernel_seconds
        assert speedups["GTX280"] > 1.3
        assert speedups["GTX280"] > speedups["GTX480"] + 0.2

    def test_sobel_pr_flips_between_generations(self):
        pr280 = compare("Sobel", GTX280, size="small").pr.pr
        pr480 = compare("Sobel", GTX480, size="small").pr.pr
        assert pr280 > 1.3  # OpenCL (constant memory) much faster
        assert pr480 < 1.25  # Fermi cache levels it


class TestCompilerEffect:
    """Table V / FFT mechanics."""

    def test_fft_cuda_advantage_from_front_end(self):
        out = compare("FFT", GTX480, size="small")
        assert out.pr.pr < 0.8

    def test_fft_instruction_mix_shape(self):
        from repro.experiments.table5_ptx import compiled_pair
        from repro.ptx import IClass, class_totals, histogram

        kc, ko = compiled_pair()
        tc, to = class_totals(histogram(kc)), class_totals(histogram(ko))
        assert to[IClass.ARITHMETIC] > tc[IClass.ARITHMETIC]
        assert to[IClass.LOGIC] > tc[IClass.LOGIC]
        assert tc[IClass.DATA] > to[IClass.DATA]


class TestLaunchOverheadEffect:
    """§IV-B.4: BFS loses through enqueue latency, not kernels."""

    def test_bfs_kernel_time_close_but_wall_time_apart(self):
        b = get_benchmark("BFS")
        cu = b.run(host_for("cuda", GTX480), size="small")
        cl = b.run(host_for("opencl", GTX480), size="small")
        kernel_ratio = cl.kernel_seconds / cu.kernel_seconds
        wall_ratio = cl.wall_seconds / cu.wall_seconds
        assert wall_ratio > kernel_ratio  # overhead, not device work


class TestUnrollEffect:
    def test_pragma_a_helps_cuda(self):
        b = get_benchmark("FDTD")
        w = b.run(host_for("cuda", GTX480), size="small", options={"unroll_a": 9})
        wo = b.run(host_for("cuda", GTX480), size="small", options={"unroll_a": None})
        assert w.value > wo.value

    def test_pragma_a_collapses_opencl(self):
        b = get_benchmark("FDTD")
        w = b.run(host_for("opencl", GTX280), size="small", options={"unroll_a": 9})
        wo = b.run(host_for("opencl", GTX280), size="small", options={"unroll_a": None})
        assert w.value < wo.value  # spills: the Fig. 7 collapse
        assert w.correct  # slow, but still correct


class TestPortability:
    """Table VI behaviours at test scale."""

    def test_cell_aborts_exactly_the_papers_four(self):
        abt = set()
        for name in ("FFT", "DXTC", "RdxS", "STNW", "Scan", "MxM", "TranP"):
            r = get_benchmark(name).run(host_for("opencl", CELLBE), size="small")
            if r.failure == "ABT":
                abt.add(name)
        assert abt == {"FFT", "DXTC", "RdxS", "STNW"}

    def test_everything_runs_on_hd5870_except_rdxs(self):
        for name in ("Sobel", "TranP", "Scan", "MxM"):
            r = get_benchmark(name).run(host_for("opencl", HD5870), size="small")
            assert r.ok(), name
        r = get_benchmark("RdxS").run(host_for("opencl", HD5870), size="small")
        assert r.failure == "FL"

    def test_tranp_local_memory_hurts_on_cpu(self):
        b = get_benchmark("TranP")
        w = b.run(host_for("opencl", INTEL920), size="small", options={"use_local": True})
        wo = b.run(host_for("opencl", INTEL920), size="small", options={"use_local": False})
        assert wo.value > w.value  # staging is pure overhead on a CPU

    def test_warp_variant_spmv_slower_on_cpu(self):
        b = get_benchmark("SPMV")
        scalar = b.run(host_for("opencl", INTEL920), size="small")
        warp = b.run(
            host_for("opencl", INTEL920), size="small", options={"variant": "warp"}
        )
        assert warp.correct
        assert warp.value < scalar.value  # the paper's 3.805 -> 0.125 story

    def test_device_performance_ordering(self):
        # paper Table VI: on MD the GPU leads, the CPU follows, Cell trails
        vals = {}
        for spec in (GTX480, INTEL920, CELLBE):
            vals[spec.name] = get_benchmark("MD").run(
                host_for("opencl", spec), size="small"
            ).value
        assert vals["GTX480"] > vals["Intel920"] > vals["Cell/BE"]


class TestDeterminism:
    def test_full_comparison_reproducible(self):
        a = compare("Reduce", GTX480, size="small").pr.pr
        b = compare("Reduce", GTX480, size="small").pr.pr
        assert a == b


class TestExperimentHarness:
    def test_runner_lists_all_figures_and_tables(self):
        from repro.experiments import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table5",
            "table6",
        }

    def test_table5_runs_and_renders(self):
        from repro.experiments.runner import run_experiment

        res = run_experiment("table5", size="small")
        text = res.render()
        assert "CUDA" in text and "OpenCL" in text
        assert all(c["holds"] for c in res.checks), [
            c for c in res.checks if not c["holds"]
        ]

    def test_fig1_small_runs(self):
        from repro.experiments.runner import run_experiment

        res = run_experiment("fig1", size="small")
        assert len(res.rows) == 2

    def test_unknown_experiment_rejected(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(SystemExit):
            run_experiment("fig99")
