"""Shared fixtures for the test suite."""
import os

import numpy as np
import pytest

from repro.arch import CELLBE, GTX280, GTX480, HD5870, INTEL920


@pytest.fixture(scope="session", autouse=True)
def sweep_executor(tmp_path_factory):
    """Route the whole suite through one shared sweep engine.

    Every ``compare``/``run_benchmark`` call in the suite goes through
    the same :class:`repro.exec.SweepExecutor`, so tests that request
    identical work units (same benchmark, API, device, size, options)
    share one simulation.  ``REPRO_JOBS`` sets the process fan-out for
    prewarmed sweeps (CI runs the suite at 1 and 4).  The suite keeps
    results in memory only — an on-disk cache here could serve results
    staled by simulator edits, which the digest does not cover.

    ``REPRO_CACHE_DIR`` is pointed at a session tmpdir so CLI entry
    points invoked in-process don't drop ``.repro-cache`` into the repo.
    """
    from repro import exec as rexec

    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("repro-cache"))
    )
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    with rexec.use_executor(rexec.SweepExecutor(jobs=jobs)) as ex:
        yield ex


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=["GTX280", "GTX480"], ids=["gt200", "fermi"])
def nvidia_spec(request):
    return {"GTX280": GTX280, "GTX480": GTX480}[request.param]


@pytest.fixture(params=["cuda", "opencl"])
def api_name(request):
    return request.param
