"""Shared fixtures for the test suite."""
import numpy as np
import pytest

from repro.arch import CELLBE, GTX280, GTX480, HD5870, INTEL920


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=["GTX280", "GTX480"], ids=["gt200", "fermi"])
def nvidia_spec(request):
    return {"GTX280": GTX280, "GTX480": GTX480}[request.param]


@pytest.fixture(params=["cuda", "opencl"])
def api_name(request):
    return request.param
