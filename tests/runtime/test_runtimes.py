import numpy as np
import pytest

from repro.arch import CELLBE, GTX280, GTX480, HD5870, INTEL920
from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar
from repro.runtime import cuda as rt_cuda
from repro.runtime import opencl as cl
from repro.runtime.overhead import (
    cuda_launch_overhead_s,
    opencl_launch_overhead_s,
)


def _vadd(dialect):
    k = KernelBuilder("vadd", dialect)
    a = k.buffer("a", Scalar.F32)
    b = k.buffer("b", Scalar.F32)
    c = k.buffer("c", Scalar.F32)
    i = k.let("i", k.global_id(0))
    k.store(c, i, a[i] + b[i])
    return k.finish()


class TestCudaRuntime:
    def test_cuda_rejects_non_nvidia(self):
        with pytest.raises(rt_cuda.CudaError, match="NVIDIA"):
            rt_cuda.CudaContext(HD5870)

    def test_end_to_end(self, rng):
        ctx = rt_cuda.CudaContext(GTX480)
        A = rng.uniform(0, 1, 64).astype(np.float32)
        B = rng.uniform(0, 1, 64).astype(np.float32)
        pa, pb, pc = ctx.malloc(64), ctx.malloc(64), ctx.malloc(64)
        ctx.memcpy_htod(pa, A)
        ctx.memcpy_htod(pb, B)
        fn = ctx.compile(_vadd(CUDA))
        fn.launch(2, 32, a=pa, b=pb, c=pc)
        assert np.allclose(ctx.memcpy_dtoh(pc), A + B)

    def test_virtual_clock_monotone(self, rng):
        ctx = rt_cuda.CudaContext(GTX280)
        t0 = ctx.now
        p = ctx.malloc(64)
        ctx.memcpy_htod(p, np.zeros(64, dtype=np.float32))
        assert ctx.now > t0

    def test_events_measure_kernel_time(self, rng):
        ctx = rt_cuda.CudaContext(GTX480)
        p = ctx.malloc(64)
        fn = ctx.compile(_vadd(CUDA))
        e0 = ctx.event_record()
        fn.launch(2, 32, a=p, b=p, c=p)
        e1 = ctx.event_record()
        assert e1.elapsed_since(e0) > 0

    def test_oversized_copy_rejected(self):
        ctx = rt_cuda.CudaContext(GTX480)
        p = ctx.malloc(4)
        with pytest.raises(rt_cuda.CudaError, match="larger"):
            ctx.memcpy_htod(p, np.zeros(100, dtype=np.float32))


class TestOpenCLRuntime:
    def test_platform_inventory(self):
        plats = cl.get_platforms()
        names = {p.name for p in plats}
        assert any("NVIDIA" in n for n in names)
        assert any("AMD" in n for n in names)
        assert any("IBM" in n for n in names)
        devices = {d.name for p in plats for d in p.get_devices()}
        assert devices == {"GTX480", "GTX280", "HD5870", "Intel920", "Cell/BE"}

    def test_device_type_filter(self):
        amd = [p for p in cl.get_platforms() if "AMD" in p.name][0]
        gpus = amd.get_devices(cl.DeviceType.GPU)
        cpus = amd.get_devices(cl.DeviceType.CPU)
        assert [d.name for d in gpus] == ["HD5870"]
        assert [d.name for d in cpus] == ["Intel920"]
        with pytest.raises(cl.CLError, match="NOT_FOUND"):
            amd.get_devices(cl.DeviceType.ACCELERATOR)

    def test_end_to_end_all_devices(self, rng):
        for p in cl.get_platforms():
            for d in p.get_devices():
                ctx = cl.Context([d])
                q = cl.CommandQueue(ctx)
                A = rng.uniform(0, 1, 64).astype(np.float32)
                ba = cl.Buffer.create(ctx, 64)
                bc = cl.Buffer.create(ctx, 64)
                q.enqueue_write_buffer(ba, A)
                prog = cl.Program(ctx, [_vadd(OPENCL)]).build()
                kern = prog.kernel("vadd").set_args(a=ba, b=ba, c=bc)
                q.enqueue_nd_range(kern, 64, 32)
                got, _ = q.enqueue_read_buffer(bc)
                assert np.allclose(got, A + A), d.name

    def test_profiling_event_phases(self):
        ctx = cl.create_context_for("GTX480")
        q = cl.CommandQueue(ctx)
        b = cl.Buffer.create(ctx, 64)
        prog = cl.Program(ctx, [_vadd(OPENCL)]).build()
        kern = prog.kernel("vadd").set_args(a=b, b=b, c=b)
        ev = q.enqueue_nd_range(kern, 64, 32)
        assert ev.queued_s <= ev.submit_s <= ev.start_s <= ev.end_s
        assert ev.launch_latency_seconds > 0
        assert ev.kernel_seconds > 0

    def test_bad_workgroup_divisibility(self):
        ctx = cl.create_context_for("GTX480")
        q = cl.CommandQueue(ctx)
        prog = cl.Program(ctx, [_vadd(OPENCL)]).build()
        kern = prog.kernel("vadd")
        with pytest.raises(cl.CLError, match="WORK_GROUP"):
            q.enqueue_nd_range(kern, 65, 32)

    def test_unbuilt_program_rejected(self):
        ctx = cl.create_context_for("GTX480")
        prog = cl.Program(ctx, [_vadd(OPENCL)])
        with pytest.raises(cl.CLError, match="EXECUTABLE"):
            prog.kernel("vadd")

    def test_unknown_kernel_name(self):
        ctx = cl.create_context_for("GTX480")
        prog = cl.Program(ctx, [_vadd(OPENCL)]).build()
        with pytest.raises(cl.CLError, match="KERNEL_NAME"):
            prog.kernel("nope")

    def test_cuda_dialect_rejected_by_build(self):
        ctx = cl.create_context_for("GTX480")
        with pytest.raises(cl.CLError, match="BUILD"):
            cl.Program(ctx, [_vadd(CUDA)]).build()

    def test_source_factory_receives_defines(self):
        seen = {}

        def factory(defines):
            seen.update(defines)
            return [_vadd(OPENCL)]

        ctx = cl.create_context_for("HD5870")
        cl.Program(ctx, factory).build({"WARP_SIZE": 64})
        assert seen == {"WARP_SIZE": 64}

    def test_warp_size_query(self):
        assert cl.create_context_for("HD5870").device.warp_size == 64
        assert cl.create_context_for("GTX280").device.warp_size == 32

    def test_out_of_resources_on_cell(self):
        # 8 KB of local memory exceeds the Cell's 2 KB local store
        k = KernelBuilder("big", OPENCL)
        o = k.buffer("o", Scalar.F32)
        sh = k.shared("sh", Scalar.F32, 2048)
        k.store(sh, k.tid.x, 0.0)
        k.barrier()
        k.store(o, k.tid.x, sh[k.tid.x])
        ctx = cl.create_context_for("Cell/BE")
        q = cl.CommandQueue(ctx)
        b = cl.Buffer.create(ctx, 64)
        prog = cl.Program(ctx, [k.finish()]).build()
        kern = prog.kernel("big").set_args(o=b)
        with pytest.raises(cl.CLError, match="OUT_OF_RESOURCES"):
            q.enqueue_nd_range(kern, 64, 64)


class TestLaunchOverheads:
    def test_opencl_slower_and_size_dependent(self):
        assert opencl_launch_overhead_s(0) > cuda_launch_overhead_s(0)
        small = opencl_launch_overhead_s(1024)
        large = opencl_launch_overhead_s(1 << 20)
        assert large > small  # "the gap size depends on the problem size"

    def test_cuda_size_dependence_mild(self):
        growth_cuda = cuda_launch_overhead_s(1 << 20) - cuda_launch_overhead_s(0)
        growth_ocl = opencl_launch_overhead_s(1 << 20) - opencl_launch_overhead_s(0)
        assert growth_ocl > growth_cuda
