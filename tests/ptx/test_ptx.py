import pytest

from repro.kir.types import AddrSpace, Scalar
from repro.ptx import (
    IClass,
    Imm,
    Instr,
    Op,
    PTXKernel,
    PTXParam,
    PTXVerificationError,
    Reg,
    RegAllocator,
    class_totals,
    format_instr,
    format_kernel,
    histogram,
    is_load,
    is_memory,
    is_store,
    klass_of,
    stats_key,
    verify,
)


class TestISA:
    def test_table5_classification(self):
        assert klass_of(Op.ADD) is IClass.ARITHMETIC
        assert klass_of(Op.MAD) is IClass.ARITHMETIC
        assert klass_of(Op.FMA) is IClass.ARITHMETIC
        assert klass_of(Op.SHL) is IClass.LOGIC
        assert klass_of(Op.AND) is IClass.LOGIC
        assert klass_of(Op.MOV) is IClass.DATA
        assert klass_of(Op.LD) is IClass.DATA
        assert klass_of(Op.TEX) is IClass.DATA
        assert klass_of(Op.SETP) is IClass.FLOW
        assert klass_of(Op.SELP) is IClass.FLOW
        assert klass_of(Op.BRA) is IClass.FLOW
        assert klass_of(Op.BAR) is IClass.SYNC

    def test_stats_keys_split_by_space(self):
        assert stats_key(Op.LD, AddrSpace.GLOBAL) == "ld.global"
        assert stats_key(Op.ST, AddrSpace.SHARED) == "st.shared"
        assert stats_key(Op.LD, AddrSpace.PARAM) == "ld.param"
        assert stats_key(Op.TEX) == "ld.tex"
        assert stats_key(Op.MOV) == "mov"

    def test_memory_predicates(self):
        assert is_memory(Op.LD) and is_memory(Op.ST) and is_memory(Op.TEX)
        assert is_load(Op.LD) and is_load(Op.TEX) and not is_load(Op.ST)
        assert is_store(Op.ST) and not is_store(Op.LD)
        assert not is_memory(Op.ADD)


class TestInstr:
    def test_regs_read_includes_predicate(self):
        r0, r1, p = Reg(0, Scalar.S32), Reg(1, Scalar.S32), Reg(2, Scalar.PRED)
        i = Instr(Op.ADD, Scalar.S32, dst=r0, srcs=(r1, Imm(1, Scalar.S32)), pred=(p, True))
        read = {r.idx for r in i.regs_read()}
        assert read == {1, 2}

    def test_allocator_monotone(self):
        ra = RegAllocator()
        a, b = ra.new(Scalar.F32), ra.new(Scalar.S32)
        assert a.idx != b.idx

    def test_reg_str_prefixes(self):
        assert str(Reg(3, Scalar.F32)) == "%f3"
        assert str(Reg(3, Scalar.S32)) == "%r3"
        assert str(Reg(3, Scalar.PRED)) == "%p3"


def _kernel(instrs, params=()):
    return PTXKernel("k", list(params), list(instrs))


class TestVerify:
    def test_use_before_def_rejected(self):
        r = Reg(0, Scalar.S32)
        k = _kernel([Instr(Op.ADD, Scalar.S32, dst=r, srcs=(r, Imm(1, Scalar.S32))), Instr(Op.EXIT)])
        with pytest.raises(PTXVerificationError, match="undefined register"):
            verify(k)

    def test_branch_to_unknown_label_rejected(self):
        k = _kernel([Instr(Op.BRA, target="NOPE"), Instr(Op.EXIT)])
        with pytest.raises(PTXVerificationError, match="unknown label"):
            verify(k)

    def test_predicated_branch_needs_reconv(self):
        p = Reg(0, Scalar.PRED)
        k = _kernel(
            [
                Instr(Op.SETP, Scalar.S32, dst=p, srcs=(Imm(0, Scalar.S32), Imm(1, Scalar.S32)), cmp="lt"),
                Instr(Op.BRA, pred=(p, True), target="L"),
                Instr(Op.LABEL, label="L"),
                Instr(Op.EXIT),
            ]
        )
        with pytest.raises(PTXVerificationError, match="reconvergence"):
            verify(k)

    def test_clean_kernel_passes(self):
        r = Reg(0, Scalar.S32)
        k = _kernel(
            [
                Instr(Op.MOV, Scalar.S32, dst=r, srcs=(Imm(1, Scalar.S32),)),
                Instr(Op.EXIT),
            ]
        )
        verify(k)  # no raise

    def test_ld_without_space_rejected(self):
        r = Reg(0, Scalar.S32)
        k = _kernel([Instr(Op.LD, Scalar.S32, dst=r, srcs=(Imm(0, Scalar.U32),)), Instr(Op.EXIT)])
        with pytest.raises(PTXVerificationError, match="state space"):
            verify(k)


class TestStats:
    def test_histogram_counts(self):
        r = Reg(0, Scalar.S32)
        a = Reg(1, Scalar.U32)
        k = _kernel(
            [
                Instr(Op.MOV, Scalar.U32, dst=a, srcs=(Imm(0, Scalar.U32),)),
                Instr(Op.LD, Scalar.S32, dst=r, srcs=(a,), space=AddrSpace.GLOBAL),
                Instr(Op.ADD, Scalar.S32, dst=r, srcs=(r, Imm(1, Scalar.S32))),
                Instr(Op.ST, Scalar.S32, srcs=(a, r), space=AddrSpace.GLOBAL),
                Instr(Op.EXIT),
            ]
        )
        h = histogram(k)
        assert h["ld.global"] == 1 and h["st.global"] == 1
        assert h["add"] == 1 and h["mov"] == 1
        assert "exit" not in h

    def test_class_totals(self):
        h = {"add": 2, "shl": 3, "mov": 4, "bra": 1, "bar": 1, "ld.global": 2}
        t = class_totals(h)
        assert t[IClass.ARITHMETIC] == 2
        assert t[IClass.LOGIC] == 3
        assert t[IClass.DATA] == 6
        assert t[IClass.FLOW] == 1
        assert t[IClass.SYNC] == 1


class TestPrinter:
    def test_format_instruction_variants(self):
        r = Reg(0, Scalar.F32)
        a = Reg(1, Scalar.U32)
        p = Reg(2, Scalar.PRED)
        assert "ld.global.f32" in format_instr(
            Instr(Op.LD, Scalar.F32, dst=r, srcs=(a,), space=AddrSpace.GLOBAL)
        )
        assert "@%p2 bra" in format_instr(
            Instr(Op.BRA, pred=(p, True), target="L", reconv="E")
        )
        assert "@!%p2" in format_instr(
            Instr(Op.BRA, pred=(p, False), target="L", reconv="E")
        )
        assert format_instr(Instr(Op.LABEL, label="L0")) == "L0:"
        assert "bar.sync" in format_instr(Instr(Op.BAR))

    def test_format_kernel_header(self):
        k = _kernel(
            [Instr(Op.EXIT)],
            params=[PTXParam("x", Scalar.F32, is_pointer=True)],
        )
        text = format_kernel(k)
        assert ".entry k" in text and ".param .u64 x" in text
