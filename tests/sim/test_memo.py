"""Launch-memoization contract: guarded replay is bit-identical.

The memo table may only ever change *how fast* a repeated launch
completes, never any observable number — these tests compare full
device state (memory bytes, dram float bit patterns, cache stats,
launch statistics and profiles) between memoized and cold execution.
"""
import numpy as np
import pytest

from repro.arch import GTX280, GTX480
from repro.compiler import compile_cuda
from repro.kir import CUDA, KernelBuilder, Scalar
from repro.sim import SimDevice
from repro.sim.memo import LaunchMemo, kernel_digest


def _saxpy():
    k = KernelBuilder("saxpy", CUDA)
    a = k.buffer("a", Scalar.F32)
    o = k.buffer("o", Scalar.F32)
    i = k.let("i", k.global_id(0), Scalar.S32)
    v = k.let("v", a[i])
    k.store(o, i, v * 2.0 + k.sqrt(k.abs(v)))
    return compile_cuda(k.finish())


def _setup(spec, memoize, data):
    dev = SimDevice(spec, memoize=memoize)
    pa = dev.alloc(data.nbytes)
    dev.upload(pa, data)
    po = dev.alloc(data.nbytes)
    dev.upload(po, np.zeros_like(data))
    return dev, pa, po


def _result_key(r):
    return (
        r.timing.total_s,
        r.stats.warp_instructions,
        dict(r.stats.dyn_hist),
        dict(r.stats.cyc_hist),
        r.profile.issue_cycles,
        r.profile.instr_counts,
    )


@pytest.mark.parametrize("spec", [GTX480, GTX280], ids=lambda s: s.name)
def test_repeat_launches_bit_identical(spec):
    ptx = _saxpy()
    data = np.random.default_rng(7).uniform(-2, 2, 256).astype(np.float32)

    def run(memoize):
        dev, pa, po = _setup(spec, memoize, data)
        keys = []
        for _ in range(6):
            keys.append(_result_key(dev.launch(ptx, 8, 32, {"a": pa, "o": po})))
        out = dev.download(po, data.size, Scalar.F32)[0]
        return keys, out, dev.memsys.prof_snapshot(), dev

    cold_keys, cold_out, cold_snap, _ = run(False)
    memo_keys, memo_out, memo_snap, dev = run(True)

    assert dev.memo is not None and dev.memo.hits > 0
    assert cold_keys == memo_keys
    assert np.array_equal(cold_out, memo_out)
    # dram_bytes is a float fold: require identical *bit patterns*
    assert np.array_equal(
        cold_snap["dram_bytes"].view(np.uint64),
        memo_snap["dram_bytes"].view(np.uint64),
    )
    assert cold_snap["caches"] == memo_snap["caches"]
    for key in ("gmem_requests", "gmem_transactions", "shared_accesses",
                "shared_replays", "spill_bytes"):
        assert cold_snap[key] == memo_snap[key]


def test_input_change_misses():
    ptx = _saxpy()
    data = np.ones(64, dtype=np.float32)
    dev, pa, po = _setup(GTX480, True, data)
    for _ in range(3):
        dev.launch(ptx, 2, 32, {"a": pa, "o": po})
    hits_before = dev.memo.hits
    assert hits_before > 0
    # mutate the input buffer: the read-digest guard must reject replay
    dev.upload(pa, data * 3)
    r_fresh = dev.launch(ptx, 2, 32, {"a": pa, "o": po})
    out = dev.download(po, 64, Scalar.F32)[0]
    np.testing.assert_allclose(out, 3 * 2.0 + np.sqrt(3.0), rtol=1e-6)
    assert r_fresh is not None


def test_arg_change_is_a_different_key():
    k = KernelBuilder("scale", CUDA)
    o = k.buffer("o", Scalar.F32)
    s = k.scalar("s", Scalar.F32)
    i = k.let("i", k.global_id(0), Scalar.S32)
    k.store(o, i, s)
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480, memoize=True)
    po = dev.alloc(64 * 4)
    for _ in range(3):
        dev.launch(ptx, 2, 32, {"o": po, "s": 1.5})
    dev.launch(ptx, 2, 32, {"o": po, "s": 2.5})
    out = dev.download(po, 64, Scalar.F32)[0]
    assert np.all(out == np.float32(2.5))


def test_oob_launch_never_memoized():
    k = KernelBuilder("wild", CUDA)
    o = k.buffer("o", Scalar.S32)
    i = k.let("i", k.global_id(0), Scalar.S32)
    k.store(o, i + 500_000_000, i)  # ~2 GB: beyond capacity, wraps
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480, memoize=True)
    po = dev.alloc(64 * 4)
    for _ in range(3):
        dev.launch(ptx, 2, 32, {"o": po})
    assert dev.memo.hits == 0
    assert dev.memo.skipped > 0


def test_memoize_flag_and_env(monkeypatch):
    assert SimDevice(GTX480, memoize=False).memo is None
    assert SimDevice(GTX480, memoize=True).memo is not None
    monkeypatch.setenv("REPRO_SIM_MEMO", "0")
    assert SimDevice(GTX480).memo is None
    monkeypatch.delenv("REPRO_SIM_MEMO")
    assert SimDevice(GTX480).memo is not None


def test_kernel_digest_stable_across_clones():
    from repro.compiler import ccache

    ccache.clear()
    try:
        a = _saxpy()
        b = _saxpy()  # compile-cache hit: a defensive clone
        assert a is not b
        assert kernel_digest(a) == kernel_digest(b)
    finally:
        ccache.clear()


def test_memo_stats_dict():
    memo = LaunchMemo()
    d = memo.stats_dict()
    assert d == {"hits": 0, "misses": 0, "skipped": 0, "entries": 0}
