"""$REPRO_SIM_BATCH hardening: bad values warn once and fall back."""
from repro.sim import interp


def default_for(width, blocks):
    return max(
        1, min(interp._BATCH_CAP, interp._BATCH_LANES // max(width, 1), blocks)
    )


class TestBatchSizeEnv:
    def test_valid_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "8")
        assert interp._batch_size(32, 100) == 8

    def test_override_clamped_to_blocks(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "500")
        assert interp._batch_size(32, 7) == 7

    def test_unset_uses_lane_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        assert interp._batch_size(32, 100) == default_for(32, 100)
        assert interp._batch_size(4096, 100) == default_for(4096, 100)

    def test_invalid_and_non_positive_fall_back(self, monkeypatch):
        for bad in ("bogus", "0", "-4", "1.5"):
            monkeypatch.setenv("REPRO_SIM_BATCH", bad)
            assert interp._batch_size(32, 100) == default_for(32, 100)

    def test_warns_once_per_value(self, monkeypatch, capsys):
        interp._BATCH_ENV_WARNED.discard("-9")
        monkeypatch.setenv("REPRO_SIM_BATCH", "-9")
        assert interp._batch_size(32, 100) == default_for(32, 100)
        assert "REPRO_SIM_BATCH" in capsys.readouterr().err
        assert interp._batch_size(32, 100) == default_for(32, 100)
        assert "REPRO_SIM_BATCH" not in capsys.readouterr().err
