import numpy as np
import pytest

from repro.arch import GTX280, GTX480
from repro.compiler import compile_cuda, compile_opencl
from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar, eval_kernel
from repro.sim import FlatMemory, LaunchFailure, SimDevice


class TestFlatMemory:
    def test_alloc_alignment_and_nonzero_base(self):
        m = FlatMemory(1 << 16)
        a = m.alloc(100)
        b = m.alloc(100)
        assert a % 256 == 0 and b % 256 == 0
        assert a != 0 and b > a

    def test_free_and_reuse(self):
        m = FlatMemory(1 << 16)
        a = m.alloc(512)
        m.free(a, 512)
        b = m.alloc(256)
        assert b == a

    def test_exhaustion(self):
        m = FlatMemory(1024)
        with pytest.raises(MemoryError):
            m.alloc(10_000)

    def test_typed_roundtrip(self):
        m = FlatMemory(1 << 16)
        base = m.alloc(64)
        addrs = base + np.arange(8, dtype=np.int64) * 4
        vals = np.arange(8, dtype=np.float32) * 1.5
        m.store(addrs, vals, Scalar.F32)
        got = m.load(addrs, Scalar.F32)
        assert np.array_equal(got, vals)

    def test_oob_wraps_and_counts(self):
        m = FlatMemory(4096)
        addrs = np.array([10 * 4096], dtype=np.int64)
        m.store(addrs, np.array([7], dtype=np.int32), Scalar.S32)
        assert m.oob_accesses >= 1

    def test_write_read_bytes(self):
        m = FlatMemory(4096)
        base = m.alloc(16)
        m.write_bytes(base, np.arange(4, dtype=np.int32))
        assert np.array_equal(
            m.read_array(base, 4, Scalar.S32), np.arange(4, dtype=np.int32)
        )


def _run_both(kern_builder, grid, block, arrays, scalars=None):
    """Compile with the dialect-matching front end, simulate on GTX480,
    and cross-check against the reference evaluator."""
    results = {}
    for dialect, comp in ((CUDA, compile_cuda), (OPENCL, compile_opencl)):
        kern = kern_builder(dialect)
        ptx = comp(kern, max_regs=63)
        dev = SimDevice(GTX480)
        args = dict(scalars or {})
        host = {}
        for name, arr in arrays.items():
            host[name] = arr.copy()
            p = dev.alloc(arr.nbytes)
            dev.upload(p, host[name])
            args[name] = p
        dev.launch(ptx, grid, block, args)
        out = {
            name: dev.download(args[name], arr.size, _scalar_of(arr))[0]
            for name, arr in arrays.items()
        }
        # oracle
        oracle = {name: arr.copy() for name, arr in arrays.items()}
        oracle.update(scalars or {})
        eval_kernel(kern, grid, block, oracle)
        for name in arrays:
            np.testing.assert_allclose(
                out[name],
                oracle[name],
                rtol=1e-5,
                atol=1e-6,
                err_msg=f"{dialect.name}:{name}",
            )
        results[dialect.name] = out
    return results


def _scalar_of(arr):
    return {
        np.dtype(np.float32): Scalar.F32,
        np.dtype(np.int32): Scalar.S32,
        np.dtype(np.uint32): Scalar.U32,
    }[arr.dtype]


class TestInterpreterSemantics:
    def test_arith_kernel_cross_check(self, rng):
        def build(dialect):
            k = KernelBuilder("arith", dialect)
            a = k.buffer("a", Scalar.F32)
            o = k.buffer("o", Scalar.F32)
            i = k.let("i", k.global_id(0), Scalar.S32)
            v = k.let("v", a[i])
            k.store(o, i, v * v - v / 2.0 + k.sqrt(k.abs(v)))
            return k.finish()

        a = rng.uniform(-2, 2, 64).astype(np.float32)
        _run_both(build, 2, 32, {"a": a, "o": np.zeros(64, dtype=np.float32)})

    def test_integer_ops_cross_check(self, rng):
        def build(dialect):
            k = KernelBuilder("ints", dialect)
            a = k.buffer("a", Scalar.S32)
            o = k.buffer("o", Scalar.S32)
            i = k.let("i", k.global_id(0), Scalar.S32)
            v = k.let("v", a[i])
            k.store(o, i, ((v << 2) ^ (v >> 1)) & 1023 | (v % 7))
            return k.finish()

        a = rng.integers(0, 1 << 20, 64).astype(np.int32)
        _run_both(build, 2, 32, {"a": a, "o": np.zeros(64, dtype=np.int32)})

    def test_divergent_loop_trip_counts(self):
        def build(dialect):
            k = KernelBuilder("div", dialect)
            o = k.buffer("o", Scalar.S32)
            t = k.let("t", k.tid.x, Scalar.S32)
            acc = k.let("acc", 0)
            with k.for_("j", 0, t) as j:  # per-thread trip count
                k.assign(acc, acc + j)
            k.store(o, t, acc)
            return k.finish()

        _run_both(build, 1, 32, {"o": np.zeros(32, dtype=np.int32)})

    def test_nested_divergence(self):
        def build(dialect):
            k = KernelBuilder("nest", dialect)
            o = k.buffer("o", Scalar.S32)
            t = k.let("t", k.tid.x, Scalar.S32)
            v = k.let("v", 0)
            with k.if_((t & 1).eq(0)):
                with k.if_(t < 16):
                    k.assign(v, 1)
                k.assign(v, v + 10)
            k.store(o, t, v)
            return k.finish()

        _run_both(build, 1, 32, {"o": np.zeros(32, dtype=np.int32)})

    def test_shared_memory_barrier(self):
        def build(dialect):
            k = KernelBuilder("sm", dialect)
            x = k.buffer("x", Scalar.S32)
            y = k.buffer("y", Scalar.S32)
            sh = k.shared("sh", Scalar.S32, 32)
            t = k.let("t", k.tid.x, Scalar.S32)
            k.store(sh, t, x[k.global_id(0)])
            k.barrier()
            k.store(y, k.global_id(0), sh[31 - t])
            return k.finish()

        x = np.arange(64, dtype=np.int32)
        _run_both(build, 2, 32, {"x": x, "y": np.zeros(64, dtype=np.int32)})

    def test_selp(self):
        def build(dialect):
            k = KernelBuilder("sel", dialect)
            o = k.buffer("o", Scalar.F32)
            t = k.let("t", k.tid.x, Scalar.S32)
            k.store(o, t, k.select(t < 8, 1.5, -1.5))
            return k.finish()

        _run_both(build, 1, 16, {"o": np.zeros(16, dtype=np.float32)})

    def test_partial_last_block_masked(self):
        def build(dialect):
            k = KernelBuilder("pm", dialect)
            o = k.buffer("o", Scalar.S32)
            n = k.scalar("n", Scalar.S32)
            i = k.let("i", k.global_id(0), Scalar.S32)
            with k.if_(i < n):
                k.store(o, i, i + 1)
            return k.finish()

        _run_both(
            build, 2, 32, {"o": np.zeros(40, dtype=np.int32)}, scalars={"n": 40}
        )


class TestTexture:
    def test_texture_load_values(self, rng):
        k = KernelBuilder("tex", CUDA)
        a = k.buffer("a", Scalar.F32)
        o = k.buffer("o", Scalar.F32)
        idx = k.buffer("idx", Scalar.S32)
        t = k.let("t", k.global_id(0), Scalar.S32)
        k.store(o, t, k.texload(a, idx[t]))
        kern = k.finish()
        ptx = compile_cuda(kern)
        dev = SimDevice(GTX280)
        A = rng.uniform(0, 1, 64).astype(np.float32)
        I = rng.integers(0, 64, 32).astype(np.int32)
        pa, po, pi = dev.alloc(256), dev.alloc(128), dev.alloc(128)
        dev.upload(pa, A)
        dev.upload(pi, I)
        dev.launch(ptx, 1, 32, {"a": pa, "o": po, "idx": pi})
        got, _ = dev.download(po, 32, Scalar.F32)
        assert np.array_equal(got, A[I])

    def test_texture_cache_reuse_cheaper_than_global_on_gt200(self, rng):
        def build(use_tex):
            k = KernelBuilder("g", CUDA)
            a = k.buffer("a", Scalar.F32)
            o = k.buffer("o", Scalar.F32)
            idx = k.buffer("idx", Scalar.S32)
            t = k.let("t", k.global_id(0), Scalar.S32)
            acc = k.let("acc", 0.0, Scalar.F32)
            with k.for_("j", 0, 16) as j:
                v = k.texload(a, idx[t * 16 + j]) if use_tex else a[idx[t * 16 + j]]
                k.assign(acc, acc + v)
            k.store(o, t, acc)
            return k.finish()

        times = {}
        for use_tex in (True, False):
            dev = SimDevice(GTX280)
            A = rng.uniform(0, 1, 256).astype(np.float32)
            # clustered indices: cache-friendly reuse
            I = (rng.integers(0, 32, 64 * 16) + 100).astype(np.int32)
            pa, po, pi = dev.alloc(1024), dev.alloc(256), dev.alloc(4096)
            dev.upload(pa, A)
            dev.upload(pi, I)
            res = dev.launch(
                compile_cuda(build(use_tex)), 2, 32, {"a": pa, "o": po, "idx": pi}
            )
            times[use_tex] = res.kernel_seconds
        assert times[True] < times[False]


class TestLaunchValidation:
    def test_oversized_block_rejected(self):
        k = KernelBuilder("b", CUDA)
        o = k.buffer("o", Scalar.F32)
        k.store(o, k.tid.x, 0.0)
        dev = SimDevice(GTX280)  # max block 512
        p = dev.alloc(8192)
        with pytest.raises(LaunchFailure, match="OUT_OF_RESOURCES"):
            dev.launch(compile_cuda(k.finish()), 1, 1024, {"o": p})

    def test_missing_argument_rejected(self):
        k = KernelBuilder("m", CUDA)
        o = k.buffer("o", Scalar.F32)
        k.store(o, k.tid.x, 0.0)
        dev = SimDevice(GTX480)
        with pytest.raises(KeyError, match="o"):
            dev.launch(compile_cuda(k.finish()), 1, 32, {})


class TestTimingModel:
    def test_coalesced_faster_than_strided(self, rng):
        from repro.benchsuite import get_benchmark, host_for

        co = get_benchmark("DeviceMemory").run(
            host_for("cuda", GTX280), size="small", options={"pattern": "coalesced"}
        )
        st = get_benchmark("DeviceMemory").run(
            host_for("cuda", GTX280), size="small", options={"pattern": "strided"}
        )
        assert co.value > 2 * st.value  # GB/s

    def test_fermi_faster_than_gt200(self):
        from repro.benchsuite import get_benchmark, host_for

        r280 = get_benchmark("MxM").run(host_for("cuda", GTX280), size="small")
        r480 = get_benchmark("MxM").run(host_for("cuda", GTX480), size="small")
        assert r480.value > r280.value

    def test_deterministic_timing(self):
        from repro.benchsuite import get_benchmark, host_for

        a = get_benchmark("TranP").run(host_for("cuda", GTX480), size="small")
        b = get_benchmark("TranP").run(host_for("cuda", GTX480), size="small")
        assert a.kernel_seconds == b.kernel_seconds

    def test_dyn_histogram_populated(self):
        k = KernelBuilder("h", CUDA)
        o = k.buffer("o", Scalar.F32)
        k.store(o, k.global_id(0), 1.0)
        dev = SimDevice(GTX480)
        p = dev.alloc(256)
        res = dev.launch(compile_cuda(k.finish()), 2, 32, {"o": p})
        assert res.stats.dyn_hist["st.global"] == 2  # one per warp
        assert res.stats.blocks == 2
