import numpy as np
import pytest

from repro.arch import CELLBE, GTX280, GTX480, INTEL920
from repro.sim.memsys import MemorySystem


def _addrs(*vals):
    return np.asarray(vals, dtype=np.int64)


def _sizes(n, s=4):
    return np.full(n, s, dtype=np.int64)


class TestGlobalPath:
    def test_gt200_load_costs_full_latency(self):
        ms = MemorySystem(GTX280)
        a = _addrs(*(i * 4 for i in range(32)))
        c = ms.access_global(0, a, _sizes(32), is_store=False)
        assert c >= GTX280.timing.dram_latency

    def test_gt200_never_caches(self):
        ms = MemorySystem(GTX280)
        a = _addrs(*(i * 4 for i in range(32)))
        c1 = ms.access_global(0, a, _sizes(32), is_store=False)
        c2 = ms.access_global(0, a, _sizes(32), is_store=False)
        assert c1 == c2  # repeat access: same cost, no cache

    def test_fermi_second_access_hits_l1(self):
        ms = MemorySystem(GTX480)
        a = _addrs(*(i * 4 for i in range(32)))
        miss = ms.access_global(0, a, _sizes(32), is_store=False)
        hit = ms.access_global(0, a, _sizes(32), is_store=False)
        assert hit < miss
        assert hit == GTX480.timing.l1_hit

    def test_fermi_l2_shared_across_cus(self):
        ms = MemorySystem(GTX480)
        a = _addrs(*(i * 4 for i in range(32)))
        ms.access_global(0, a, _sizes(32), is_store=False)  # CU0 fills L2
        cu1 = ms.access_global(1, a, _sizes(32), is_store=False)
        assert cu1 == GTX480.timing.l2_hit + 0  # L1 miss, L2 hit

    def test_store_cheaper_than_load(self):
        ms = MemorySystem(GTX280)
        a = _addrs(*(i * 4 for i in range(32)))
        st = ms.access_global(0, a, _sizes(32), is_store=True)
        ld = ms.access_global(0, a, _sizes(32), is_store=False)
        assert st < ld

    def test_traffic_accounted_per_cu(self):
        ms = MemorySystem(GTX280)
        a = _addrs(*(i * 4 for i in range(32)))
        ms.access_global(3, a, _sizes(32), is_store=False)
        assert ms.dram_bytes[3] > 0
        assert ms.dram_bytes[0] == 0

    def test_region_counts_track_dram_hits(self):
        ms = MemorySystem(GTX280)
        a = _addrs(0, 4, 8)
        ms.access_global(0, a, _sizes(3), is_store=False)
        assert sum(ms.region_counts.values()) >= 1


class TestConstPath:
    def test_broadcast_single_address_cheap_after_warmup(self):
        ms = MemorySystem(GTX280)
        a = np.zeros(32, dtype=np.int64)
        ms.access_const(0, a)  # compulsory miss
        hit = ms.access_const(0, a)
        assert hit == GTX280.timing.const_hit

    def test_distinct_addresses_serialize(self):
        ms = MemorySystem(GTX280)
        same = np.zeros(32, dtype=np.int64)
        spread = np.arange(32, dtype=np.int64) * 4
        ms.access_const(0, same)
        ms.access_const(0, spread)  # warm
        t_same = ms.access_const(0, same)
        t_spread = ms.access_const(0, spread)
        assert t_spread > t_same  # one broadcast vs. serialized words


class TestTexturePath:
    def test_reuse_hits_cache(self):
        ms = MemorySystem(GTX280)
        a = _addrs(*(i * 4 for i in range(32)))
        miss = ms.access_texture(0, a, _sizes(32))
        hit = ms.access_texture(0, a, _sizes(32))
        assert hit < miss

    def test_texture_cache_per_cu(self):
        ms = MemorySystem(GTX280)
        a = _addrs(*(i * 4 for i in range(32)))
        ms.access_texture(0, a, _sizes(32))
        other = ms.access_texture(1, a, _sizes(32))  # cold on CU1
        assert other > ms.access_texture(0, a, _sizes(32))


class TestSharedPath:
    def test_conflict_free_base_cost(self):
        ms = MemorySystem(GTX480)
        a = np.arange(32, dtype=np.int64) * 4
        assert ms.access_shared(0, a) == GTX480.timing.shared_latency

    def test_conflicts_add_replays(self):
        ms = MemorySystem(GTX480)
        conflict = np.arange(32, dtype=np.int64) * 4 * 32  # same bank
        free = np.arange(32, dtype=np.int64) * 4
        assert ms.access_shared(0, conflict) > ms.access_shared(0, free)

    def test_cpu_local_memory_flat_cost(self):
        ms = MemorySystem(INTEL920)
        conflict = np.arange(4, dtype=np.int64) * 4 * 32
        free = np.arange(4, dtype=np.int64) * 4
        # no banked SRAM on a CPU: no conflict concept
        assert ms.access_shared(0, conflict) == ms.access_shared(0, free)


class TestLocalSpillPath:
    def test_gt200_spills_cost_dram_traffic(self):
        ms = MemorySystem(GTX280)
        before = ms.dram_bytes[0]
        c = ms.access_local(0, 4, 4)
        assert ms.dram_bytes[0] > before
        assert c > GTX280.timing.tx_cycles

    def test_fermi_spills_land_in_l1(self):
        ms = MemorySystem(GTX480)
        before = ms.dram_bytes[0]
        c = ms.access_local(0, 4, 4)
        assert ms.dram_bytes[0] == before  # cached
        assert c == GTX480.timing.l1_hit
