"""Exhaustive per-opcode semantics: each virtual-ISA operation compiled
from IR and cross-checked against numpy on the simulator."""
import numpy as np
import pytest

from repro.arch import GTX480
from repro.compiler import compile_cuda
from repro.kir import CUDA, KernelBuilder, Scalar
from repro.sim import SimDevice


def _run_unary(build_expr, x, out_dtype=np.float32, in_scalar=Scalar.F32):
    k = KernelBuilder("u", CUDA)
    a = k.buffer("a", in_scalar)
    o = k.buffer(
        "o",
        {np.float32: Scalar.F32, np.int32: Scalar.S32, np.uint32: Scalar.U32}[
            out_dtype
        ],
    )
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, build_expr(k, a[t]))
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480)
    pa, po = dev.alloc(x.nbytes), dev.alloc(x.size * 4)
    dev.upload(pa, x)
    dev.launch(ptx, 1, x.size, {"a": pa, "o": po})
    sc = {np.float32: Scalar.F32, np.int32: Scalar.S32, np.uint32: Scalar.U32}[
        out_dtype
    ]
    got, _ = dev.download(po, x.size, sc)
    return got


@pytest.fixture
def xs():
    return np.linspace(0.25, 4.0, 32).astype(np.float32)


def test_sqrt(xs):
    got = _run_unary(lambda k, v: k.sqrt(v), xs)
    np.testing.assert_allclose(got, np.sqrt(xs), rtol=1e-6)


def test_rsqrt(xs):
    got = _run_unary(lambda k, v: k.rsqrt(v), xs)
    np.testing.assert_allclose(got, 1 / np.sqrt(xs), rtol=1e-6)


def test_sin_cos(xs):
    got = _run_unary(lambda k, v: k.sin(v) + k.cos(v), xs)
    np.testing.assert_allclose(got, np.sin(xs) + np.cos(xs), rtol=1e-5)


def test_exp_via_ex2(xs):
    got = _run_unary(lambda k, v: k.exp(v), xs)
    np.testing.assert_allclose(got, np.exp(xs), rtol=1e-5)


def test_floor_and_abs(xs):
    got = _run_unary(lambda k, v: k.floor(v) + k.abs(-v), xs)
    np.testing.assert_allclose(got, np.floor(xs) + np.abs(xs), rtol=1e-6)


def test_f2i_truncates_toward_zero():
    x = np.array([-2.7, -0.5, 0.5, 2.7] * 8, dtype=np.float32)
    got = _run_unary(lambda k, v: k.f2i(v), x, out_dtype=np.int32)
    np.testing.assert_array_equal(got, x.astype(np.int32))


def test_i2f_conversion():
    x = np.arange(-16, 16, dtype=np.int32)
    got = _run_unary(lambda k, v: k.i2f(v), x, in_scalar=Scalar.S32)
    np.testing.assert_array_equal(got, x.astype(np.float32))


def test_integer_division_semantics():
    x = np.array([7, -7, 15, 1] * 8, dtype=np.int32)
    got = _run_unary(lambda k, v: v / 3, x, out_dtype=np.int32, in_scalar=Scalar.S32)
    # floor division (numpy //) semantics, as documented
    np.testing.assert_array_equal(got, x // 3)


def test_division_by_zero_is_defined_as_zero():
    k = KernelBuilder("z", CUDA)
    a = k.buffer("a", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, a[t] / a[t + 16])  # second half holds zeros
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480)
    A = np.concatenate([np.arange(1, 17), np.zeros(16)]).astype(np.int32)
    pa, po = dev.alloc(128), dev.alloc(64)
    dev.upload(pa, A)
    dev.launch(ptx, 1, 16, {"a": pa, "o": po})
    got, _ = dev.download(po, 16, Scalar.S32)
    assert (got == 0).all()


def test_min_max():
    x = np.arange(32, dtype=np.int32)
    got = _run_unary(
        lambda k, v: k.min(v, 10) + k.max(v, 20),
        x,
        out_dtype=np.int32,
        in_scalar=Scalar.S32,
    )
    np.testing.assert_array_equal(got, np.minimum(x, 10) + np.maximum(x, 20))


def test_shift_count_masked_to_31():
    x = np.full(32, 2, dtype=np.int32)
    got = _run_unary(
        lambda k, v: v << 33, x, out_dtype=np.int32, in_scalar=Scalar.S32
    )
    np.testing.assert_array_equal(got, x << 1)  # 33 & 31 == 1


def test_f64_pipeline():
    k = KernelBuilder("d", CUDA)
    a = k.buffer("a", Scalar.F64)
    o = k.buffer("o", Scalar.F64)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, a[t] * a[t] + 1.0)
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480)
    A = np.linspace(0, 1, 32)
    pa, po = dev.alloc(256), dev.alloc(256)
    dev.upload(pa, A)
    dev.launch(ptx, 1, 32, {"a": pa, "o": po})
    got, _ = dev.download(po, 32, Scalar.F64)
    np.testing.assert_allclose(got, A * A + 1.0)


def test_geometry_registers_all_dims():
    k = KernelBuilder("g", CUDA)
    o = k.buffer("o", Scalar.S32)
    lin = k.let(
        "lin",
        (k.ctaid.y * k.nctaid.x + k.ctaid.x) * (k.ntid.x * k.ntid.y)
        + k.tid.y * k.ntid.x
        + k.tid.x,
        Scalar.S32,
    )
    k.store(o, lin, lin)
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480)
    po = dev.alloc(4 * 4 * 4 * 4 * 4)
    dev.launch(ptx, (2, 2), (4, 4), {"o": po})
    got, _ = dev.download(po, 64, Scalar.S32)
    np.testing.assert_array_equal(got, np.arange(64, dtype=np.int32))


# ---------------------------------------------------------------------------
# shift-count masking follows the operand width (PTX shl/shr semantics:
# the count is taken mod 32 for 32-bit operands and mod 64 for 64-bit)
# ---------------------------------------------------------------------------


def _run_u64_shift(op, x, counts):
    k = KernelBuilder("sh64", CUDA)
    a = k.buffer("a", Scalar.U64)
    s = k.buffer("s", Scalar.U32)
    o = k.buffer("o", Scalar.U64)
    t = k.let("t", k.tid.x, Scalar.S32)
    v = k.let("v", a[t], Scalar.U64)
    c = k.let("c", s[t], Scalar.U32)
    k.store(o, t, (v << c) if op == "shl" else (v >> c))
    ptx = compile_cuda(k.finish())
    dev = SimDevice(GTX480)
    pa, ps, po = dev.alloc(x.nbytes), dev.alloc(counts.nbytes), dev.alloc(x.nbytes)
    dev.upload(pa, x)
    dev.upload(ps, counts)
    dev.launch(ptx, 1, x.size, {"a": pa, "s": ps, "o": po})
    return dev.download(po, x.size, Scalar.U64)[0]


def test_shift_count_masked_to_63_for_u64():
    # counts 32..63 are meaningful for 64-bit operands — a 31 mask (the
    # 32-bit rule) would silently reduce them all to 0..31
    x = np.arange(1, 33, dtype=np.uint64) * np.uint64(0x0123456789ABCDEF)
    counts = (np.arange(32, dtype=np.uint32) + 20) % 70  # spans >= 64 too
    m = counts.astype(np.uint64) & np.uint64(63)
    np.testing.assert_array_equal(_run_u64_shift("shl", x, counts), x << m)
    np.testing.assert_array_equal(_run_u64_shift("shr", x, counts), x >> m)


def test_u64_shift_matches_reference_evaluator():
    from repro.kir import eval_kernel

    k = KernelBuilder("sh64e", CUDA)
    a = k.buffer("a", Scalar.U64)
    s = k.buffer("s", Scalar.U32)
    o = k.buffer("o", Scalar.U64)
    t = k.let("t", k.tid.x, Scalar.S32)
    v = k.let("v", a[t], Scalar.U64)
    c = k.let("c", s[t], Scalar.U32)
    k.store(o, t, (v << c) | (v >> c))
    kern = k.finish()
    x = np.arange(1, 17, dtype=np.uint64) * np.uint64(0xDEADBEEFCAFE)
    counts = np.arange(16, dtype=np.uint32) * 5  # 0..75
    env = {"a": x.copy(), "s": counts.copy(), "o": np.zeros_like(x)}
    eval_kernel(kern, 1, 16, env)
    ptx = compile_cuda(kern)
    dev = SimDevice(GTX480)
    pa, ps, po = dev.alloc(x.nbytes), dev.alloc(counts.nbytes), dev.alloc(x.nbytes)
    dev.upload(pa, x)
    dev.upload(ps, counts)
    dev.launch(ptx, 1, 16, {"a": pa, "s": ps, "o": po})
    got = dev.download(po, 16, Scalar.U64)[0]
    np.testing.assert_array_equal(got, env["o"])


# ---------------------------------------------------------------------------
# SFU special-value semantics: the simulator propagates IEEE specials the
# way real CUDA/OpenCL hardware does (no clamping of domain errors)
# ---------------------------------------------------------------------------


def test_sqrt_propagates_nan():
    x = np.array([4.0, -4.0, np.nan, 0.0] * 8, dtype=np.float32)
    got = _run_unary(lambda k, v: k.sqrt(v), x)
    assert got[0] == 2.0 and got[3] == 0.0
    assert np.isnan(got[1])  # sqrt(negative) -> NaN, not clamped to 0
    assert np.isnan(got[2])  # NaN propagates


def test_exp_overflow_saturates_to_inf():
    # exp lowers to EX2 (2^x after scaling); overflow must saturate to
    # +inf like the hardware SFU, not clamp to FLT_MAX
    x = np.array([0.0, 1.0, 200.0, -200.0] * 8, dtype=np.float32)
    got = _run_unary(lambda k, v: k.exp(v), x)
    assert got[0] == 1.0
    np.testing.assert_allclose(got[1], np.float32(np.e), rtol=1e-6)
    assert np.isinf(got[2]) and got[2] > 0  # e^200 overflows f32 -> +inf
    assert got[3] == 0.0  # e^-200 underflows -> 0


def test_log_zero_and_negative():
    # log lowers to LG2 (no domain clamping): log(0) is -inf and
    # log(negative) is NaN, exactly as on the device
    from repro.kir.expr import UnOp

    x = np.array([1.0, np.e, 0.0, -2.0] * 8, dtype=np.float32)
    got = _run_unary(lambda k, v: UnOp("log", v), x)
    assert got[0] == 0.0
    np.testing.assert_allclose(got[1], 1.0, rtol=1e-6)
    assert np.isneginf(got[2])  # log(0) -> -inf
    assert np.isnan(got[3])  # log(negative) -> NaN
