"""Property-based tests (hypothesis) on core invariants.

The flagship property: *any* kernel expressible in the IR must produce
identical results through ``compile -> SIMT-simulate`` (both front ends)
and through the independent reference evaluator.  Random expression
kernels exercise the whole lowering/interpreter surface.
"""
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.arch import GTX280, GTX480, LRUCache, coalesce, segments_gt200
from repro.compiler import compile_cuda, compile_opencl
from repro.compiler.passes.constfold import fold_constants
from repro.compiler.passes.unroll import unroll_loops
from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar, eval_kernel
from repro.kir.expr import BinOp, Const, Expr, UnOp, Var
from repro.sim import FlatMemory, SimDevice

# ---------------------------------------------------------------------------
# random integer expression trees over one variable + one loaded value
# ---------------------------------------------------------------------------

_INT_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "min", "max"]


def _int_exprs(depth: int):
    leaf = st.one_of(
        st.integers(-100, 100).map(lambda v: Const(v, Scalar.S32)),
        st.just(Var("t", Scalar.S32)),
        st.just(Var("v", Scalar.S32)),
    )
    if depth == 0:
        return leaf
    sub = _int_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_INT_BINOPS), sub, sub).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["neg", "abs"]), sub).map(
            lambda t: UnOp(t[0], t[1])
        ),
    )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(expr=_int_exprs(3), data=st.lists(st.integers(-1000, 1000), min_size=32, max_size=32))
def test_compile_simulate_matches_reference_evaluator(expr, data):
    """compile+simulate == reference evaluation, for both front ends."""
    outs = {}
    for dialect, comp, spec in (
        (CUDA, compile_cuda, GTX480),
        (OPENCL, compile_opencl, GTX480),
    ):
        k = KernelBuilder("prop", dialect)
        a = k.buffer("a", Scalar.S32)
        o = k.buffer("o", Scalar.S32)
        t = k.let("t", k.tid.x, Scalar.S32)
        v = k.let("v", a[t])
        k.store(o, t, expr)
        kern = k.finish()

        A = np.array(data, dtype=np.int32)
        ref = np.zeros(32, dtype=np.int32)
        eval_kernel(kern, 1, 32, {"a": A.copy(), "o": ref})

        dev = SimDevice(spec)
        pa, po = dev.alloc(128), dev.alloc(128)
        dev.upload(pa, A)
        dev.launch(comp(kern, max_regs=63), 1, 32, {"a": pa, "o": po})
        got, _ = dev.download(po, 32, Scalar.S32)
        np.testing.assert_array_equal(got, ref, err_msg=dialect.name)
        outs[dialect.name] = got
    # and the two toolchains agree with each other
    np.testing.assert_array_equal(outs["cuda"], outs["opencl"])


@settings(max_examples=25, deadline=None)
@given(
    start=st.integers(0, 5),
    stop=st.integers(0, 20),
    step=st.integers(1, 4),
    factor=st.integers(2, 8),
)
def test_unroll_preserves_loop_semantics(start, stop, step, factor):
    def build(unroll):
        k = KernelBuilder("u", CUDA)
        o = k.buffer("o", Scalar.S32)
        acc = k.let("acc", 0)
        with k.for_("i", start, stop, step, unroll=unroll) as i:
            k.assign(acc, acc * 3 + i)
        k.store(o, k.tid.x, acc)
        return k.finish()

    k = KernelBuilder("u", CUDA)
    base = build(None)
    unrolled, _ = unroll_loops(build(k.unroll(factor)), auto_limit=0)
    o1 = np.zeros(1, dtype=np.int32)
    o2 = np.zeros(1, dtype=np.int32)
    eval_kernel(base, 1, 1, {"o": o1})
    eval_kernel(unrolled, 1, 1, {"o": o2})
    assert o1[0] == o2[0]


@settings(max_examples=30, deadline=None)
@given(expr=_int_exprs(3))
def test_constfold_preserves_semantics(expr):
    def build():
        k = KernelBuilder("cf", CUDA)
        a = k.buffer("a", Scalar.S32)
        o = k.buffer("o", Scalar.S32)
        t = k.let("t", k.tid.x, Scalar.S32)
        v = k.let("v", a[t])
        k.store(o, t, expr)
        return k.finish()

    kern = build()
    folded = fold_constants(kern, prune_branches=True, algebraic=True)
    A = np.arange(-4, 4, dtype=np.int32)
    o1 = np.zeros(8, dtype=np.int32)
    o2 = np.zeros(8, dtype=np.int32)
    eval_kernel(kern, 1, 8, {"a": A.copy(), "o": o1})
    eval_kernel(folded, 1, 8, {"a": A.copy(), "o": o2})
    np.testing.assert_array_equal(o1, o2)


# ---------------------------------------------------------------------------
# architectural invariants
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32),
)
def test_coalescer_covers_all_accesses(raw):
    addrs = np.array(sorted(a * 4 for a in raw), dtype=np.int64)
    sizes = np.full(addrs.size, 4, dtype=np.int64)
    for spec in (GTX280, GTX480):
        bases, traffic = coalesce(spec, addrs, sizes)
        assert traffic >= addrs.size * 0  # non-negative
        if spec is GTX480:
            # every access falls inside some returned line
            lines = set(bases.tolist())
            for a in addrs.tolist():
                assert (a // 128) * 128 in lines


@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32),
    sizes=st.lists(st.integers(1, 16), min_size=32, max_size=32),
)
def test_coalescer_coverage_and_conservation(addrs, sizes):
    """Every byte a lane touches lies inside some returned segment, and
    the summed segment widths cover at least the touched bytes — for
    arbitrary (unaligned, straddling) addr/size vectors on both
    architectures.  This is the property the two coalescer bugs broke.
    """
    a = np.array(addrs, dtype=np.int64)
    s = np.array(sizes[: a.size], dtype=np.int64)
    touched = set()
    for ai, si in zip(a.tolist(), s.tolist()):
        touched.update(range(ai, ai + si))
    for spec in (GTX280, GTX480):
        if spec is GTX280:
            bases, widths = segments_gt200(a, s)
        else:
            from repro.arch import segments_lines

            bases, widths = segments_lines(a, s, spec.line_bytes)
        covered = set()
        for b, w in zip(bases.tolist(), widths.tolist()):
            covered.update(range(int(b), int(b) + int(w)))
        missing = touched - covered
        assert not missing, (
            f"{spec.name}: {len(missing)} touched bytes outside every "
            f"segment (e.g. {sorted(missing)[:4]})"
        )
        assert int(widths.sum()) >= len(touched)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=16))
def test_gt200_segments_aligned_and_bounded(raw):
    addrs = np.array([a * 4 for a in raw], dtype=np.int64)
    sizes = np.full(addrs.size, 4, dtype=np.int64)
    bases, widths = segments_gt200(addrs, sizes)
    assert bases.size <= 2 * 16  # at most one segment per access
    for b, w in zip(bases.tolist(), widths.tolist()):
        assert w in (32, 64, 128)
        assert b % w == 0  # aligned to its own width


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=64))
def test_lru_cache_hit_rate_bounds(lines):
    c = LRUCache(16 * 64, 64, ways=4)
    for l in lines:
        c.access(l * 64)
    assert 0 <= c.stats.hit_rate() <= 1
    assert c.stats.accesses == len(lines)
    # a second identical pass over a working set within capacity must hit
    c2 = LRUCache(1 << 20, 64, ways=16)
    for l in lines:
        c2.access(l * 64)
    before = c2.stats.hits
    for l in lines:
        c2.access(l * 64)
    assert c2.stats.hits - before == len(lines)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-(1 << 31), (1 << 31) - 1), min_size=1, max_size=64),
)
def test_flatmemory_roundtrip(values):
    m = FlatMemory(1 << 16)
    base = m.alloc(len(values) * 4)
    arr = np.array(values, dtype=np.int32)
    addrs = base + np.arange(arr.size, dtype=np.int64) * 4
    m.store(addrs, arr, Scalar.S32)
    assert np.array_equal(m.load(addrs, Scalar.S32), arr)


# ---------------------------------------------------------------------------
# benchmark-level invariants
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1))
def test_scan_matches_cumsum_for_any_seed(seed):
    """Scan output is an exclusive prefix sum for arbitrary inputs."""
    from repro.benchsuite.apps.scan import SEG, WG, _add_offsets_kernel, _scan_kernel
    from repro.kir import OPENCL

    rng = np.random.default_rng(seed)
    data = rng.integers(0, 100, SEG).astype(np.int32)
    kern = _scan_kernel(OPENCL)
    sh_out = np.zeros(SEG, dtype=np.int32)
    sums = np.zeros(1, dtype=np.int32)
    eval_kernel(
        kern, 1, WG, {"inp": data.copy(), "out": sh_out, "sums": sums}
    )
    ref = np.concatenate([[0], np.cumsum(data[:-1])])
    assert np.array_equal(sh_out, ref)
    assert sums[0] == data.sum()


# ---------------------------------------------------------------------------
# cold-path bit-identity: block-batched stepping and launch memoization
# may change only *how fast* a launch simulates, never any number it
# produces (ISSUE 6 tentpole contract)
# ---------------------------------------------------------------------------

import contextlib
import os

from repro.arch import CELLBE


@contextlib.contextmanager
def _sim_env(batch=None, memo=False):
    saved = {k: os.environ.get(k) for k in ("REPRO_SIM_BATCH", "REPRO_SIM_MEMO")}
    try:
        if batch is None:
            os.environ.pop("REPRO_SIM_BATCH", None)
        else:
            os.environ["REPRO_SIM_BATCH"] = str(batch)
        os.environ["REPRO_SIM_MEMO"] = "1" if memo else "0"
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _launch_series(spec, ptx, data, repeats):
    """Launch ``repeats`` times; return every observable number."""
    dev = SimDevice(spec)
    pa, po = dev.alloc(data.nbytes), dev.alloc(data.nbytes)
    dev.upload(pa, data)
    series = []
    for _ in range(repeats):
        r = dev.launch(ptx, 5, 48, {"a": pa, "o": po})
        series.append(
            (
                r.timing.total_s,
                r.stats.warp_instructions,
                r.stats.barriers,
                dict(r.stats.dyn_hist),
                dict(r.stats.cyc_hist),
                r.profile.issue_cycles,
                r.profile.instr_counts,
            )
        )
    out = dev.download(po, data.size, Scalar.S32)[0]
    snap = dev.memsys.prof_snapshot()
    return (
        series,
        out.tobytes(),
        snap["dram_bytes"].tobytes(),  # exact float bit patterns
        snap["caches"],
        snap["gmem_requests"],
        snap["gmem_transactions"],
    )


@pytest.mark.parametrize(
    "spec,comp,dialect",
    [(GTX480, compile_cuda, CUDA), (CELLBE, compile_opencl, OPENCL)],
    ids=lambda v: getattr(v, "name", None) or "",
)
@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    expr=_int_exprs(3),
    data=st.lists(st.integers(-1000, 1000), min_size=240, max_size=240),
)
def test_batched_and_memoized_execution_bit_identical(
    spec, comp, dialect, expr, data
):
    """Per-block, block-batched, and memoized runs agree bit-for-bit.

    The grid uses 48-thread blocks (not a warp multiple) so the batched
    fast paths must handle masked padding lanes, and 5 blocks so the
    batch actually spans several blocks.
    """
    k = KernelBuilder("bb", dialect)
    a = k.buffer("a", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.global_id(0), Scalar.S32)
    v = k.let("v", a[t])
    k.store(o, t, expr)
    ptx = comp(k.finish(), max_regs=63)
    A = np.array(data, dtype=np.int32)

    with _sim_env(batch=1, memo=False):
        per_block = _launch_series(spec, ptx, A, repeats=4)
    with _sim_env(batch=None, memo=False):
        batched = _launch_series(spec, ptx, A, repeats=4)
    with _sim_env(batch=None, memo=True):
        memoized = _launch_series(spec, ptx, A, repeats=4)

    assert batched == per_block
    assert memoized == per_block
