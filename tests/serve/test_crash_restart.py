"""kill -9 the daemon mid-sweep: zero lost, zero duplicated, same bytes.

The PR's acceptance scenario, end to end, with real processes:

1. a sequential no-crash reference sweep (``repro.benchsuite``) writes
   the canonical results document into its own cache;
2. a daemon (``python -m repro.serve --jobs 4``) takes the same units
   as one tenant submission, is SIGKILLed mid-sweep (workers and all),
   and is then restarted over the same workdir;
3. the restarted daemon replays the queue WAL, reclaims every orphaned
   lease, finishes the ticket, and serves results **byte-identical**
   to the reference — with every unit simulated at most once per
   granted lease and exactly one terminal ``done`` per digest.
"""
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient
from repro.serve.wal import replay, wal_path

SRC = Path(__file__).resolve().parents[2] / "src"

BENCHES = ["BFS", "Sobel", "TranP", "Reduce", "MD", "SPMV"]
UNITS = [
    {"benchmark": n, "api": api, "device": "GTX480", "size": "small"}
    for n in BENCHES
    for api in ("cuda", "opencl")
]


def clean_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_CACHE_DIR", None)
    env["REPRO_HEARTBEAT_S"] = "0.5"  # lease TTL 1.5s: fast reclaim
    return env


def start_daemon(cache, env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--cache-dir", str(cache),
         "--jobs", "4", "--grace", "20"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    endpoint = Path(cache) / "serve" / "endpoint.json"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if endpoint.exists():
            try:
                ep = json.loads(endpoint.read_text())
            except ValueError:
                ep = None
            if ep and ep.get("pid") == proc.pid:
                client = ServeClient(ep["host"], ep["port"])
                if client.alive():
                    return proc, client
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise AssertionError(
                f"daemon died during boot (exit {proc.returncode}):\n{out}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never advertised an endpoint")


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """Reference sweep + killed-and-restarted daemon sweep, once."""
    env = clean_env()

    # 1. the sequential no-crash reference
    ref_cache = tmp_path_factory.mktemp("serve-ref")
    ref_json = ref_cache / "results.json"
    ref = subprocess.run(
        [sys.executable, "-m", "repro.benchsuite", *BENCHES,
         "--device", "GTX480", "--api", "both", "--size", "small",
         "--jobs", "1", "--quiet", "--cache-dir", str(ref_cache),
         "--results-json", str(ref_json)],
        capture_output=True, text=True, env=env, timeout=540,
    )
    assert ref.returncode == 0, ref.stdout + ref.stderr
    ref_bytes = ref_json.read_bytes()

    # 2. daemon sweep, SIGKILLed mid-flight.  A deterministic hang
    # fault pins the two MD units in their leases (the other ten run
    # clean), so the kill provably lands with leases open — no timing
    # luck involved.
    cache = tmp_path_factory.mktemp("serve-crash")
    env_hang = dict(env, REPRO_FAULTS="hang:MD/*:1.0:1:12")
    proc, client = start_daemon(cache, env_hang)
    ticket = client.submit("alice", UNITS)["ticket"]
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        st = client.status()
        if st["units"]["done"] >= len(UNITS) - 2 and st["units"]["leased"]:
            break
        time.sleep(0.05)
    else:
        raise AssertionError(f"sweep never reached the hang point: {st}")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(30)

    killed = replay(wal_path(cache))
    # the kill was mid-sweep: something must have been left undone
    assert killed.state == "running"  # no terminal state record: murdered

    # 3. restart over the same workdir; the old ticket must finish
    proc2, client2 = start_daemon(cache, env)
    try:
        deadline = time.monotonic() + 480
        while time.monotonic() < deadline:
            st = client2.ticket(ticket)
            if st["complete"]:
                break
            time.sleep(0.2)
        else:
            raise AssertionError(f"ticket never completed: {st['units']}")
        out_bytes = client2.ticket_results(ticket)
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(60)
        except subprocess.TimeoutExpired:
            proc2.kill()
            raise
    return {
        "ref_bytes": ref_bytes,
        "out_bytes": out_bytes,
        "killed": killed,
        "final": replay(wal_path(cache)),
        "ticket_status": st,
        "daemon_exit": proc2.returncode,
    }


class TestCrashRestart:
    def test_results_byte_identical_to_sequential_reference(self, scenario):
        assert scenario["out_bytes"] == scenario["ref_bytes"]

    def test_zero_lost_units(self, scenario):
        st = scenario["ticket_status"]
        assert st["units"] == {"queued": 0, "leased": 0,
                               "done": len(UNITS), "failed": 0}

    def test_zero_duplicated_units(self, scenario):
        # exactly one terminal done per digest, ever, across both boots
        done = [
            u.digest for u in scenario["final"].units.values()
            if u.state == "done"
        ]
        assert len(done) == len(set(done)) == len(UNITS)

    def test_done_records_are_unique_per_digest(self, scenario):
        rep = scenario["final"]
        # count raw done records straight off the WAL
        counts = {}
        for line in Path(rep.path).read_text().splitlines():
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if rec.get("t") == "done":
                counts[rec["d"]] = counts.get(rec["d"], 0) + 1
        assert counts, "no done records at all?"
        dupes = {d: n for d, n in counts.items() if n > 1}
        assert not dupes, f"duplicated done records: {dupes}"
        assert len(counts) == len(UNITS)

    def test_orphaned_leases_were_reclaimed_not_lost(self, scenario):
        killed = scenario["killed"]
        final = scenario["final"]
        # every lease open at the kill was requeued by the next boot...
        assert killed.open_leases, "kill landed with no lease open?"
        requeued = set()
        for line in Path(final.path).read_text().splitlines():
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if rec.get("t") == "requeue" and rec.get("reason") == "daemon-restart":
                requeued.add(rec["d"])
        assert set(killed.open_leases) <= requeued
        # ...and no lease is open once the queue drained
        assert final.open_leases == {}

    def test_fencing_floor_rose_past_the_dead_boot(self, scenario):
        assert scenario["final"].epoch == scenario["killed"].epoch + 1
        assert scenario["final"].next_token >= scenario["killed"].next_token

    def test_graceful_shutdown_exits_clean(self, scenario):
        # SIGTERM after an emptied queue: 0 under the 0/1/75 contract
        assert scenario["daemon_exit"] == 0
