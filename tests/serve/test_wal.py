"""The daemon queue WAL: durable appends, torn-tolerant replay, fencing floor."""
import json

from repro.serve.wal import QueueWAL, UnitEntry, replay, serve_dir, wal_path

UNIT = {"benchmark": "Sobel", "api": "cuda", "device": "GTX480",
        "size": "small", "options": []}


def make_wal(tmp_path):
    return QueueWAL(wal_path(tmp_path))


class TestAppendReplay:
    def test_paths_live_under_serve_dir(self, tmp_path):
        assert wal_path(tmp_path).parent == serve_dir(tmp_path)

    def test_empty_or_missing_wal_replays_empty(self, tmp_path):
        rep = replay(wal_path(tmp_path))
        assert rep.units == {} and rep.tickets == {}
        assert rep.epoch == 0 and rep.next_token == 1

    def test_submit_lease_done_roundtrip(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_boot(1, 4)
            w.record_submit("t-1", "alice", "d1", "Sobel/cuda", UNIT)
            w.record_lease("d1", 1, 1)
            w.record_done("d1", 1, "run")
        rep = replay(wal_path(tmp_path))
        assert rep.epoch == 1
        assert rep.units["d1"].state == "done"
        assert rep.units["d1"].source == "run"
        assert rep.open_leases == {}
        assert rep.tickets["t-1"].digests == ["d1"]
        assert rep.tickets["t-1"].tenant == "alice"

    def test_open_lease_survives_replay(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_boot(1, 4)
            w.record_submit("t-1", "alice", "d1", "Sobel/cuda", UNIT)
            w.record_lease("d1", 3, 1)
        rep = replay(wal_path(tmp_path))
        assert rep.open_leases == {"d1": 3}
        assert rep.units["d1"].state == "leased"
        assert rep.queued_digests() == ["d1"]

    def test_requeue_returns_unit_to_queue(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_submit("t-1", "a", "d1", "l", UNIT)
            w.record_lease("d1", 1, 1)
            w.record_requeue("d1", 1, "lease-expired")
        rep = replay(wal_path(tmp_path))
        assert rep.units["d1"].state == "queued"
        assert rep.open_leases == {}

    def test_next_token_floor_covers_every_token_ever_seen(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_submit("t-1", "a", "d1", "l", UNIT)
            w.record_lease("d1", 7, 1)
            w.record_requeue("d1", 7, "x")
            w.record_lease("d1", 9, 2)
            w.record_done("d1", 9, "run")
        rep = replay(wal_path(tmp_path))
        # tokens are never reused, not even after the holder finished
        assert rep.next_token == 10

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_boot(1, 2)
            w.record_submit("t-1", "a", "d1", "l", UNIT)
        with open(wal_path(tmp_path), "a") as f:
            f.write('{"t": "lease", "d": "d1", "tok')  # kill -9 mid-append
        rep = replay(wal_path(tmp_path))
        assert rep.torn_lines == 1
        assert rep.units["d1"].state == "queued"

    def test_boot_resets_terminal_state(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_boot(1, 2)
            w.record_state("stopped")
            w.record_boot(2, 2)
        rep = replay(wal_path(tmp_path))
        assert rep.state == "running"
        assert rep.epoch == 2

    def test_records_are_compact_sorted_json(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_boot(1, 2)
        line = wal_path(tmp_path).read_text().splitlines()[0]
        rec = json.loads(line)
        assert line == json.dumps(rec, sort_keys=True, separators=(",", ":"))

    def test_fenced_and_reject_are_audit_only(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_submit("t-1", "a", "d1", "l", UNIT)
            w.record_reject("b", "quota", 3)
            w.record_fenced("d1", 42)
        rep = replay(wal_path(tmp_path))
        assert rep.units["d1"].state == "queued"
        # only lease records mint tokens; fenced records mention one
        # that some lease record already covered
        assert rep.next_token == 1

    def test_heartbeat_progress_survives_replay(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_heartbeat(0.5, queued=2, leased=1, done=3, failed=0)
        rep = replay(wal_path(tmp_path))
        assert rep.last_heartbeat["done"] == 3
        assert rep.last_heartbeat["interval"] == 0.5

    def test_unit_entry_tracks_fanin(self, tmp_path):
        with make_wal(tmp_path) as w:
            w.record_submit("t-1", "alice", "d1", "l", UNIT)
            w.record_submit("t-2", "bob", "d1", "l", UNIT)
        rep = replay(wal_path(tmp_path))
        e = rep.units["d1"]
        assert isinstance(e, UnitEntry)
        assert e.owner == "alice"  # first submitter is charged
        assert e.tenants == {"alice", "bob"}
        assert e.tickets == {"t-1", "t-2"}
