"""Lease fencing: monotonic tokens, renewal, reclaim, late-holder rejection."""
import pytest

from repro.obs.registry import STALE_BEATS
from repro.serve.lease import LeaseManager, default_ttl


class TestLeaseManager:
    def test_tokens_are_monotonic_and_never_reused(self):
        lm = LeaseManager(ttl=10.0)
        a = lm.acquire("d1", 1)
        assert lm.release("d1", a.token)
        b = lm.acquire("d1", 2)
        assert b.token == a.token + 1

    def test_floor_from_wal_replay_fences_old_boots(self):
        lm = LeaseManager(ttl=10.0, floor=42)
        lease = lm.acquire("d1", 1)
        assert lease.token == 42
        # any token from before the floor (a previous daemon's grant)
        # can never complete
        assert not lm.release("d1", 41)
        assert lm.release("d1", 42)

    def test_double_acquire_is_a_bug(self):
        lm = LeaseManager(ttl=10.0)
        lm.acquire("d1", 1)
        with pytest.raises(RuntimeError):
            lm.acquire("d1", 2)

    def test_renew_pushes_deadline_and_rejects_stale_token(self):
        lm = LeaseManager(ttl=10.0)
        lease = lm.acquire("d1", 1)
        old_deadline = lease.deadline
        assert lm.renew("d1", lease.token)
        assert lm.holder("d1").deadline >= old_deadline
        assert not lm.renew("d1", lease.token + 1)
        assert not lm.renew("other", lease.token)

    def test_release_fences_stale_and_absent_tokens(self):
        lm = LeaseManager(ttl=10.0)
        lease = lm.acquire("d1", 1)
        assert not lm.release("d1", None)
        assert not lm.release("d1", lease.token + 5)
        assert lm.release("d1", lease.token)
        # a second release of the same grant is late by definition
        assert not lm.release("d1", lease.token)

    def test_reclaim_expired_removes_only_stale_leases(self):
        lm = LeaseManager(ttl=10.0)
        a = lm.acquire("d1", 1)
        lm.acquire("d2", 1)
        a.deadline = 0.0  # force expiry without sleeping
        dead = lm.reclaim_expired()
        assert [l.digest for l in dead] == ["d1"]
        assert len(lm) == 1
        # the dead holder's token is now permanently fenced
        assert not lm.release("d1", a.token)

    def test_late_done_after_reacquire_is_fenced(self):
        # the full stale-worker story: lease, reclaim, re-grant — then
        # the original holder phones home
        lm = LeaseManager(ttl=10.0)
        first = lm.acquire("d1", 1)
        first.deadline = 0.0
        lm.reclaim_expired()
        second = lm.acquire("d1", 2)
        assert second.token > first.token
        assert not lm.release("d1", first.token)  # late done: fenced
        assert lm.release("d1", second.token)  # current holder: fine


class TestDefaultTTL:
    def test_ttl_is_three_heartbeats(self):
        assert default_ttl(5.0) == STALE_BEATS * 5.0

    def test_ttl_has_a_floor_against_tiny_intervals(self):
        assert default_ttl(0.0) == STALE_BEATS * 0.1
