"""In-process SweepDaemon behavior: admission, dedup, fencing, chaos.

These tests drive the daemon object directly (no HTTP) with real
worker processes on real (small) units.  The subprocess crash matrix —
``kill -9`` of the whole daemon — lives in ``test_crash_restart.py``.
"""
import json

import pytest

from repro.exec.cache import ResultCache
from repro.exec.unit import make_unit, unit_digest
from repro.serve.daemon import SweepDaemon
from repro.serve.wal import UnitEntry, replay, wal_path
from repro.serve.admission import TenantQuota

UNIT = {"benchmark": "Sobel", "api": "cuda", "device": "GTX480",
        "size": "small"}
UNIT2 = {"benchmark": "Sobel", "api": "opencl", "device": "GTX480",
         "size": "small"}


def make_daemon(tmp_path, **kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("hb_interval", 0.3)
    kw.setdefault("backoff", 0.01)
    return SweepDaemon(tmp_path, **kw)


def wal_records(tmp_path, t=None):
    recs = [
        json.loads(line)
        for line in wal_path(tmp_path).read_text().splitlines()
        if line.strip()
    ]
    return [r for r in recs if t is None or r["t"] == t]


class TestLifecycleAndDedup:
    def test_run_dedup_restart_cache_serve(self, tmp_path):
        d = make_daemon(tmp_path).start()
        try:
            out = d.submit("alice", [UNIT])
            assert out.accepted and out["units"] == 1
            assert d.wait_ticket(out["ticket"], 300)
            st = d.ticket_status(out["ticket"])
            assert st["units"] == {"queued": 0, "leased": 0, "done": 1,
                                   "failed": 0}
            assert st["rows"][0]["source"] == "run"
            doc = d.ticket_results_json(out["ticket"])
            assert doc is not None and json.loads(doc)

            # second tenant, same unit: deduped onto the finished entry
            out2 = d.submit("bob", [UNIT])
            assert out2["deduped"] == 1
            assert d.ticket_status(out2["ticket"])["complete"]
            # the deduped ticket renders the *same* canonical bytes
            assert d.ticket_results_json(out2["ticket"]) == doc
        finally:
            summary = d.stop(grace=10)
        assert summary["exit_code"] == 0
        assert summary["state"] == "stopped"

        # a restarted daemon replays the WAL: the unit is already done,
        # so a resubmission dedupes onto the terminal entry
        d2 = make_daemon(tmp_path).start()
        try:
            assert d2.epoch == 2
            out3 = d2.submit("carol", [UNIT])
            assert out3["deduped"] == 1
            assert d2.ticket_status(out3["ticket"])["complete"]
            assert d2.ticket_results_json(out3["ticket"]) == doc
        finally:
            d2.stop(grace=10)
        # exactly one lease ever: the unit simulated once, total
        assert len(wal_records(tmp_path, "lease")) == 1

        # a daemon with no WAL history over the warm cache serves the
        # unit straight from the content-addressed store: no lease
        wal_path(tmp_path).unlink()
        d3 = make_daemon(tmp_path).start()
        try:
            out4 = d3.submit("dave", [UNIT])
            assert out4["cached"] == 1
            assert d3.ticket_status(out4["ticket"])["complete"]
            assert d3.ticket_results_json(out4["ticket"]) == doc
        finally:
            d3.stop(grace=10)
        done = wal_records(tmp_path, "done")
        assert [r["source"] for r in done] == ["cache"]
        assert wal_records(tmp_path, "lease") == []

    def test_submit_validation(self, tmp_path):
        d = make_daemon(tmp_path).start()
        try:
            assert d.submit("a", []).status == 400
            bad = d.submit("a", [{"benchmark": "NoSuchBench", "api": "cuda",
                                  "device": "GTX480"}])
            assert bad.status == 400 and not bad.accepted
        finally:
            d.stop(grace=5)


class TestAdmission:
    def test_quota_rejection_is_atomic_and_journaled(self, tmp_path):
        d = make_daemon(
            tmp_path, quota=TenantQuota(max_outstanding=1, max_inflight=1)
        ).start()
        try:
            out = d.submit("alice", [UNIT, UNIT2])
            assert out.status == 429
            assert out["error"] == "quota"
            # atomic: nothing from the rejected batch was queued
            assert d.status()["units"] == {"queued": 0, "leased": 0,
                                           "done": 0, "failed": 0}
            assert wal_records(tmp_path, "reject")[0]["tenant"] == "alice"
            # another tenant is unaffected by alice's rejection
            assert d.submit("bob", [UNIT]).status in (200,)
        finally:
            d.stop(grace=30)

    def test_backpressure_bounds_the_queue(self, tmp_path):
        d = make_daemon(tmp_path, queue_bound=1).start()
        try:
            out = d.submit("alice", [UNIT, UNIT2])
            assert out.status == 503
            assert out["error"] == "backpressure"
        finally:
            d.stop(grace=5)

    def test_draining_daemon_rejects_submissions(self, tmp_path):
        d = make_daemon(tmp_path).start()
        try:
            d.drain()
            out = d.submit("alice", [UNIT])
            assert out.status == 503
            assert out["error"] == "draining"
        finally:
            d.stop(grace=5)

    def test_breaker_demotes_crashing_backend(self, tmp_path):
        d = make_daemon(
            tmp_path, breaker_threshold=1, breaker_cooldown=300.0,
            retries=0, faults="raise:*",
        ).start()
        try:
            out = d.submit("alice", [UNIT])
            assert out.accepted
            assert d.wait_ticket(out["ticket"], 300)
            st = d.ticket_status(out["ticket"])
            assert st["units"]["failed"] == 1
            assert st["rows"][0]["injected"] is True
            # the device's breaker tripped open: admission now sheds load
            out2 = d.submit("bob", [UNIT2])
            assert out2.status == 503
            assert out2["error"] == "breaker_open"
            assert "GTX480" in out2["detail"]
            assert wal_records(tmp_path, "breaker")[0]["state"] == "open"
        finally:
            d.stop(grace=30)


class TestFencing:
    def test_late_done_under_stale_token_is_fenced(self, tmp_path):
        d = make_daemon(tmp_path, jobs=1).start()
        try:
            dg = "f" * 16
            with d._work:
                entry = UnitEntry(
                    digest=dg, label="fake/unit", unit={"device": "GTX480"},
                    owner="t", tenants={"t"}, state="leased", attempts=1,
                )
                d._units[dg] = entry
                lease = d.leases.acquire(dg, 1)
                d.wal.record_lease(dg, lease.token, 1)
                # the holder goes silent: force expiry and reap, then
                # park the entry so no dispatcher picks the fake unit up
                lease.deadline = 0.0
                assert d.reap_expired() == 1
                entry.state = "failed"
            # the stale holder phones home with its dead token
            assert d.complete(dg, lease.token, source="run") is False
            fenced = wal_records(tmp_path, "fenced")
            assert fenced and fenced[0]["token"] == lease.token
            assert wal_records(tmp_path, "requeue")[0]["reason"] == "lease-expired"
            # the fenced completion changed nothing
            assert d._units[dg].state == "failed"
        finally:
            d.stop(grace=5)

    def test_next_lease_token_is_higher_after_reclaim(self, tmp_path):
        d = make_daemon(tmp_path, jobs=1).start()
        try:
            dg = "e" * 16
            with d._work:
                d._units[dg] = UnitEntry(
                    digest=dg, label="fake", unit={}, owner="t",
                    tenants={"t"}, state="leased", attempts=1,
                )
                first = d.leases.acquire(dg, 1)
                first.deadline = 0.0
                d.reap_expired()
                d._units[dg].state = "failed"
                second = d.leases.acquire(dg, 2)
                assert second.token > first.token
                d.leases.release(dg, second.token)
        finally:
            d.stop(grace=5)


class TestChaos:
    def test_postkill_worker_death_loses_nothing(self, tmp_path):
        # the worker dies *after* the durable cache put but before its
        # completion report: the daemon must notice the death, find the
        # durable result, and complete — zero lost, zero re-simulated
        d = make_daemon(tmp_path, faults="postkill:*").start()
        try:
            out = d.submit("alice", [UNIT])
            assert d.wait_ticket(out["ticket"], 300)
            st = d.ticket_status(out["ticket"])
            assert st["units"]["done"] == 1
            assert st["rows"][0]["source"] == "run"
        finally:
            d.stop(grace=30)
        # exactly one lease, one done: the death did not duplicate work
        assert len(wal_records(tmp_path, "lease")) == 1
        assert len(wal_records(tmp_path, "done")) == 1
        assert ResultCache(tmp_path).get(unit_digest(
            make_unit(UNIT["benchmark"], UNIT["api"], UNIT["device"],
                      UNIT["size"])
        )) is not None

    def test_transient_fault_retries_with_requeue_records(self, tmp_path):
        d = make_daemon(tmp_path, retries=2,
                        faults="transient:*:1.0:1").start()
        try:
            out = d.submit("alice", [UNIT])
            assert d.wait_ticket(out["ticket"], 300)
            st = d.ticket_status(out["ticket"])
            assert st["units"]["done"] == 1
            assert st["rows"][0]["attempts"] == 2
        finally:
            d.stop(grace=30)
        requeues = wal_records(tmp_path, "requeue")
        assert [r["reason"] for r in requeues] == ["transient"]
        assert len(wal_records(tmp_path, "lease")) == 2

    def test_exhausted_transient_attempts_fail_terminally(self, tmp_path):
        d = make_daemon(tmp_path, retries=1,
                        faults="transient:*:1.0:99").start()
        try:
            out = d.submit("alice", [UNIT])
            assert d.wait_ticket(out["ticket"], 300)
            st = d.ticket_status(out["ticket"])
            assert st["units"]["failed"] == 1
            assert st["rows"][0]["kind"] == "TRANSIENT"
        finally:
            d.stop(grace=30)


class TestRestartReclaim:
    def test_boot_requeues_open_leases_from_wal(self, tmp_path):
        # hand-write the WAL a killed daemon would leave: a submitted
        # unit whose lease was open (and unresolvable) at death
        u = make_unit(**UNIT)
        dg = unit_digest(u)
        from repro.serve.wal import QueueWAL

        with QueueWAL(wal_path(tmp_path)) as w:
            w.record_boot(1, 2)
            w.record_submit("t-dead", "alice", dg, u.label(), {
                "benchmark": u.benchmark, "api": u.api, "device": u.device,
                "size": u.size, "options": [],
            })
            w.record_lease(dg, 5, 1)
        d = make_daemon(tmp_path).start()
        try:
            assert d.epoch == 2
            assert d.reclaimed_on_boot == 1
            # the ticket from the dead boot is still tracked and finishes
            assert d.wait_ticket("t-dead", 300)
            st = d.ticket_status("t-dead")
            assert st["units"]["done"] == 1
            # the replacement lease is fenced above the dead one
            done = wal_records(tmp_path, "done")
            assert done[-1]["token"] > 5
        finally:
            d.stop(grace=30)
        reasons = [r["reason"] for r in wal_records(tmp_path, "requeue")]
        assert "daemon-restart" in reasons
