"""Admission control: quota verdicts, status mapping, breaker lifecycle."""
from repro.serve.admission import (
    REJECT_QUOTA,
    AdmissionVerdict,
    BreakerBoard,
    CircuitBreaker,
    TenantQuota,
)


class TestTenantQuota:
    def test_within_quota_admits(self):
        q = TenantQuota(max_outstanding=4)
        assert q.admit(outstanding=2, new=2).ok

    def test_over_quota_rejects_with_429(self):
        q = TenantQuota(max_outstanding=4)
        v = q.admit(outstanding=3, new=2)
        assert not v.ok
        assert v.reason == REJECT_QUOTA
        assert v.status == 429
        assert "max_outstanding" in v.detail

    def test_non_quota_rejections_map_to_503(self):
        assert AdmissionVerdict(False, "backpressure").status == 503
        assert AdmissionVerdict(False, "breaker_open").status == 503
        assert AdmissionVerdict(False, "draining").status == 503
        assert AdmissionVerdict(True).status == 200


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(threshold=3, cooldown=30.0)
        assert not b.record_failure(now=0.0)
        assert not b.record_failure(now=1.0)
        assert b.record_failure(now=2.0)  # third consecutive: trips
        assert b.state == b.OPEN
        assert not b.allows(now=2.5)

    def test_success_resets_the_consecutive_count(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure(now=0.0)
        b.record_success()
        assert not b.record_failure(now=1.0)  # count restarted
        assert b.state == b.CLOSED

    def test_cooldown_half_opens_then_success_closes(self):
        b = CircuitBreaker(threshold=1, cooldown=10.0)
        assert b.record_failure(now=0.0)
        assert not b.allows(now=5.0)  # still cooling
        assert b.allows(now=10.0)  # half-open: probe traffic admitted
        assert b.state == b.HALF_OPEN
        b.record_success()
        assert b.state == b.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        b = CircuitBreaker(threshold=3, cooldown=10.0)
        for t in (0.0, 1.0, 2.0):
            b.record_failure(now=t)
        assert b.allows(now=12.0)
        assert b.record_failure(now=12.5)  # one strike in half-open
        assert b.state == b.OPEN
        assert b.trips == 2

    def test_as_dict_reports_cooldown_remaining(self):
        b = CircuitBreaker(threshold=1, cooldown=10.0)
        b.record_failure(now=0.0)
        d = b.as_dict(now=4.0)
        assert d["state"] == "open"
        assert d["cooldown_remaining_s"] == 6.0


class TestBreakerBoard:
    def test_breakers_are_per_device_and_on_demand(self):
        board = BreakerBoard(threshold=1, cooldown=30.0)
        board.get("GTX480").record_failure(now=0.0)
        assert board.open_devices(["GTX480", "HD5870"], now=1.0) == ["GTX480"]
        assert board.get("HD5870").state == "closed"

    def test_as_dict_covers_every_known_device(self):
        board = BreakerBoard()
        board.get("GTX480")
        assert list(board.as_dict()) == ["GTX480"]
