"""The typed failure taxonomy (repro.errors) and its classification.

Satellite: ABT classification goes through typed exceptions + structured
driver codes, never substring-matching stringified exceptions.
"""
import pytest

from repro import errors
from repro.arch.specs import CELLBE, GTX480, HD5870
from repro.benchsuite.registry import get_benchmark
from repro.errors import (
    CacheCorruptionError,
    FailureKind,
    ReproError,
    ResourceError,
    TransientError,
    UnitFailed,
    UnitTimeout,
    ValidationError,
    WorkerCrash,
    classify,
)
from repro.runtime.cuda.api import CudaError
from repro.runtime.opencl import api as cl
from repro.sim.device import LaunchFailure


class TestHierarchy:
    def test_all_kinds_are_repro_errors(self):
        for exc in (
            ResourceError("x"),
            ValidationError("x"),
            TransientError("x"),
            UnitTimeout("x", seconds=1.0),
            WorkerCrash("x"),
            CacheCorruptionError("x"),
            UnitFailed("u", FailureKind.CRASH, "x"),
        ):
            assert isinstance(exc, ReproError)
            assert isinstance(exc, RuntimeError)  # legacy catch sites

    def test_driver_errors_are_typed(self):
        assert isinstance(cl.CLError("CL_INVALID_VALUE"), ReproError)
        assert isinstance(CudaError("boom"), ReproError)
        assert isinstance(LaunchFailure("CL_OUT_OF_RESOURCES", "k"), ReproError)

    def test_resource_error_default_code(self):
        assert ResourceError("no regs").code == "CL_OUT_OF_RESOURCES"


class TestClassify:
    def test_typed_kinds(self):
        assert classify(ResourceError("x")) is FailureKind.ABT
        assert classify(ValidationError("x")) is FailureKind.FL
        assert classify(TransientError("x")) is FailureKind.TRANSIENT
        assert classify(UnitTimeout("x")) is FailureKind.TIMEOUT
        assert classify(WorkerCrash("x")) is FailureKind.CRASH
        assert classify(CacheCorruptionError("x")) is FailureKind.CACHE

    def test_unknown_exceptions_are_error(self):
        assert classify(ValueError("nope")) is FailureKind.ERROR
        assert classify(KeyError("k")) is FailureKind.ERROR

    def test_cl_resource_code_is_abt(self):
        assert classify(cl.CLError("CL_OUT_OF_RESOURCES", "k")) is FailureKind.ABT

    def test_launch_failure_code_is_abt(self):
        e = LaunchFailure("CL_OUT_OF_RESOURCES", "kernel block=(1024,1,1)")
        assert classify(e) is FailureKind.ABT

    def test_benign_code_is_not_abt(self):
        assert classify(cl.CLError("CL_INVALID_VALUE")) is FailureKind.ERROR

    def test_message_text_does_not_classify(self):
        # the old substring bug: "OUT_OF_RESOURCES" in the *message* of a
        # non-resource error must NOT classify as ABT
        e = cl.CLError("CL_INVALID_VALUE", "param named OUT_OF_RESOURCES_LOG")
        assert "OUT_OF_RESOURCES" in str(e)
        assert classify(e) is FailureKind.ERROR

    def test_cause_chain_is_walked(self):
        # CUDA wraps LaunchFailure; classification survives the wrap
        inner = LaunchFailure("CL_OUT_OF_RESOURCES", "k")
        try:
            try:
                raise inner
            except LaunchFailure as lf:
                raise CudaError(str(lf)) from lf  # code dropped on purpose
        except CudaError as outer:
            assert classify(outer) is FailureKind.ABT

    def test_cuda_wrap_preserves_code(self):
        try:
            raise CudaError("msg", code="CL_OUT_OF_RESOURCES")
        except CudaError as e:
            assert classify(e) is FailureKind.ABT

    def test_unit_failed_carries_underlying_kind(self):
        uf = UnitFailed("MD/opencl@GTX480[small]", FailureKind.TIMEOUT, "slow")
        assert classify(uf) is FailureKind.TIMEOUT
        assert "MD/opencl@GTX480[small]" in str(uf)
        assert "TIMEOUT" in str(uf)

    def test_is_injected_walks_cause(self):
        inner = TransientError("x")
        inner.injected = True
        try:
            try:
                raise inner
            except TransientError as t:
                raise RuntimeError("wrap") from t
        except RuntimeError as outer:
            assert errors.is_injected(outer)
        assert not errors.is_injected(RuntimeError("plain"))


class TestBenchClassification:
    """bench.run() maps typed errors onto the paper's byte-compatible tags."""

    def test_cell_abort_is_abt(self):
        # FFT on Cell/BE: Table VI "ABT" via CL_OUT_OF_RESOURCES
        from repro.benchsuite.base import host_for

        r = get_benchmark("FFT").run(host_for("opencl", CELLBE), size="small")
        assert r.failure == "ABT"
        assert not r.ok()

    def test_warp_size_failure_is_fl(self):
        # RdxS on HD5870: completes with wrong results -> "FL"
        from repro.benchsuite.base import host_for

        r = get_benchmark("RdxS").run(host_for("opencl", HD5870), size="small")
        assert r.failure == "FL"

    def test_clean_run_has_no_failure(self):
        from repro.benchsuite.base import host_for

        r = get_benchmark("TranP").run(host_for("cuda", GTX480), size="small")
        assert r.failure is None and r.ok()
