import math

import numpy as np
import pytest

from repro.arch import GTX280, GTX480
from repro.benchsuite.base import BenchResult, Metric
from repro.core import (
    ComparisonConfig,
    Role,
    SIMILARITY_BAND,
    Step,
    STEP_ROLES,
    audit,
    autotune,
    compare,
    is_fair,
    performance_ratio,
    similar,
)
from repro.core.fairness import describe
from repro.core.metrics import PRResult


class TestPerformanceRatio:
    def test_higher_is_better(self):
        m = Metric("GFlops/sec")
        assert performance_ratio(50, 100, m) == pytest.approx(0.5)
        assert performance_ratio(100, 100, m) == pytest.approx(1.0)

    def test_time_metric_inverts(self):
        m = Metric("sec", higher_is_better=False)
        # OpenCL takes twice as long -> PR = 0.5
        assert performance_ratio(2.0, 1.0, m) == pytest.approx(0.5)

    def test_similarity_band(self):
        assert similar(1.0)
        assert similar(0.95) and similar(1.05)
        assert not similar(0.89) and not similar(1.11)
        assert SIMILARITY_BAND == 0.1  # the paper's |1 - PR| < 0.1

    def test_zero_cuda_rejected(self):
        with pytest.raises(ValueError):
            performance_ratio(1.0, 0.0, Metric("GB/sec"))

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ValueError):
            performance_ratio(0.0, 1.0, Metric("sec", higher_is_better=False))


def _res(api, value, correct=True, failure=None):
    return BenchResult(
        benchmark="X",
        api=api,
        device="GTX480",
        value=value,
        unit="GB/sec",
        kernel_seconds=1e-6,
        wall_seconds=1e-6,
        launches=1,
        correct=correct,
        failure=failure,
    )


class TestPRResult:
    def test_verdicts(self):
        m = Metric("GB/sec")
        pr = PRResult.from_pair(_res("cuda", 100), _res("opencl", 100), m)
        assert pr.verdict == "similar"
        pr = PRResult.from_pair(_res("cuda", 100), _res("opencl", 50), m)
        assert pr.verdict == "OpenCL slower"
        pr = PRResult.from_pair(_res("cuda", 50), _res("opencl", 100), m)
        assert pr.verdict == "OpenCL faster"

    def test_failed_run_gives_nan(self):
        m = Metric("GB/sec")
        pr = PRResult.from_pair(
            _res("cuda", 100), _res("opencl", float("nan"), correct=False, failure="ABT"), m
        )
        assert math.isnan(pr.pr) and pr.verdict == "n/a"

    def test_mismatched_pair_rejected(self):
        m = Metric("GB/sec")
        a = _res("cuda", 1)
        b = _res("opencl", 1)
        b.benchmark = "Y"
        with pytest.raises(ValueError):
            PRResult.from_pair(a, b, m)


class TestFairness:
    def _cfg(self, **over):
        base = dict(
            problem="P",
            algorithm="A",
            implementation="I",
            native_optimizations=(("use_texture", "True"),),
            first_stage_compiler="nvopencc",
            second_stage_compiler="ptxas",
            problem_parameters=(("n", "1024"),),
            algorithmic_parameters=(("wg", "256"),),
            device="GTX480",
        )
        base.update(over)
        return ComparisonConfig(**base)

    def test_identical_configs_fair(self):
        assert audit(self._cfg(), self._cfg()) == []
        assert is_fair(self._cfg(), self._cfg())

    def test_step4_difference_flagged_as_programmer(self):
        findings = audit(
            self._cfg(), self._cfg(native_optimizations=(("use_texture", "False"),))
        )
        assert len(findings) == 1
        assert findings[0].step is Step.NATIVE_KERNEL_OPTIMIZATIONS
        assert findings[0].role is Role.PROGRAMMER

    def test_compiler_steps_exempt_by_default(self):
        left = self._cfg()
        right = self._cfg(first_stage_compiler="clc")
        assert is_fair(left, right)  # compilers differ by construction
        assert not is_fair(left, right, allow_compiler_steps=False)

    def test_role_assignment_matches_fig9(self):
        assert STEP_ROLES[Step.PROBLEM_DESCRIPTION] is Role.PROGRAMMER
        assert STEP_ROLES[Step.NATIVE_KERNEL_OPTIMIZATIONS] is Role.PROGRAMMER
        assert STEP_ROLES[Step.FIRST_STAGE_COMPILATION] is Role.COMPILER
        assert STEP_ROLES[Step.SECOND_STAGE_COMPILATION] is Role.COMPILER
        assert STEP_ROLES[Step.PROGRAM_CONFIGURATION] is Role.USER
        assert STEP_ROLES[Step.RUNNING_ON_GPUS] is Role.USER

    def test_eight_steps(self):
        assert len(Step) == 8
        assert [int(s) for s in Step] == list(range(1, 9))

    def test_describe_derives_compiler_from_api(self):
        c = describe("B", "cuda", "GTX480", {}, {}, 256)
        o = describe("B", "opencl", "GTX480", {}, {}, 256)
        assert c.first_stage_compiler == "nvopencc"
        assert o.first_stage_compiler == "clc"


class TestCompare:
    def test_sobel_comparison_unfair_as_shipped(self):
        out = compare("Sobel", GTX480, size="small")
        assert not out.fair  # asymmetric constant-memory use (step 4)
        steps = {f.step for f in out.fairness}
        assert Step.NATIVE_KERNEL_OPTIMIZATIONS in steps

    def test_sobel_fair_after_equalizing(self):
        out = compare(
            "Sobel",
            GTX480,
            size="small",
            cuda_options={"use_constant": True},
        )
        assert out.fair

    def test_comparison_carries_both_results(self):
        out = compare("TranP", GTX480, size="small")
        assert out.pr.cuda.api == "cuda" and out.pr.opencl.api == "opencl"
        assert out.pr.pr > 0


class TestAutotune:
    def test_finds_best_workgroup(self):
        res = autotune(
            "DeviceMemory",
            GTX480,
            axes={"wg": [64, 256]},
            api="opencl",
            size="small",
        )
        assert res.best_options["wg"] in (64, 256)
        assert len(res.trace) == 2
        values = [v for _, v in res.trace if v is not None]
        assert res.best_value == max(values)

    def test_failed_configs_recorded_as_none(self):
        res = autotune(
            "TranP",
            GTX480,
            axes={"use_local": [True, False]},
            api="opencl",
            size="small",
        )
        assert len(res.trace) == 2
