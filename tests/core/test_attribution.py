"""The gap-attribution engine (§IV-B automated), pinned benchmark by
benchmark: each paper gap must be attributed to the right factor."""
import pytest

from repro.arch import GTX280, GTX480
from repro.core import attribute_gap


class TestMDAttribution:
    @pytest.fixture(scope="class")
    def att(self):
        return attribute_gap("MD", GTX280)

    def test_texture_ablation_closes_the_gap(self, att):
        f = {x.name: x for x in att.factors}["programming-model"]
        assert f.pr_after is not None
        assert f.gap_closed > 0.1  # removing texture nearly levels it
        assert abs(1 - f.pr_after) < 0.15

    def test_report_is_readable(self, att):
        text = att.report()
        assert "MD on GTX280" in text
        assert "dominant factor" in text

    def test_pr_before_matches_fig3_band(self, att):
        assert 0.4 < att.pr_before < 0.9


class TestSobelAttribution:
    def test_architecture_factor_identified(self):
        # Sobel's GTX280 anomaly vanishes on the other generation
        att = attribute_gap("Sobel", GTX280)
        f = {x.name: x for x in att.factors}["architecture"]
        assert f.pr_after is not None
        # cross-generation PR is near 1; the gap largely closes
        assert abs(1 - f.pr_after) < abs(1 - att.pr_before)

    def test_native_optimization_factor_present(self):
        att = attribute_gap("Sobel", GTX280)
        f = {x.name: x for x in att.factors}["native-optimizations"]
        assert f.pr_after is not None  # use_constant is equalizable


class TestFFTAttribution:
    def test_compiler_factor_evidenced_by_instruction_mix(self):
        att = attribute_gap("FFT", GTX480)
        f = {x.name: x for x in att.factors}["compiler"]
        assert "instruction count" in f.description
        assert f.gap_closed > 0  # static imbalance recorded as evidence

    def test_no_texture_to_equalize(self):
        att = attribute_gap("FFT", GTX480)
        f = {x.name: x for x in att.factors}["programming-model"]
        assert f.pr_after is None  # FFT never used texture memory


class TestFDTDAttribution:
    def test_unroll_equalization_examined(self):
        att = attribute_gap("FDTD", GTX480)
        f = {x.name: x for x in att.factors}["native-optimizations"]
        assert f.pr_after is not None
        assert "unroll_a" in f.description
