"""Tests for the per-launch profiling subsystem (``repro.prof``)."""
import json

import numpy as np
import pytest

from repro.arch import GTX280, GTX480
from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar
from repro.prof import (
    LaunchProfile,
    aggregate,
    chrome_trace,
    render_profile,
    render_run,
    write_chrome_trace,
)
from repro.runtime import cuda as rt_cuda
from repro.runtime import opencl as cl


def _vadd(dialect):
    k = KernelBuilder("vadd", dialect)
    a = k.buffer("a", Scalar.F32)
    b = k.buffer("b", Scalar.F32)
    c = k.buffer("c", Scalar.F32)
    i = k.let("i", k.global_id(0))
    k.store(c, i, a[i] + b[i])
    return k.finish()


def _cuda_launch(spec=GTX480, launches=1):
    ctx = rt_cuda.CudaContext(spec)
    p = ctx.malloc(256)
    fn = ctx.compile(_vadd(CUDA))
    for _ in range(launches):
        fn.launch(2, 32, a=p, b=p, c=p)
    return ctx


class TestLaunchProfileCapture:
    def test_launch_attaches_profile(self):
        ctx = _cuda_launch()
        prof = ctx.profile_query()
        assert isinstance(prof, LaunchProfile)
        assert prof.kernel == "vadd"
        assert prof.api == "cuda"
        assert prof.device == GTX480.name

    def test_invariants_hold(self):
        ctx = _cuda_launch()
        prof = ctx.profile_query()
        assert prof.check() == []
        assert prof.transactions_per_request >= 1.0
        assert prof.dram_bytes == prof.timing_dram_bytes
        for name, st in prof.caches.items():
            assert st.hits + st.misses == st.accesses, name

    def test_issue_cycles_cover_table_v_classes(self):
        ctx = _cuda_launch()
        prof = ctx.profile_query()
        assert prof.issue_cycles  # at least one class populated
        assert sum(prof.issue_cycles.values()) > 0
        # a load/store kernel must spend cycles on data movement
        assert any("Data" in k for k in prof.issue_cycles)

    def test_host_phases_recorded(self):
        ctx = _cuda_launch()
        prof = ctx.profile_query()
        assert prof.compile_s > 0  # wall-clock compile time
        assert prof.launch_overhead_s > 0
        assert prof.start_s >= prof.queued_s
        assert prof.end_s > prof.start_s
        assert prof.total_s > 0

    def test_per_launch_deltas_not_cumulative(self):
        ctx = _cuda_launch(launches=3)
        profs = ctx.profiles
        assert len(profs) == 3
        # counters are per launch, so repeat launches match (caches may
        # warm up, but request/transaction counts are deterministic)
        reqs = {p.gmem_requests for p in profs}
        assert len(reqs) == 1
        for p in profs:
            assert p.check() == []

    def test_gt200_null_cache_path(self):
        ctx = _cuda_launch(spec=GTX280)
        prof = ctx.profile_query()
        assert prof.check() == []
        assert "null" in prof.caches
        assert "l1" not in prof.caches
        # compute 1.x has no hardware global-load cache: never hits
        assert prof.caches["null"].hits == 0


class TestOpenCLProfiling:
    def _launch(self):
        ctx = cl.create_context_for("GTX480")
        q = cl.CommandQueue(ctx)
        b = cl.Buffer.create(ctx, 256)
        prog = cl.Program(ctx, [_vadd(OPENCL)]).build()
        kern = prog.kernel("vadd").set_args(a=b, b=b, c=b)
        return prog, q.enqueue_nd_range(kern, 64, 32)

    def test_event_carries_profile(self):
        prog, ev = self._launch()
        assert isinstance(ev.profile, LaunchProfile)
        assert ev.profile.api == "opencl"
        assert ev.profile.compile_s == prog.build_s > 0
        assert ev.profile.check() == []

    def test_get_profiling_info_nanoseconds(self):
        _, ev = self._launch()
        q = ev.get_profiling_info("CL_PROFILING_COMMAND_QUEUED")
        s = ev.get_profiling_info("CL_PROFILING_COMMAND_START")
        e = ev.get_profiling_info("CL_PROFILING_COMMAND_END")
        assert isinstance(q, int) and isinstance(e, int)
        assert q <= s <= e
        assert e - s == pytest.approx(ev.kernel_seconds * 1e9, abs=1)

    def test_get_profiling_info_rejects_unknown_param(self):
        _, ev = self._launch()
        with pytest.raises(cl.CLError, match="INVALID_VALUE"):
            ev.get_profiling_info("CL_PROFILING_COMMAND_COMPLETE")


class TestAggregate:
    def test_counters_sum(self):
        ctx = _cuda_launch(launches=4)
        profs = ctx.profiles
        agg = aggregate(profs, label="all")
        assert agg.kernel == "all"
        assert agg.gmem_requests == sum(p.gmem_requests for p in profs)
        assert agg.dram_bytes == pytest.approx(
            sum(p.dram_bytes for p in profs)
        )
        assert agg.total_s == pytest.approx(sum(p.total_s for p in profs))
        assert agg.check() == []

    def test_compile_time_deduped_per_kernel(self):
        ctx = _cuda_launch(launches=4)
        profs = ctx.profiles
        agg = aggregate(profs)
        # one kernel compiled once, launched four times
        assert agg.compile_s == pytest.approx(profs[0].compile_s)

    def test_empty_returns_none(self):
        assert aggregate([]) is None


class TestChromeTrace:
    def test_trace_structure(self, tmp_path):
        ctx = _cuda_launch(launches=2)
        trace = chrome_trace(ctx.profiles, "unit")
        evs = trace["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert {"M", "X", "C"} <= phases
        kernels = [
            e for e in evs if e["ph"] == "X" and e.get("cat") == "kernel"
        ]
        assert len(kernels) == 2
        for e in kernels:
            assert e["dur"] > 0
            assert e["args"]["transactions_per_request"] >= 1.0
        # slices sit on the virtual timeline in launch order
        assert kernels[0]["ts"] <= kernels[1]["ts"]

    def test_write_round_trips_as_json(self, tmp_path):
        ctx = _cuda_launch()
        path = write_chrome_trace(ctx.profiles, str(tmp_path / "t.json"))
        with open(path) as f:
            loaded = json.load(f)
        assert loaded["traceEvents"]
        assert loaded["displayTimeUnit"] == "ms"


class TestReport:
    def test_render_profile_mentions_key_counters(self):
        ctx = _cuda_launch()
        text = render_profile(ctx.profile_query())
        assert "vadd" in text
        assert "per request" in text
        assert "bound" in text

    def test_render_run_table(self):
        ctx = _cuda_launch(launches=2)
        text = render_run(ctx.profiles, title="unit run")
        assert "unit run" in text
        assert text.count("vadd") >= 2


class TestCollect:
    def test_profile_benchmark_end_to_end(self):
        from repro.prof.collect import profile_benchmark

        bp = profile_benchmark("bfs", GTX480, api="cuda", size="small")
        assert bp.benchmark == "BFS"  # case-insensitive lookup
        assert bp.launches
        assert bp.check() == []
        agg = bp.summary
        assert agg.gmem_requests > 0
        assert agg.transactions_per_request >= 1.0
