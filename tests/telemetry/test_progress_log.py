"""Progress meter TTY gating + structured logger behavior."""
import io

import pytest

from repro import exec as rexec
from repro.arch.specs import GTX480
from repro.prof.report import render_sweep
from repro.telemetry import log as tlog
from repro.telemetry.progress import ProgressLine


class _Tty(io.StringIO):
    def isatty(self):
        return True


class TestProgressLine:
    def test_non_tty_stream_emits_nothing(self):
        buf = io.StringIO()
        p = ProgressLine(10, stream=buf)
        assert not p.enabled
        p.tick(hit=True)
        p.note_failure()
        p.close()
        assert buf.getvalue() == ""

    def test_tty_stream_paints_and_erases(self):
        buf = _Tty()
        p = ProgressLine(3, stream=buf, min_interval_s=0.0)
        assert p.enabled
        p.tick(seconds=0.1)
        p.tick(hit=True, seconds=0.1)
        out = buf.getvalue()
        assert "2/3 units" in out
        assert "1 hit(s)" in out
        assert "\r" in out
        p.close()
        # the close repaint ends on a bare \r so the next line overwrites
        assert buf.getvalue().endswith("\r")

    def test_force_overrides_gating(self):
        buf = io.StringIO()
        p = ProgressLine(2, stream=buf, force=True, min_interval_s=0.0)
        p.tick()
        assert "1/2" in buf.getvalue()

    def test_eta_from_rolling_mean(self):
        p = ProgressLine(10, stream=io.StringIO(), force=True)
        for _ in range(5):
            p.tick(seconds=2.0)
        assert p.eta_s() == pytest.approx(10.0)  # 5 left x 2s mean
        assert p._fmt_eta() == "10s"

    def test_failure_accounting_distinct_from_done(self):
        p = ProgressLine(4, stream=io.StringIO(), force=True)
        p.note_failure()      # terminal failure recorded...
        p.tick(failed=True)   # ...then its completion tick
        assert p.done == 1 and p.failures == 2


class TestProgressModes:
    def test_plain_mode_emits_lines_without_a_tty(self):
        buf = io.StringIO()
        p = ProgressLine(2, stream=buf, mode="plain", min_interval_s=0.0)
        assert p.enabled  # plain works for CI logs: no TTY required
        p.tick(seconds=0.1)
        p.tick(hit=True, seconds=0.1)
        p.close()
        lines = buf.getvalue().splitlines()
        assert "\r" not in buf.getvalue()
        assert "sweep: 1/2 units" in lines[0]
        assert lines[-1].startswith("sweep: finished 2/2 units")

    def test_plain_mode_rations_repaints(self):
        buf = io.StringIO()
        p = ProgressLine(100, stream=buf, mode="plain", min_interval_s=3600.0)
        for _ in range(50):
            p.tick()
        # one initial paint; the rest are rate-limited out of the log
        assert buf.getvalue().count("\n") == 1

    def test_off_mode_emits_nothing_even_on_tty(self):
        buf = _Tty()
        p = ProgressLine(2, stream=buf, mode="off")
        assert not p.enabled
        p.tick()
        p.close()
        assert buf.getvalue() == ""

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown progress mode"):
            ProgressLine(1, mode="fancy")

    def test_progress_mode_resolution(self):
        import argparse

        from repro.telemetry import progress_mode

        ns = argparse.Namespace(progress="plain", quiet=False)
        assert progress_mode(ns) == "plain"
        ns = argparse.Namespace(progress="plain", quiet=True)
        assert progress_mode(ns) == "off"  # --quiet beats --progress
        assert progress_mode(argparse.Namespace()) == "auto"


class TestLogger:
    def test_threshold_gates_output(self, capsys):
        tlog.set_verbosity(quiet=True)
        try:
            tlog.info("should.vanish")
            tlog.error("should.show", "boom")
        finally:
            tlog.set_verbosity()
        err = capsys.readouterr().err
        assert "should.vanish" not in err
        assert "repro[error] should.show: boom" in err

    def test_verbose_enables_debug(self, capsys):
        tlog.set_verbosity(verbose=True)
        try:
            tlog.debug("dbg.event", answer=42)
        finally:
            tlog.set_verbosity()
        assert "repro[debug] dbg.event: answer=42" in capsys.readouterr().err

    def test_fields_render_single_line(self, capsys):
        tlog.warn("multi.field", "free text", a=1, b="two words")
        err = capsys.readouterr().err
        line = [l for l in err.splitlines() if "multi.field" in l][0]
        assert line == "repro[warn] multi.field: free text a=1 b='two words'"

    def test_level_accessors(self):
        tlog.set_level("warn")
        try:
            assert tlog.level() == "warn"
        finally:
            tlog.set_verbosity()


class TestRenderSweepCounters:
    def test_cache_line_answers_was_the_cache_warm(self, tmp_path):
        unit = rexec.make_unit("TranP", "cuda", GTX480, "small")
        ex = rexec.SweepExecutor(cache=tmp_path, progress=False)
        ex.run_unit(unit)   # cold: simulate + store
        ex.run_unit(unit)   # memo hit
        ex2 = rexec.SweepExecutor(cache=tmp_path, progress=False)
        ex2.run_unit(unit)  # disk hit
        cold = render_sweep(ex.stats)
        warm = render_sweep(ex2.stats)
        assert "cache: 1 memo hit(s), 0 disk hit(s)" in cold
        assert "cache: 0 memo hit(s), 1 disk hit(s)" in warm
        assert "sim time served from cache" in warm
        assert ex2.stats.cache_serve_seconds > 0

    def test_quarantine_count_surfaces(self, tmp_path):
        unit = rexec.make_unit("TranP", "cuda", GTX480, "small")
        ex = rexec.SweepExecutor(
            cache=tmp_path, faults=f"corrupt:{unit.label()}", progress=False
        )
        ex.run_unit(unit)
        ex2 = rexec.SweepExecutor(cache=tmp_path, progress=False)
        ex2.run_unit(unit)  # quarantines, then re-simulates
        assert ex2.stats.quarantined == 1
        assert "1 quarantined" in render_sweep(ex2.stats)
