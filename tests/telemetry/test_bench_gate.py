"""The repro.bench regression gate: compare logic + CLI exit codes."""
import copy
import json

import pytest

from repro import bench
from repro.bench.__main__ import main as bench_main


def _payload(**overrides):
    values = {
        "units.total": 4.0,
        "sim.launches": 8.0,
        "sim.kernel_seconds": 1e-3,
        "wall.cold_s": 2.0,
    }
    values.update(overrides)
    return bench.make_payload(values, tag="t", size="small", jobs=1)


class TestCompare:
    def test_identical_runs_pass(self):
        base = _payload()
        rows = bench.compare(copy.deepcopy(base), base)
        assert not bench.regressions(rows)
        assert {r["status"] for r in rows} == {"ok", "info"}

    def test_drift_beyond_tolerance_regresses_both_directions(self):
        base = _payload()
        for direction in (+1.0, -1.0):
            cur = _payload(**{"sim.launches": 8.0 + direction})
            rows = bench.compare(cur, base)
            bad = bench.regressions(rows)
            assert [r["metric"] for r in bad] == ["sim.launches"]

    def test_wall_clock_is_informational_only(self):
        cur = _payload(**{"wall.cold_s": 200.0})
        rows = bench.compare(cur, _payload())
        assert not bench.regressions(rows)
        wall = [r for r in rows if r["metric"] == "wall.cold_s"][0]
        assert wall["status"] == "info"

    def test_missing_metric_fails_the_gate(self):
        base = _payload()
        cur = _payload()
        del cur["metrics"]["sim.launches"]
        rows = bench.compare(cur, base)
        assert [r["metric"] for r in bench.regressions(rows)] == [
            "sim.launches"
        ]
        assert bench.regressions(rows)[0]["status"] == "missing"

    def test_within_tolerance_passes(self):
        base = _payload()
        cur = _payload(**{"sim.kernel_seconds": 1e-3 * 1.005})
        rows = bench.compare(cur, base)
        assert not bench.regressions(rows)

    def test_render_report_lists_every_metric(self):
        rows = bench.compare(_payload(), _payload())
        text = bench.render_report(rows, tag="unit")
        assert "0 regression(s)" in text
        for name in ("sim.launches", "wall.cold_s"):
            assert name in text


class TestRoundTrip:
    def test_write_load(self, tmp_path):
        p = bench.write_bench(_payload(), tmp_path / "BENCH_t.json")
        back = bench.load_bench(p)
        assert back["metrics"]["sim.launches"]["value"] == 8.0
        assert back["schema"] == bench.SCHEMA_VERSION

    def test_load_rejects_wrong_schema(self, tmp_path):
        doc = _payload()
        doc["schema"] = 999
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            bench.load_bench(p)


@pytest.fixture(scope="module")
def fig1_bench(tmp_path_factory):
    """One real (tiny) bench run shared by the CLI exit-code tests."""
    d = tmp_path_factory.mktemp("bench")
    base = d / "baseline.json"
    out = d / "BENCH_t.json"
    rc = bench_main(
        ["--experiments", "fig1", "--tag", "t", "--quiet",
         "--baseline", str(base), "--output", str(out),
         "--update-baseline"]
    )
    assert rc == 0
    return d, base, out


class TestCLI:
    def test_exit_zero_on_matching_baseline(self, fig1_bench, capsys):
        d, base, out = fig1_bench
        rc = bench_main(
            ["--compare", str(out), "--baseline", str(base), "--quiet"]
        )
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_one_on_seeded_regression(self, fig1_bench, capsys):
        d, base, out = fig1_bench
        doc = json.loads(base.read_text())
        doc["metrics"]["sim.launches"]["value"] += 3
        doctored = d / "doctored.json"
        doctored.write_text(json.dumps(doc))
        rc = bench_main(
            ["--compare", str(out), "--baseline", str(doctored), "--quiet"]
        )
        assert rc == 1
        assert "regression" in capsys.readouterr().out

    def test_exit_two_without_baseline(self, fig1_bench, tmp_path, capsys):
        d, base, out = fig1_bench
        rc = bench_main(
            ["--compare", str(out), "--quiet",
             "--baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 2

    def test_real_run_is_deterministic_vs_its_own_baseline(
        self, fig1_bench, tmp_path
    ):
        """A second cold run of the same sweep gates green against the
        first — the committed-baseline workflow, in miniature."""
        d, base, out = fig1_bench
        rc = bench_main(
            ["--experiments", "fig1", "--tag", "t2", "--quiet",
             "--baseline", str(base),
             "--output", str(tmp_path / "BENCH_t2.json")]
        )
        assert rc == 0


def test_committed_baseline_shape():
    """The committed baseline must exist, parse, and gate the metrics
    the CLI emits (guards against drift between code and artifact)."""
    path = bench.default_baseline_path()
    doc = bench.load_bench(path)
    assert doc["size"] == "small"
    gated = {
        n for n, m in doc["metrics"].items() if m["tolerance"] is not None
    }
    assert {"sim.launches", "sim.kernel_seconds", "units.total"} <= gated
    walls = {
        n for n, m in doc["metrics"].items() if m["tolerance"] is None
    }
    assert {"wall.cold_s", "wall.warm_s"} <= walls
