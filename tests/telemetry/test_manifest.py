"""RunManifest: collection, JSON round-trip, and diff semantics."""
import dataclasses

from repro import faults
from repro._version import __version__
from repro.telemetry.manifest import (
    RunManifest,
    default_manifest_path,
    git_sha,
)


def _collect(**kw):
    return RunManifest.collect("repro.test", argv=["--size", "small"], **kw)


def test_collect_pins_environment():
    man = _collect()
    assert man.command == "repro.test"
    assert man.version == __version__
    assert man.schema == 1
    assert "GTX480" in man.devices
    # the full DeviceSpec rides along, calibration constants included
    spec = man.devices["GTX480"]
    assert spec["compute_units"] > 0
    assert "timing" in spec


def test_round_trip_is_lossless(tmp_path):
    man = _collect(sweep={"hits": 3, "misses": 1})
    path = tmp_path / "m.json"
    man.write(path)
    back = RunManifest.load(path)
    assert dataclasses.asdict(back) == dataclasses.asdict(man)


def test_diff_ignores_volatile_identity_fields():
    a = _collect()
    b = _collect()
    b.run_id = "other"
    b.created_unix += 100
    b.argv = ["totally", "different"]
    b.metrics = {"x": {"type": "counter", "value": 1}}
    assert a.diff(b) == {}


def test_diff_names_real_disagreements():
    a = _collect()
    b = _collect()
    b.version = "0.0.0"
    d = a.diff(b)
    assert set(d) == {"version"}
    assert d["version"] == (a.version, "0.0.0")


def test_fault_provenance_from_injector():
    inj = faults.from_spec("seed=7;raise:MD/opencl*")
    man = _collect(faults=inj)
    assert man.fault_seed == 7
    assert "MD/opencl*" in man.fault_spec


def test_fault_provenance_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "seed=9;transient:*:1.0:1")
    man = _collect()
    assert man.fault_seed == 9
    assert man.fault_spec == "seed=9;transient:*:1.0:1"


def test_git_sha_and_default_path(tmp_path):
    sha = git_sha()
    assert sha == "unknown" or len(sha) == 40
    p = default_manifest_path(tmp_path, "run-1")
    assert p == tmp_path / "manifests" / "run-1.json"
