"""Span tracing: nesting, IDs, and propagation across pool workers."""
import json

from repro import exec as rexec
from repro.arch.specs import GTX280, GTX480
from repro.telemetry import spans as tspans
from repro.telemetry.export import chrome_trace

UNITS = [
    rexec.make_unit("TranP", api, dev, "small")
    for api in ("cuda", "opencl")
    for dev in (GTX280, GTX480)
]


def _spans_by_name(tr):
    out = {}
    for e in tr.events:
        if isinstance(e, tspans.Span):
            out.setdefault(e.name, []).append(e)
    return out


def test_span_nesting_parent_links():
    tr = tspans.Tracer(run_id="t")
    with tspans.use_tracer(tr):
        with tspans.span("outer", "engine") as outer:
            with tspans.span("inner", "unit") as inner:
                assert inner.parent_id == outer.span_id
                tspans.event("mark", "engine", k=1)
        assert outer.parent_id == tr.root.span_id
    tr.finish()
    names = _spans_by_name(tr)
    assert set(names) >= {"outer", "inner", "run"}
    inner = names["inner"][0]
    assert inner.t1 >= inner.t0
    instants = [e for e in tr.events if isinstance(e, tspans.Instant)]
    # the instant fired while "inner" was the open span
    assert instants[0].span_id == names["inner"][0].span_id


def test_span_is_noop_without_tracer():
    with tspans.span("anything") as s:
        assert s is None
    tspans.event("nothing")  # no raise
    assert tspans.current_span_id() is None


def test_traced_decorator():
    tr = tspans.Tracer(run_id="t")

    @tspans.traced("work.step", cat="engine")
    def step():
        return tspans.current_span_id()

    with tspans.use_tracer(tr):
        sid = step()
    tr.finish()
    names = _spans_by_name(tr)
    assert names["work.step"][0].span_id == sid


def test_sibling_spans_close_independently():
    tr = tspans.Tracer(run_id="t")
    with tspans.use_tracer(tr):
        a = tr.start_span("a", "engine")
        b = tr.start_span("b", "engine")
        # out-of-order close: ending the outer span also pops the inner
        tr.end_span(a)
        assert tr.current() is tr.root
        tr.end_span(b)  # already popped; records the event regardless
    tr.finish()


def test_worker_tracer_ids_are_pid_prefixed():
    wt = tspans.worker_tracer(("trace-1", "s42"))
    assert wt.trace_id == "trace-1"
    assert wt.root.parent_id == "s42"
    assert wt.root.span_id.startswith("w")
    assert tspans.worker_tracer(None) is None


def test_spans_propagate_across_pool_workers(tmp_path):
    """jobs=2 prewarm: worker attempt spans land in the parent trace,
    parented under the parent-side sweep span chain."""
    tr = tspans.Tracer(run_id="pool-test")
    with tspans.use_tracer(tr):
        ex = rexec.SweepExecutor(jobs=2, cache=tmp_path, progress=False)
        with rexec.use_executor(ex):
            ex.prewarm(UNITS)
    tr.finish()
    assert ex.stats.misses == len(UNITS)

    names = _spans_by_name(tr)
    assert "sweep.prewarm" in names
    attempts = names.get("unit.attempt", [])
    assert len(attempts) >= len(UNITS)
    worker_attempts = [s for s in attempts if s.span_id.startswith("w")]
    assert worker_attempts, "no spans absorbed from pool workers"

    by_id = {
        e.span_id: e for e in tr.events if isinstance(e, tspans.Span)
    }
    sweep = names["sweep.prewarm"][0]
    for s in worker_attempts:
        # worker root -> parent-side span chain -> sweep.prewarm -> run
        chain = set()
        cur = s
        while cur is not None and cur.span_id not in chain:
            chain.add(cur.span_id)
            cur = by_id.get(cur.parent_id)
        assert sweep.span_id in chain

    # launch-cat spans (virtual kernel time) made it onto the timeline
    assert any(s.cat == "launch" for ss in names.values() for s in ss)


def test_merged_trace_is_loadable_chrome_json(tmp_path):
    tr = tspans.Tracer(run_id="trace-test")
    with tspans.use_tracer(tr):
        ex = rexec.SweepExecutor(jobs=2, cache=tmp_path, progress=False)
        with rexec.use_executor(ex):
            ex.prewarm(UNITS)
    tr.finish()
    doc = chrome_trace(tr.events)
    blob = json.dumps(doc)
    loaded = json.loads(blob)
    evs = loaded["traceEvents"]
    assert all(e["ph"] in ("X", "i", "M") for e in evs)
    cats = {e.get("cat") for e in evs if e["ph"] == "X"}
    assert {"engine", "unit", "launch"} <= cats
    # every complete slice is rebased and non-negative
    assert all(e["ts"] >= 0 for e in evs if e["ph"] == "X")


def test_jsonl_event_log(tmp_path):
    path = tmp_path / "events.jsonl"
    tr = tspans.Tracer(run_id="jl", jsonl_path=str(path))
    with tspans.use_tracer(tr):
        with tspans.span("step", "engine"):
            tspans.event("mark", "engine")
    tr.finish()
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    kinds = {(d["kind"], d["name"]) for d in lines}
    assert ("span", "step") in kinds
    assert ("instant", "mark") in kinds
    assert ("span", "run") in kinds
