"""Chaos runs leave telemetry: injected faults appear as tagged span
events, per-kind fault counters tick, and failures reach the log."""
from repro import exec as rexec
from repro.arch.specs import GTX280, GTX480
from repro.telemetry import metrics as tm
from repro.telemetry import spans as tspans

UNITS = [
    rexec.make_unit("TranP", api, dev, "small")
    for api in ("cuda", "opencl")
    for dev in (GTX280, GTX480)
]


def _instants(tr, name):
    return [
        e for e in tr.events
        if isinstance(e, tspans.Instant) and e.name == name
    ]


def test_injected_raise_appears_as_tagged_span_event(tmp_path):
    tr = tspans.Tracer(run_id="chaos")
    with tm.use_registry() as reg, tspans.use_tracer(tr):
        ex = rexec.SweepExecutor(
            cache=tmp_path, faults="raise:TranP/cuda*", retries=0,
            progress=False,
        )
        with rexec.use_executor(ex):
            ex.prewarm(UNITS)
    tr.finish()

    failed = [f.label for f in ex.stats.failures]
    assert sorted(failed) == sorted(
        u.label() for u in UNITS if u.api == "cuda"
    )
    fired = _instants(tr, "fault.injected")
    assert fired and all(e.cat == "fault" for e in fired)
    assert {e.attrs["kind"] for e in fired} == {"raise"}
    assert {e.attrs["label"] for e in fired} == set(failed)
    # per-kind counters ticked alongside the events
    assert reg.counter("faults.injected.raise").value == len(failed)
    assert reg.counter("exec.failures.injected").value == len(failed)
    # terminal failures are themselves events, flagged injected
    unit_failed = _instants(tr, "unit.failed")
    assert {e.attrs["label"] for e in unit_failed} == set(failed)
    assert all(e.attrs["injected"] for e in unit_failed)


def test_injected_transient_retries_are_span_events(tmp_path):
    tr = tspans.Tracer(run_id="chaos-transient")
    with tm.use_registry() as reg, tspans.use_tracer(tr):
        ex = rexec.SweepExecutor(
            cache=tmp_path, faults="seed=3;transient:TranP/opencl*:1.0:1",
            retries=2, progress=False,
        )
        with rexec.use_executor(ex):
            ex.prewarm(UNITS)
    tr.finish()
    # the transient rule fails attempt 1 then lets the unit succeed
    assert not ex.stats.failures
    backoffs = _instants(tr, "retry.backoff")
    assert backoffs
    assert reg.counter("exec.retries").value == len(backoffs)
    assert reg.counter("faults.injected.transient").value == len(backoffs)


def test_corrupt_fault_counts_and_quarantine_event(tmp_path):
    tr = tspans.Tracer(run_id="chaos-corrupt")
    unit = UNITS[0]
    with tm.use_registry() as reg, tspans.use_tracer(tr):
        ex = rexec.SweepExecutor(
            cache=tmp_path, faults=f"corrupt:{unit.label()}",
            progress=False,
        )
        ex.run_unit(unit)
        assert reg.counter("faults.injected.corrupt").value == 1
        # a fresh executor over the same cache trips the quarantine path
        ex2 = rexec.SweepExecutor(cache=tmp_path, progress=False)
        ex2.run_unit(unit)
        assert ex2.stats.quarantined == 1
        assert reg.counter("cache.quarantined").value == 1
    tr.finish()
    assert _instants(tr, "cache.quarantine")
    assert (tmp_path / "quarantine").exists()


def test_parallel_chaos_events_survive_worker_roundtrip(tmp_path):
    """Fault events fired inside pool workers are shipped home in the
    ok/err payload and absorbed into the parent trace + registry."""
    tr = tspans.Tracer(run_id="chaos-pool")
    with tm.use_registry() as reg, tspans.use_tracer(tr):
        ex = rexec.SweepExecutor(
            jobs=2, cache=tmp_path, retries=0,
            faults="raise:TranP/cuda*", progress=False,
        )
        with rexec.use_executor(ex):
            ex.prewarm(UNITS)
    tr.finish()
    fired = _instants(tr, "fault.injected")
    worker_fired = [e for e in fired if str(e.span_id).startswith("w")]
    assert worker_fired, "no fault events absorbed from workers"
    assert reg.counter("faults.injected.raise").value >= 2
