"""Metrics registry: instruments + the deterministic-merge property."""
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import metrics as tm


class TestInstruments:
    def test_counter(self):
        reg = tm.MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert reg.counter("x") is c
        assert c.value == 3.5
        assert c.as_dict() == {"type": "counter", "value": 3.5}

    def test_gauge_high_water(self):
        g = tm.MetricsRegistry().gauge("g")
        g.set(4)
        g.set(2)
        g.add(1)
        assert g.value == 3 and g.max == 4

    def test_histogram_buckets(self):
        h = tm.Histogram("h", boundaries=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # <=1, <=10, overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4 and h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError, match="sorted"):
            tm.Histogram("h", boundaries=(2.0, 1.0))

    def test_histogram_redeclare_with_other_boundaries_is_error(self):
        reg = tm.MetricsRegistry()
        reg.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="re-declared"):
            reg.histogram("h", boundaries=(1.0, 3.0))

    def test_use_registry_scopes_globals(self):
        tm.counter("ambient").inc()
        with tm.use_registry() as reg:
            tm.counter("scoped").inc()
            assert reg.get("ambient") is None
        assert tm.registry().get("scoped") is None


def _merge_all(snapshots, order):
    reg = tm.MetricsRegistry()
    for i in order:
        reg.merge_snapshot(snapshots[i])
    return reg.snapshot()


@st.composite
def worker_observations(draw):
    """Per-worker lists of (counter bumps, gauge levels, histogram samples)."""
    n_workers = draw(st.integers(min_value=1, max_value=4))
    finite = st.floats(
        min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    return [
        {
            "counts": draw(st.lists(finite, max_size=5)),
            "levels": draw(st.lists(finite, max_size=5)),
            "samples": draw(st.lists(finite, max_size=8)),
        }
        for _ in range(n_workers)
    ]


@settings(max_examples=60, deadline=None)
@given(worker_observations(), st.randoms())
def test_merge_order_never_changes_result(workers, rnd):
    """ISSUE satellite: merging N worker registries is order-independent —
    bucket counts, counter totals, and gauge high-water marks all match
    whatever permutation the scheduler delivered them in."""
    snapshots = []
    for w in workers:
        reg = tm.MetricsRegistry()
        for v in w["counts"]:
            reg.counter("c").inc(v)
        for v in w["levels"]:
            reg.gauge("g").set(v)
        for v in w["samples"]:
            reg.histogram("h", boundaries=tm.TIME_BUCKETS_S).observe(v)
        snapshots.append(reg.snapshot())

    order = list(range(len(snapshots)))
    forward = _merge_all(snapshots, order)
    rnd.shuffle(order)
    shuffled = _merge_all(snapshots, order)

    # histograms: bucket counts identical, not just approximately
    for name in ("c", "g", "h"):
        a, b = forward.get(name), shuffled.get(name)
        if a is None:
            assert b is None
            continue
        if a["type"] == "histogram":
            assert a["counts"] == b["counts"]
            assert a["count"] == b["count"]
            assert a["min"] == b["min"] and a["max"] == b["max"]
            assert a["sum"] == pytest.approx(b["sum"], rel=1e-12, abs=1e-12)
        elif a["type"] == "counter":
            assert a["value"] == pytest.approx(b["value"], rel=1e-12, abs=1e-12)
        else:
            assert a["max"] == b["max"]


def test_merge_creates_missing_metrics_and_rejects_boundary_mismatch():
    a = tm.MetricsRegistry()
    b = tm.MetricsRegistry()
    b.counter("only.b").inc(3)
    b.histogram("h", boundaries=(1.0, 2.0)).observe(1.5)
    a.merge_snapshot(b.snapshot())
    assert a.counter("only.b").value == 3
    c = tm.MetricsRegistry()
    c.histogram("h", boundaries=(5.0, 6.0)).observe(5.5)
    with pytest.raises(ValueError):
        c.merge_snapshot(b.snapshot())


def test_unknown_instrument_type_is_skipped_not_fatal():
    reg = tm.MetricsRegistry()
    reg.merge_snapshot({"weird": {"type": "summary", "value": 1}})
    assert reg.get("weird") is None
