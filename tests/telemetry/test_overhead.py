"""The telemetry layer's overhead bound (ISSUE acceptance criterion):
a warm-cache sweep with tracer + metrics active stays within 5% of the
same sweep with telemetry off."""
import contextlib
import time

from repro import exec as rexec
from repro.arch.specs import GTX280, GTX480
from repro.telemetry import spans as tspans

UNITS = [
    rexec.make_unit("TranP", api, dev, "small")
    for api in ("cuda", "opencl")
    for dev in (GTX280, GTX480)
]
SERVES_PER_UNIT = 50
TRIALS = 5


def _warm_pass(cache_dir, telemetry_on: bool) -> float:
    """One timed warm sweep: disk-hit prewarm + memo-hit serve storm."""
    ctx = (
        tspans.use_tracer(tspans.Tracer(run_id="overhead"))
        if telemetry_on
        else contextlib.nullcontext()
    )
    t0 = time.perf_counter()
    with ctx:
        ex = rexec.SweepExecutor(cache=cache_dir, progress=False)
        with rexec.use_executor(ex):
            ex.prewarm(UNITS)
            for u in UNITS:
                for _ in range(SERVES_PER_UNIT):
                    ex.run_unit(u)
    return time.perf_counter() - t0


def test_warm_sweep_within_5_percent_with_telemetry_on(tmp_path):
    # populate the disk cache once, untimed
    ex = rexec.SweepExecutor(cache=tmp_path, progress=False)
    with rexec.use_executor(ex):
        ex.prewarm(UNITS)
    assert ex.stats.misses == len(UNITS)

    # interleave trials so machine noise hits both arms alike; gate on
    # best-of (the standard way to strip scheduler jitter from a bound)
    off = min(_warm_pass(tmp_path, False) for _ in range(TRIALS))
    on = min(_warm_pass(tmp_path, True) for _ in range(TRIALS))
    # 5% relative bound, with a small absolute floor so a sub-ms warm
    # pass cannot fail on timer granularity alone
    assert on <= off * 1.05 + 0.005, (
        f"telemetry-on warm sweep {on:.4f}s vs off {off:.4f}s "
        f"(+{(on / off - 1) * 100:.1f}%)"
    )
