"""Front-end behaviour: the Table V mechanisms, verified structurally."""
import pytest

from repro.compiler import (
    assemble,
    compile_cuda,
    compile_opencl,
    lower_kernel,
    CLC_STYLE,
    NVOPENCC_STYLE,
)
from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar
from repro.ptx import Op, histogram, verify


def _addr_kernel(dialect):
    k = KernelBuilder("addr", dialect)
    a = k.buffer("a", Scalar.F32)
    o = k.buffer("o", Scalar.F32)
    i = k.let("i", k.global_id(0))
    k.store(o, i, a[i] + a[i])
    return k.finish()


class TestCodegenStyles:
    def test_dialect_guard(self):
        with pytest.raises(ValueError, match="dialect"):
            compile_cuda(_addr_kernel(OPENCL))
        with pytest.raises(ValueError, match="dialect"):
            compile_opencl(_addr_kernel(CUDA))

    def test_force_overrides_guard(self):
        compile_cuda(_addr_kernel(OPENCL), force=True)

    def test_nvopencc_uses_mad_addressing(self):
        h = histogram(compile_cuda(_addr_kernel(CUDA)))
        assert h.get("mad", 0) >= 1
        assert h.get("shl", 0) == 0

    def test_clc_uses_shift_addressing(self):
        h = histogram(compile_opencl(_addr_kernel(OPENCL)))
        assert h.get("shl", 0) >= 1
        assert h.get("mad", 0) == 0

    def test_nvopencc_cse_dedups_load(self):
        # a[i] + a[i]: CUDA CSEs the address; both load the same reg —
        # CSE applies to the address, the loads still execute twice?
        # Loads are impure, so both remain; but address math is shared.
        kc = compile_cuda(_addr_kernel(CUDA))
        ko = compile_opencl(_addr_kernel(OPENCL))
        assert histogram(kc).get("mad", 0) < histogram(ko).get("shl", 0) + histogram(ko).get("add", 0)

    def test_mov_asymmetry(self):
        hc = histogram(compile_cuda(_addr_kernel(CUDA)))
        ho = histogram(compile_opencl(_addr_kernel(OPENCL)))
        assert hc.get("mov", 0) > ho.get("mov", 0)

    def test_float_fusion_opcodes(self):
        def fused(dialect):
            k = KernelBuilder("f", dialect)
            a = k.buffer("a", Scalar.F32)
            o = k.buffer("o", Scalar.F32)
            i = k.let("i", k.global_id(0))
            k.store(o, i, a[i] * 2.0 + 1.0)
            return k.finish()

        assert histogram(compile_cuda(fused(CUDA))).get("mad", 0) >= 1
        ho = histogram(compile_opencl(fused(OPENCL)))
        assert ho.get("fma", 0) >= 1 and ho.get("mad", 0) == 0

    def test_predication_vs_branches(self):
        def guarded(dialect):
            k = KernelBuilder("g", dialect)
            o = k.buffer("o", Scalar.F32)
            n = k.scalar("n", Scalar.S32)
            i = k.let("i", k.global_id(0))
            with k.if_(i < n):
                k.store(o, i, 1.0)
            return k.finish()

        hc = histogram(compile_cuda(guarded(CUDA)))
        ho = histogram(compile_opencl(guarded(OPENCL)))
        assert hc.get("bra", 0) == 0  # predicated store
        assert ho.get("bra", 0) >= 1  # real branch

    def test_strength_reduction_div_pow2(self):
        def divmod_kernel(dialect):
            k = KernelBuilder("d", dialect)
            o = k.buffer("o", Scalar.S32)
            t = k.let("t", k.tid.x, Scalar.S32)
            k.store(o, t, t / 8 + t % 8)
            return k.finish()

        hc = histogram(compile_cuda(divmod_kernel(CUDA)))
        ho = histogram(compile_opencl(divmod_kernel(OPENCL)))
        for h in (hc, ho):  # both front ends strength-reduce const pow2
            assert h.get("div", 0) == 0 and h.get("rem", 0) == 0
            assert h.get("shr", 0) >= 1 and h.get("and", 0) >= 1

    def test_float_div_by_const_becomes_mul_cuda_only(self):
        def fdiv(dialect):
            k = KernelBuilder("fd", dialect)
            a = k.buffer("a", Scalar.F32)
            o = k.buffer("o", Scalar.F32)
            i = k.let("i", k.global_id(0))
            k.store(o, i, a[i] / 3.0)
            return k.finish()

        assert histogram(compile_cuda(fdiv(CUDA))).get("div", 0) == 0
        assert histogram(compile_opencl(fdiv(OPENCL))).get("div", 0) == 1

    def test_auto_unroll_cuda_only(self):
        def loop(dialect):
            k = KernelBuilder("l", dialect)
            o = k.buffer("o", Scalar.F32)
            acc = k.let("acc", 0.0, Scalar.F32)
            with k.for_("j", 0, 8) as j:
                k.assign(acc, acc + 1.0)
            k.store(o, k.global_id(0), acc)
            return k.finish()

        hc = histogram(compile_cuda(loop(CUDA)))
        ho = histogram(compile_opencl(loop(OPENCL)))
        assert hc.get("bra", 0) == 0  # fully unrolled
        assert ho.get("bra", 0) >= 2  # loop retained

    def test_verify_passes_on_output(self):
        for build, comp in (
            (_addr_kernel(CUDA), compile_cuda),
            (_addr_kernel(OPENCL), compile_opencl),
        ):
            verify(comp(build))


class TestPtxas:
    def test_spill_when_budget_tiny(self):
        k = KernelBuilder("s", CUDA)
        a = k.buffer("a", Scalar.F32)
        o = k.buffer("o", Scalar.F32)
        gid = k.let("gid", k.global_id(0))
        # data-dependent values: constant folding cannot collapse them
        vals = [k.let(f"v{j}", a[gid + j]) for j in range(24)]
        total = vals[0]
        for v in vals[1:]:
            total = total + v
        k.store(o, gid, total)
        ptx = compile_cuda(k.finish(), max_regs=12)
        assert ptx.resources.spill_bytes > 0
        assert ptx.resources.registers <= 12
        h = histogram(ptx)
        assert h.get("ld.local", 0) > 0 and h.get("st.local", 0) > 0

    def test_no_spill_with_room(self):
        ptx = compile_cuda(_addr_kernel(CUDA), max_regs=124)
        assert ptx.resources.spill_bytes == 0

    def test_spilled_kernel_still_correct(self):
        import numpy as np

        from repro.arch import GTX280
        from repro.kir import eval_kernel
        from repro.sim import SimDevice

        k = KernelBuilder("s", CUDA)
        a = k.buffer("a", Scalar.F32)
        o = k.buffer("o", Scalar.F32)
        gid = k.let("gid", k.global_id(0))
        vals = [k.let(f"v{j}", a[gid + j]) for j in range(24)]
        total = vals[0]
        for v in vals[1:]:
            total = total + v
        k.store(o, gid, total)
        kern = k.finish()
        ptx = compile_cuda(kern, max_regs=10)
        assert ptx.resources.spill_bytes > 0
        dev = SimDevice(GTX280)
        A = np.linspace(0, 1, 64).astype(np.float32)
        pa = dev.alloc(A.nbytes)
        dev.upload(pa, A)
        p = dev.alloc(32 * 4)
        dev.launch(ptx, 1, 32, {"a": pa, "o": p})
        got, _ = dev.download(p, 32, Scalar.F32)
        ref = np.zeros(32, dtype=np.float32)
        eval_kernel(kern, 1, 32, {"a": A.copy(), "o": ref})
        assert np.allclose(got, ref)

    def test_shared_bytes_reported(self):
        k = KernelBuilder("sh", CUDA)
        o = k.buffer("o", Scalar.F32)
        sh = k.shared("tile", Scalar.F32, 100)
        k.store(sh, k.tid.x, 0.0)
        k.barrier()
        k.store(o, k.tid.x, sh[k.tid.x])
        ptx = compile_cuda(k.finish())
        assert ptx.resources.shared_bytes == 400

    def test_texture_flag_reported(self):
        k = KernelBuilder("t", CUDA)
        a = k.buffer("a", Scalar.F32)
        o = k.buffer("o", Scalar.F32)
        k.store(o, k.tid.x, k.texload(a, k.tid.x))
        assert compile_cuda(k.finish()).resources.uses_texture
