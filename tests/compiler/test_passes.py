import numpy as np
import pytest

from repro.compiler.passes.constfold import fold_constants
from repro.compiler.passes.pragmas import (
    set_unroll_point,
    strip_unroll_point,
    unroll_points,
)
from repro.compiler.passes.unroll import unroll_loops
from repro.kir import (
    Assign,
    Const,
    CUDA,
    For,
    If,
    KernelBuilder,
    Let,
    Scalar,
    Store,
    eval_kernel,
)


def _simple(unroll=None, trip=4):
    k = KernelBuilder("k", CUDA)
    o = k.buffer("o", Scalar.S32)
    acc = k.let("acc", 0)
    with k.for_("i", 0, trip, unroll=unroll) as i:
        k.assign(acc, acc + i)
    k.store(o, k.tid.x, acc)
    return k.finish()


class TestUnroll:
    def test_full_unroll_removes_loop(self):
        k = _simple(unroll=None)
        out, rep = unroll_loops(k, auto_limit=16)
        assert not any(isinstance(s, For) for s in out.body)
        assert rep.unrolled

    def test_no_auto_unroll_when_disabled(self):
        out, rep = unroll_loops(_simple(), auto_limit=0)
        assert any(isinstance(s, For) for s in out.body)
        assert not rep.unrolled

    def test_pragma_honored_even_without_auto(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        acc = k.let("acc", 0)
        with k.for_("i", 0, 4, unroll=k.unroll()) as i:
            k.assign(acc, acc + i)
        k.store(o, k.tid.x, acc)
        out, rep = unroll_loops(k.finish(), auto_limit=0)
        assert not any(isinstance(s, For) for s in out.body)

    def test_partial_unroll_keeps_main_loop(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        acc = k.let("acc", 0)
        with k.for_("i", 0, 12, unroll=k.unroll(4)) as i:
            k.assign(acc, acc + i)
        k.store(o, k.tid.x, acc)
        out, rep = unroll_loops(k.finish(), auto_limit=0)
        loops = [s for s in out.body if isinstance(s, For)]
        assert len(loops) == 1
        assert int(loops[0].step.value) == 4
        assert len(loops[0].body) == 4

    def test_partial_unroll_with_remainder(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        acc = k.let("acc", 0)
        with k.for_("i", 0, 10, unroll=k.unroll(4)) as i:
            k.assign(acc, acc + i)
        k.store(o, k.tid.x, acc)
        out, _ = unroll_loops(k.finish(), auto_limit=0)
        # semantics preserved: run through the reference evaluator
        O = np.zeros(1, dtype=np.int32)
        eval_kernel(out, 1, 1, {"o": O})
        assert O[0] == sum(range(10))

    def test_unknown_trip_skipped_with_report(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        n = k.scalar("n", Scalar.S32)
        acc = k.let("acc", 0)
        with k.for_("i", 0, n, unroll=k.unroll()) as i:
            k.assign(acc, acc + i)
        k.store(o, k.tid.x, acc)
        out, rep = unroll_loops(k.finish(), auto_limit=64)
        assert rep.skipped and "compile-time" in rep.skipped[0][1]

    def test_barrier_blocks_auto_unroll(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        sh = k.shared("sh", Scalar.S32, 4)
        with k.for_("i", 0, 4) as i:
            k.store(sh, k.tid.x, i)
            k.barrier()
        k.store(o, k.tid.x, sh[k.tid.x])
        out, rep = unroll_loops(k.finish(), auto_limit=64)
        assert any(isinstance(s, For) for s in out.body)

    def test_barrier_unrolls_under_pragma(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        sh = k.shared("sh", Scalar.S32, 4)
        with k.for_("i", 0, 4, unroll=k.unroll()) as i:
            k.store(sh, k.tid.x, i)
            k.barrier()
        k.store(o, k.tid.x, sh[k.tid.x])
        out, rep = unroll_loops(k.finish(), auto_limit=0)
        assert not any(isinstance(s, For) for s in out.body)

    def test_alpha_renaming_keeps_uses_consistent(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        with k.for_("i", 0, 3, unroll=k.unroll()) as i:
            tmp = k.let("tmp", i * 10)
            k.store(o, i, tmp + 1)
        out, _ = unroll_loops(k.finish(), auto_limit=0)
        O = np.zeros(3, dtype=np.int32)
        eval_kernel(out, 1, 1, {"o": O})
        assert O.tolist() == [1, 11, 21]

    def test_semantics_preserved_generic(self):
        base = _simple()
        out, _ = unroll_loops(base, auto_limit=16)
        O1 = np.zeros(2, dtype=np.int32)
        O2 = np.zeros(2, dtype=np.int32)
        eval_kernel(base, 1, 2, {"o": O1})
        eval_kernel(out, 1, 2, {"o": O2})
        assert (O1 == O2).all()


class TestConstFold:
    def test_literal_arith_folds(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        k.store(o, 0, k.const(2) + k.const(3) * k.const(4))
        out = fold_constants(k.finish())
        st = out.body[0]
        assert isinstance(st.value, Const) and st.value.value == 14

    def test_branch_pruning(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        with k.if_(k.const(1) < k.const(2)):
            k.store(o, 0, 1)
        out = fold_constants(k.finish(), prune_branches=True)
        assert isinstance(out.body[0], Store)

    def test_no_pruning_when_disabled(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        with k.if_(k.const(1) < k.const(2)):
            k.store(o, 0, 1)
        out = fold_constants(k.finish(), prune_branches=False)
        assert isinstance(out.body[0], If)

    def test_constant_propagation_through_assign_chain(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        l = k.let("l", 1)
        k.assign(l, l * 2)
        k.assign(l, l * 2)
        k.store(o, 0, l)
        out = fold_constants(k.finish(), prune_branches=True)
        st = [s for s in out.body if isinstance(s, Store)][0]
        assert isinstance(st.value, Const) and st.value.value == 4

    def test_propagation_killed_by_loop_assignment(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        n = k.scalar("n", Scalar.S32)
        l = k.let("l", 1)
        with k.for_("i", 0, n) as i:
            k.assign(l, l * 2)
        k.store(o, 0, l)
        out = fold_constants(k.finish(), prune_branches=True)
        st = [s for s in out.body if isinstance(s, Store)][0]
        assert not isinstance(st.value, Const)

    def test_propagation_killed_by_divergent_branch(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        l = k.let("l", 1)
        with k.if_(k.tid.x < 1):
            k.assign(l, 5)
        k.store(o, 0, l)
        out = fold_constants(k.finish(), prune_branches=True)
        st = [s for s in out.body if isinstance(s, Store)][0]
        assert not isinstance(st.value, Const)

    def test_algebraic_identities(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        t = k.let("t", k.tid.x, Scalar.S32)
        k.store(o, 0, t * 1 + 0)
        out = fold_constants(k.finish(), algebraic=True)
        st = [s for s in out.body if isinstance(s, Store)][0]
        assert st.value.key() == t.key()

    def test_zero_trip_loop_removed(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        acc = k.let("acc", 0)
        with k.for_("i", 5, 5) as i:
            k.assign(acc, acc + 1)
        k.store(o, 0, acc)
        out = fold_constants(k.finish(), prune_branches=True)
        assert not any(isinstance(s, For) for s in out.body)

    def test_fold_preserves_semantics(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.F32)
        x = k.let("x", 2.0, Scalar.F32)
        k.assign(x, x * 3.0 + 1.0)
        with k.if_(k.const(True, Scalar.PRED)):
            k.assign(x, x - 0.5)
        k.store(o, k.tid.x, x)
        base = k.finish()
        folded = fold_constants(base, prune_branches=True)
        O1 = np.zeros(1, dtype=np.float32)
        O2 = np.zeros(1, dtype=np.float32)
        eval_kernel(base, 1, 1, {"o": O1})
        eval_kernel(folded, 1, 1, {"o": O2})
        assert np.allclose(O1, O2)


class TestPragmas:
    def _kernel(self):
        k = KernelBuilder("k", CUDA)
        o = k.buffer("o", Scalar.S32)
        with k.for_("i", 0, 9, unroll=k.unroll(9, point="a")) as i:
            with k.for_("j", 0, 3, unroll=k.unroll(point="b")) as j:
                k.store(o, i * 3 + j, 0)
        return k.finish()

    def test_unroll_points_listing(self):
        pts = unroll_points(self._kernel())
        assert pts == {"a": 9, "b": -1}

    def test_strip_point(self):
        out = strip_unroll_point(self._kernel(), "a")
        assert "a" not in unroll_points(out)
        assert "b" in unroll_points(out)

    def test_set_point_factor(self):
        out = set_unroll_point(self._kernel(), "a", 3)
        assert unroll_points(out)["a"] == 3
