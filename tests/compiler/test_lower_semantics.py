"""Regression tests for the lowering engine's CSE-memo scoping.

These pin down the subtle cases: memoized values must not be reused
when a loop mutates their inputs, when a divergent branch computed them
under a partial mask, or after a variable they mention is reassigned.
All are verified semantically through compile -> simulate vs. the
reference evaluator, because a stale-memo bug produces wrong *values*.
"""
import numpy as np

from repro.arch import GTX480
from repro.compiler import compile_cuda
from repro.kir import CUDA, KernelBuilder, Scalar, eval_kernel
from repro.sim import SimDevice


def _run(kern, arrays, grid=1, block=32):
    ptx = compile_cuda(kern, max_regs=63)
    dev = SimDevice(GTX480)
    args = {}
    for name, arr in arrays.items():
        p = dev.alloc(arr.nbytes)
        dev.upload(p, arr)
        args[name] = p
    dev.launch(ptx, grid, block, args)
    out = {}
    from repro.kir.types import Scalar as S

    for name, arr in arrays.items():
        sc = {np.dtype(np.int32): S.S32, np.dtype(np.float32): S.F32}[arr.dtype]
        out[name], _ = dev.download(args[name], arr.size, sc)
    oracle = {k: v.copy() for k, v in arrays.items()}
    eval_kernel(kern, grid, block, oracle)
    for name in arrays:
        np.testing.assert_allclose(out[name], oracle[name], rtol=1e-5)


def test_memo_not_reused_across_loop_carried_mutation():
    """x*2 memoized before the loop must be recomputed inside it."""
    k = KernelBuilder("m1", CUDA)
    o = k.buffer("o", Scalar.S32)
    n = k.scalar("n", Scalar.S32)  # defeat auto-unroll/const-prop
    x = k.let("x", 5)
    pre = k.let("pre", x * 2)  # memoizes (x*2)
    acc = k.let("acc", 0)
    with k.for_("i", 0, n) as i:
        k.assign(acc, acc + x * 2)  # must track the mutating x
        k.assign(x, x + 1)
    k.store(o, k.tid.x, acc + pre)
    kern = k.finish()
    ptx = compile_cuda(kern, max_regs=63)
    dev = SimDevice(GTX480)
    p = dev.alloc(128)
    dev.launch(ptx, 1, 32, {"o": p, "n": np.int32(3)})
    got, _ = dev.download(p, 32, Scalar.S32)
    ref = np.zeros(32, dtype=np.int32)
    eval_kernel(kern, 1, 32, {"o": ref, "n": 3})
    np.testing.assert_array_equal(got, ref)  # acc = 10+12+14, pre = 10


def test_memo_from_divergent_branch_not_reused_after_reconvergence():
    k = KernelBuilder("m2", CUDA)
    a = k.buffer("a", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    v = k.let("v", a[t])
    u = k.let("u", 0)
    with k.if_(t < 16):
        # v*7 computed under a partial mask inside the branch; the Lets
        # here are branch-local and must not leak stale lanes
        k.assign(u, v * 7 + 1)
    k.store(o, t, u + v * 7)  # full-mask recomputation must be fresh
    A = np.arange(32, dtype=np.int32)
    _run(k.finish(), {"a": A, "o": np.zeros(32, dtype=np.int32)})


def test_memo_invalidated_by_assignment_between_uses():
    k = KernelBuilder("m3", CUDA)
    o = k.buffer("o", Scalar.S32)
    n = k.scalar("n", Scalar.S32)
    x = k.let("x", 0, Scalar.S32)
    k.assign(x, n)  # runtime value, defeats const-prop
    first = k.let("first", x * 3)
    k.assign(x, x + 1)
    second = k.let("second", x * 3)  # must differ from `first`
    k.store(o, k.tid.x, second - first)
    kern = k.finish()
    ptx = compile_cuda(kern, max_regs=63)
    dev = SimDevice(GTX480)
    p = dev.alloc(128)
    dev.launch(ptx, 1, 32, {"o": p, "n": np.int32(10)})
    got, _ = dev.download(p, 32, Scalar.S32)
    assert (got == 3).all()


def test_address_cse_does_not_merge_different_buffers():
    k = KernelBuilder("m4", CUDA)
    a = k.buffer("a", Scalar.S32)
    b = k.buffer("b", Scalar.S32)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    k.store(o, t, a[t] - b[t])  # same index, different base
    A = np.arange(32, dtype=np.int32) * 2
    B = np.arange(32, dtype=np.int32)
    _run(k.finish(), {"a": A, "b": B, "o": np.zeros(32, dtype=np.int32)})


def test_predicated_let_keeps_inactive_lanes():
    k = KernelBuilder("m5", CUDA)
    o = k.buffer("o", Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    v = k.let("v", 100)
    with k.if_(t < 4):  # small body -> NVOPENCC predicates it
        k.assign(v, t)
    k.store(o, t, v)
    kern = k.finish()
    ptx = compile_cuda(kern, max_regs=63)
    # confirm it actually predicated (no branch emitted)
    from repro.ptx import histogram

    assert histogram(ptx).get("bra", 0) == 0
    _run(kern, {"o": np.zeros(32, dtype=np.int32)})


def test_dce_removes_dead_let_but_not_stores():
    from repro.ptx import histogram

    k = KernelBuilder("m6", CUDA)
    a = k.buffer("a", Scalar.F32)
    o = k.buffer("o", Scalar.F32)
    t = k.let("t", k.tid.x, Scalar.S32)
    dead = k.let("dead", a[t] * 123.0)  # never used
    k.store(o, t, 1.0)
    h = histogram(compile_cuda(k.finish()))
    assert h.get("ld.global", 0) == 0  # dead load eliminated
    assert h.get("st.global", 0) == 1
