import numpy as np
import pytest

from repro.arch import (
    ALL_DEVICES,
    CELLBE,
    GTX280,
    GTX480,
    HD5870,
    INTEL920,
    LRUCache,
    bank_conflicts,
    coalesce,
    device_by_name,
    null_cache,
    occupancy,
    segments_gt200,
    segments_lines,
    theoretical_bandwidth_gbs,
    theoretical_flops_gfs,
)


class TestPeaks:
    """Equations (2) and (3) must reproduce the paper's numbers exactly."""

    def test_tp_bw_gtx280(self):
        assert theoretical_bandwidth_gbs(GTX280) == pytest.approx(141.696, abs=0.1)

    def test_tp_bw_gtx480(self):
        assert theoretical_bandwidth_gbs(GTX480) == pytest.approx(177.408, abs=0.1)

    def test_tp_flops_gtx280(self):
        assert theoretical_flops_gfs(GTX280) == pytest.approx(933.12, abs=0.1)

    def test_tp_flops_gtx480(self):
        assert theoretical_flops_gfs(GTX480) == pytest.approx(1344.96, abs=0.1)


class TestSpecs:
    def test_table4_values(self):
        assert GTX280.compute_units == 30 and GTX280.cores == 240
        assert GTX480.cores == 480
        assert HD5870.cores == 1600 and HD5870.core_clock_mhz == 850
        assert GTX280.miw_bits == 512 and GTX480.miw_bits == 384
        assert HD5870.miw_bits == 256

    def test_wavefront_widths(self):
        assert GTX280.warp_width == 32 and GTX480.warp_width == 32
        assert HD5870.warp_width == 64  # the RdxS FL mechanism

    def test_r_values(self):
        assert GTX280.flops_per_core_cycle == 3.0  # dual-issue mul+mad
        assert GTX480.flops_per_core_cycle == 2.0

    def test_cache_presence(self):
        assert not GTX280.has_global_cache  # the Sobel/Fig. 8 crux
        assert GTX480.has_global_cache

    def test_cuda_support(self):
        assert GTX280.supports_cuda() and GTX480.supports_cuda()
        for d in (HD5870, INTEL920, CELLBE):
            assert not d.supports_cuda()

    def test_device_lookup(self):
        assert device_by_name("GTX480") is GTX480
        with pytest.raises(KeyError):
            device_by_name("GTX999")


class TestCoalescing:
    def test_fermi_unit_stride_one_line(self):
        addrs = np.arange(32, dtype=np.int64) * 4 + 1024
        sizes = np.full(32, 4, dtype=np.int64)
        bases, widths = segments_lines(addrs, sizes, 128)
        assert bases.size == 1 and widths[0] == 128

    def test_fermi_strided_many_lines(self):
        addrs = np.arange(32, dtype=np.int64) * 128
        sizes = np.full(32, 4, dtype=np.int64)
        bases, _ = segments_lines(addrs, sizes, 128)
        assert bases.size == 32

    def test_gt200_unit_stride_two_half_warps(self):
        addrs = np.arange(32, dtype=np.int64) * 4
        sizes = np.full(32, 4, dtype=np.int64)
        bases, widths = segments_gt200(addrs, sizes)
        assert bases.size == 2  # one 64B segment per half-warp
        assert set(widths.tolist()) == {64}

    def test_gt200_same_address_broadcast_single_small_segment(self):
        addrs = np.full(32, 4096, dtype=np.int64)
        sizes = np.full(32, 4, dtype=np.int64)
        bases, widths = segments_gt200(addrs, sizes)
        assert bases.size == 2 and set(widths.tolist()) == {32}

    def test_gt200_scattered_worst_case(self):
        addrs = np.arange(32, dtype=np.int64) * 256
        sizes = np.full(32, 4, dtype=np.int64)
        bases, _ = segments_gt200(addrs, sizes)
        assert bases.size == 32

    def test_coalesce_returns_traffic(self):
        addrs = np.arange(32, dtype=np.int64) * 4
        sizes = np.full(32, 4, dtype=np.int64)
        _, bytes_gt = coalesce(GTX280, addrs, sizes)
        _, bytes_fermi = coalesce(GTX480, addrs, sizes)
        assert bytes_gt == 128 and bytes_fermi == 128

    def test_empty_access(self):
        a = np.array([], dtype=np.int64)
        _, traffic = coalesce(GTX480, a, a)
        assert traffic == 0


class TestBankConflicts:
    def test_unit_stride_no_conflict(self):
        addrs = np.arange(32, dtype=np.int64) * 4
        assert bank_conflicts(GTX480, addrs) == 1
        assert bank_conflicts(GTX280, addrs) == 1

    def test_stride_two_conflicts(self):
        addrs = np.arange(32, dtype=np.int64) * 8
        assert bank_conflicts(GTX480, addrs) == 2

    def test_same_word_broadcast_free(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert bank_conflicts(GTX480, addrs) == 1

    def test_padded_transpose_tile_conflict_free(self):
        # the TranP trick: column accesses through a 17-wide tile
        ty = np.arange(16, dtype=np.int64)
        addrs = (ty * 17) * 4
        assert bank_conflicts(GTX280, addrs) == 1

    def test_unpadded_transpose_tile_conflicts(self):
        ty = np.arange(16, dtype=np.int64)
        addrs = (ty * 16) * 4
        assert bank_conflicts(GTX280, addrs) == 16


class TestCaches:
    def test_lru_hit_after_fill(self):
        c = LRUCache(1024, 64)
        assert not c.access(0)
        assert c.access(0)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_eviction_order(self):
        c = LRUCache(4 * 64, 64, ways=4)  # one set of 4 ways
        for b in range(0, 5 * 64, 64):
            c.access(b)
        assert not c.access(0)  # evicted (LRU)
        assert c.access(4 * 64)  # most recent survives

    def test_touch_refreshes(self):
        c = LRUCache(4 * 64, 64, ways=4)
        for b in range(0, 4 * 64, 64):
            c.access(b)
        c.access(0)  # refresh
        c.access(4 * 64)  # evicts 64, not 0
        assert c.access(0)

    def test_null_cache_always_misses(self):
        c = null_cache()
        assert not c.access(0)
        assert not c.access(0)

    def test_invalidate(self):
        c = LRUCache(1024, 64)
        c.access(0)
        c.invalidate()
        assert not c.access(0)


class TestOccupancy:
    def test_thread_limited(self):
        occ = occupancy(GTX280, 256, regs_per_thread=8, shared_per_block=0)
        assert occ.blocks_per_cu == 4  # 1024 threads / 256
        assert occ.warps_per_cu == 32

    def test_register_limited(self):
        occ = occupancy(GTX280, 256, regs_per_thread=40, shared_per_block=0)
        assert occ.limiter == "registers"
        assert occ.blocks_per_cu == 1

    def test_shared_limited(self):
        occ = occupancy(GTX280, 64, regs_per_thread=8, shared_per_block=9000)
        assert occ.limiter == "shared"
        assert occ.blocks_per_cu == 1

    def test_does_not_fit(self):
        occ = occupancy(GTX280, 256, regs_per_thread=500, shared_per_block=0)
        assert occ.blocks_per_cu == 0 and occ.limiter == "does-not-fit"

    def test_block_cap(self):
        occ = occupancy(GTX480, 32, regs_per_thread=4, shared_per_block=0)
        assert occ.blocks_per_cu == GTX480.max_blocks_per_cu
