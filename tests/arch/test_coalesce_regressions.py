"""Regression tests for the two coalescer correctness bugs.

Both bugs silently undercounted DRAM traffic:

* ``segments_gt200`` dropped the trailing segment of an access that
  straddles a 128B boundary (addr=124, size=8 lost bytes [128, 132));
* ``segments_lines`` only returned the first and last line of an access,
  so a span of three or more lines lost every middle line.
"""
import numpy as np
import pytest

from repro.arch import GTX280, GTX480, coalesce, segments_gt200, segments_lines


def _covered(bases, widths):
    out = set()
    for b, w in zip(bases.tolist(), widths.tolist()):
        out.update(range(b, b + w))
    return out


class TestGT200StraddleRegression:
    def test_straddling_access_keeps_trailing_bytes(self):
        # addr=124 size=8 touches [124, 132): both segment 0 and segment 1
        addrs = np.array([124], dtype=np.int64)
        sizes = np.array([8], dtype=np.int64)
        bases, widths = segments_gt200(addrs, sizes)
        cov = _covered(bases, widths)
        assert all(b in cov for b in range(124, 132)), (
            "bytes beyond the 128B boundary were dropped"
        )
        assert bases.size == 2  # one transaction per touched segment

    def test_straddle_traffic_counted(self):
        addrs = np.array([124], dtype=np.int64)
        sizes = np.array([8], dtype=np.int64)
        _, traffic = coalesce(GTX280, addrs, sizes)
        # two shrunk 32B transactions, not one
        assert traffic == 64

    def test_half_warp_with_one_straddler(self):
        # 15 aligned lanes + 1 straddler: the straddler's tail segment
        # must appear even though every other lane stays in segment 0
        addrs = np.array([i * 8 for i in range(15)] + [124], dtype=np.int64)
        sizes = np.full(16, 8, dtype=np.int64)
        bases, widths = segments_gt200(addrs, sizes)
        cov = _covered(bases, widths)
        assert all(b in cov for b in range(124, 132))

    def test_aligned_accesses_unchanged(self):
        # the fix must not perturb the classic unit-stride result
        addrs = np.arange(32, dtype=np.int64) * 4
        sizes = np.full(32, 4, dtype=np.int64)
        bases, widths = segments_gt200(addrs, sizes)
        assert bases.size == 2 and set(widths.tolist()) == {64}

    def test_giant_access_spans_interior_segments(self):
        # a >128B access touches interior segments, not just its ends
        addrs = np.array([0], dtype=np.int64)
        sizes = np.array([300], dtype=np.int64)
        bases, widths = segments_gt200(addrs, sizes)
        cov = _covered(bases, widths)
        assert all(b in cov for b in range(0, 300))


class TestFermiLineSpanRegression:
    def test_three_line_span_includes_middle_line(self):
        # addr=0 size=300 with 128B lines touches lines 0, 128, 256
        addrs = np.array([0], dtype=np.int64)
        sizes = np.array([300], dtype=np.int64)
        bases, widths = segments_lines(addrs, sizes, 128)
        assert bases.tolist() == [0, 128, 256]
        assert widths.tolist() == [128, 128, 128]

    def test_five_line_span(self):
        addrs = np.array([64], dtype=np.int64)
        sizes = np.array([512], dtype=np.int64)
        bases, _ = segments_lines(addrs, sizes, 128)
        assert bases.tolist() == [0, 128, 256, 384, 512]

    def test_two_line_straddle_still_two_lines(self):
        addrs = np.array([124], dtype=np.int64)
        sizes = np.array([8], dtype=np.int64)
        bases, _ = segments_lines(addrs, sizes, 128)
        assert bases.tolist() == [0, 128]

    def test_fermi_traffic_counts_middle_lines(self):
        addrs = np.array([0], dtype=np.int64)
        sizes = np.array([300], dtype=np.int64)
        _, traffic = coalesce(GTX480, addrs, sizes)
        assert traffic == 3 * 128

    def test_duplicate_lines_still_deduplicated(self):
        addrs = np.array([0, 4, 8, 300, 304], dtype=np.int64)
        sizes = np.full(5, 4, dtype=np.int64)
        bases, _ = segments_lines(addrs, sizes, 128)
        assert bases.tolist() == [0, 256]


class TestTimingBoundClassification:
    def test_bandwidth_bound_launch_reports_memory(self):
        """A launch won by the device-wide bandwidth term must not be
        classified from the summed per-CU comp/mem totals."""
        from repro.arch import GTX480, occupancy
        from repro.sim.interp import LaunchStats
        from repro.sim.timing import kernel_time

        n = GTX480.compute_units
        stats = LaunchStats(n)
        # tiny per-CU cycles: per-CU terms are negligible...
        stats.comp_cycles[:] = 100.0
        stats.mem_cycles[:] = 10.0
        occ = occupancy(GTX480, 256, 16, 0)
        # ...but an enormous DRAM total makes bandwidth the winner
        dram = np.full(n, 1e9 / n)
        t = kernel_time(GTX480, stats, dram, occ)
        assert t.bound_term == "bandwidth"
        assert t.bound == "memory"
        assert t.bw_s > 0

    def test_compute_bound_launch_reports_compute(self):
        from repro.arch import GTX480, occupancy
        from repro.sim.interp import LaunchStats
        from repro.sim.timing import kernel_time

        n = GTX480.compute_units
        stats = LaunchStats(n)
        stats.comp_cycles[:] = 1e6
        stats.mem_cycles[:] = 10.0
        occ = occupancy(GTX480, 256, 16, 0)
        t = kernel_time(GTX480, stats, dram_bytes=np.zeros(n), occ=occ)
        assert t.bound_term == "compute"
        assert t.bound == "compute"

    def test_bound_term_from_winning_cu_not_sums(self):
        """Regression: summed per-CU totals used to disagree with the
        term that won ``max(per_cu, bw_total, hot)``.

        One compute-bound CU decides the launch, but the *summed* memory
        seconds across the other CUs exceed the summed compute seconds —
        the pre-fix classifier called this launch memory-bound.
        """
        from repro.arch import GTX480, occupancy
        from repro.sim.interp import LaunchStats
        from repro.sim.timing import kernel_time

        n = GTX480.compute_units
        stats = LaunchStats(n)
        # the slowest CU is purely compute-bound...
        stats.comp_cycles[0] = 1e6
        stats.mem_cycles[0] = 0.0
        # ...every other CU has moderate memory time, each below CU0's
        # compute time but together summing far above it
        stats.comp_cycles[1:] = 0.0
        stats.mem_cycles[1:] = 2e7
        occ = occupancy(GTX480, 256, 16, 0)
        t = kernel_time(GTX480, stats, dram_bytes=np.zeros(n), occ=occ)
        assert t.mem_s > t.comp_s  # the sums say "memory"...
        assert t.bound_term == "compute"  # ...but the winning term says no
        assert t.bound == "compute"
