import math

from repro.experiments.report import ExperimentResult, fmt


class TestFmt:
    def test_none(self):
        assert fmt(None) == "-"

    def test_nan(self):
        assert fmt(float("nan")) == "n/a"

    def test_small_float_scientific(self):
        assert "e" in fmt(1.5e-7) or "E" in fmt(1.5e-7)

    def test_plain_float(self):
        assert fmt(3.14159, nd=2) == "3.14"

    def test_string_passthrough(self):
        assert fmt("ABT") == "ABT"


class TestExperimentResult:
    def _res(self):
        r = ExperimentResult("figX", "demo", ["a", "b"], [])
        r.add(a=1.0, b="x")
        r.add(a=2.5, b="y")
        return r

    def test_render_contains_rows_and_title(self):
        text = self._res().render()
        assert "figX: demo" in text
        assert "2.500" in text and "y" in text

    def test_checks_render_pass_and_miss(self):
        r = self._res()
        r.check("good", "1", "1", True)
        r.check("bad", "1", "2", False)
        text = r.render()
        assert "[PASS] good" in text
        assert "[MISS] bad" in text

    def test_notes_appended(self):
        r = self._res()
        r.notes.append("hello note")
        assert "note: hello note" in r.render()

    def test_missing_column_renders_dash(self):
        r = ExperimentResult("f", "t", ["a", "b"], [])
        r.add(a=1)
        assert "-" in r.render()
