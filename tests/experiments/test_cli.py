import pytest


def test_benchsuite_cli_runs(capsys):
    from repro.benchsuite.__main__ import main

    rc = main(["TranP", "--device", "GTX480", "--api", "both", "--size", "small"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "TranP" in out and "cuda" in out and "opencl" in out


def test_benchsuite_cli_downgrades_cuda_on_amd(capsys):
    from repro.benchsuite.__main__ import main

    rc = main(["TranP", "--device", "HD5870", "--api", "both", "--size", "small"])
    out = capsys.readouterr().out
    assert "OpenCL only" in out
    assert rc == 0


def test_benchsuite_cli_reports_failures(capsys):
    from repro.benchsuite.__main__ import main

    rc = main(["RdxS", "--device", "HD5870", "--api", "opencl", "--size", "small"])
    out = capsys.readouterr().out
    assert "FL" in out
    assert rc == 1


def test_experiments_cli_main(capsys):
    from repro.experiments.runner import main

    rc = main(["table5", "--size", "small"])
    out = capsys.readouterr().out
    assert rc == 0 and "table5" in out


def test_paperdoc_generates_markdown(tmp_path):
    from repro.experiments.paperdoc import generate

    text = generate(size="small", names=["table5"])
    assert "# EXPERIMENTS" in text
    assert "table5" in text
    assert "| shape check | paper | measured | holds |" in text


def _fake_experiment(holds, sizes=None, size="small"):
    """A minimal experiment module whose single check we control."""
    import types

    from repro.experiments.report import ExperimentResult

    def run(size=size):
        res = ExperimentResult(
            experiment="fake", title="synthetic", columns=["x"], rows=[{"x": 1}],
            size=size,
        )
        res.check("synthetic check", paper=1, measured=2, holds=holds, sizes=sizes)
        return res

    return types.SimpleNamespace(run=run)


def test_experiments_cli_exits_nonzero_on_failed_check(monkeypatch, capsys):
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import main

    monkeypatch.setitem(EXPERIMENTS, "fake", _fake_experiment(holds=False))
    rc = main(["fake", "--size", "small", "--no-cache"])
    cap = capsys.readouterr()
    assert rc == 1
    assert "[MISS]" in cap.out
    assert "1 shape check(s) did not hold" in cap.err


def test_experiments_cli_skips_checks_invalid_at_size(monkeypatch, capsys):
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import main

    # the check would fail, but it is only valid at the default size
    monkeypatch.setitem(
        EXPERIMENTS, "fake", _fake_experiment(holds=False, sizes=("default",))
    )
    rc = main(["fake", "--size", "small", "--no-cache"])
    cap = capsys.readouterr()
    assert rc == 0
    assert "[SKIP] synthetic check" in cap.out
    assert "(not valid at size=small)" in cap.out


def test_experiments_cli_size_checks_live_at_valid_size(monkeypatch, capsys):
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import main

    # same size-tagged check fails for real when run at a valid size
    monkeypatch.setitem(
        EXPERIMENTS, "fake",
        _fake_experiment(holds=False, sizes=("default",), size="default"),
    )
    rc = main(["fake", "--size", "default", "--no-cache"])
    cap = capsys.readouterr()
    assert rc == 1
    assert "[MISS]" in cap.out


def test_experiments_cli_rejects_unknown_name():
    import pytest as _pytest

    from repro.experiments.runner import main

    with _pytest.raises(SystemExit, match="unknown experiment"):
        main(["nonesuch", "--size", "small"])


def _fault_raising_experiment(injected):
    """An experiment module whose run() hits a failed work unit."""
    import types

    from repro.errors import FailureKind, UnitFailed

    def run(size="small"):
        raise UnitFailed(
            "Fake/cuda@GTX480[small]", FailureKind.ERROR, "boom",
            injected=injected,
        )

    return types.SimpleNamespace(run=run)


def test_experiments_cli_skips_experiment_aborted_by_injected_fault(
    monkeypatch, capsys
):
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import main

    monkeypatch.setitem(EXPERIMENTS, "fake", _fault_raising_experiment(True))
    rc = main(["fake", "--size", "small", "--no-cache"])
    cap = capsys.readouterr()
    # injected (chaos-harness) failures are expected: report, exit clean
    assert rc == 0
    assert "aborted by failed work unit [injected]" in cap.err


def test_experiments_cli_nonzero_on_unexpected_unit_failure(
    monkeypatch, capsys
):
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import main

    monkeypatch.setitem(EXPERIMENTS, "fake", _fault_raising_experiment(False))
    rc = main(["fake", "--size", "small", "--no-cache"])
    cap = capsys.readouterr()
    assert rc == 1
    assert "aborted by failed work unit" in cap.err
    assert "non-injected unit failure" in cap.err


def test_experiments_cli_accepts_timeout_and_retries(capsys):
    from repro.experiments.runner import main

    rc = main(
        ["table5", "--size", "small", "--no-cache", "--timeout", "600",
         "--retries", "1"]
    )
    assert rc == 0
    assert "table5" in capsys.readouterr().out


def test_benchsuite_cli_reports_engine_failures(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "raise:TranP/cuda@GTX480[small]")
    from repro.benchsuite.__main__ import main

    rc = main(
        ["TranP", "--device", "GTX480", "--api", "both", "--size", "small",
         "--no-cache"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "ERROR" in out  # the failed unit's row
    assert "opencl" in out  # the other unit still ran
    assert "failed units: 1" in out


def test_fig1_small_is_clean_smoke_run(capsys):
    from repro.experiments.runner import main

    rc = main(["fig1", "--size", "small", "--no-cache"])
    cap = capsys.readouterr()
    assert rc == 0
    # the %-of-theoretical-peak checks are expected misses at the reduced
    # working set and must render as SKIP, not count as failures
    assert "[SKIP]" in cap.out
    assert "[MISS]" not in cap.out
    assert "did not hold" not in cap.err
