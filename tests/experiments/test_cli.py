import pytest


def test_benchsuite_cli_runs(capsys):
    from repro.benchsuite.__main__ import main

    rc = main(["TranP", "--device", "GTX480", "--api", "both", "--size", "small"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "TranP" in out and "cuda" in out and "opencl" in out


def test_benchsuite_cli_downgrades_cuda_on_amd(capsys):
    from repro.benchsuite.__main__ import main

    rc = main(["TranP", "--device", "HD5870", "--api", "both", "--size", "small"])
    out = capsys.readouterr().out
    assert "OpenCL only" in out
    assert rc == 0


def test_benchsuite_cli_reports_failures(capsys):
    from repro.benchsuite.__main__ import main

    rc = main(["RdxS", "--device", "HD5870", "--api", "opencl", "--size", "small"])
    out = capsys.readouterr().out
    assert "FL" in out
    assert rc == 1


def test_experiments_cli_main(capsys):
    from repro.experiments.runner import main

    rc = main(["table5", "--size", "small"])
    out = capsys.readouterr().out
    assert rc == 0 and "table5" in out


def test_paperdoc_generates_markdown(tmp_path):
    from repro.experiments.paperdoc import generate

    text = generate(size="small", names=["table5"])
    assert "# EXPERIMENTS" in text
    assert "table5" in text
    assert "| shape check | paper | measured | holds |" in text
