"""Golden test: the EXPERIMENTS.md index table regenerates exactly.

Re-runs the full experiment suite at the default size through the sweep
engine and compares the regenerated index table (experiment, paper
content, check counts) against the committed ``EXPERIMENTS.md``.  Any
simulator change that flips a shape check shows up here as a diff
against the committed document.

Results are cached in the repo-local ``.repro-cache`` (gitignored), so
only the first run on a fresh checkout pays for the full sweep; reruns
are served from disk.  ``REPRO_JOBS`` sets the cold-run fan-out.
"""
import os
import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
_INDEX_ROW = re.compile(r"^\| (?:fig|table)\w+ \|")


def index_rows(text):
    return [l for l in text.splitlines() if _INDEX_ROW.match(l)]


def test_experiments_md_index_table_is_current():
    from repro import exec as rexec
    from repro.experiments.paperdoc import generate

    committed = index_rows((REPO / "EXPERIMENTS.md").read_text())
    assert len(committed) == 10, "committed EXPERIMENTS.md lost its index"

    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    ex = rexec.SweepExecutor(jobs=jobs, cache=REPO / ".repro-cache")
    with rexec.use_executor(ex):
        regenerated = index_rows(generate(size="default"))
    assert regenerated == committed
