"""Work units — the atoms of a sweep.

The paper's methodology is a sweep: 16 benchmarks x 2 APIs x several
devices and problem sizes (Figs. 1-8, Tables V-VI).  A
:class:`WorkUnit` names one independent cell of that sweep — *one
benchmark run under one API on one device at one size with one option
set* — which is exactly the granularity at which runs can be fanned out
over processes and memoized on disk.

Every unit has a content-addressed :func:`unit_digest` over everything
that determines its result: the rendered kernel sources (per dialect,
after option/define resolution), the full :class:`DeviceSpec` including
calibration constants, the launch configuration (problem-size
parameters, resolved options, build defines), and the ``repro`` package
version.  Any change to any of these invalidates exactly the affected
units; nothing else does.
"""
from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Mapping, Optional

from .._version import __version__
from ..arch.specs import DeviceSpec, device_by_name
from ..benchsuite.base import BenchResult, host_for
from ..benchsuite.registry import get_benchmark
from ..kir import pretty
from ..kir.dialect import CUDA, OPENCL

__all__ = [
    "WorkUnit",
    "UnitResult",
    "make_unit",
    "unit_build",
    "unit_fingerprint",
    "unit_digest",
    "execute",
]


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One (benchmark, api, device, size, options) cell of a sweep."""

    benchmark: str
    api: str  # "cuda" | "opencl"
    device: str  # DeviceSpec.name
    size: str = "default"
    #: canonicalized option overrides: sorted ((key, value), ...) pairs
    options: tuple = ()

    @property
    def spec(self) -> DeviceSpec:
        return device_by_name(self.device)

    def options_dict(self) -> Optional[dict]:
        return dict(self.options) if self.options else None

    def label(self) -> str:
        opts = ",".join(f"{k}={v}" for k, v in self.options)
        base = f"{self.benchmark}/{self.api}@{self.device}[{self.size}]"
        return f"{base}{{{opts}}}" if opts else base


@dataclasses.dataclass
class UnitResult:
    """What one executed (or cache-served) work unit produced."""

    unit: WorkUnit
    bench: BenchResult
    #: aggregated :class:`~repro.prof.profile.LaunchProfile` of the run,
    #: labeled ``"<benchmark>/<api>"``; None when nothing launched
    profile: object
    #: wall seconds the simulation took when it actually ran
    seconds: float
    #: True when served from the result cache instead of simulated
    cached: bool = False


def make_unit(
    benchmark: str,
    api: str,
    device,
    size: str = "default",
    options: Optional[Mapping] = None,
) -> WorkUnit:
    """Build a canonical :class:`WorkUnit` (options sorted by key)."""
    name = device.name if isinstance(device, DeviceSpec) else str(device)
    canon = tuple(sorted((str(k), v) for k, v in (options or {}).items()))
    return WorkUnit(
        benchmark=str(benchmark), api=str(api), device=name, size=str(size),
        options=canon,
    )


def _plain(v):
    """Flatten a value into JSON-stable primitives."""
    if isinstance(v, dict):
        return {str(k): _plain(x) for k, x in sorted(v.items(), key=lambda i: str(i[0]))}
    if isinstance(v, (list, tuple)):
        return [_plain(x) for x in v]
    if isinstance(v, (str, bool, int, float)) or v is None:
        return v
    if hasattr(v, "item"):  # numpy scalars
        return v.item()
    return repr(v)


def unit_build(unit: WorkUnit, spec: Optional[DeviceSpec] = None) -> tuple:
    """Resolve the unit's build inputs exactly as a run would.

    Returns ``(bench, dialect, params, opts, defines)`` — the single
    resolution path shared by :func:`unit_fingerprint` (content
    addressing) and the lifecycle ABT preflight guard (which compiles
    the same kernels the host would), so the two can never drift.
    """
    spec = spec if spec is not None else unit.spec
    bench = get_benchmark(unit.benchmark)
    dialect = CUDA if unit.api == "cuda" else OPENCL
    params = bench.sizes()[unit.size]
    opts = bench.options_for(dialect, dict(unit.options))
    defines = {"WARP_SIZE": spec.warp_width}
    return bench, dialect, params, opts, defines


def unit_fingerprint(
    unit: WorkUnit,
    spec: Optional[DeviceSpec] = None,
    version: Optional[str] = None,
) -> dict:
    """Everything that determines the unit's result, as a JSON payload.

    ``spec``/``version`` overrides exist for tests that probe the
    invalidation rules without editing global state.
    """
    spec = spec if spec is not None else unit.spec
    bench, dialect, params, opts, defines = unit_build(unit, spec)
    try:
        sources = [
            pretty.render(k, dialect)
            for k in bench.build_kernels(dialect, opts, defines, params)
        ]
    except Exception as e:  # construction can hit device limits; still keyable
        sources = [f"<kernel construction failed: {type(e).__name__}: {e}>"]
    return {
        "benchmark": unit.benchmark,
        "api": unit.api,
        "size": unit.size,
        "device": _plain(dataclasses.asdict(spec)),
        "params": _plain(params),
        "options": _plain(opts),
        "defines": _plain(defines),
        "kernels": sources,
        "version": version if version is not None else __version__,
    }


def digest_of_fingerprint(fp: Mapping) -> str:
    blob = json.dumps(fp, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def unit_digest(
    unit: WorkUnit,
    spec: Optional[DeviceSpec] = None,
    version: Optional[str] = None,
) -> str:
    """The unit's content address (sha256 hex)."""
    return digest_of_fingerprint(unit_fingerprint(unit, spec=spec, version=version))


def execute(unit: WorkUnit, attempt: int = 1, faults=None) -> UnitResult:
    """Actually simulate one work unit (no caching at this layer).

    ``attempt``/``faults`` are the fault-injection boundary: when a
    :class:`repro.faults.FaultInjector` is supplied, it fires any fault
    planned for this unit's label *before* the simulation runs, so
    injected failures behave exactly like real ones to every layer
    above (retry, quarantine, reporting).
    """
    from ..prof.collect import sim_device_of
    from ..prof.profile import aggregate

    if faults is not None:
        faults.fire(unit.label(), attempt)
    bench = get_benchmark(unit.benchmark)
    host = host_for(unit.api, unit.spec)
    t0 = time.perf_counter()
    result = bench.run(host, size=unit.size, options=unit.options_dict())
    seconds = time.perf_counter() - t0
    profile = aggregate(
        sim_device_of(host).profiles, label=f"{bench.name}/{unit.api}"
    )
    return UnitResult(
        unit=unit, bench=result, profile=profile, seconds=seconds, cached=False
    )
