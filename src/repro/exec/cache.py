"""Content-addressed on-disk result cache for sweep work units.

Layout: ``<root>/<digest[:2]>/<digest>.json``, one JSON payload per
unit.  Writes are atomic (tmp file + ``os.replace``) so parallel
workers and concurrent sweeps can share one cache directory safely.

Serialization is also the normalization layer: the engine round-trips
*every* result — fresh or cached — through :func:`result_to_json` /
:func:`result_from_json`, so a cache hit is byte-identical to a fresh
simulation by construction (the property ``tests/exec`` asserts).
"""
from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional

from ..arch.caches import CacheStats
from ..benchsuite.base import BenchResult
from ..prof.profile import LaunchProfile
from .unit import UnitResult, WorkUnit, _plain

__all__ = [
    "ResultCache",
    "result_to_json",
    "result_from_json",
    "default_cache_dir",
]


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` when set, else ``.repro-cache`` in the cwd."""
    return os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"


def _bench_to_json(b: BenchResult) -> dict:
    return {f.name: _plain(getattr(b, f.name)) for f in dataclasses.fields(b)}


def _bench_from_json(d: dict) -> BenchResult:
    return BenchResult(**d)


def _profile_to_json(p: Optional[LaunchProfile]) -> Optional[dict]:
    if p is None:
        return None
    out = {}
    for f in dataclasses.fields(p):
        v = getattr(p, f.name)
        if f.name == "caches":
            v = {k: [st.hits, st.misses] for k, st in v.items()}
        out[f.name] = _plain(v)
    return out


def _profile_from_json(d: Optional[dict]) -> Optional[LaunchProfile]:
    if d is None:
        return None
    d = dict(d)
    d["grid"] = tuple(d["grid"])
    d["block"] = tuple(d["block"])
    d["caches"] = {k: CacheStats(h, m) for k, (h, m) in d["caches"].items()}
    return LaunchProfile(**d)


def result_to_json(ur: UnitResult) -> dict:
    return {
        "unit": {
            "benchmark": ur.unit.benchmark,
            "api": ur.unit.api,
            "device": ur.unit.device,
            "size": ur.unit.size,
            "options": [list(kv) for kv in ur.unit.options],
        },
        "bench": _bench_to_json(ur.bench),
        "profile": _profile_to_json(ur.profile),
        "seconds": float(ur.seconds),
    }


def result_from_json(payload: dict, cached: bool = False) -> UnitResult:
    u = payload["unit"]
    unit = WorkUnit(
        benchmark=u["benchmark"],
        api=u["api"],
        device=u["device"],
        size=u["size"],
        options=tuple((k, v) for k, v in u["options"]),
    )
    return UnitResult(
        unit=unit,
        bench=_bench_from_json(payload["bench"]),
        profile=_profile_from_json(payload["profile"]),
        seconds=payload["seconds"],
        cached=cached,
    )


class ResultCache:
    """A content-addressed directory of unit results."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        try:
            with open(self._path(digest)) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def put(self, digest: str, payload: dict) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump(payload, f)
        os.replace(tmp, path)

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
