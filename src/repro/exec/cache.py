"""Content-addressed on-disk result cache for sweep work units.

Layout: ``<root>/<digest[:2]>/<digest>.json``, one JSON payload per
unit.  Writes are atomic (tmp file + ``os.replace``) so parallel
workers and concurrent sweeps can share one cache directory safely.

Serialization is also the normalization layer: the engine round-trips
*every* result — fresh or cached — through :func:`result_to_json` /
:func:`result_from_json`, so a cache hit is byte-identical to a fresh
simulation by construction (the property ``tests/exec`` asserts).

Loads are defensive: every entry is schema-versioned and validated by
:func:`validate_payload` before it is served.  An entry that fails to
parse or validate — a torn write, a stale format, a hand-edited file —
is treated as a cache *miss* and moved to ``<root>/quarantine/`` (with
a ``.reason`` sidecar) instead of crashing the sweep.
"""
from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional

from ..arch.caches import CacheStats
from ..benchsuite.base import BenchResult
from ..errors import CacheCorruptionError
from ..prof.profile import LaunchProfile
from ..telemetry import log, metrics
from ..telemetry import spans as tspans
from .unit import UnitResult, WorkUnit, _plain

__all__ = [
    "ResultCache",
    "result_to_json",
    "result_from_json",
    "canonical_payload",
    "canonical_results_json",
    "validate_payload",
    "default_cache_dir",
    "SCHEMA_VERSION",
]

#: bump whenever the payload layout OR the numeric semantics producing
#: it change; mismatched entries are quarantined rather than
#: misinterpreted (v3: operand-width shift masking + unclamped SFU
#: specials changed simulated results)
SCHEMA_VERSION = 3

_REQUIRED_KEYS = frozenset({"schema", "unit", "bench", "profile", "seconds"})
_UNIT_KEYS = frozenset({"benchmark", "api", "device", "size", "options"})


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` when set, else ``.repro-cache`` in the cwd."""
    return os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"


def _bench_to_json(b: BenchResult) -> dict:
    return {f.name: _plain(getattr(b, f.name)) for f in dataclasses.fields(b)}


def _bench_from_json(d: dict) -> BenchResult:
    return BenchResult(**d)


def _profile_to_json(p: Optional[LaunchProfile]) -> Optional[dict]:
    if p is None:
        return None
    out = {}
    for f in dataclasses.fields(p):
        v = getattr(p, f.name)
        if f.name == "caches":
            v = {k: [st.hits, st.misses] for k, st in v.items()}
        out[f.name] = _plain(v)
    return out


def _profile_from_json(d: Optional[dict]) -> Optional[LaunchProfile]:
    if d is None:
        return None
    d = dict(d)
    d["grid"] = tuple(d["grid"])
    d["block"] = tuple(d["block"])
    d["caches"] = {k: CacheStats(h, m) for k, (h, m) in d["caches"].items()}
    return LaunchProfile(**d)


def validate_payload(payload) -> None:
    """Reject malformed-but-parseable payloads before they are served.

    Raises :class:`~repro.errors.CacheCorruptionError`; the cache maps
    that to miss-and-quarantine, so ``result_from_json`` only ever sees
    payloads with the full required shape.
    """
    if not isinstance(payload, dict):
        raise CacheCorruptionError(
            f"payload is {type(payload).__name__}, not an object"
        )
    missing = _REQUIRED_KEYS - payload.keys()
    if missing:
        raise CacheCorruptionError(f"missing keys: {sorted(missing)}")
    if payload["schema"] != SCHEMA_VERSION:
        raise CacheCorruptionError(
            f"schema version {payload['schema']!r} != {SCHEMA_VERSION}"
        )
    unit = payload["unit"]
    if not isinstance(unit, dict) or _UNIT_KEYS - unit.keys():
        raise CacheCorruptionError("unit block malformed")
    if not isinstance(payload["bench"], dict):
        raise CacheCorruptionError("bench block malformed")
    if not isinstance(payload["seconds"], (int, float)):
        raise CacheCorruptionError("seconds is not a number")


def result_to_json(ur: UnitResult) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "unit": {
            "benchmark": ur.unit.benchmark,
            "api": ur.unit.api,
            "device": ur.unit.device,
            "size": ur.unit.size,
            "options": [list(kv) for kv in ur.unit.options],
        },
        "bench": _bench_to_json(ur.bench),
        "profile": _profile_to_json(ur.profile),
        "seconds": float(ur.seconds),
    }


def result_from_json(payload: dict, cached: bool = False) -> UnitResult:
    validate_payload(payload)
    u = payload["unit"]
    unit = WorkUnit(
        benchmark=u["benchmark"],
        api=u["api"],
        device=u["device"],
        size=u["size"],
        options=tuple((k, v) for k, v in u["options"]),
    )
    return UnitResult(
        unit=unit,
        bench=_bench_from_json(payload["bench"]),
        profile=_profile_from_json(payload["profile"]),
        seconds=payload["seconds"],
        cached=cached,
    )


def canonical_payload(payload: dict) -> dict:
    """A copy of ``payload`` with its wall-clock fields zeroed.

    Everything in a unit result is virtual-clock deterministic *except*
    ``seconds`` (host wall time of the simulation) and the profile's
    ``compile_s`` (front-end wall time).  Zeroing exactly those two
    makes results comparable byte-for-byte across independent runs —
    the contract the resume acceptance test holds the journal to.
    """
    out = json.loads(json.dumps(payload))
    out["seconds"] = 0.0
    if isinstance(out.get("profile"), dict):
        out["profile"]["compile_s"] = 0.0
    return out


def canonical_results_json(results) -> str:
    """Render a sweep's results as a deterministic JSON document.

    Sorted by unit identity, wall-clock fields zeroed, stable key
    order: two runs that computed the same results — cold, warm,
    parallel, or interrupted-then-resumed — produce identical bytes.
    """
    rows = [canonical_payload(result_to_json(r)) for r in results]
    rows.sort(key=lambda p: json.dumps(p["unit"], sort_keys=True))
    doc = {"schema": SCHEMA_VERSION, "results": rows}
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


class ResultCache:
    """A content-addressed directory of unit results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: optional :class:`~repro.exec.engine.SweepStats` hookup so the
        #: owning sweep's report can show quarantine counts directly
        self.stats = None

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def path_for(self, digest: str) -> Path:
        """Where the entry for ``digest`` lives (whether or not it exists)."""
        return self._path(digest)

    def get(self, digest: str) -> Optional[dict]:
        path = self._path(digest)
        with tspans.span("cache.get", "cache", digest=digest[:8]):
            try:
                with open(path) as f:
                    payload = json.load(f)
            except OSError:
                metrics.counter("cache.disk.misses").inc()
                return None
            except ValueError as e:
                self.quarantine(digest, f"unparseable JSON: {e}")
                metrics.counter("cache.disk.misses").inc()
                return None
            try:
                validate_payload(payload)
            except CacheCorruptionError as e:
                self.quarantine(digest, str(e))
                metrics.counter("cache.disk.misses").inc()
                return None
            metrics.counter("cache.disk.hits").inc()
            return payload

    def quarantine(self, digest: str, reason: str) -> Optional[Path]:
        """Move a corrupt entry to ``<root>/quarantine/`` (miss, not crash).

        The entry is preserved for post-mortem next to a ``.reason``
        sidecar; the next lookup of the digest is a clean miss and the
        re-simulated result overwrites nothing in quarantine.
        """
        src = self._path(digest)
        dst_dir = self.root / "quarantine"
        dst = dst_dir / src.name
        try:
            dst_dir.mkdir(parents=True, exist_ok=True)
            os.replace(src, dst)
            dst.with_suffix(".reason").write_text(reason + "\n")
        except OSError:
            return None
        metrics.counter("cache.quarantined").inc()
        if self.stats is not None:
            self.stats.quarantined += 1
        tspans.event(
            "cache.quarantine", "cache", entry=src.name, reason=reason
        )
        log.warn(
            "cache.quarantine",
            f"quarantined corrupt cache entry {src.name} ({reason})",
        )
        return dst

    def put(self, digest: str, payload: dict) -> None:
        """Atomically (and durably) install one entry.

        The payload is written to a pid-suffixed tmp file, fsynced, and
        ``os.replace``d into place: a reader never sees a torn entry,
        and a process killed mid-write leaves only a tmp file (removed
        here on error and swept by :meth:`purge_tmp`).  The fsync
        before the rename is what lets the run journal's ``done``
        record trust the entry across a crash.
        """
        path = self._path(digest)
        with tspans.span("cache.put", "cache", digest=digest[:8]):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            try:
                with open(tmp, "w") as f:
                    json.dump(payload, f)
                    f.flush()
                    try:
                        os.fsync(f.fileno())
                    except OSError:
                        pass  # exotic fs; the rename is still atomic
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            metrics.counter("cache.puts").inc()

    def purge_tmp(self) -> int:
        """Remove tmp files orphaned by killed writers; returns the count.

        Safe against live writers in *this* process (their tmp names
        carry this pid); concurrent sweeps in other processes write and
        rename fast enough that a stale tmp is overwhelmingly a corpse.
        """
        removed = 0
        if not self.root.exists():
            return 0
        own = f".tmp.{os.getpid()}"
        for tmp in self.root.glob("[0-9a-f][0-9a-f]/*.tmp.*"):
            if tmp.name.endswith(own):
                continue
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            metrics.counter("cache.tmp_purged").inc(removed)
            log.info(
                "cache.purge_tmp",
                f"removed {removed} orphaned tmp file(s) from {self.root}",
            )
        return removed

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # two-hex-digit shards only: quarantined entries don't count
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))
