"""repro.exec — the sweep execution engine.

Decomposes experiments into independent :class:`WorkUnit`\\ s (one per
benchmark x device x API x config), fans them out over a process pool,
and memoizes each unit's result in a content-addressed cache keyed by
the kernel sources, the full :class:`DeviceSpec`, the launch
configuration, and the package version (see DESIGN.md §"Sweep execution
engine").

A process-wide *active executor* lets the experiment harness, the
benchsuite CLI, ``core.comparison.compare`` and the test suite share
one memo table without threading an executor object through every call:

    from repro import exec as rexec

    with rexec.use_executor(rexec.SweepExecutor(jobs=4, cache=".repro-cache")):
        run_experiment("fig3")          # every unit goes through the engine
"""
from __future__ import annotations

import contextlib
from typing import Mapping, Optional

from .cache import (
    SCHEMA_VERSION,
    ResultCache,
    canonical_payload,
    canonical_results_json,
    default_cache_dir,
    result_from_json,
    result_to_json,
    validate_payload,
)
from .engine import FailedUnit, SweepExecutor, SweepStats, UnitRecord
from .journal import JournalReplay, RunJournal, journal_dir, latest_resumable
from .lifecycle import (
    EXIT_CLEAN,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    GracefulShutdown,
    PreflightVerdict,
    preflight_unit,
    run_outcome,
)
from .unit import (
    UnitResult,
    WorkUnit,
    execute,
    make_unit,
    unit_build,
    unit_digest,
    unit_fingerprint,
)
from .variants import (
    VariantCheck,
    check_unit_variants,
    render_checks,
    variant_manifest,
    variants_for_unit,
    with_variant,
)

__all__ = [
    "WorkUnit",
    "UnitResult",
    "make_unit",
    "unit_build",
    "unit_digest",
    "unit_fingerprint",
    "execute",
    "ResultCache",
    "default_cache_dir",
    "result_to_json",
    "result_from_json",
    "canonical_payload",
    "canonical_results_json",
    "validate_payload",
    "SCHEMA_VERSION",
    "SweepExecutor",
    "SweepStats",
    "UnitRecord",
    "FailedUnit",
    "RunJournal",
    "JournalReplay",
    "journal_dir",
    "latest_resumable",
    "EXIT_CLEAN",
    "EXIT_FAILED",
    "EXIT_INTERRUPTED",
    "GracefulShutdown",
    "PreflightVerdict",
    "preflight_unit",
    "run_outcome",
    "active",
    "use_executor",
    "run_unit",
    "run_benchmark",
    "VariantCheck",
    "check_unit_variants",
    "render_checks",
    "variant_manifest",
    "variants_for_unit",
    "with_variant",
]

#: the process-wide executor every sweep-aware call site routes through;
#: created lazily so importing repro.exec has no side effects
_ACTIVE: Optional[SweepExecutor] = None


def active() -> SweepExecutor:
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = SweepExecutor()
    return _ACTIVE


@contextlib.contextmanager
def use_executor(executor: SweepExecutor):
    """Install ``executor`` as the active one for the dynamic extent."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = executor
    try:
        yield executor
    finally:
        _ACTIVE = prev


def run_unit(unit: WorkUnit) -> UnitResult:
    """Serve one work unit through the active executor."""
    return active().run_unit(unit)


def run_benchmark(
    benchmark: str,
    api: str,
    device,
    size: str = "default",
    options: Optional[Mapping] = None,
):
    """Engine-routed replacement for ``bench.run(host_for(api, spec))``.

    Returns the :class:`~repro.benchsuite.base.BenchResult` (cached or
    freshly simulated).
    """
    return run_unit(make_unit(benchmark, api, device, size, options)).bench
