"""CLI: housekeeping for sweep workdirs.

    python -m repro.exec gc [--cache-dir DIR] [--max-age DAYS] [--dry-run]

``gc`` reclaims the disk a long-lived sweep workdir accretes, touching
only artifacts that are provably dead:

* **journal compaction** — journals of runs that reached a terminal
  state are rewritten without their ``start`` and ``hb`` records.
  Both are only meaningful for a run that might still resume or be
  watched live; the compacted journal replays to the identical
  completed/failed classification (``done``/``fail``/``state`` records
  are kept verbatim), so ``--resume`` of a *complete* run still serves
  everything from cache.  Journals of running/interrupted runs are
  never touched — their in-flight set is exactly what resume needs.
* **tmp corpses** — pid-suffixed ``*.tmp.*`` files orphaned by killed
  writers, in the cache shards, the metrics dir, the journal dir, and
  the daemon's ``serve/`` state dir.
* **stale metrics snapshots** — per-run ``metrics/<run-id>.json``
  liveness snapshots exist so :mod:`repro.obs` can watch a run from
  outside the process; once the run's journal is terminal (and hence
  compacted), or the journal is gone and the snapshot has outlived
  ``--max-age`` days, the snapshot is dead weight and is pruned.
* **stale quarantine** — corrupt entries preserved for post-mortem are
  pruned (with their ``.reason`` sidecars) once older than
  ``--max-age`` days (default 7): by then nobody is coming to look.

Every action is reported with the bytes it reclaimed; ``--dry-run``
reports without deleting.  Exits 0.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from . import journal as journal_mod
from .cache import default_cache_dir

__all__ = ["main", "gc_run", "DEFAULT_MAX_AGE_DAYS"]

#: quarantined entries younger than this many days are kept for triage
DEFAULT_MAX_AGE_DAYS = 7.0

#: record types that survive journal compaction: everything replay
#: needs to classify a *terminal* run (in-flight reconstruction needs
#: ``start``, but a terminal run's in-flight set is only history)
_KEEP_RECORDS = ("run", "plan", "done", "fail", "demote", "state")

#: journal states eligible for compaction
_TERMINAL = ("complete", "interrupted", "failed")


def _size(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0


def _compact_journal(path: Path, dry_run: bool) -> int:
    """Rewrite one terminal journal without start/hb records.

    Returns bytes reclaimed (0 when the journal is not terminal, is
    already compact, or cannot be read).  The rewrite is atomic
    (tmp + ``os.replace``), so a concurrent reader never sees a torn
    journal.
    """
    try:
        raw = path.read_text()
    except OSError:
        return 0
    kept: list = []
    dropped = 0
    state = "running"
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn tail: dropped by compaction
        t = rec.get("t")
        if t == "state":
            state = rec.get("state", state)
        if t in _KEEP_RECORDS:
            kept.append(line)
        else:
            dropped += 1
    if state not in _TERMINAL or dropped == 0:
        return 0
    new_body = "\n".join(kept) + "\n"
    reclaimed = max(0, len(raw.encode()) - len(new_body.encode()))
    if dry_run:
        return reclaimed
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        tmp.write_text(new_body)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return 0
    return reclaimed


def _journal_state(path: Path):
    """The terminal state a journal replays to, or None when unreadable.

    Returns ``"running"`` for a journal with no terminal ``state``
    record — such a run may still be live (or resumable), and nothing
    derived from it may be pruned.
    """
    try:
        raw = path.read_text()
    except OSError:
        return None
    state = "running"
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        if rec.get("t") == "state":
            state = rec.get("state", state)
    return state


def _unlink(path: Path, dry_run: bool) -> int:
    size = _size(path)
    if dry_run:
        return size
    try:
        path.unlink()
    except OSError:
        return 0
    return size


def gc_run(
    cache_dir,
    max_age_days: float = DEFAULT_MAX_AGE_DAYS,
    dry_run: bool = False,
    now: float = None,
) -> dict:
    """Collect garbage under one sweep workdir; returns the accounting.

    ``now`` pins the age cutoff for tests; defaults to wall clock.
    """
    root = Path(cache_dir)
    now = time.time() if now is None else float(now)
    report = {
        "cache_dir": str(root),
        "dry_run": dry_run,
        "journals_compacted": 0,
        "journal_bytes": 0,
        "tmp_removed": 0,
        "tmp_bytes": 0,
        "metrics_removed": 0,
        "metrics_bytes": 0,
        "quarantine_removed": 0,
        "quarantine_bytes": 0,
    }
    if not root.is_dir():
        return report

    # 1. compact journals of terminal runs
    jdir = journal_mod.journal_dir(root)
    if jdir.is_dir():
        for path in sorted(jdir.glob("*.jsonl")):
            reclaimed = _compact_journal(path, dry_run)
            if reclaimed:
                report["journals_compacted"] += 1
                report["journal_bytes"] += reclaimed

    # 2. sweep tmp corpses everywhere atomic writers leave them.  Tmp
    # names carry the writer's pid; this process's own are skipped.
    own = f".tmp.{os.getpid()}"
    for pattern in (
        "[0-9a-f][0-9a-f]/*.tmp.*", "metrics/*.tmp.*", "journal/*.tmp.*",
        "serve/*.tmp.*", "serve/err/*.tmp.*",
    ):
        for tmp in sorted(root.glob(pattern)):
            if tmp.name.endswith(own):
                continue
            freed = _unlink(tmp, dry_run)
            if freed or dry_run:
                report["tmp_removed"] += 1
                report["tmp_bytes"] += freed

    # 3. prune metrics snapshots of runs that are over.  A snapshot is
    # only useful while repro.obs might watch the run live; "over"
    # means its journal replays to a terminal state (the same rule that
    # makes the journal itself compactable), or the journal is gone
    # entirely and the snapshot has sat untouched past --max-age (a
    # journalless writer — e.g. the serve daemon's liveness snapshot —
    # refreshes its mtime every beat while alive).
    mdir = root / "metrics"
    if mdir.is_dir():
        cutoff = now - max_age_days * 86400.0
        for snap in sorted(mdir.glob("*.json")):
            jpath = journal_mod.journal_dir(root) / f"{snap.stem}.jsonl"
            state = _journal_state(jpath)
            if state is None:
                try:
                    aged = snap.stat().st_mtime <= cutoff
                except OSError:
                    continue
                prune = aged
            else:
                prune = state in _TERMINAL
            if not prune:
                continue
            freed = _unlink(snap, dry_run)
            if freed or dry_run:
                report["metrics_removed"] += 1
                report["metrics_bytes"] += freed

    # 4. prune quarantine entries past the triage window
    qdir = root / "quarantine"
    if qdir.is_dir():
        cutoff = now - max_age_days * 86400.0
        for entry in sorted(qdir.iterdir()):
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue
            if mtime > cutoff:
                continue
            freed = _unlink(entry, dry_run)
            if freed or dry_run:
                report["quarantine_removed"] += 1
                report["quarantine_bytes"] += freed

    report["bytes_reclaimed"] = (
        report["journal_bytes"] + report["tmp_bytes"]
        + report["metrics_bytes"] + report["quarantine_bytes"]
    )
    return report


def render_gc(report: dict) -> str:
    tag = " (dry run)" if report["dry_run"] else ""
    return "\n".join([
        f"== gc {report['cache_dir']}{tag} ==",
        f"  journals:   {report['journals_compacted']} compacted, "
        f"{report['journal_bytes']} bytes",
        f"  tmp:        {report['tmp_removed']} corpse(s), "
        f"{report['tmp_bytes']} bytes",
        f"  metrics:    {report.get('metrics_removed', 0)} snapshot(s), "
        f"{report.get('metrics_bytes', 0)} bytes",
        f"  quarantine: {report['quarantine_removed']} entr(ies), "
        f"{report['quarantine_bytes']} bytes",
        f"  reclaimed:  {report.get('bytes_reclaimed', 0)} bytes",
    ])


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Housekeeping for sweep workdirs",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    p = sub.add_parser("gc", help="reclaim dead artifacts in a sweep workdir")
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep workdir to collect (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--max-age", type=float, default=DEFAULT_MAX_AGE_DAYS, metavar="DAYS",
        help="prune quarantine entries older than DAYS (default 7)",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be reclaimed without deleting anything",
    )
    p.add_argument("--json", action="store_true")
    args = ap.parse_args(argv)

    report = gc_run(
        args.cache_dir or default_cache_dir(),
        max_age_days=args.max_age,
        dry_run=args.dry_run,
    )
    try:
        if args.json:
            json.dump(report, sys.stdout, indent=1, sort_keys=True)
            print()
        else:
            print(render_gc(report))
    except BrokenPipeError:
        # Reader (head, less, ...) went away; silence the interpreter's
        # stderr complaint on shutdown and exit like a killed pipe writer.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
