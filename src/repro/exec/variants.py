"""Generated kernel variants as sweep work units, plus the differential
preservation harness.

A variant is an ordinary :class:`WorkUnit` whose options carry a
``rewrite`` token (see :mod:`repro.kir.rewrite.plan`); it flows
through the cache, journal, and ABT preflight like any other unit, and
its content digest covers the rewritten kernel sources automatically
because :func:`repro.exec.unit.unit_fingerprint` renders kernels through
``Benchmark.build_kernels``.

The harness's contract is the rewrite engine's whole claim: **every
legal variant computes the byte-identical output of its baseline**.  The
comparison runs over :func:`canonical_payload` — the same wall-clock-free
document ``canonical_results_json`` is built from — keeping exactly the
fields that must match (correctness verdict, failure tag, and the
``out_digest`` sha256 of the output buffer) and ignoring the ones that
legitimately differ between variants (simulated kernel time — variants
exist to *change* those).
"""
from __future__ import annotations

import dataclasses
import json
from typing import Mapping, Optional, Sequence

from ..errors import UnitFailed
from .cache import canonical_payload, result_to_json
from .lifecycle import preflight_unit
from .unit import WorkUnit, make_unit, unit_build, unit_digest

__all__ = [
    "variants_for_unit",
    "with_variant",
    "VariantCheck",
    "check_unit_variants",
    "variant_manifest",
    "render_checks",
]


def variants_for_unit(unit: WorkUnit, plan_options: Optional[Mapping] = None) -> list:
    """Enumerate variant tokens for a unit's baseline kernels.

    The plan runs over the kernels exactly as the unit would build them
    (dialect, options, and size-dependent constants resolved), so a
    token returned here is guaranteed to name a resolvable site.
    """
    from ..kir.rewrite import VariantPlan

    bench, dialect, params, opts, defines = unit_build(unit)
    kerns = bench.build_kernels(dialect, opts, defines, params)
    plan = VariantPlan(kerns, **(plan_options or {}))
    return [v.token for v in plan.variants()]


def with_variant(unit: WorkUnit, token: str) -> WorkUnit:
    """The same sweep cell with the variant token in its options."""
    opts = dict(unit.options)
    opts["rewrite"] = token
    return make_unit(unit.benchmark, unit.api, unit.device, unit.size, opts)


@dataclasses.dataclass
class VariantCheck:
    """Outcome of one variant-vs-baseline differential comparison."""

    unit: WorkUnit
    token: str
    #: "preserved" | "different" | "inadmissible" | "failed"
    status: str
    note: str = ""
    digest: str = ""

    @property
    def violation(self) -> bool:
        """True when this check disproves semantics preservation."""
        return self.status == "different"

    def as_dict(self) -> dict:
        return {
            "benchmark": self.unit.benchmark,
            "api": self.unit.api,
            "device": self.unit.device,
            "size": self.unit.size,
            "variant": self.token,
            "status": self.status,
            "note": self.note,
            "digest": self.digest,
        }


def _identity(ur) -> dict:
    """The fields of a canonical result that a variant must reproduce."""
    payload = canonical_payload(result_to_json(ur))
    bench = payload["bench"]
    detail = bench.get("detail") or {}
    return {
        "correct": bench["correct"],
        "failure": bench["failure"],
        "out_digest": detail.get("out_digest"),
    }


def check_unit_variants(
    executor,
    unit: WorkUnit,
    tokens: Optional[Sequence] = None,
    preflight: bool = True,
    plan_options: Optional[Mapping] = None,
) -> list:
    """Run every variant of ``unit`` and compare each to the baseline.

    Variants the ABT guard predicts inadmissible on this device are
    reported as such and not executed (a variant is allowed to exceed a
    device limit — unroll-8 register pressure on Cell/BE, say — it just
    produces no comparable result there); engine-level failures surface
    as ``failed`` rather than aborting the remaining comparisons.
    """
    base_ur = executor.run_unit(unit)
    base_id = _identity(base_ur)
    checks = []
    for token in tokens if tokens is not None else variants_for_unit(unit, plan_options):
        vu = with_variant(unit, token)
        if preflight:
            verdict = preflight_unit(vu)
            if verdict.would_abt:
                checks.append(
                    VariantCheck(vu, token, "inadmissible", note=verdict.code or "")
                )
                continue
        try:
            ur = executor.run_unit(vu)
        except UnitFailed as e:
            checks.append(VariantCheck(vu, token, "failed", note=e.kind.value))
            continue
        vid = _identity(ur)
        if vid == base_id:
            status, note = "preserved", ""
        else:
            status = "different"
            note = json.dumps({"baseline": base_id, "variant": vid}, sort_keys=True)
        checks.append(
            VariantCheck(vu, token, status, note=note, digest=unit_digest(vu))
        )
    return checks


def variant_manifest(checks: Sequence) -> str:
    """Deterministic JSON artifact describing a differential run."""
    rows = sorted(
        (c.as_dict() for c in checks),
        key=lambda r: (r["benchmark"], r["api"], r["device"], r["variant"]),
    )
    doc = {
        "schema": 1,
        "total": len(rows),
        "violations": sum(r["status"] == "different" for r in rows),
        "checks": rows,
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def render_checks(checks: Sequence) -> str:
    """Human-readable one-line-per-variant table."""
    lines = []
    for c in checks:
        lines.append(
            f"  {c.status.upper():12s} {c.unit.benchmark}/{c.unit.api}"
            f"@{c.unit.device} {c.token}"
            + (f"  ({c.note})" if c.note and c.status != "different" else "")
        )
    return "\n".join(lines)
