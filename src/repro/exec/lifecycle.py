"""Sweep lifecycle: exit codes, graceful shutdown, ABT preflight.

Three robustness pieces that wrap the engine rather than living in it:

* **Exit codes** — a sweep process ends in exactly one of three states,
  each with its own code so wrappers (CI, shell loops) can branch on
  ``$?`` alone: ``0`` clean, ``1`` real failures, ``75`` interrupted
  but resumable (75 is BSD ``EX_TEMPFAIL``: "try again later", which is
  literally the contract — rerun with ``--resume``).
* **Graceful shutdown** — :class:`GracefulShutdown` installs
  SIGINT/SIGTERM handlers that *drain* instead of dying: the engine
  stops admitting work, in-flight units get a bounded grace period, the
  journal records ``interrupted``, and the process exits 75.  A second
  signal skips the grace period and stops hard.
* **ABT preflight** — :func:`preflight_unit` predicts, before any
  launch, whether a unit will abort at enqueue for lack of device
  resources (Table VI's "ABT" rows).  It compiles the unit's kernels
  through the same front ends with the same
  :meth:`~repro.arch.specs.DeviceSpec.launch_reg_budget` the runtimes
  use, then asks :func:`repro.sim.device.admission_error` — the same
  pure function the simulator's launch path calls — so a verdict agrees
  with the eventual launch outcome by construction, not by a parallel
  reimplementation of the rules.
"""
from __future__ import annotations

import dataclasses
import signal
from typing import Optional

from ..compiler.clc import compile_opencl
from ..compiler.nvopencc import compile_cuda
from ..errors import ABORT_CODES, FailureKind
from ..sim.device import admission_error
from ..telemetry import log, metrics
from .unit import WorkUnit, unit_build

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FAILED",
    "EXIT_INTERRUPTED",
    "GracefulShutdown",
    "PreflightVerdict",
    "preflight_unit",
    "run_outcome",
    "add_lifecycle_arguments",
    "open_journal",
    "lifecycle_summary",
]

EXIT_CLEAN = 0
EXIT_FAILED = 1
#: BSD EX_TEMPFAIL — interrupted mid-sweep, rerun with ``--resume``
EXIT_INTERRUPTED = 75


def run_outcome(interrupted: bool, failures: int) -> tuple:
    """Map a finished sweep onto its journal state and process exit code."""
    if interrupted:
        return "interrupted", EXIT_INTERRUPTED
    if failures:
        return "failed", EXIT_FAILED
    return "complete", EXIT_CLEAN


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into an engine drain.

    First signal: stop admission (``executor.request_drain(grace)``),
    let in-flight units finish inside the grace period, fall through to
    normal end-of-run reporting with ``interrupted=True``.  Second
    signal: restore the previous handler and raise ``KeyboardInterrupt``
    so the process stops hard (the journal's ``start`` records make even
    that crash resumable).
    """

    def __init__(self, executor=None, grace: float = 30.0):
        self.executor = executor
        self.grace = grace
        self.interrupted = False
        self.signum: Optional[int] = None
        self._prev: dict = {}

    def _handler(self, signum, frame) -> None:
        if self.interrupted:  # second signal: hard stop
            prev = self._prev.get(signum, signal.SIG_DFL)
            try:
                signal.signal(signum, prev)
            except (ValueError, TypeError):
                pass
            raise KeyboardInterrupt(f"second signal ({signum}): hard stop")
        self.interrupted = True
        self.signum = signum
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = str(signum)
        metrics.counter("lifecycle.signals").inc()
        log.warn(
            "lifecycle.drain",
            f"{name} received: draining (grace {self.grace:g}s); "
            "signal again to stop hard",
        )
        if self.executor is not None:
            self.executor.request_drain(self.grace)

    def __enter__(self) -> "GracefulShutdown":
        for s in (signal.SIGINT, signal.SIGTERM):
            try:
                self._prev[s] = signal.signal(s, self._handler)
            except ValueError:  # not the main thread (tests): run unguarded
                pass
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for s, prev in self._prev.items():
            try:
                signal.signal(s, prev)
            except (ValueError, TypeError):
                pass


@dataclasses.dataclass
class PreflightVerdict:
    """What the guard predicts for one unit, before any launch."""

    label: str
    would_abt: bool
    #: the driver code admission control would reject with, when any
    code: Optional[str] = None
    #: first kernel that trips the limit
    kernel: Optional[str] = None
    threads: int = 0
    registers: int = 0
    shared_bytes: int = 0
    #: diagnostics: "cuda-unsupported", "inconclusive: ...", or ""
    note: str = ""

    @property
    def kind(self) -> str:
        """Table VI taxonomy row this verdict maps onto."""
        return FailureKind.ABT.value if self.would_abt else ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def preflight_unit(unit: WorkUnit, spec=None) -> PreflightVerdict:
    """Predict whether ``unit`` would abort at enqueue (Table VI "ABT").

    Compiles each of the unit's kernels exactly as the host API would —
    same front end, same per-thread register budget from
    ``spec.launch_reg_budget(wg_hint)`` — and feeds the compiled
    resource usage to the simulator's own ``admission_error``.  The
    verdict is advisory: the engine still executes the unit, so cached
    results, Table VI, and rendered reports are byte-identical with the
    guard on or off.
    """
    spec = spec if spec is not None else unit.spec
    label = unit.label()
    if unit.api == "cuda" and not spec.supports_cuda():
        # the unit fails at context creation, not at enqueue: not ABT
        return PreflightVerdict(label, False, note="cuda-unsupported")
    try:
        bench, dialect, params, opts, defines = unit_build(unit, spec)
        compile_fn = compile_cuda if unit.api == "cuda" else compile_opencl
        for k in bench.build_kernels(dialect, opts, defines, params):
            ptx = compile_fn(k, max_regs=spec.launch_reg_budget(k.wg_hint))
            # block shape: admission only depends on the thread product,
            # and every host launches with product == wg_hint
            code = admission_error(spec, ptx.resources, (k.wg_hint, 1, 1))
            if code is not None:
                metrics.counter("exec.preflight.abt").inc()
                return PreflightVerdict(
                    label,
                    would_abt=code in ABORT_CODES,
                    code=code,
                    kernel=k.name,
                    threads=k.wg_hint,
                    registers=ptx.resources.registers,
                    shared_bytes=ptx.resources.shared_bytes,
                )
        return PreflightVerdict(label, False)
    except Exception as e:  # kernel construction can legitimately fail
        return PreflightVerdict(
            label, False, note=f"inconclusive: {type(e).__name__}: {e}"
        )


def add_lifecycle_arguments(parser) -> None:
    """Attach the crash-safety flags shared by every sweep CLI."""
    g = parser.add_argument_group("lifecycle")
    g.add_argument(
        "--resume",
        nargs="?",
        const="auto",
        default=None,
        metavar="RUN_ID",
        help="resume an interrupted run from its journal: a run id, or "
        "bare --resume for the latest resumable journal in the cache dir",
    )
    g.add_argument(
        "--no-preflight",
        action="store_true",
        help="skip the ABT preflight guard (units predicted to abort at "
        "enqueue are normally reported before any launch)",
    )
    g.add_argument(
        "--grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="drain budget after SIGINT/SIGTERM: in-flight units get this "
        "long to finish before the run stops (default 30)",
    )


def open_journal(args, cache_dir, run_id: str, command: str, argv=None):
    """Resolve ``--resume`` and open this run's journal.

    Returns ``(journal, replay)``; both None when the cache is disabled
    (no durable results means nothing worth journaling — and
    ``--resume`` without a cache is rejected outright, since the very
    results a resume would reuse were never kept).
    """
    from . import journal as journal_mod

    token = getattr(args, "resume", None)
    if cache_dir is None:
        if token:
            raise SystemExit(
                "--resume needs the result cache (drop --no-cache): "
                "completed units are served from it, not re-simulated"
            )
        return None, None
    replay = None
    if token:
        replay = journal_mod.open_resume(cache_dir, token)
    j = journal_mod.RunJournal.create(
        cache_dir, run_id, command=command, argv=argv,
        resumed_from=replay.run_id if replay is not None else None,
    )
    return j, replay


def lifecycle_summary(
    state: str, exit_code: int, journal=None, replay=None, executor=None
) -> dict:
    """The manifest's ``lifecycle`` block for one finished run."""
    out = {
        "state": state,
        "exit_code": exit_code,
        "journal": str(journal.path) if journal is not None else None,
        "resumed_from": replay.run_id if replay is not None else None,
    }
    if executor is not None:
        out["demoted"] = executor.stats.demoted
        out["preflight_checked"] = executor.stats.preflight_checked
        out["preflight_abt"] = len(executor.stats.preflight)
        out["resumed_hits"] = executor.stats.resumed_hits
    return out
