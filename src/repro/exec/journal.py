"""The per-run sweep journal: a write-ahead log for crash-safe sweeps.

A :class:`RunJournal` is an append-only JSONL file under the sweep
workdir (``<cache>/journal/<run-id>.jsonl``) recording the lifecycle of
every work unit the engine admits: ``start`` before execution, ``done``
after the result is stored (the result itself is written atomically by
:class:`~repro.exec.cache.ResultCache`), ``fail`` on terminal failure,
plus run-level records (``run`` header, ``demote`` for degraded-mode
transitions, a final ``state`` of ``complete`` / ``interrupted`` /
``failed``).  Every append is flushed and fsynced, so the journal is
the durable source of truth about what a killed process was doing.

While a sweep runs, the journal is also its *liveness* channel: a
daemon thread started by :meth:`RunJournal.start_heartbeat` appends a
``hb`` record every few seconds (progress counters, pid, interval), so
an out-of-process reader (:mod:`repro.obs`) can tell a live run from a
crashed one and flag in-flight units that have outlived the beat.  The
same thread drives the periodic metrics-snapshot flush the OpenMetrics
exporter reads.

Replay (:func:`load` -> :class:`JournalReplay`) classifies every digest
the journal mentions:

* **completed** — a ``done`` record exists; the atomic cache entry for
  the digest is trusted and the unit is *not* re-simulated on resume;
* **failed** — terminally failed (its kind is preserved for reporting);
* **in-flight** — ``start`` with no ``done``/``fail``: the process died
  (or was interrupted) while the unit executed, so resume re-enqueues
  it.

A torn final line — the record being appended when the process died —
is tolerated and ignored; everything before it is intact by the
append-only discipline.
"""
from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

from ..telemetry import log, metrics
from ..telemetry.metrics import FSYNC_BUCKETS_S

__all__ = [
    "RunJournal",
    "JournalReplay",
    "journal_dir",
    "load",
    "resolve",
    "latest_resumable",
    "JOURNAL_SCHEMA",
    "DEFAULT_HEARTBEAT_S",
    "heartbeat_interval",
]

#: v2 added per-record ``unix`` timestamps and periodic ``hb``
#: heartbeat records; replay ignores both, so v1 journals still resume
JOURNAL_SCHEMA = 2

#: terminal run states a ``state`` record may carry
RUN_STATES = ("complete", "interrupted", "failed")

#: default seconds between heartbeat records ($REPRO_HEARTBEAT_S
#: overrides; invalid or non-positive values fall back here with a
#: warning — liveness monitoring and lease TTLs both derive from this
#: interval, so "disabled" is not a state the env var can express)
DEFAULT_HEARTBEAT_S = 5.0

#: raw $REPRO_HEARTBEAT_S values already warned about (once per value,
#: not once per call — the interval is consulted on every run start)
_HB_WARNED: set = set()


def heartbeat_interval() -> float:
    """The configured heartbeat period, from ``$REPRO_HEARTBEAT_S``.

    Hardened: a value that does not parse as a float, or is not
    strictly positive (NaN included), warns once and falls back to
    :data:`DEFAULT_HEARTBEAT_S` instead of silently disabling the
    liveness signal every staleness rule in :mod:`repro.obs` and
    :mod:`repro.serve` is built on.
    """
    raw = os.environ.get("REPRO_HEARTBEAT_S", "")
    if not raw:
        return DEFAULT_HEARTBEAT_S
    try:
        value = float(raw)
    except ValueError:
        value = float("nan")
    if value > 0:
        return value
    if raw not in _HB_WARNED:
        _HB_WARNED.add(raw)
        log.warn(
            "journal.heartbeat_env",
            f"ignoring REPRO_HEARTBEAT_S={raw!r} (need a positive "
            f"number); using the default {DEFAULT_HEARTBEAT_S:g}s",
        )
    return DEFAULT_HEARTBEAT_S


def journal_dir(cache_dir) -> Path:
    """Where a sweep workdir keeps its run journals."""
    return Path(cache_dir) / "journal"


@dataclasses.dataclass
class JournalReplay:
    """What a journal says happened, classified for resume."""

    run_id: str
    path: Optional[Path]
    #: final run state: one of RUN_STATES, or "running" when the journal
    #: ends without a state record (the process was killed outright)
    state: str = "running"
    command: str = ""
    #: digests with a ``done`` record (served results are durable)
    completed: set = dataclasses.field(default_factory=set)
    #: digest -> kind for terminally failed units
    failed: dict = dataclasses.field(default_factory=dict)
    #: digests with a ``start`` but neither ``done`` nor ``fail``
    in_flight: set = dataclasses.field(default_factory=set)
    #: digest -> label, for human-readable resume reporting
    labels: dict = dataclasses.field(default_factory=dict)
    #: run id this journal itself resumed from, when chained
    resumed_from: Optional[str] = None
    #: torn/unparseable lines skipped during replay
    torn_lines: int = 0
    demoted: bool = False

    @property
    def resumable(self) -> bool:
        """True unless the run already completed cleanly."""
        return self.state != "complete"

    def summary(self) -> dict:
        return {
            "from": self.run_id,
            "state": self.state,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "in_flight": len(self.in_flight),
            "torn_lines": self.torn_lines,
        }


class RunJournal:
    """Append-only, fsynced JSONL journal for one sweep run."""

    def __init__(self, path, run_id: str, fsync: bool = True):
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._f = open(self.path, "a")
        self.closed = False
        self._hb_stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_flush = None

    # -- construction -----------------------------------------------------
    @classmethod
    def create(
        cls,
        root,
        run_id: str,
        command: str = "",
        argv=None,
        resumed_from: Optional[str] = None,
        fsync: bool = True,
    ) -> "RunJournal":
        """Open a fresh journal under ``root`` and write its run header."""
        j = cls(journal_dir(root) / f"{run_id}.jsonl", run_id, fsync=fsync)
        j.append(
            {
                "t": "run",
                "schema": JOURNAL_SCHEMA,
                "run_id": run_id,
                "command": command,
                "argv": [str(a) for a in (argv or ())],
                "resumed_from": resumed_from,
                "pid": os.getpid(),
                "unix": time.time(),
            }
        )
        return j

    # -- appending --------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        if self.closed:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        t0 = time.perf_counter()
        with self._lock:
            self._f.write(line + "\n")
            self._f.flush()
            if self.fsync:
                try:
                    os.fsync(self._f.fileno())
                except OSError:
                    pass
        metrics.counter("journal.appends").inc()
        metrics.histogram("journal.append_s", FSYNC_BUCKETS_S).observe(
            time.perf_counter() - t0
        )

    def record_plan(self, units: int, todo: int) -> None:
        self.append({"t": "plan", "units": units, "todo": todo, "unix": time.time()})

    def record_start(self, digest: str, label: str, attempt: int = 1) -> None:
        self.append(
            {"t": "start", "d": digest, "label": label, "attempt": attempt,
             "unix": time.time()}
        )

    def record_done(self, digest: str, source: str = "run") -> None:
        self.append({"t": "done", "d": digest, "source": source, "unix": time.time()})

    def record_fail(self, digest: str, kind: str, injected: bool = False) -> None:
        self.append(
            {"t": "fail", "d": digest, "kind": kind, "injected": injected,
             "unix": time.time()}
        )

    def record_demote(self, incidents: int, reason: str) -> None:
        self.append({"t": "demote", "incidents": incidents, "reason": reason})

    def record_heartbeat(self, interval: float, **progress) -> None:
        """One liveness beat: pid + interval + whatever progress counters."""
        self.append(
            {"t": "hb", "unix": time.time(), "pid": os.getpid(),
             "interval": float(interval), **progress}
        )
        metrics.counter("journal.heartbeats").inc()

    # -- heartbeat thread --------------------------------------------------
    def start_heartbeat(
        self, interval: float, stats_fn=None, flush_fn=None
    ) -> bool:
        """Beat every ``interval`` seconds until :meth:`close` (daemon).

        ``stats_fn`` (when given) supplies the progress counters each
        beat carries; ``flush_fn`` runs after every beat — the engine
        uses it to flush its metrics snapshot so an out-of-process
        scraper always sees data at most one beat old.  Idempotent:
        only the first call starts a thread.
        """
        if interval <= 0 or self._hb_thread is not None or self.closed:
            return False
        self._hb_flush = flush_fn
        stop = self._hb_stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(interval):
                try:
                    self.record_heartbeat(
                        interval, **(stats_fn() if stats_fn is not None else {})
                    )
                    if flush_fn is not None:
                        flush_fn()
                except Exception:
                    # liveness must never kill the run it reports on
                    if self.closed:
                        return

        self._hb_thread = threading.Thread(
            target=_beat, name="repro-heartbeat", daemon=True
        )
        self._hb_thread.start()
        return True

    def close(self, state: str = "complete") -> None:
        """Write the terminal ``state`` record and close the file."""
        if self.closed:
            return
        if self._hb_stop is not None:
            self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
            self._hb_thread = None
        if state not in RUN_STATES:
            raise ValueError(f"unknown run state {state!r}; one of {RUN_STATES}")
        if self._hb_flush is not None:
            try:
                self._hb_flush()  # final snapshot covers the whole run
            except Exception:
                pass
        self.append({"t": "state", "state": state, "unix": time.time()})
        with self._lock:
            self.closed = True
            self._f.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            self.close(
                "complete" if exc_type is None else "failed"
            )


# -- replay ---------------------------------------------------------------
def load(path) -> JournalReplay:
    """Replay one journal file into a :class:`JournalReplay`.

    Unparseable lines (the torn tail of a killed writer) are skipped and
    counted, never fatal.
    """
    path = Path(path)
    rep = JournalReplay(run_id=path.stem, path=path)
    started: set = set()
    try:
        raw = path.read_text()
    except OSError as e:
        raise FileNotFoundError(f"no journal at {path}: {e}") from e
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            rep.torn_lines += 1
            continue
        t = rec.get("t")
        if t == "run":
            rep.run_id = rec.get("run_id", rep.run_id)
            rep.command = rec.get("command", "")
            rep.resumed_from = rec.get("resumed_from")
        elif t == "start":
            started.add(rec["d"])
            if rec.get("label"):
                rep.labels[rec["d"]] = rec["label"]
        elif t == "done":
            rep.completed.add(rec["d"])
            rep.failed.pop(rec["d"], None)
        elif t == "fail":
            rep.failed[rec["d"]] = rec.get("kind", "ERROR")
        elif t == "demote":
            rep.demoted = True
        elif t == "state":
            rep.state = rec.get("state", rep.state)
    rep.in_flight = started - rep.completed - set(rep.failed)
    return rep


def resolve(root, run_id: str) -> Path:
    """The journal path for ``run_id`` under a sweep workdir."""
    return journal_dir(root) / f"{run_id}.jsonl"


def latest_resumable(root) -> Optional[JournalReplay]:
    """The most recent journal under ``root`` that did not complete.

    This is the ``--resume auto`` path: pick the newest interrupted (or
    killed-outright) run and carry on from its durable record.
    """
    d = journal_dir(root)
    if not d.is_dir():
        return None
    candidates = sorted(
        d.glob("*.jsonl"), key=lambda p: p.stat().st_mtime, reverse=True
    )
    for p in candidates:
        try:
            rep = load(p)
        except (OSError, ValueError):
            continue
        if rep.resumable:
            return rep
    return None


def open_resume(root, token: str) -> JournalReplay:
    """Resolve a ``--resume`` token: a run id, or ``auto``/``latest``.

    Raises ``SystemExit`` with a diagnostic when nothing resumable is
    found — the CLIs surface this directly.
    """
    if token in ("auto", "latest"):
        rep = latest_resumable(root)
        if rep is None:
            raise SystemExit(
                f"--resume {token}: no resumable journal under {journal_dir(root)}"
            )
    else:
        path = resolve(root, token)
        if not path.exists():
            raise SystemExit(f"--resume {token}: no journal at {path}")
        rep = load(path)
        if not rep.resumable:
            log.warn(
                "journal.resume",
                f"run {token} completed cleanly; resuming serves it "
                "entirely from cache",
            )
    log.info(
        "journal.resume",
        f"resuming {rep.run_id} ({rep.state}): "
        f"{len(rep.completed)} completed, {len(rep.in_flight)} in flight, "
        f"{len(rep.failed)} failed",
    )
    return rep
