"""The per-run sweep journal: a write-ahead log for crash-safe sweeps.

A :class:`RunJournal` is an append-only JSONL file under the sweep
workdir (``<cache>/journal/<run-id>.jsonl``) recording the lifecycle of
every work unit the engine admits: ``start`` before execution, ``done``
after the result is stored (the result itself is written atomically by
:class:`~repro.exec.cache.ResultCache`), ``fail`` on terminal failure,
plus run-level records (``run`` header, ``demote`` for degraded-mode
transitions, a final ``state`` of ``complete`` / ``interrupted`` /
``failed``).  Every append is flushed and fsynced, so the journal is
the durable source of truth about what a killed process was doing.

Replay (:func:`load` -> :class:`JournalReplay`) classifies every digest
the journal mentions:

* **completed** — a ``done`` record exists; the atomic cache entry for
  the digest is trusted and the unit is *not* re-simulated on resume;
* **failed** — terminally failed (its kind is preserved for reporting);
* **in-flight** — ``start`` with no ``done``/``fail``: the process died
  (or was interrupted) while the unit executed, so resume re-enqueues
  it.

A torn final line — the record being appended when the process died —
is tolerated and ignored; everything before it is intact by the
append-only discipline.
"""
from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

from ..telemetry import log, metrics
from ..telemetry.metrics import FSYNC_BUCKETS_S

__all__ = [
    "RunJournal",
    "JournalReplay",
    "journal_dir",
    "load",
    "resolve",
    "latest_resumable",
    "JOURNAL_SCHEMA",
]

JOURNAL_SCHEMA = 1

#: terminal run states a ``state`` record may carry
RUN_STATES = ("complete", "interrupted", "failed")


def journal_dir(cache_dir) -> Path:
    """Where a sweep workdir keeps its run journals."""
    return Path(cache_dir) / "journal"


@dataclasses.dataclass
class JournalReplay:
    """What a journal says happened, classified for resume."""

    run_id: str
    path: Optional[Path]
    #: final run state: one of RUN_STATES, or "running" when the journal
    #: ends without a state record (the process was killed outright)
    state: str = "running"
    command: str = ""
    #: digests with a ``done`` record (served results are durable)
    completed: set = dataclasses.field(default_factory=set)
    #: digest -> kind for terminally failed units
    failed: dict = dataclasses.field(default_factory=dict)
    #: digests with a ``start`` but neither ``done`` nor ``fail``
    in_flight: set = dataclasses.field(default_factory=set)
    #: digest -> label, for human-readable resume reporting
    labels: dict = dataclasses.field(default_factory=dict)
    #: run id this journal itself resumed from, when chained
    resumed_from: Optional[str] = None
    #: torn/unparseable lines skipped during replay
    torn_lines: int = 0
    demoted: bool = False

    @property
    def resumable(self) -> bool:
        """True unless the run already completed cleanly."""
        return self.state != "complete"

    def summary(self) -> dict:
        return {
            "from": self.run_id,
            "state": self.state,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "in_flight": len(self.in_flight),
            "torn_lines": self.torn_lines,
        }


class RunJournal:
    """Append-only, fsynced JSONL journal for one sweep run."""

    def __init__(self, path, run_id: str, fsync: bool = True):
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._f = open(self.path, "a")
        self.closed = False

    # -- construction -----------------------------------------------------
    @classmethod
    def create(
        cls,
        root,
        run_id: str,
        command: str = "",
        argv=None,
        resumed_from: Optional[str] = None,
        fsync: bool = True,
    ) -> "RunJournal":
        """Open a fresh journal under ``root`` and write its run header."""
        j = cls(journal_dir(root) / f"{run_id}.jsonl", run_id, fsync=fsync)
        j.append(
            {
                "t": "run",
                "schema": JOURNAL_SCHEMA,
                "run_id": run_id,
                "command": command,
                "argv": [str(a) for a in (argv or ())],
                "resumed_from": resumed_from,
                "pid": os.getpid(),
                "unix": time.time(),
            }
        )
        return j

    # -- appending --------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        if self.closed:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        t0 = time.perf_counter()
        with self._lock:
            self._f.write(line + "\n")
            self._f.flush()
            if self.fsync:
                try:
                    os.fsync(self._f.fileno())
                except OSError:
                    pass
        metrics.counter("journal.appends").inc()
        metrics.histogram("journal.append_s", FSYNC_BUCKETS_S).observe(
            time.perf_counter() - t0
        )

    def record_plan(self, units: int, todo: int) -> None:
        self.append({"t": "plan", "units": units, "todo": todo})

    def record_start(self, digest: str, label: str, attempt: int = 1) -> None:
        self.append({"t": "start", "d": digest, "label": label, "attempt": attempt})

    def record_done(self, digest: str, source: str = "run") -> None:
        self.append({"t": "done", "d": digest, "source": source})

    def record_fail(self, digest: str, kind: str, injected: bool = False) -> None:
        self.append({"t": "fail", "d": digest, "kind": kind, "injected": injected})

    def record_demote(self, incidents: int, reason: str) -> None:
        self.append({"t": "demote", "incidents": incidents, "reason": reason})

    def close(self, state: str = "complete") -> None:
        """Write the terminal ``state`` record and close the file."""
        if self.closed:
            return
        if state not in RUN_STATES:
            raise ValueError(f"unknown run state {state!r}; one of {RUN_STATES}")
        self.append({"t": "state", "state": state, "unix": time.time()})
        with self._lock:
            self.closed = True
            self._f.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            self.close(
                "complete" if exc_type is None else "failed"
            )


# -- replay ---------------------------------------------------------------
def load(path) -> JournalReplay:
    """Replay one journal file into a :class:`JournalReplay`.

    Unparseable lines (the torn tail of a killed writer) are skipped and
    counted, never fatal.
    """
    path = Path(path)
    rep = JournalReplay(run_id=path.stem, path=path)
    started: set = set()
    try:
        raw = path.read_text()
    except OSError as e:
        raise FileNotFoundError(f"no journal at {path}: {e}") from e
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            rep.torn_lines += 1
            continue
        t = rec.get("t")
        if t == "run":
            rep.run_id = rec.get("run_id", rep.run_id)
            rep.command = rec.get("command", "")
            rep.resumed_from = rec.get("resumed_from")
        elif t == "start":
            started.add(rec["d"])
            if rec.get("label"):
                rep.labels[rec["d"]] = rec["label"]
        elif t == "done":
            rep.completed.add(rec["d"])
            rep.failed.pop(rec["d"], None)
        elif t == "fail":
            rep.failed[rec["d"]] = rec.get("kind", "ERROR")
        elif t == "demote":
            rep.demoted = True
        elif t == "state":
            rep.state = rec.get("state", rep.state)
    rep.in_flight = started - rep.completed - set(rep.failed)
    return rep


def resolve(root, run_id: str) -> Path:
    """The journal path for ``run_id`` under a sweep workdir."""
    return journal_dir(root) / f"{run_id}.jsonl"


def latest_resumable(root) -> Optional[JournalReplay]:
    """The most recent journal under ``root`` that did not complete.

    This is the ``--resume auto`` path: pick the newest interrupted (or
    killed-outright) run and carry on from its durable record.
    """
    d = journal_dir(root)
    if not d.is_dir():
        return None
    candidates = sorted(
        d.glob("*.jsonl"), key=lambda p: p.stat().st_mtime, reverse=True
    )
    for p in candidates:
        try:
            rep = load(p)
        except (OSError, ValueError):
            continue
        if rep.resumable:
            return rep
    return None


def open_resume(root, token: str) -> JournalReplay:
    """Resolve a ``--resume`` token: a run id, or ``auto``/``latest``.

    Raises ``SystemExit`` with a diagnostic when nothing resumable is
    found — the CLIs surface this directly.
    """
    if token in ("auto", "latest"):
        rep = latest_resumable(root)
        if rep is None:
            raise SystemExit(
                f"--resume {token}: no resumable journal under {journal_dir(root)}"
            )
    else:
        path = resolve(root, token)
        if not path.exists():
            raise SystemExit(f"--resume {token}: no journal at {path}")
        rep = load(path)
        if not rep.resumable:
            log.warn(
                "journal.resume",
                f"run {token} completed cleanly; resuming serves it "
                "entirely from cache",
            )
    log.info(
        "journal.resume",
        f"resuming {rep.run_id} ({rep.state}): "
        f"{len(rep.completed)} completed, {len(rep.in_flight)} in flight, "
        f"{len(rep.failed)} failed",
    )
    return rep
