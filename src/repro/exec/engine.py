"""The sweep execution engine: parallel fan-out + memoization.

A :class:`SweepExecutor` serves work units through three layers:

1. an in-process memo table (digest -> payload),
2. an optional on-disk :class:`~repro.exec.cache.ResultCache`,
3. actual simulation — sequentially, or fanned out over a
   ``concurrent.futures.ProcessPoolExecutor`` when ``jobs > 1``.

All results — hits and misses alike — are round-tripped through the
JSON serialization layer, so the rendered reports are byte-identical
whatever mix of cache hits, sequential runs, and parallel workers
produced them.  If the process pool cannot be created or dies (no
semaphores in a sandbox, fork bans, ...), the engine degrades to the
sequential path and still completes the sweep.
"""
from __future__ import annotations

import concurrent.futures
import dataclasses
import sys
import time
from typing import Iterable, Optional, Sequence

from .cache import ResultCache, result_from_json, result_to_json
from .unit import UnitResult, WorkUnit, execute, unit_digest

__all__ = ["SweepExecutor", "SweepStats", "UnitRecord"]


@dataclasses.dataclass
class UnitRecord:
    """Per-unit accounting line: what ran, how it was served, how long."""

    label: str
    digest: str
    seconds: float  # wall seconds spent serving this request
    sim_seconds: float  # simulation seconds stored with the result
    cached: bool
    source: str  # "mem" | "disk" | "run"


class SweepStats:
    """Hit/miss counters + per-unit timings for one executor's lifetime."""

    def __init__(self) -> None:
        self.records: list[UnitRecord] = []

    def record(
        self, unit: WorkUnit, digest: str, seconds: float,
        sim_seconds: float, source: str,
    ) -> None:
        self.records.append(
            UnitRecord(
                label=unit.label(), digest=digest, seconds=seconds,
                sim_seconds=sim_seconds, cached=source != "run",
                source=source,
            )
        )

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def sim_seconds(self) -> float:
        return sum(r.sim_seconds for r in self.records if not r.cached)

    def summary(self) -> dict:
        """JSON-friendly roll-up (the CI build artifact)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "sim_seconds": self.sim_seconds,
            "units": [dataclasses.asdict(r) for r in self.records],
        }


def _execute_payload(unit: WorkUnit) -> dict:
    """Process-pool worker: simulate one unit, return its JSON payload."""
    return result_to_json(execute(unit))


class SweepExecutor:
    """Memoizing, optionally parallel executor for sweep work units."""

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        memoize: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.memoize = memoize
        self.stats = SweepStats()
        self._mem: dict = {}  # digest -> payload
        self._digests: dict = {}  # WorkUnit -> digest

    # -- lookup layers ----------------------------------------------------
    def digest_of(self, unit: WorkUnit) -> str:
        d = self._digests.get(unit)
        if d is None:
            d = self._digests[unit] = unit_digest(unit)
        return d

    def _lookup(self, digest: str):
        """Returns ``(payload, source)``; payload None on a full miss."""
        payload = self._mem.get(digest)
        if payload is not None:
            return payload, "mem"
        if self.cache is not None:
            payload = self.cache.get(digest)
            if payload is not None:
                if self.memoize:
                    self._mem[digest] = payload
                return payload, "disk"
        return None, "run"

    def _store(self, digest: str, payload: dict) -> None:
        if self.memoize:
            self._mem[digest] = payload
        if self.cache is not None:
            self.cache.put(digest, payload)

    # -- serving ----------------------------------------------------------
    def run_unit(self, unit: WorkUnit) -> UnitResult:
        """Serve one unit: memo table, then disk cache, then simulate."""
        t0 = time.perf_counter()
        digest = self.digest_of(unit)
        payload, source = self._lookup(digest)
        if payload is None:
            payload = _execute_payload(unit)
            self._store(digest, payload)
        self.stats.record(
            unit, digest, time.perf_counter() - t0, payload["seconds"], source
        )
        return result_from_json(payload, cached=source != "run")

    def run_units(self, units: Iterable[WorkUnit]) -> list[UnitResult]:
        """Serve many units (prewarming misses in parallel first)."""
        units = list(units)
        self.prewarm(units)
        return [self.run_unit(u) for u in units]

    def prewarm(self, units: Sequence[WorkUnit], jobs: Optional[int] = None):
        """Simulate every not-yet-cached unit, fanning out when asked.

        Duplicates are deduplicated by digest; already-cached units cost
        nothing.  Returns the number of units actually simulated.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        todo: dict = {}
        for u in units:
            d = self.digest_of(u)
            if d in todo:
                continue
            payload, _ = self._lookup(d)
            if payload is None:
                todo[d] = u
        if not todo:
            return 0
        if jobs > 1 and len(todo) > 1:
            self._prewarm_parallel(todo, jobs)
        # anything the pool could not produce runs sequentially
        for d, u in todo.items():
            if self._lookup(d)[0] is None:
                t0 = time.perf_counter()
                payload = _execute_payload(u)
                self._store(d, payload)
                self.stats.record(
                    u, d, time.perf_counter() - t0, payload["seconds"], "run"
                )
        return len(todo)

    def _prewarm_parallel(self, todo: dict, jobs: int) -> None:
        workers = min(jobs, len(todo), 32)
        try:
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = {
                    pool.submit(_execute_payload, u): (d, u)
                    for d, u in todo.items()
                }
                for fut in concurrent.futures.as_completed(futures):
                    d, u = futures[fut]
                    payload = fut.result()
                    self._store(d, payload)
                    self.stats.record(
                        u, d, payload["seconds"], payload["seconds"], "run"
                    )
        except (OSError, concurrent.futures.BrokenExecutor, RuntimeError) as e:
            print(
                f"repro.exec: process pool unavailable ({e!r}); "
                "falling back to sequential execution",
                file=sys.stderr,
            )
