"""The sweep execution engine: parallel fan-out + memoization + fault tolerance.

A :class:`SweepExecutor` serves work units through three layers:

1. an in-process memo table (digest -> payload),
2. an optional on-disk :class:`~repro.exec.cache.ResultCache`,
3. actual simulation — sequentially, or fanned out over a
   ``concurrent.futures.ProcessPoolExecutor`` when ``jobs > 1``.

All results — hits and misses alike — are round-tripped through the
JSON serialization layer, so the rendered reports are byte-identical
whatever mix of cache hits, sequential runs, and parallel workers
produced them.  If the process pool cannot be created or dies (no
semaphores in a sandbox, fork bans, ...), the engine degrades to the
sequential path and still completes the sweep.

Partial failure degrades gracefully instead of killing the sweep:

* pool workers report exceptions as structured payloads, so one bad
  unit never aborts the round (and per-future errors are collected,
  not propagated);
* a worker that *dies* (signal, ``os._exit``) breaks its pool — the
  engine re-probes each suspect unit in a disposable single-worker
  pool to separate the poison from the collateral;
* :class:`~repro.errors.TransientError` failures are retried with
  bounded exponential backoff (``retries``/``backoff``);
* ``timeout`` seconds of wall clock cut a hung unit off (SIGALRM at
  the executing process, pool worker or main);
* every terminal failure is recorded as a :class:`FailedUnit` in
  :class:`SweepStats` and the unit's digest is quarantined: later
  requests raise :class:`~repro.errors.UnitFailed` instead of
  re-executing the poison (in particular, the sequential fallback
  never re-runs a unit that just killed a worker).

Crash-safety (see :mod:`repro.exec.lifecycle` / :mod:`repro.exec.journal`):

* an optional :class:`~repro.exec.journal.RunJournal` receives a
  fsynced ``start``/``done``/``fail`` record around every execution, so
  a killed process leaves a replayable record of exactly which units
  were in flight;
* :meth:`SweepExecutor.request_drain` (wired to SIGINT/SIGTERM by
  :class:`~repro.exec.lifecycle.GracefulShutdown`) stops admission:
  in-flight units get a bounded grace period, everything else is left
  for a ``--resume`` rerun;
* an ABT *preflight guard* classifies cold units that would abort at
  enqueue (Table VI "ABT") before any launch, via the same admission
  function the simulator applies;
* repeated broken-pool incidents demote the run to sequential
  execution (*degraded mode*) instead of churning through doomed pools.
"""
from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import os
import signal
import threading
import time
import traceback
from typing import Iterable, Optional, Sequence

from .. import faults as faults_mod
from ..errors import (
    FailureKind,
    SweepInterrupted,
    UnitFailed,
    UnitTimeout,
    classify,
    is_injected,
)
from ..telemetry import log, metrics
from ..telemetry import spans as tspans
from ..telemetry.progress import ProgressLine
from . import journal as journal_mod
from .cache import ResultCache, result_from_json, result_to_json
from .unit import UnitResult, WorkUnit, execute, unit_digest

__all__ = ["SweepExecutor", "SweepStats", "UnitRecord", "FailedUnit", "retry_delay"]

_POOL_ERRORS = (OSError, concurrent.futures.BrokenExecutor, RuntimeError)


def retry_delay(backoff: float, attempt: int, digest: str = "") -> float:
    """Exponential backoff with deterministic, digest-seeded jitter.

    Concurrent tenants retrying the same transient at the same moment
    would otherwise thundering-herd the pool: every unit of a round
    sleeps ``backoff * 2**(attempt-1)`` and they all wake together.
    The jitter spreads wakeups over ``[0.5, 1.5)`` of the exponential
    term, seeded from ``(digest, attempt)`` via SHA-256 — a pure
    function, so the same unit always sleeps the same amount and chaos
    tests stay exactly reproducible (no RNG state anywhere).
    """
    import hashlib

    base = max(0.0, float(backoff)) * (2 ** max(0, attempt - 1))
    if not digest:
        return base
    blob = f"retry:{digest}:{attempt}".encode()
    frac = int(hashlib.sha256(blob).hexdigest()[:8], 16) / float(1 << 32)
    return base * (0.5 + frac)


def _pool_worker_init() -> None:
    """Initializer for every pool worker process.

    Marks the process as a pool worker (fault-injection attribution)
    and ignores SIGINT: a terminal Ctrl-C reaches the whole foreground
    process group, and the drain protocol wants workers to *finish*
    their in-flight unit while the parent stops admission.
    """
    faults_mod.mark_pool_worker()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass


@dataclasses.dataclass
class UnitRecord:
    """Per-unit accounting line: what ran, how it was served, how long."""

    label: str
    digest: str
    seconds: float  # wall seconds spent serving this request
    sim_seconds: float  # simulation seconds stored with the result
    cached: bool
    source: str  # "mem" | "disk" | "run"


@dataclasses.dataclass
class FailedUnit:
    """One work unit that terminally failed (the sweep went on without it)."""

    label: str
    digest: str
    kind: str  # FailureKind.value
    error: str  # message of the final exception
    traceback: str
    attempts: int
    injected: bool = False  # planted by repro.faults (expected in chaos runs)


class SweepStats:
    """Hit/miss counters + per-unit timings for one executor's lifetime."""

    def __init__(self) -> None:
        self.records: list[UnitRecord] = []
        self.failures: list[FailedUnit] = []
        #: corrupt cache entries moved aside while serving this sweep
        self.quarantined = 0
        #: preflight verdicts for units predicted to abort at enqueue
        #: (Table VI "ABT"), as dicts; empty when the guard is off
        self.preflight: list = []
        #: units the preflight guard examined
        self.preflight_checked = 0
        #: set when degraded mode kicked in: {"incidents": n, "reason": s}
        self.demoted: Optional[dict] = None
        #: set when this run resumed a journal: the replay's summary()
        self.resumed: Optional[dict] = None
        #: completed units served from cache thanks to the resumed journal
        self.resumed_hits = 0

    def record(
        self, unit: WorkUnit, digest: str, seconds: float,
        sim_seconds: float, source: str,
    ) -> None:
        metrics.counter(f"exec.serve.{source}").inc()
        self.records.append(
            UnitRecord(
                label=unit.label(), digest=digest, seconds=seconds,
                sim_seconds=sim_seconds, cached=source != "run",
                source=source,
            )
        )

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def mem_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "mem")

    @property
    def disk_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "disk")

    @property
    def sim_seconds(self) -> float:
        return sum(r.sim_seconds for r in self.records if not r.cached)

    @property
    def cache_serve_seconds(self) -> float:
        """Wall seconds spent serving requests from the memo/disk cache."""
        return sum(r.seconds for r in self.records if r.cached)

    def unexpected_failures(self) -> list[FailedUnit]:
        """Failures not planted by the fault-injection harness."""
        return [f for f in self.failures if not f.injected]

    def summary(self) -> dict:
        """JSON-friendly roll-up (the CI build artifact)."""
        return {
            "hits": self.hits,
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "sim_seconds": self.sim_seconds,
            "cache_serve_seconds": self.cache_serve_seconds,
            "preflight_checked": self.preflight_checked,
            "preflight_abt": self.preflight,
            "demoted": self.demoted,
            "resumed": self.resumed,
            "resumed_hits": self.resumed_hits,
            "units": [dataclasses.asdict(r) for r in self.records],
            "failures": [dataclasses.asdict(f) for f in self.failures],
        }


@contextlib.contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`UnitTimeout` if the body runs longer than ``seconds``.

    SIGALRM-based, so it cuts off even a unit stuck in a pure-Python
    loop; silently unenforced off the main thread or on platforms
    without ``setitimer`` (the parallel path still enforces it, since
    pool workers execute on their own main threads).
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise UnitTimeout(f"unit exceeded --timeout={seconds:g}s", seconds=seconds)

    prev = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev)


def _execute_payload(unit: WorkUnit, attempt: int = 1, faults=None) -> dict:
    """Simulate one unit and return its JSON payload."""
    return result_to_json(execute(unit, attempt=attempt, faults=faults))


def _virtual_launch_spans(payload: dict, anchor) -> None:
    """Re-anchor a unit's simulated launch time onto the wall timeline.

    The simulator's clock is virtual; to show "where the simulated time
    went" on the same trace as engine scheduling, the aggregate launch
    profile of a freshly-run unit is laid out at the wall time its
    attempt span started: launch overhead first, then the kernel span.
    """
    tr = tspans.tracer()
    profile = payload.get("profile")
    if tr is None or anchor is None or not profile:
        return
    t0 = anchor.t0
    overhead = float(profile.get("launch_overhead_s") or 0.0)
    kernel_s = float(profile.get("total_s") or 0.0)
    common = {
        "device": profile.get("device"),
        "api": profile.get("api"),
        "virtual": True,
    }
    if overhead > 0:
        tr.record_span(
            f"{profile.get('api')} launch overhead", "launch",
            t0, t0 + overhead, parent_id=anchor.span_id, **common,
        )
    tr.record_span(
        str(profile.get("kernel")), "launch",
        t0 + overhead, t0 + overhead + kernel_s,
        parent_id=anchor.span_id,
        bound=profile.get("bound_term") or profile.get("bound"),
        dram_bytes=profile.get("dram_bytes"),
        **common,
    )


def _worker_payload(
    unit: WorkUnit,
    attempt: int,
    faults,
    timeout: Optional[float],
    span_ctx=None,
) -> dict:
    """Process-pool worker: never raises for ordinary failures.

    Returns ``{"ok": payload}`` or ``{"err": {...}}`` so a unit that
    throws (or times out) costs exactly one structured error instead of
    poisoning the pool; only a genuine process death breaks the pool.
    Each response also carries the worker's telemetry — finished span
    events (parented under ``span_ctx``) and a metrics-registry
    snapshot — which the parent folds into its own run record.
    """
    tr = tspans.worker_tracer(span_ctx)
    out: dict = {}
    with metrics.use_registry() as reg, tspans.use_tracer(tr):
        try:
            with tspans.span(
                "unit.attempt", "unit", label=unit.label(), attempt=attempt
            ) as attempt_span:
                with _deadline(timeout):
                    payload = _execute_payload(unit, attempt, faults)
                _virtual_launch_spans(payload, attempt_span)
            out["ok"] = payload
        except Exception as e:
            out["err"] = {
                "type": type(e).__name__,
                "kind": classify(e).value,
                "message": str(e),
                "traceback": traceback.format_exc(),
                "injected": is_injected(e) or _hang_induced(e, unit, faults),
            }
        if tr is not None:
            tr.finish()
        out["telemetry"] = {
            "spans": tr.export_events() if tr is not None else [],
            "metrics": reg.snapshot(),
        }
    return out


def _hang_induced(e, unit: WorkUnit, faults) -> bool:
    """A timeout caused by a planted ``hang`` fault counts as injected.

    The alarm fires outside the injector, so the UnitTimeout itself
    carries no ``injected`` flag; attribution comes from the plan.
    """
    return (
        isinstance(e, UnitTimeout)
        and faults is not None
        and faults.planned(unit.label(), "hang") is not None
    )


class SweepExecutor:
    """Memoizing, optionally parallel, fault-tolerant executor."""

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        memoize: bool = True,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        faults=None,
        progress: bool = True,
        journal=None,
        resumed=None,
        preflight: bool = True,
        grace: float = 30.0,
        demote_after: int = 3,
        adaptive_jobs: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs))
        #: clamp pool fan-out to the machine's core count; workers past
        #: it add fork/pickle/scheduling overhead with zero throughput
        #: (opt-in: fault-injection callers want real workers regardless)
        self.adaptive_jobs = bool(adaptive_jobs)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.memoize = memoize
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        #: fault-injection plan; defaults to $REPRO_FAULTS (None when unset)
        self.faults = (
            faults_mod.from_spec(faults) if faults is not None
            else faults_mod.from_env()
        )
        self.stats = SweepStats()
        #: progress-meter mode during prewarm: "auto" (TTY-gated live
        #: line), "plain" (periodic lines for CI logs), "off"; bools are
        #: accepted for back-compat (True -> auto, False -> off)
        if isinstance(progress, str):
            self.progress = progress
        else:
            self.progress = "auto" if progress else "off"
        self._progress_line: Optional[ProgressLine] = None
        self._mem: dict = {}  # digest -> payload
        self._digests: dict = {}  # WorkUnit -> digest
        self._failed: dict = {}  # digest -> FailedUnit (quarantined units)
        #: optional RunJournal receiving start/done/fail records
        self.journal = journal
        #: JournalReplay this run resumes, when any
        self.resumed = resumed
        self._resumed_done: set = set(resumed.completed) if resumed else set()
        if resumed is not None:
            self.stats.resumed = resumed.summary()
        #: run the ABT preflight guard over cold units before launching
        self.preflight = bool(preflight)
        self.grace = max(0.0, float(grace))
        #: broken-pool incidents before demoting to sequential execution
        self.demote_after = max(1, int(demote_after))
        self._pool_incidents = 0
        self._drain = threading.Event()
        self._drain_deadline = float("inf")
        if self.cache is not None:
            # let the cache report quarantines into this sweep's stats
            self.cache.stats = self.stats
        if self.journal is not None:
            # liveness: periodic journaled heartbeats + a metrics-snapshot
            # flush, so repro.obs can watch this run from outside the
            # process (dies with the journal's close())
            self.journal.start_heartbeat(
                journal_mod.heartbeat_interval(),
                stats_fn=self._heartbeat_stats,
                flush_fn=self._flush_metrics,
            )

    # -- lifecycle ---------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once a drain was requested: no new work is admitted."""
        return self._drain.is_set()

    @property
    def demoted(self) -> bool:
        """True once degraded mode demoted the run to sequential."""
        return self.stats.demoted is not None

    def request_drain(self, grace: Optional[float] = None) -> None:
        """Stop admitting work; in-flight units get ``grace`` seconds.

        Thread- and signal-safe (it only sets an Event and a deadline);
        called by :class:`~repro.exec.lifecycle.GracefulShutdown` from
        the SIGINT/SIGTERM handler.  Idempotent: the first call wins.
        """
        if self._drain.is_set():
            return
        g = self.grace if grace is None else max(0.0, float(grace))
        self._drain_deadline = time.monotonic() + g
        self._drain.set()
        metrics.counter("exec.drain").inc()
        tspans.event("sweep.drain", "engine", grace=g)

    def _grace_expired(self) -> bool:
        return self._drain.is_set() and time.monotonic() > self._drain_deadline

    def _note_pool_incident(self, n: int, reason: str) -> None:
        """Count broken-pool incidents; demote past the threshold."""
        if n <= 0:
            return
        self._pool_incidents += n
        metrics.counter("exec.pool.incidents").inc(n)
        if self.demoted or self._pool_incidents < self.demote_after:
            return
        self._demote(reason)

    def _demote(self, reason: str) -> None:
        """Degraded mode: finish the run sequentially, permanently."""
        if self.demoted:
            return
        self.jobs = 1
        self.stats.demoted = {
            "incidents": self._pool_incidents, "reason": reason,
        }
        metrics.counter("exec.demotions").inc()
        tspans.event(
            "sweep.demoted", "engine",
            incidents=self._pool_incidents, reason=reason,
        )
        log.warn(
            "sweep.demoted",
            f"degraded mode: {self._pool_incidents} broken-pool incidents "
            f"({reason}); finishing the run sequentially",
        )
        if self.journal is not None:
            self.journal.record_demote(self._pool_incidents, reason)

    # -- journal hooks -----------------------------------------------------
    def _heartbeat_stats(self) -> dict:
        """Progress counters each heartbeat record carries."""
        return {
            "done": len(self.stats.records),
            "failed": len(self.stats.failures),
        }

    def _flush_metrics(self) -> None:
        """Persist the live metrics snapshot for out-of-process scrapers."""
        if self.cache is None or self.journal is None:
            return
        try:
            metrics.write_snapshot_file(self.cache.root, self.journal.run_id)
        except OSError:
            pass  # a full disk must not kill the sweep it describes

    def _jstart(self, digest: str, unit: WorkUnit, attempt: int) -> None:
        if self.journal is not None:
            self.journal.record_start(digest, unit.label(), attempt)

    def _jdone(self, digest: str, source: str = "run") -> None:
        if self.journal is not None:
            self.journal.record_done(digest, source)

    # -- lookup layers ----------------------------------------------------
    def digest_of(self, unit: WorkUnit) -> str:
        d = self._digests.get(unit)
        if d is None:
            d = self._digests[unit] = unit_digest(unit)
        return d

    def _lookup(self, digest: str):
        """Returns ``(payload, source)``; payload None on a full miss."""
        payload = self._mem.get(digest)
        if payload is not None:
            return payload, "mem"
        if self.cache is not None:
            payload = self.cache.get(digest)
            if payload is not None:
                if self.memoize:
                    self._mem[digest] = payload
                return payload, "disk"
        return None, "run"

    def _store(self, digest: str, payload: dict, label: str = "") -> None:
        if self.memoize:
            self._mem[digest] = payload
        if self.cache is not None:
            self.cache.put(digest, payload)
            if label and self.faults is not None and self.faults.corrupts(label):
                faults_mod.corrupt_file(self.cache.path_for(digest))
                metrics.counter("faults.injected.corrupt").inc()
                tspans.event(
                    "fault.injected", "fault", kind="corrupt", label=label,
                )

    # -- failure bookkeeping ----------------------------------------------
    def _record_failure(
        self,
        unit: WorkUnit,
        digest: str,
        kind: str,
        error: str,
        tb: str,
        attempts: int,
        injected: bool,
    ) -> FailedUnit:
        failed = FailedUnit(
            label=unit.label(), digest=digest, kind=kind, error=error,
            traceback=tb, attempts=attempts, injected=injected,
        )
        self.stats.failures.append(failed)
        self._failed[digest] = failed
        if self.journal is not None:
            self.journal.record_fail(digest, kind, injected)
        metrics.counter(f"exec.failures.{kind}").inc()
        if injected:
            metrics.counter("exec.failures.injected").inc()
        tspans.event(
            "unit.failed", "unit", label=failed.label, kind=kind,
            attempts=attempts, injected=injected, error=error,
        )
        log.warn(
            "unit.failed",
            f"unit {failed.label} failed terminally "
            f"({failed.kind}, attempt {attempts}"
            f"{', injected' if injected else ''}): {error}",
        )
        if self._progress_line is not None:
            self._progress_line.note_failure()
        return failed

    def _raise_failed(self, failed: FailedUnit):
        raise UnitFailed(
            failed.label, FailureKind(failed.kind), failed.error,
            injected=failed.injected,
        )

    # -- serving ----------------------------------------------------------
    def run_unit(self, unit: WorkUnit) -> UnitResult:
        """Serve one unit: memo table, then disk cache, then simulate.

        A unit that already failed terminally is quarantined: it raises
        :class:`~repro.errors.UnitFailed` instead of re-executing.
        """
        t0 = time.perf_counter()
        digest = self.digest_of(unit)
        failed = self._failed.get(digest)
        if failed is not None:
            self._raise_failed(failed)
        with tspans.span("unit.serve", "unit", label=unit.label()) as serve:
            payload, source = self._lookup(digest)
            if payload is None:
                if self.draining:
                    # no new admissions during a drain; the journal's
                    # missing `done` record re-enqueues this on --resume
                    raise SweepInterrupted(unit.label())
                payload = self._simulate_with_retry(unit, digest)
            if serve is not None:
                serve.attrs["source"] = source
        self.stats.record(
            unit, digest, time.perf_counter() - t0, payload["seconds"], source
        )
        return result_from_json(payload, cached=source != "run")

    def run_units(self, units: Iterable[WorkUnit]) -> list[UnitResult]:
        """Serve many units (prewarming misses in parallel first).

        Returns the results of the units that succeeded; failures are
        recorded in ``stats.failures`` rather than propagated, so one
        bad unit costs one row, not the sweep.
        """
        units = list(units)
        self.prewarm(units)
        out = []
        for u in units:
            try:
                out.append(self.run_unit(u))
            except UnitFailed:
                pass
            except SweepInterrupted:
                # draining: cached units keep serving, cold ones are
                # left for --resume
                continue
        return out

    def _simulate_with_retry(self, unit: WorkUnit, digest: str) -> dict:
        """Sequential execution with timeout, bounded retry, quarantine."""
        attempt = 0
        while True:
            attempt += 1
            self._jstart(digest, unit, attempt)
            try:
                with tspans.span(
                    "unit.attempt", "unit", label=unit.label(), attempt=attempt
                ) as attempt_span:
                    with _deadline(self.timeout):
                        payload = _execute_payload(unit, attempt, self.faults)
                    _virtual_launch_spans(payload, attempt_span)
            except Exception as e:
                kind = classify(e)
                if kind is FailureKind.TRANSIENT and attempt <= self.retries:
                    delay = retry_delay(self.backoff, attempt, digest)
                    metrics.counter("exec.retries").inc()
                    tspans.event(
                        "retry.backoff", "unit", label=unit.label(),
                        attempt=attempt, sleep_s=delay,
                    )
                    log.info(
                        "unit.retry", label=unit.label(), attempt=attempt,
                        sleep_s=round(delay, 4), error=str(e),
                    )
                    time.sleep(delay)
                    continue
                failed = self._record_failure(
                    unit, digest, kind=kind.value, error=str(e),
                    tb=traceback.format_exc(), attempts=attempt,
                    injected=is_injected(e) or _hang_induced(e, unit, self.faults),
                )
                raise UnitFailed(
                    failed.label, kind, failed.error, injected=failed.injected
                ) from e
            metrics.histogram("exec.unit_sim_s").observe(payload["seconds"])
            self._store(digest, payload, unit.label())
            # the result is durably in the cache before the journal says
            # done — a crash between the two re-runs, never fabricates
            self._jdone(digest)
            return payload

    def prewarm(self, units: Sequence[WorkUnit], jobs: Optional[int] = None):
        """Simulate every not-yet-cached unit, fanning out when asked.

        Duplicates are deduplicated by digest; already-cached and
        quarantined units cost nothing.  Returns the number of units
        attempted.  Failures are recorded, not raised — the sweep's
        remaining units always complete.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        if self.adaptive_jobs and jobs > 1:
            hw = os.cpu_count() or 1
            if jobs > hw:
                metrics.gauge("exec.pool.jobs_clamped").set(jobs - hw)
                jobs = hw
        units = list(units)
        todo: dict = {}
        seen: set = set()
        warm = 0
        for u in units:
            d = self.digest_of(u)
            if d in seen:
                continue
            seen.add(d)
            if d in self._failed:
                continue
            payload, _ = self._lookup(d)
            if payload is None:
                todo[d] = u
            else:
                warm += 1
                if d in self._resumed_done:
                    self.stats.resumed_hits += 1
                    metrics.counter("exec.resume.hits").inc()
        if self.journal is not None:
            self.journal.record_plan(len(seen), len(todo))
        if not todo:
            return 0
        if self.preflight:
            self._preflight(todo)
        prog = self._progress_line = ProgressLine(
            len(seen), label="sweep", mode=self.progress
        ) if self.progress != "off" else None
        if prog is not None:
            for _ in range(warm):
                prog.tick(hit=True)
        try:
            with tspans.span(
                "sweep.prewarm", "engine",
                units=len(seen), todo=len(todo), jobs=jobs,
            ):
                if jobs > 1 and len(todo) > 1 and not self.draining:
                    self._prewarm_parallel(todo, min(jobs, self.jobs))
                # anything the pool could not produce runs sequentially —
                # except quarantined units, which are never re-executed
                # in-process
                for d, u in todo.items():
                    if self.draining:
                        break  # stop admission; --resume picks these up
                    if d in self._failed or self._lookup(d)[0] is not None:
                        continue
                    t0 = time.perf_counter()
                    try:
                        payload = self._simulate_with_retry(u, d)
                    except UnitFailed:
                        # failure count was bumped by _record_failure;
                        # the tick only advances done/total
                        if prog is not None:
                            prog.tick()
                        continue
                    wall = time.perf_counter() - t0
                    self.stats.record(u, d, wall, payload["seconds"], "run")
                    if prog is not None:
                        prog.tick(seconds=wall)
        finally:
            if prog is not None:
                prog.close()
            self._progress_line = None
        return len(todo)

    def _preflight(self, todo: dict) -> None:
        """Classify cold units that would abort at enqueue, before launch.

        Advisory by design: a would-ABT unit still executes (its cached
        BenchResult carries the Table VI failure tag either way), so
        results are identical with the guard on or off — the guard's
        value is the *early*, pre-launch report and the structured
        verdicts in ``stats.preflight``.
        """
        from .lifecycle import preflight_unit

        with tspans.span("sweep.preflight", "engine", units=len(todo)):
            for u in todo.values():
                v = preflight_unit(u)
                self.stats.preflight_checked += 1
                metrics.counter("exec.preflight.checked").inc()
                if not v.would_abt:
                    continue
                self.stats.preflight.append(v.as_dict())
                tspans.event(
                    "preflight.abt", "engine", label=v.label, code=v.code,
                    kernel=v.kernel,
                )
                log.info(
                    "preflight.abt",
                    f"{v.label}: kernel {v.kernel!r} would abort at enqueue "
                    f"({v.code}: {v.registers} regs, {v.shared_bytes} B "
                    f"local, {v.threads} threads)",
                )

    # -- parallel fan-out --------------------------------------------------
    def _prewarm_parallel(self, todo: dict, jobs: int) -> None:
        """Pool rounds with per-future error collection and crash probing.

        Each round submits the pending units; worker exceptions come
        back as structured errors (recorded or retried), and a broken
        pool turns its unfinished futures into *suspects* that are
        probed one-by-one in disposable single-worker pools.
        """
        pending = dict(todo)
        attempts = {d: 0 for d in pending}
        max_rounds = self.retries + 4  # transient budget + crash-probe slack
        for _ in range(max_rounds):
            if not pending or self.draining or self.demoted:
                return
            outcome = self._pool_round(pending, attempts, jobs)
            if outcome is None:
                return  # no pool available: sequential fallback takes over
            retry, suspects = outcome
            if suspects:
                # a broken pool is one incident, whatever its blast radius
                self._note_pool_incident(1, "worker death broke the pool")
                self._probe_suspects(suspects, attempts, retry)
            if self.demoted:
                return  # leftovers run on the sequential path
            if retry:
                # one jittered sleep for the round, seeded from the unit
                # that has retried longest, so concurrent sweeps sharing
                # a pool de-synchronize instead of herding
                worst_d = max(retry, key=lambda d: attempts[d])
                time.sleep(retry_delay(self.backoff, attempts[worst_d], worst_d))
            pending = retry
        # leftovers (pathological pool churn) fall back to the
        # sequential path in prewarm(), which quarantine-guards them

    def _span_ctx(self):
        """The (trace_id, parent_span_id) pair shipped to pool workers."""
        tr = tspans.tracer()
        if tr is None:
            return None
        return (tr.trace_id, tspans.current_span_id())

    def _tick_future(self, fut, digest: str, attempts: dict) -> None:
        """Pool done-callback: advance the live progress meter.

        Runs on the executor's callback thread as each future lands, so
        the meter moves *during* a round, not after it.  Transient
        failures that will be retried do not count as done.
        """
        prog = self._progress_line
        if prog is None:
            return
        try:
            out = fut.result()
        except Exception:
            prog.tick()  # crash suspect; the probe resolves its fate
            return
        if "ok" in out:
            prog.tick(seconds=out["ok"]["seconds"])
        elif (
            out["err"]["kind"] != FailureKind.TRANSIENT.value
            or attempts[digest] > self.retries
        ):
            prog.tick()

    def _pool_round(self, pending: dict, attempts: dict, jobs: int):
        """One submit/collect cycle; returns (retry, suspects) or None."""
        workers = min(jobs, len(pending), 32)
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                workers, initializer=_pool_worker_init
            )
        except _POOL_ERRORS as e:
            log.warn(
                "pool.unavailable",
                f"process pool unavailable ({e!r}); "
                "falling back to sequential execution",
            )
            # no pool will ever materialise here; demote outright so the
            # rest of the run doesn't retry doomed pool creation
            self._note_pool_incident(self.demote_after, f"pool unavailable: {e!r}")
            return None
        metrics.counter("exec.pool.rounds").inc()
        metrics.gauge("exec.pool.workers").set(workers)
        retry: dict = {}
        suspects: dict = {}
        futures: dict = {}
        with tspans.span(
            "pool.round", "pool", workers=workers, pending=len(pending)
        ):
            span_ctx = self._span_ctx()
            hard_stop = False
            try:
                for d, u in pending.items():
                    if self.draining:
                        break  # queued-but-unsubmitted units stay cold
                    attempts[d] += 1
                    try:
                        fut = pool.submit(
                            _worker_payload, u, attempts[d], self.faults,
                            self.timeout, span_ctx,
                        )
                    except concurrent.futures.BrokenExecutor:
                        # pool died mid-submission; resubmit next round
                        attempts[d] -= 1
                        retry[d] = u
                        continue
                    self._jstart(d, u, attempts[d])
                    futures[fut] = (d, u)
                    fut.add_done_callback(
                        lambda f, d=d: self._tick_future(f, d, attempts)
                    )
                # poll instead of a single blocking wait so a drain
                # request can cancel queued work and bound the grace
                # period for whatever is already on a worker
                not_done = set(futures)
                while not_done:
                    done, not_done = concurrent.futures.wait(
                        not_done, timeout=0.2
                    )
                    if self.draining:
                        for f in not_done:
                            f.cancel()  # only dequeues; running ones stay
                    if self._grace_expired() and any(
                        not f.done() for f in not_done
                    ):
                        hard_stop = True
                        break
                for fut, (d, u) in futures.items():
                    if fut.cancelled() or not fut.done():
                        continue  # drained; journal start without done
                    try:
                        out = fut.result()
                    except _POOL_ERRORS:
                        # the worker died under this unit *or* the unit
                        # was collateral of a crash elsewhere — probe to
                        # find out
                        suspects[d] = u
                        continue
                    self._absorb(d, u, out, attempts, retry)
            finally:
                if hard_stop:
                    # grace exhausted: stop waiting on stuck workers and
                    # reap them; their units replay as in-flight on resume
                    for p in list(getattr(pool, "_processes", {}).values()):
                        try:
                            p.terminate()
                        except (OSError, AttributeError):
                            pass
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    pool.shutdown(wait=True)
        if self.draining:
            # no retries or crash probes during a drain: anything
            # unresolved keeps its journal `start` and replays on resume
            return {}, {}
        return retry, suspects

    def _probe_suspects(self, suspects: dict, attempts: dict, retry: dict) -> None:
        """Re-run each crash suspect in its own disposable one-worker pool.

        The unit that actually killed the shared worker kills its probe
        pool too and is quarantined as a CRASH; innocent bystanders
        complete normally and their results are kept.
        """
        for d, u in suspects.items():
            if self.draining:
                return  # keep journal starts; resume re-runs the suspects
            attempts[d] += 1
            self._jstart(d, u, attempts[d])
            with tspans.span("pool.probe", "pool", label=u.label()):
                try:
                    with concurrent.futures.ProcessPoolExecutor(
                        1, initializer=_pool_worker_init
                    ) as pool:
                        out = pool.submit(
                            _worker_payload, u, attempts[d], self.faults,
                            self.timeout, self._span_ctx(),
                        ).result()
                except _POOL_ERRORS:
                    injected = (
                        self.faults is not None
                        and self.faults.planned(u.label(), "kill") is not None
                    )
                    self._record_failure(
                        u, d, kind=FailureKind.CRASH.value,
                        error="worker process died without reporting a result",
                        tb="", attempts=attempts[d], injected=injected,
                    )
                    # a probe pool died too: that's its own incident
                    self._note_pool_incident(1, "crash probe pool died")
                    continue
                self._absorb(d, u, out, attempts, retry)

    def _absorb(self, d: str, u: WorkUnit, out: dict, attempts: dict, retry: dict):
        """Fold one worker response into stats/cache/retry/quarantine.

        Also folds home the worker's telemetry: its finished span
        events join this process's trace (their IDs are PID-prefixed,
        their parent is the span that submitted them) and its metrics
        snapshot merges into the process registry.
        """
        tele = out.get("telemetry")
        if tele:
            tr = tspans.tracer()
            if tr is not None and tele.get("spans"):
                tr.absorb(tele["spans"])
            if tele.get("metrics"):
                metrics.registry().merge_snapshot(tele["metrics"])
        if "ok" in out:
            payload = out["ok"]
            metrics.histogram("exec.unit_sim_s").observe(payload["seconds"])
            self._store(d, payload, u.label())
            self._jdone(d)
            self.stats.record(
                u, d, payload["seconds"], payload["seconds"], "run"
            )
            return
        err = out["err"]
        if err["kind"] == FailureKind.TRANSIENT.value and attempts[d] <= self.retries:
            metrics.counter("exec.retries").inc()
            tspans.event(
                "retry.backoff", "unit", label=u.label(), attempt=attempts[d],
            )
            log.info(
                "unit.retry", label=u.label(), attempt=attempts[d],
                error=err["message"],
            )
            retry[d] = u
            return
        self._record_failure(
            u, d, kind=err["kind"], error=err["message"],
            tb=err["traceback"], attempts=attempts[d],
            injected=err["injected"],
        )
