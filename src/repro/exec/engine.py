"""The sweep execution engine: parallel fan-out + memoization + fault tolerance.

A :class:`SweepExecutor` serves work units through three layers:

1. an in-process memo table (digest -> payload),
2. an optional on-disk :class:`~repro.exec.cache.ResultCache`,
3. actual simulation — sequentially, or fanned out over a
   ``concurrent.futures.ProcessPoolExecutor`` when ``jobs > 1``.

All results — hits and misses alike — are round-tripped through the
JSON serialization layer, so the rendered reports are byte-identical
whatever mix of cache hits, sequential runs, and parallel workers
produced them.  If the process pool cannot be created or dies (no
semaphores in a sandbox, fork bans, ...), the engine degrades to the
sequential path and still completes the sweep.

Partial failure degrades gracefully instead of killing the sweep:

* pool workers report exceptions as structured payloads, so one bad
  unit never aborts the round (and per-future errors are collected,
  not propagated);
* a worker that *dies* (signal, ``os._exit``) breaks its pool — the
  engine re-probes each suspect unit in a disposable single-worker
  pool to separate the poison from the collateral;
* :class:`~repro.errors.TransientError` failures are retried with
  bounded exponential backoff (``retries``/``backoff``);
* ``timeout`` seconds of wall clock cut a hung unit off (SIGALRM at
  the executing process, pool worker or main);
* every terminal failure is recorded as a :class:`FailedUnit` in
  :class:`SweepStats` and the unit's digest is quarantined: later
  requests raise :class:`~repro.errors.UnitFailed` instead of
  re-executing the poison (in particular, the sequential fallback
  never re-runs a unit that just killed a worker).
"""
from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import signal
import threading
import time
import traceback
from typing import Iterable, Optional, Sequence

from .. import faults as faults_mod
from ..errors import FailureKind, UnitFailed, UnitTimeout, classify, is_injected
from ..telemetry import log, metrics
from ..telemetry import spans as tspans
from ..telemetry.progress import ProgressLine
from .cache import ResultCache, result_from_json, result_to_json
from .unit import UnitResult, WorkUnit, execute, unit_digest

__all__ = ["SweepExecutor", "SweepStats", "UnitRecord", "FailedUnit"]

_POOL_ERRORS = (OSError, concurrent.futures.BrokenExecutor, RuntimeError)


@dataclasses.dataclass
class UnitRecord:
    """Per-unit accounting line: what ran, how it was served, how long."""

    label: str
    digest: str
    seconds: float  # wall seconds spent serving this request
    sim_seconds: float  # simulation seconds stored with the result
    cached: bool
    source: str  # "mem" | "disk" | "run"


@dataclasses.dataclass
class FailedUnit:
    """One work unit that terminally failed (the sweep went on without it)."""

    label: str
    digest: str
    kind: str  # FailureKind.value
    error: str  # message of the final exception
    traceback: str
    attempts: int
    injected: bool = False  # planted by repro.faults (expected in chaos runs)


class SweepStats:
    """Hit/miss counters + per-unit timings for one executor's lifetime."""

    def __init__(self) -> None:
        self.records: list[UnitRecord] = []
        self.failures: list[FailedUnit] = []
        #: corrupt cache entries moved aside while serving this sweep
        self.quarantined = 0

    def record(
        self, unit: WorkUnit, digest: str, seconds: float,
        sim_seconds: float, source: str,
    ) -> None:
        metrics.counter(f"exec.serve.{source}").inc()
        self.records.append(
            UnitRecord(
                label=unit.label(), digest=digest, seconds=seconds,
                sim_seconds=sim_seconds, cached=source != "run",
                source=source,
            )
        )

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def mem_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "mem")

    @property
    def disk_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "disk")

    @property
    def sim_seconds(self) -> float:
        return sum(r.sim_seconds for r in self.records if not r.cached)

    @property
    def cache_serve_seconds(self) -> float:
        """Wall seconds spent serving requests from the memo/disk cache."""
        return sum(r.seconds for r in self.records if r.cached)

    def unexpected_failures(self) -> list[FailedUnit]:
        """Failures not planted by the fault-injection harness."""
        return [f for f in self.failures if not f.injected]

    def summary(self) -> dict:
        """JSON-friendly roll-up (the CI build artifact)."""
        return {
            "hits": self.hits,
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "sim_seconds": self.sim_seconds,
            "cache_serve_seconds": self.cache_serve_seconds,
            "units": [dataclasses.asdict(r) for r in self.records],
            "failures": [dataclasses.asdict(f) for f in self.failures],
        }


@contextlib.contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`UnitTimeout` if the body runs longer than ``seconds``.

    SIGALRM-based, so it cuts off even a unit stuck in a pure-Python
    loop; silently unenforced off the main thread or on platforms
    without ``setitimer`` (the parallel path still enforces it, since
    pool workers execute on their own main threads).
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise UnitTimeout(f"unit exceeded --timeout={seconds:g}s", seconds=seconds)

    prev = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev)


def _execute_payload(unit: WorkUnit, attempt: int = 1, faults=None) -> dict:
    """Simulate one unit and return its JSON payload."""
    return result_to_json(execute(unit, attempt=attempt, faults=faults))


def _virtual_launch_spans(payload: dict, anchor) -> None:
    """Re-anchor a unit's simulated launch time onto the wall timeline.

    The simulator's clock is virtual; to show "where the simulated time
    went" on the same trace as engine scheduling, the aggregate launch
    profile of a freshly-run unit is laid out at the wall time its
    attempt span started: launch overhead first, then the kernel span.
    """
    tr = tspans.tracer()
    profile = payload.get("profile")
    if tr is None or anchor is None or not profile:
        return
    t0 = anchor.t0
    overhead = float(profile.get("launch_overhead_s") or 0.0)
    kernel_s = float(profile.get("total_s") or 0.0)
    common = {
        "device": profile.get("device"),
        "api": profile.get("api"),
        "virtual": True,
    }
    if overhead > 0:
        tr.record_span(
            f"{profile.get('api')} launch overhead", "launch",
            t0, t0 + overhead, parent_id=anchor.span_id, **common,
        )
    tr.record_span(
        str(profile.get("kernel")), "launch",
        t0 + overhead, t0 + overhead + kernel_s,
        parent_id=anchor.span_id,
        bound=profile.get("bound_term") or profile.get("bound"),
        dram_bytes=profile.get("dram_bytes"),
        **common,
    )


def _worker_payload(
    unit: WorkUnit,
    attempt: int,
    faults,
    timeout: Optional[float],
    span_ctx=None,
) -> dict:
    """Process-pool worker: never raises for ordinary failures.

    Returns ``{"ok": payload}`` or ``{"err": {...}}`` so a unit that
    throws (or times out) costs exactly one structured error instead of
    poisoning the pool; only a genuine process death breaks the pool.
    Each response also carries the worker's telemetry — finished span
    events (parented under ``span_ctx``) and a metrics-registry
    snapshot — which the parent folds into its own run record.
    """
    tr = tspans.worker_tracer(span_ctx)
    out: dict = {}
    with metrics.use_registry() as reg, tspans.use_tracer(tr):
        try:
            with tspans.span(
                "unit.attempt", "unit", label=unit.label(), attempt=attempt
            ) as attempt_span:
                with _deadline(timeout):
                    payload = _execute_payload(unit, attempt, faults)
                _virtual_launch_spans(payload, attempt_span)
            out["ok"] = payload
        except Exception as e:
            out["err"] = {
                "type": type(e).__name__,
                "kind": classify(e).value,
                "message": str(e),
                "traceback": traceback.format_exc(),
                "injected": is_injected(e) or _hang_induced(e, unit, faults),
            }
        if tr is not None:
            tr.finish()
        out["telemetry"] = {
            "spans": tr.export_events() if tr is not None else [],
            "metrics": reg.snapshot(),
        }
    return out


def _hang_induced(e, unit: WorkUnit, faults) -> bool:
    """A timeout caused by a planted ``hang`` fault counts as injected.

    The alarm fires outside the injector, so the UnitTimeout itself
    carries no ``injected`` flag; attribution comes from the plan.
    """
    return (
        isinstance(e, UnitTimeout)
        and faults is not None
        and faults.planned(unit.label(), "hang") is not None
    )


class SweepExecutor:
    """Memoizing, optionally parallel, fault-tolerant executor."""

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        memoize: bool = True,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        faults=None,
        progress: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.memoize = memoize
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        #: fault-injection plan; defaults to $REPRO_FAULTS (None when unset)
        self.faults = (
            faults_mod.from_spec(faults) if faults is not None
            else faults_mod.from_env()
        )
        self.stats = SweepStats()
        #: live progress meter during prewarm (TTY-gated; see telemetry)
        self.progress = bool(progress)
        self._progress_line: Optional[ProgressLine] = None
        self._mem: dict = {}  # digest -> payload
        self._digests: dict = {}  # WorkUnit -> digest
        self._failed: dict = {}  # digest -> FailedUnit (quarantined units)
        if self.cache is not None:
            # let the cache report quarantines into this sweep's stats
            self.cache.stats = self.stats

    # -- lookup layers ----------------------------------------------------
    def digest_of(self, unit: WorkUnit) -> str:
        d = self._digests.get(unit)
        if d is None:
            d = self._digests[unit] = unit_digest(unit)
        return d

    def _lookup(self, digest: str):
        """Returns ``(payload, source)``; payload None on a full miss."""
        payload = self._mem.get(digest)
        if payload is not None:
            return payload, "mem"
        if self.cache is not None:
            payload = self.cache.get(digest)
            if payload is not None:
                if self.memoize:
                    self._mem[digest] = payload
                return payload, "disk"
        return None, "run"

    def _store(self, digest: str, payload: dict, label: str = "") -> None:
        if self.memoize:
            self._mem[digest] = payload
        if self.cache is not None:
            self.cache.put(digest, payload)
            if label and self.faults is not None and self.faults.corrupts(label):
                faults_mod.corrupt_file(self.cache.path_for(digest))
                metrics.counter("faults.injected.corrupt").inc()
                tspans.event(
                    "fault.injected", "fault", kind="corrupt", label=label,
                )

    # -- failure bookkeeping ----------------------------------------------
    def _record_failure(
        self,
        unit: WorkUnit,
        digest: str,
        kind: str,
        error: str,
        tb: str,
        attempts: int,
        injected: bool,
    ) -> FailedUnit:
        failed = FailedUnit(
            label=unit.label(), digest=digest, kind=kind, error=error,
            traceback=tb, attempts=attempts, injected=injected,
        )
        self.stats.failures.append(failed)
        self._failed[digest] = failed
        metrics.counter(f"exec.failures.{kind}").inc()
        if injected:
            metrics.counter("exec.failures.injected").inc()
        tspans.event(
            "unit.failed", "unit", label=failed.label, kind=kind,
            attempts=attempts, injected=injected, error=error,
        )
        log.warn(
            "unit.failed",
            f"unit {failed.label} failed terminally "
            f"({failed.kind}, attempt {attempts}"
            f"{', injected' if injected else ''}): {error}",
        )
        if self._progress_line is not None:
            self._progress_line.note_failure()
        return failed

    def _raise_failed(self, failed: FailedUnit):
        raise UnitFailed(
            failed.label, FailureKind(failed.kind), failed.error,
            injected=failed.injected,
        )

    # -- serving ----------------------------------------------------------
    def run_unit(self, unit: WorkUnit) -> UnitResult:
        """Serve one unit: memo table, then disk cache, then simulate.

        A unit that already failed terminally is quarantined: it raises
        :class:`~repro.errors.UnitFailed` instead of re-executing.
        """
        t0 = time.perf_counter()
        digest = self.digest_of(unit)
        failed = self._failed.get(digest)
        if failed is not None:
            self._raise_failed(failed)
        with tspans.span("unit.serve", "unit", label=unit.label()) as serve:
            payload, source = self._lookup(digest)
            if payload is None:
                payload = self._simulate_with_retry(unit, digest)
            if serve is not None:
                serve.attrs["source"] = source
        self.stats.record(
            unit, digest, time.perf_counter() - t0, payload["seconds"], source
        )
        return result_from_json(payload, cached=source != "run")

    def run_units(self, units: Iterable[WorkUnit]) -> list[UnitResult]:
        """Serve many units (prewarming misses in parallel first).

        Returns the results of the units that succeeded; failures are
        recorded in ``stats.failures`` rather than propagated, so one
        bad unit costs one row, not the sweep.
        """
        units = list(units)
        self.prewarm(units)
        out = []
        for u in units:
            try:
                out.append(self.run_unit(u))
            except UnitFailed:
                pass
        return out

    def _simulate_with_retry(self, unit: WorkUnit, digest: str) -> dict:
        """Sequential execution with timeout, bounded retry, quarantine."""
        attempt = 0
        while True:
            attempt += 1
            try:
                with tspans.span(
                    "unit.attempt", "unit", label=unit.label(), attempt=attempt
                ) as attempt_span:
                    with _deadline(self.timeout):
                        payload = _execute_payload(unit, attempt, self.faults)
                    _virtual_launch_spans(payload, attempt_span)
            except Exception as e:
                kind = classify(e)
                if kind is FailureKind.TRANSIENT and attempt <= self.retries:
                    delay = self.backoff * (2 ** (attempt - 1))
                    metrics.counter("exec.retries").inc()
                    tspans.event(
                        "retry.backoff", "unit", label=unit.label(),
                        attempt=attempt, sleep_s=delay,
                    )
                    log.info(
                        "unit.retry", label=unit.label(), attempt=attempt,
                        sleep_s=round(delay, 4), error=str(e),
                    )
                    time.sleep(delay)
                    continue
                failed = self._record_failure(
                    unit, digest, kind=kind.value, error=str(e),
                    tb=traceback.format_exc(), attempts=attempt,
                    injected=is_injected(e) or _hang_induced(e, unit, self.faults),
                )
                raise UnitFailed(
                    failed.label, kind, failed.error, injected=failed.injected
                ) from e
            metrics.histogram("exec.unit_sim_s").observe(payload["seconds"])
            self._store(digest, payload, unit.label())
            return payload

    def prewarm(self, units: Sequence[WorkUnit], jobs: Optional[int] = None):
        """Simulate every not-yet-cached unit, fanning out when asked.

        Duplicates are deduplicated by digest; already-cached and
        quarantined units cost nothing.  Returns the number of units
        attempted.  Failures are recorded, not raised — the sweep's
        remaining units always complete.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        units = list(units)
        todo: dict = {}
        seen: set = set()
        warm = 0
        for u in units:
            d = self.digest_of(u)
            if d in seen:
                continue
            seen.add(d)
            if d in self._failed:
                continue
            payload, _ = self._lookup(d)
            if payload is None:
                todo[d] = u
            else:
                warm += 1
        if not todo:
            return 0
        prog = self._progress_line = ProgressLine(
            len(seen), label="sweep"
        ) if self.progress else None
        if prog is not None:
            for _ in range(warm):
                prog.tick(hit=True)
        try:
            with tspans.span(
                "sweep.prewarm", "engine",
                units=len(seen), todo=len(todo), jobs=jobs,
            ):
                if jobs > 1 and len(todo) > 1:
                    self._prewarm_parallel(todo, jobs)
                # anything the pool could not produce runs sequentially —
                # except quarantined units, which are never re-executed
                # in-process
                for d, u in todo.items():
                    if d in self._failed or self._lookup(d)[0] is not None:
                        continue
                    t0 = time.perf_counter()
                    try:
                        payload = self._simulate_with_retry(u, d)
                    except UnitFailed:
                        # failure count was bumped by _record_failure;
                        # the tick only advances done/total
                        if prog is not None:
                            prog.tick()
                        continue
                    wall = time.perf_counter() - t0
                    self.stats.record(u, d, wall, payload["seconds"], "run")
                    if prog is not None:
                        prog.tick(seconds=wall)
        finally:
            if prog is not None:
                prog.close()
            self._progress_line = None
        return len(todo)

    # -- parallel fan-out --------------------------------------------------
    def _prewarm_parallel(self, todo: dict, jobs: int) -> None:
        """Pool rounds with per-future error collection and crash probing.

        Each round submits the pending units; worker exceptions come
        back as structured errors (recorded or retried), and a broken
        pool turns its unfinished futures into *suspects* that are
        probed one-by-one in disposable single-worker pools.
        """
        pending = dict(todo)
        attempts = {d: 0 for d in pending}
        max_rounds = self.retries + 4  # transient budget + crash-probe slack
        for _ in range(max_rounds):
            if not pending:
                return
            outcome = self._pool_round(pending, attempts, jobs)
            if outcome is None:
                return  # no pool available: sequential fallback takes over
            retry, suspects = outcome
            if suspects:
                self._probe_suspects(suspects, attempts, retry)
            if retry:
                worst = max(attempts[d] for d in retry)
                time.sleep(self.backoff * (2 ** max(0, worst - 1)))
            pending = retry
        # leftovers (pathological pool churn) fall back to the
        # sequential path in prewarm(), which quarantine-guards them

    def _span_ctx(self):
        """The (trace_id, parent_span_id) pair shipped to pool workers."""
        tr = tspans.tracer()
        if tr is None:
            return None
        return (tr.trace_id, tspans.current_span_id())

    def _tick_future(self, fut, digest: str, attempts: dict) -> None:
        """Pool done-callback: advance the live progress meter.

        Runs on the executor's callback thread as each future lands, so
        the meter moves *during* a round, not after it.  Transient
        failures that will be retried do not count as done.
        """
        prog = self._progress_line
        if prog is None:
            return
        try:
            out = fut.result()
        except Exception:
            prog.tick()  # crash suspect; the probe resolves its fate
            return
        if "ok" in out:
            prog.tick(seconds=out["ok"]["seconds"])
        elif (
            out["err"]["kind"] != FailureKind.TRANSIENT.value
            or attempts[digest] > self.retries
        ):
            prog.tick()

    def _pool_round(self, pending: dict, attempts: dict, jobs: int):
        """One submit/collect cycle; returns (retry, suspects) or None."""
        workers = min(jobs, len(pending), 32)
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                workers, initializer=faults_mod.mark_pool_worker
            )
        except _POOL_ERRORS as e:
            log.warn(
                "pool.unavailable",
                f"process pool unavailable ({e!r}); "
                "falling back to sequential execution",
            )
            return None
        metrics.counter("exec.pool.rounds").inc()
        metrics.gauge("exec.pool.workers").set(workers)
        retry: dict = {}
        suspects: dict = {}
        futures: dict = {}
        with tspans.span(
            "pool.round", "pool", workers=workers, pending=len(pending)
        ):
            span_ctx = self._span_ctx()
            try:
                for d, u in pending.items():
                    attempts[d] += 1
                    try:
                        fut = pool.submit(
                            _worker_payload, u, attempts[d], self.faults,
                            self.timeout, span_ctx,
                        )
                    except concurrent.futures.BrokenExecutor:
                        # pool died mid-submission; resubmit next round
                        attempts[d] -= 1
                        retry[d] = u
                        continue
                    futures[fut] = (d, u)
                    fut.add_done_callback(
                        lambda f, d=d: self._tick_future(f, d, attempts)
                    )
                concurrent.futures.wait(list(futures))
                for fut, (d, u) in futures.items():
                    try:
                        out = fut.result()
                    except _POOL_ERRORS:
                        # the worker died under this unit *or* the unit
                        # was collateral of a crash elsewhere — probe to
                        # find out
                        suspects[d] = u
                        continue
                    self._absorb(d, u, out, attempts, retry)
            finally:
                pool.shutdown(wait=True)
        return retry, suspects

    def _probe_suspects(self, suspects: dict, attempts: dict, retry: dict) -> None:
        """Re-run each crash suspect in its own disposable one-worker pool.

        The unit that actually killed the shared worker kills its probe
        pool too and is quarantined as a CRASH; innocent bystanders
        complete normally and their results are kept.
        """
        for d, u in suspects.items():
            attempts[d] += 1
            with tspans.span("pool.probe", "pool", label=u.label()):
                try:
                    with concurrent.futures.ProcessPoolExecutor(
                        1, initializer=faults_mod.mark_pool_worker
                    ) as pool:
                        out = pool.submit(
                            _worker_payload, u, attempts[d], self.faults,
                            self.timeout, self._span_ctx(),
                        ).result()
                except _POOL_ERRORS:
                    injected = (
                        self.faults is not None
                        and self.faults.planned(u.label(), "kill") is not None
                    )
                    self._record_failure(
                        u, d, kind=FailureKind.CRASH.value,
                        error="worker process died without reporting a result",
                        tb="", attempts=attempts[d], injected=injected,
                    )
                    continue
                self._absorb(d, u, out, attempts, retry)

    def _absorb(self, d: str, u: WorkUnit, out: dict, attempts: dict, retry: dict):
        """Fold one worker response into stats/cache/retry/quarantine.

        Also folds home the worker's telemetry: its finished span
        events join this process's trace (their IDs are PID-prefixed,
        their parent is the span that submitted them) and its metrics
        snapshot merges into the process registry.
        """
        tele = out.get("telemetry")
        if tele:
            tr = tspans.tracer()
            if tr is not None and tele.get("spans"):
                tr.absorb(tele["spans"])
            if tele.get("metrics"):
                metrics.registry().merge_snapshot(tele["metrics"])
        if "ok" in out:
            payload = out["ok"]
            metrics.histogram("exec.unit_sim_s").observe(payload["seconds"])
            self._store(d, payload, u.label())
            self.stats.record(
                u, d, payload["seconds"], payload["seconds"], "run"
            )
            return
        err = out["err"]
        if err["kind"] == FailureKind.TRANSIENT.value and attempts[d] <= self.retries:
            metrics.counter("exec.retries").inc()
            tspans.event(
                "retry.backoff", "unit", label=u.label(), attempt=attempts[d],
            )
            log.info(
                "unit.retry", label=u.label(), attempt=attempts[d],
                error=err["message"],
            )
            retry[d] = u
            return
        self._record_failure(
            u, d, kind=err["kind"], error=err["message"],
            tb=err["traceback"], attempts=attempts[d],
            injected=err["injected"],
        )
