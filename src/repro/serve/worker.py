"""The daemon's worker process: execute one leased unit, durably.

Each lease gets its own ``multiprocessing.Process`` running
:func:`worker_main` — deliberately *not* a shared
``ProcessPoolExecutor``, so a ``kill -9`` of one worker has a blast
radius of exactly one lease (the engine needs crash-probing to
un-mix pool casualties; the daemon simply never mixes them).

The worker speaks the same 0/1/75 exit-code contract as the sweep
CLIs (:mod:`repro.exec.lifecycle`):

* ``0``  — the result is durably in the content-addressed cache
  (atomic fsynced put *before* exiting, so the parent's ``done``
  record never outruns the data it vouches for);
* ``75`` — ``EX_TEMPFAIL``: a transient failure, re-dispatch me;
* ``1``  — terminal failure; a JSON *errfile* next to the WAL carries
  the classified kind/message/traceback for the daemon to journal;
* death by signal (negative ``exitcode``) — the crash case the lease
  protocol exists for: the daemon reclaims the lease and re-dispatches
  under a fresh fencing token.

Fault injection crosses this boundary exactly as it crosses the
engine's pool boundary: the worker marks itself a pool worker (so
``kill`` rules ``os._exit`` instead of raising) and fires
``postkill`` rules *after* the cache put — the daemon-level chaos
rule that dies mid-lease with the work already durable.
"""
from __future__ import annotations

import json
import os
import signal
import traceback
from pathlib import Path
from typing import Optional

from .. import faults as faults_mod
from ..errors import FailureKind, classify, is_injected
from ..exec.cache import ResultCache, result_to_json
from ..exec.engine import _deadline
from ..exec.unit import WorkUnit, execute
from .wal import serve_dir

__all__ = ["worker_main", "errfile_path", "read_errfile", "unit_from_dict"]

#: worker exit codes (the 0/1/75 contract, plus the signal-death cases
#: the OS reports as negative exitcodes)
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_TRANSIENT = 75


def unit_from_dict(d: dict) -> WorkUnit:
    """Rebuild a :class:`WorkUnit` from its WAL/API JSON form."""
    return WorkUnit(
        benchmark=d["benchmark"],
        api=d["api"],
        device=d["device"],
        size=d.get("size", "default"),
        options=tuple((k, v) for k, v in (d.get("options") or [])),
    )


def errfile_path(cache_dir, token: int) -> Path:
    """Where a failing worker leaves its structured error report."""
    return serve_dir(cache_dir) / "err" / f"{token}.json"


def read_errfile(cache_dir, token: int) -> Optional[dict]:
    """Consume (read + unlink) a worker's errfile, if it left one."""
    path = errfile_path(cache_dir, token)
    try:
        with open(path) as f:
            err = json.load(f)
    except (OSError, ValueError):
        return None
    try:
        os.unlink(path)
    except OSError:
        pass
    return err


def _write_errfile(cache_dir, token: int, err: dict) -> None:
    path = errfile_path(cache_dir, token)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump(err, f)
        os.replace(tmp, path)
    except OSError:
        pass  # the daemon falls back to a generic CRASH classification


def worker_main(
    unit_dict: dict,
    cache_dir: str,
    digest: str,
    token: int,
    attempt: int,
    timeout: Optional[float] = None,
    faults_spec=None,
) -> None:
    """Process entry point: execute, store, (maybe) die, report via exit code."""
    faults_mod.mark_pool_worker()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    unit = unit_from_dict(unit_dict)
    injector = faults_mod.from_spec(faults_spec)
    try:
        with _deadline(timeout):
            payload = result_to_json(execute(unit, attempt=attempt, faults=injector))
    except Exception as e:
        kind = classify(e)
        if kind is FailureKind.TRANSIENT:
            os._exit(EXIT_TRANSIENT)
        _write_errfile(
            cache_dir, token,
            {
                "kind": kind.value,
                "type": type(e).__name__,
                "message": str(e),
                "traceback": traceback.format_exc(),
                "injected": is_injected(e),
            },
        )
        os._exit(EXIT_FAILED)
    # durable before reportable: the fsynced atomic put is what lets the
    # daemon's `done` record (and any post-crash redispatch) trust the entry
    ResultCache(cache_dir).put(digest, payload)
    if injector is not None:
        injector.fire_post(unit.label(), attempt)
    os._exit(EXIT_OK)
