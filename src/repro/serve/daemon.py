"""The crash-safe sweep daemon: queue, leases, dispatch, drain.

:class:`SweepDaemon` is the long-running core behind
``python -m repro.serve``.  It owns:

* the **durable queue** — every transition journaled to the queue WAL
  (:mod:`repro.serve.wal`) *before* it is acknowledged, so a
  ``kill -9`` of the daemon reconstructs the exact queue on restart;
* **dedup by digest** — submissions are content-addressed with the
  same :func:`~repro.exec.unit.unit_digest` the sweep engine uses, so
  two tenants asking for the same unit share one execution and one
  cache entry, and anything already in the
  :class:`~repro.exec.cache.ResultCache` is served without running;
* **lease-fenced dispatch** — each cold unit is granted to exactly one
  worker process under a monotonic fencing token
  (:mod:`repro.serve.lease`); stale holders can still write the cache
  (idempotent) but their late reports are fenced;
* **admission control** — per-tenant quotas, global backpressure, and
  per-device circuit breakers (:mod:`repro.serve.admission`);
* **graceful drain** — SIGTERM stops admission, in-flight leases get a
  bounded grace, queued work stays in the WAL for the next boot, and
  the exit code follows the 0/1/75 contract.

Threading model: ``jobs`` dispatcher threads each drive at most one
worker *process* at a time (one process per lease — a crashed worker
takes down nothing but its own lease), plus one housekeeping thread
that heartbeats the WAL, flushes metrics snapshots, and reaps expired
leases.  All queue state is guarded by a single condition variable;
no worker process is ever awaited while the lock is held.
"""
from __future__ import annotations

import collections
import multiprocessing
import os
import threading
import time
from typing import Optional

from .. import faults as faults_mod
from ..errors import FailureKind
from ..exec.cache import (
    ResultCache,
    canonical_results_json,
    result_from_json,
)
from ..exec.engine import retry_delay
from ..exec.journal import heartbeat_interval
from ..exec.unit import make_unit, unit_digest
from ..telemetry import log, metrics
from .admission import (
    REJECT_BACKPRESSURE,
    REJECT_BREAKER,
    REJECT_DRAINING,
    AdmissionVerdict,
    BreakerBoard,
    TenantQuota,
)
from .lease import LeaseManager, default_ttl
from .wal import QueueWAL, TicketEntry, UnitEntry
from .wal import replay as wal_replay
from .wal import serve_dir, wal_path
from .worker import EXIT_FAILED, EXIT_OK, EXIT_TRANSIENT, read_errfile, worker_main

__all__ = ["SweepDaemon", "SubmitOutcome"]

#: how long a dispatcher waits between worker liveness polls (each poll
#: also renews the lease, so the effective renewal period is this)
_POLL_S = 0.2


class SubmitOutcome(dict):
    """The JSON-shaped result of one submission (accepted or rejected)."""

    @property
    def accepted(self) -> bool:
        return "ticket" in self

    @property
    def status(self) -> int:
        return int(self.get("status", 200))


class SweepDaemon:
    """Queue + leases + admission + dispatch for one sweep workdir."""

    def __init__(
        self,
        cache_dir,
        jobs: int = 4,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        quota: Optional[TenantQuota] = None,
        queue_bound: int = 256,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        hb_interval: Optional[float] = None,
        faults=None,
        fsync: bool = True,
    ) -> None:
        self.cache_dir = str(cache_dir)
        self.cache = ResultCache(cache_dir)
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.quota = quota if quota is not None else TenantQuota(
            max_inflight=self.jobs
        )
        self.queue_bound = max(1, int(queue_bound))
        self.breakers = BreakerBoard(breaker_threshold, breaker_cooldown)
        self.hb_interval = (
            heartbeat_interval() if hb_interval is None else float(hb_interval)
        )
        self.lease_ttl = default_ttl(self.hb_interval)
        self.faults = (
            faults_mod.from_spec(faults) if faults is not None
            else faults_mod.from_env()
        )
        self.fsync = fsync

        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._units: dict = {}  # digest -> UnitEntry
        self._tickets: dict = {}  # ticket id -> TicketEntry
        self._pending: collections.deque = collections.deque()
        #: digest -> monotonic time before which it must not re-dispatch
        #: (jittered transient backoff)
        self._not_before: dict = {}
        self._procs: dict = {}  # digest -> live worker Process
        self._rejects: dict = {}  # tenant -> count
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._threads: list = []
        self.epoch = 0
        self.started_unix: Optional[float] = None
        self.reclaimed_on_boot = 0
        self.wal: Optional[QueueWAL] = None
        self.leases: Optional[LeaseManager] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SweepDaemon":
        """Replay the WAL, reclaim orphaned leases, start the threads."""
        rep = wal_replay(wal_path(self.cache_dir))
        self.epoch = rep.epoch + 1
        self._units = rep.units
        self._tickets = rep.tickets
        self.leases = LeaseManager(self.lease_ttl, floor=rep.next_token)
        self.wal = QueueWAL(wal_path(self.cache_dir), fsync=self.fsync)
        self.wal.record_boot(self.epoch, self.jobs)
        self.started_unix = time.time()
        # every lease open at the previous daemon's death is stale by
        # construction (tokens are monotonic across boots): requeue the
        # unit, journal the reclaim — the old holder's result, if it
        # still lands in the cache, is idempotent and byte-identical
        for d, token in rep.open_leases.items():
            entry = self._units.get(d)
            if entry is None or entry.state != "leased":
                continue
            entry.state = "queued"
            self.wal.record_requeue(d, token, "daemon-restart")
            self.reclaimed_on_boot += 1
            metrics.counter("serve.reclaims").inc()
        if self.reclaimed_on_boot:
            log.warn(
                "serve.reclaim",
                f"reclaimed {self.reclaimed_on_boot} orphaned lease(s) "
                f"from a previous daemon (epoch {self.epoch - 1})",
            )
        self.cache.purge_tmp()
        for d, u in self._units.items():
            if u.state == "queued":
                self._pending.append(d)
        for i in range(self.jobs):
            t = threading.Thread(
                target=self._dispatch_loop, name=f"serve-dispatch-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        hk = threading.Thread(
            target=self._housekeeping_loop, name="serve-housekeeping",
            daemon=True,
        )
        hk.start()
        self._threads.append(hk)
        log.info(
            "serve.boot",
            f"daemon up: epoch {self.epoch}, {self.jobs} dispatchers, "
            f"{len(self._pending)} unit(s) queued from WAL replay",
        )
        return self

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Stop admission; in-flight leases finish, queued work persists."""
        with self._work:
            if self._draining.is_set():
                return
            self._draining.set()
            if self.wal is not None:
                self.wal.record_drain()
            metrics.counter("serve.drains").inc()
            self._work.notify_all()
        log.warn("serve.drain", "drain requested: admission stopped")

    def stop(self, grace: float = 30.0) -> dict:
        """Drain, give in-flight leases ``grace`` seconds, shut down.

        Returns the shutdown summary: terminal WAL state, counts, and
        the process exit code under the 0/1/75 contract (75 when queued
        or reclaimed work remains for the next boot).
        """
        self.drain()
        with self._work:
            self._stop.set()
            self._work.notify_all()
        deadline = time.monotonic() + max(0.0, float(grace))
        for t in self._threads:
            t.join(max(0.1, deadline - time.monotonic()))
        # grace exhausted: kill the stragglers' workers; their leases are
        # requeued so the next boot re-dispatches (nothing is lost)
        with self._work:
            for lease in list(self.leases.active()):
                p = self._procs.pop(lease.digest, None)
                if p is not None:
                    try:
                        p.kill()
                    except (OSError, AttributeError):
                        pass
                self.leases.release(lease.digest, lease.token)
                entry = self._units.get(lease.digest)
                if entry is not None and entry.state == "leased":
                    entry.state = "queued"
                self.wal.record_requeue(lease.digest, lease.token, "drain-killed")
                metrics.counter("serve.reclaims").inc()
            counts = self._counts_locked()
            remaining = counts["queued"] + counts["leased"]
            state = "stopped" if remaining == 0 else "interrupted"
            self.wal.record_state(state)
            self.wal.close()
        unexpected = sum(
            1 for u in self._units.values()
            if u.state == "failed" and not u.injected
        )
        code = 75 if remaining else (1 if unexpected else 0)
        log.info(
            "serve.stop",
            f"daemon down: {state}, {remaining} unit(s) left for the next "
            f"boot, exit {code}",
        )
        return {
            "state": state, "remaining": remaining,
            "unexpected_failures": unexpected, "exit_code": code,
        }

    # -- admission ---------------------------------------------------------
    def _outstanding_of(self, tenant: str) -> int:
        return sum(
            1 for u in self._units.values()
            if tenant in u.tenants and u.state in ("queued", "leased")
        )

    def _inflight_of(self, tenant: str) -> int:
        return sum(
            1 for lease in self.leases.active()
            if self._units[lease.digest].owner == tenant
        )

    def _reject(
        self, tenant: str, reason: str, count: int, detail: str = ""
    ) -> SubmitOutcome:
        self.wal.record_reject(tenant, reason, count)
        self._rejects[tenant] = self._rejects.get(tenant, 0) + 1
        metrics.counter(f"serve.rejects.{reason}").inc()
        verdict = AdmissionVerdict(False, reason, detail)
        log.warn(
            "serve.reject",
            f"rejected {count} unit(s) from tenant {tenant!r}: "
            f"{reason}{' (' + detail + ')' if detail else ''}",
        )
        return SubmitOutcome(
            error=reason, detail=detail, status=verdict.status, tenant=tenant,
        )

    def submit(self, tenant: str, unit_dicts: list) -> SubmitOutcome:
        """Admit (or reject, atomically) one submission of unit dicts.

        Digesting happens before the state lock is taken — it compiles
        kernels and must not stall dispatch.
        """
        tenant = str(tenant or "default")
        if not unit_dicts:
            return SubmitOutcome(error="empty submission", status=400)
        try:
            units = [
                make_unit(
                    d["benchmark"], d["api"], d["device"],
                    d.get("size", "default"),
                    dict(d["options"]) if d.get("options") else None,
                )
                for d in unit_dicts
            ]
            digests = [unit_digest(u) for u in units]
        except Exception as e:
            return SubmitOutcome(
                error="bad unit", detail=f"{type(e).__name__}: {e}", status=400
            )
        # ordered dedup within the submission itself
        uniq: dict = {}
        for u, dg in zip(units, digests):
            uniq.setdefault(dg, u)
        with self._work:
            if self._draining.is_set() or self._stop.is_set():
                return self._reject(tenant, REJECT_DRAINING, len(uniq))
            open_devs = self.breakers.open_devices(
                {u.device for u in uniq.values()}
            )
            if open_devs:
                return self._reject(
                    tenant, REJECT_BREAKER, len(uniq),
                    f"circuit open for {', '.join(open_devs)}",
                )
            new_outstanding = new_queued = 0
            for dg, u in uniq.items():
                entry = self._units.get(dg)
                if entry is not None and entry.state in ("done", "failed"):
                    continue
                if entry is None and dg in self.cache:
                    continue  # will be served from cache at admission
                if entry is None:
                    new_queued += 1
                if entry is None or tenant not in entry.tenants:
                    new_outstanding += 1
            verdict = self.quota.admit(
                self._outstanding_of(tenant), new_outstanding
            )
            if not verdict.ok:
                return self._reject(
                    tenant, verdict.reason, len(uniq), verdict.detail
                )
            queued_now = sum(
                1 for u in self._units.values() if u.state == "queued"
            )
            if queued_now + new_queued > self.queue_bound:
                return self._reject(
                    tenant, REJECT_BACKPRESSURE, len(uniq),
                    f"{queued_now} queued + {new_queued} new > "
                    f"bound {self.queue_bound}",
                )
            # admitted: journal first, then mutate queue state
            ticket = "t-" + os.urandom(6).hex()
            tk = TicketEntry(
                ticket=ticket, tenant=tenant, digests=list(uniq),
                submitted_unix=time.time(),
            )
            self._tickets[ticket] = tk
            deduped = cached = 0
            for dg, u in uniq.items():
                unit_dict = {
                    "benchmark": u.benchmark, "api": u.api, "device": u.device,
                    "size": u.size, "options": [list(kv) for kv in u.options],
                }
                self.wal.record_submit(ticket, tenant, dg, u.label(), unit_dict)
                entry = self._units.get(dg)
                if entry is not None:
                    deduped += 1
                    entry.tenants.add(tenant)
                    entry.tickets.add(ticket)
                    continue
                entry = self._units[dg] = UnitEntry(
                    digest=dg, label=u.label(), unit=unit_dict, owner=tenant,
                    tenants={tenant}, tickets={ticket},
                )
                if dg in self.cache:
                    entry.state = "done"
                    entry.source = "cache"
                    self.wal.record_done(dg, None, "cache")
                    cached += 1
                    metrics.counter("serve.done.cache").inc()
                else:
                    entry.state = "queued"
                    self._pending.append(dg)
            metrics.counter("serve.submits").inc()
            metrics.counter("serve.units.submitted").inc(len(uniq))
            self._work.notify_all()
        log.info(
            "serve.submit",
            f"ticket {ticket}: {len(uniq)} unit(s) from tenant {tenant!r} "
            f"({cached} cache-served, {deduped} deduped)",
        )
        return SubmitOutcome(
            ticket=ticket, tenant=tenant, units=len(uniq),
            deduped=deduped, cached=cached, status=200,
        )

    # -- dispatch ----------------------------------------------------------
    def _next_dispatchable(self) -> Optional[str]:
        """Pop the first queued digest whose owner has an in-flight slot."""
        now = time.monotonic()
        for _ in range(len(self._pending)):
            d = self._pending.popleft()
            entry = self._units.get(d)
            if entry is None or entry.state != "queued":
                continue  # stale pointer (completed via cache, failed, ...)
            if self._not_before.get(d, 0.0) > now:
                self._pending.append(d)
                continue
            if self._inflight_of(entry.owner) >= self.quota.max_inflight:
                self._pending.append(d)  # tenant at in-flight cap: rotate
                continue
            return d
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._work:
                d = None
                while not self._stop.is_set():
                    d = self._next_dispatchable()
                    if d is not None:
                        break
                    self._work.wait(_POLL_S)
                if d is None:
                    return  # stopping
                entry = self._units[d]
                payload = self.cache.get(d)
                if payload is not None:
                    # dedup against work finished since this was queued
                    entry.state = "done"
                    entry.source = "cache"
                    self.wal.record_done(d, None, "cache")
                    metrics.counter("serve.done.cache").inc()
                    self._work.notify_all()
                    continue
                entry.attempts += 1
                entry.state = "leased"
                lease = self.leases.acquire(d, entry.attempts)
                self.wal.record_lease(d, lease.token, entry.attempts)
                metrics.counter("serve.leases").inc()
            self._run_lease(d, entry, lease)

    def _run_lease(self, d: str, entry: UnitEntry, lease) -> None:
        """Drive one worker process to a terminal outcome (lock not held)."""
        ctx = multiprocessing.get_context()
        p = ctx.Process(
            target=worker_main,
            args=(
                entry.unit, self.cache_dir, d, lease.token, entry.attempts,
                self.timeout, self.faults,
            ),
        )
        try:
            p.start()
        except OSError as e:
            self._finish_crash(d, entry, lease, f"worker spawn failed: {e!r}")
            return
        lease.pid = p.pid
        with self._lock:
            self._procs[d] = p
        # backstop only: the worker enforces --timeout itself (SIGALRM);
        # this catches a worker wedged beyond even that
        hard_deadline = (
            time.monotonic() + self.timeout + 10.0
            if self.timeout else None
        )
        fenced = timed_out = False
        while True:
            p.join(_POLL_S)
            if p.exitcode is not None:
                break
            with self._lock:
                renewed = self.leases.renew(d, lease.token)
            if not renewed:
                fenced = True  # the reaper reclaimed us; stop the holder
                break
            if hard_deadline is not None and time.monotonic() > hard_deadline:
                timed_out = True
                break
        if fenced or timed_out:
            try:
                p.kill()
            except (OSError, AttributeError):
                pass
            p.join(5.0)
        with self._lock:
            self._procs.pop(d, None)
        if fenced:
            return  # the reaper already requeued + journaled
        if timed_out:
            self._finish_fail(
                d, entry, lease, FailureKind.TIMEOUT.value, injected=False,
            )
            return
        code = p.exitcode
        if code == EXIT_OK:
            if self.cache.get(d) is not None:
                self.complete(d, lease.token, source="run")
            else:
                self._finish_fail(
                    d, entry, lease, FailureKind.ERROR.value, injected=False,
                )
        elif code == EXIT_TRANSIENT:
            self._finish_transient(d, entry, lease)
        elif code == EXIT_FAILED:
            err = read_errfile(self.cache_dir, lease.token) or {}
            self._finish_fail(
                d, entry, lease,
                err.get("kind", FailureKind.ERROR.value),
                injected=bool(err.get("injected")),
            )
        else:
            # death by signal: the lease protocol's home turf
            self._finish_crash(
                d, entry, lease, f"worker died (exitcode {code})"
            )

    # -- outcomes ----------------------------------------------------------
    def complete(self, d: str, token: Optional[int], source: str = "run") -> bool:
        """Apply a completion under ``token``; False when it is fenced.

        The fencing check and the state transition are one atomic step:
        a completion under a reclaimed (or reassigned) token journals a
        ``fenced`` record and changes nothing — the result bytes the
        stale holder wrote to the content-addressed cache are identical
        to the current holder's, so nothing needs undoing.
        """
        with self._work:
            if token is not None and not self.leases.release(d, token):
                self.wal.record_fenced(d, token)
                metrics.counter("serve.fenced").inc()
                log.warn(
                    "serve.fenced",
                    f"rejected late completion of {d[:8]} under stale "
                    f"token {token}",
                )
                return False
            entry = self._units.get(d)
            if entry is None or entry.state == "done":
                return False
            entry.state = "done"
            entry.source = source
            self.wal.record_done(d, token, source)
            metrics.counter(f"serve.done.{source}").inc()
            self._record_breaker(entry, success=True)
            self._work.notify_all()
        return True

    def _finish_transient(self, d: str, entry: UnitEntry, lease) -> None:
        with self._work:
            if not self.leases.release(d, lease.token):
                self.wal.record_fenced(d, lease.token)
                metrics.counter("serve.fenced").inc()
                return
            if entry.attempts <= self.retries:
                entry.state = "queued"
                self.wal.record_requeue(d, lease.token, "transient")
                # jittered exponential backoff, seeded from the digest:
                # concurrent tenants retrying the same transient spread
                # out instead of thundering-herding the dispatchers
                self._not_before[d] = time.monotonic() + retry_delay(
                    self.backoff, entry.attempts, d
                )
                self._pending.append(d)
                metrics.counter("serve.retries").inc()
            else:
                entry.state = "failed"
                entry.kind = FailureKind.TRANSIENT.value
                self.wal.record_fail(
                    d, lease.token, entry.kind, False, entry.attempts
                )
                metrics.counter("serve.failed").inc()
                self._record_breaker(entry, success=False)
            self._work.notify_all()

    def _finish_crash(self, d: str, entry: UnitEntry, lease, reason: str) -> None:
        # the worker died — but its result may already be durable
        # (e.g. a postkill chaos rule): durable means done, not lost
        if self.cache.get(d) is not None:
            self.complete(d, lease.token, source="run")
            return
        with self._work:
            if not self.leases.release(d, lease.token):
                self.wal.record_fenced(d, lease.token)
                metrics.counter("serve.fenced").inc()
                return
            if entry.attempts <= self.retries:
                entry.state = "queued"
                self.wal.record_requeue(d, lease.token, reason)
                self._not_before[d] = time.monotonic() + retry_delay(
                    self.backoff, entry.attempts, d
                )
                self._pending.append(d)
                metrics.counter("serve.reclaims").inc()
                log.warn(
                    "serve.reclaim",
                    f"lease {lease.token} on {entry.label} reclaimed "
                    f"({reason}); re-dispatching",
                )
            else:
                entry.state = "failed"
                entry.kind = FailureKind.CRASH.value
                injected = (
                    self.faults is not None
                    and self.faults.planned(entry.label, "kill") is not None
                )
                entry.injected = injected
                self.wal.record_fail(
                    d, lease.token, entry.kind, injected, entry.attempts
                )
                metrics.counter("serve.failed").inc()
                self._record_breaker(entry, success=False)
            self._work.notify_all()

    def _finish_fail(
        self, d: str, entry: UnitEntry, lease, kind: str, injected: bool
    ) -> None:
        with self._work:
            if not self.leases.release(d, lease.token):
                self.wal.record_fenced(d, lease.token)
                metrics.counter("serve.fenced").inc()
                return
            entry.state = "failed"
            entry.kind = kind
            entry.injected = injected
            self.wal.record_fail(d, lease.token, kind, injected, entry.attempts)
            metrics.counter("serve.failed").inc()
            if injected:
                metrics.counter("serve.failed.injected").inc()
            self._record_breaker(entry, success=False)
            log.warn(
                "serve.failed",
                f"unit {entry.label} failed terminally ({kind}"
                f"{', injected' if injected else ''})",
            )
            self._work.notify_all()

    def _record_breaker(self, entry: UnitEntry, success: bool) -> None:
        device = entry.unit.get("device", "")
        if not device:
            return
        breaker = self.breakers.get(device)
        before = breaker.state
        if success:
            breaker.record_success()
        else:
            breaker.record_failure()
        if breaker.state != before:
            self.wal.record_breaker(device, breaker.state)
            metrics.counter(f"serve.breaker.{breaker.state}").inc()
            log.warn(
                "serve.breaker",
                f"circuit for device {device!r}: {before} -> {breaker.state}",
            )

    # -- housekeeping ------------------------------------------------------
    def _housekeeping_loop(self) -> None:
        while not self._stop.wait(self.hb_interval):
            try:
                self.reap_expired()
                self._heartbeat()
            except Exception:
                if self._stop.is_set():
                    return  # shutdown race; liveness must not kill the daemon

    def reap_expired(self) -> int:
        """Reclaim every lease whose holder stopped renewing (3x rule)."""
        with self._work:
            dead = self.leases.reclaim_expired()
            for lease in dead:
                entry = self._units.get(lease.digest)
                self.wal.record_requeue(
                    lease.digest, lease.token, "lease-expired"
                )
                metrics.counter("serve.reclaims").inc()
                if entry is not None and entry.state == "leased":
                    entry.state = "queued"
                    self._pending.append(lease.digest)
                log.warn(
                    "serve.reclaim",
                    f"lease {lease.token} expired (no renewal within "
                    f"{self.lease_ttl:g}s); token fenced, unit requeued",
                )
            if dead:
                self._work.notify_all()
            return len(dead)

    def _heartbeat(self) -> None:
        with self._lock:
            counts = self._counts_locked()
        self.wal.record_heartbeat(self.hb_interval, **counts)
        metrics.counter("serve.heartbeats").inc()
        try:
            metrics.write_snapshot_file(self.cache_dir, "serve")
        except OSError:
            pass  # a full disk must not kill the daemon it describes

    # -- introspection -----------------------------------------------------
    def _counts_locked(self) -> dict:
        counts = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
        for u in self._units.values():
            counts[u.state] = counts.get(u.state, 0) + 1
        return counts

    def status(self) -> dict:
        """The ``/status`` document: queue, tenants, leases, breakers."""
        with self._lock:
            counts = self._counts_locked()
            tenants: dict = {}
            for u in self._units.values():
                for t in u.tenants:
                    row = tenants.setdefault(
                        t, {"queued": 0, "leased": 0, "done": 0, "failed": 0,
                            "rejected": 0},
                    )
                    row[u.state] += 1
            for t, n in self._rejects.items():
                tenants.setdefault(
                    t, {"queued": 0, "leased": 0, "done": 0, "failed": 0,
                        "rejected": 0},
                )["rejected"] = n
            for t, row in tenants.items():
                row["outstanding"] = row["queued"] + row["leased"]
                row["inflight"] = self._inflight_of(t)
            now = time.monotonic()
            leases = [
                {
                    "digest": lease.digest[:12],
                    "label": self._units[lease.digest].label,
                    "token": lease.token,
                    "attempt": lease.attempt,
                    "pid": lease.pid,
                    "age_s": round(now - lease.acquired, 3),
                    "ttl_remaining_s": round(lease.deadline - now, 3),
                }
                for lease in sorted(
                    self.leases.active(), key=lambda l: l.token
                )
            ]
            complete_tickets = sum(
                1 for tk in self._tickets.values()
                if self._ticket_complete_locked(tk)
            )
            return {
                "pid": os.getpid(),
                "state": "draining" if self._draining.is_set() else "running",
                "epoch": self.epoch,
                "jobs": self.jobs,
                "started_unix": self.started_unix,
                "uptime_s": (
                    round(time.time() - self.started_unix, 3)
                    if self.started_unix else None
                ),
                "hb_interval_s": self.hb_interval,
                "lease_ttl_s": self.lease_ttl,
                "units": counts,
                "reclaimed_on_boot": self.reclaimed_on_boot,
                "tickets": {
                    "total": len(self._tickets),
                    "complete": complete_tickets,
                },
                "tenants": dict(sorted(tenants.items())),
                "quota": {
                    "max_outstanding": self.quota.max_outstanding,
                    "max_inflight": self.quota.max_inflight,
                    "queue_bound": self.queue_bound,
                },
                "leases": leases,
                "breakers": self.breakers.as_dict(),
                "wal": str(wal_path(self.cache_dir)),
            }

    def healthz(self) -> dict:
        with self._lock:
            counts = self._counts_locked()
        return {
            "ok": True,
            "pid": os.getpid(),
            "state": "draining" if self._draining.is_set() else "running",
            "epoch": self.epoch,
            "queued": counts["queued"],
            "leased": counts["leased"],
        }

    def _ticket_complete_locked(self, tk: TicketEntry) -> bool:
        return all(
            self._units[d].state in ("done", "failed") for d in tk.digests
            if d in self._units
        )

    def ticket_status(self, ticket: str) -> Optional[dict]:
        with self._lock:
            tk = self._tickets.get(ticket)
            if tk is None:
                return None
            rows = []
            counts = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
            for d in tk.digests:
                u = self._units.get(d)
                if u is None:
                    continue
                counts[u.state] += 1
                rows.append(
                    {
                        "label": u.label, "digest": d, "state": u.state,
                        "source": u.source, "kind": u.kind,
                        "injected": u.injected, "attempts": u.attempts,
                    }
                )
            return {
                "ticket": ticket,
                "tenant": tk.tenant,
                "submitted_unix": tk.submitted_unix,
                "complete": self._ticket_complete_locked(tk),
                "units": counts,
                "rows": rows,
            }

    def ticket_results_json(self, ticket: str) -> Optional[str]:
        """Canonical results document for a *complete* ticket.

        Byte-identical to a ``--results-json`` run of the same units
        through any sweep CLI: same payloads (content-addressed cache),
        same :func:`~repro.exec.cache.canonical_results_json` rendering.
        None while the ticket still has queued/leased units.
        """
        with self._lock:
            tk = self._tickets.get(ticket)
            if tk is None or not self._ticket_complete_locked(tk):
                return None
            done = [
                d for d in tk.digests
                if d in self._units and self._units[d].state == "done"
            ]
        results = []
        for d in done:
            payload = self.cache.get(d)
            if payload is None:
                raise RuntimeError(
                    f"result for {d[:8]} vanished from the cache "
                    "(gc raced a live ticket?)"
                )
            results.append(result_from_json(payload, cached=True))
        return canonical_results_json(results)

    def wait_ticket(self, ticket: str, timeout: float = 60.0) -> bool:
        """Block until a ticket is complete (True) or ``timeout`` passes."""
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._work:
            while True:
                tk = self._tickets.get(ticket)
                if tk is not None and self._ticket_complete_locked(tk):
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._work.wait(min(remaining, _POLL_S))
