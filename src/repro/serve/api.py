"""The daemon's local HTTP JSON API (stdlib only, loopback only).

A thin, threaded ``http.server`` front end over :class:`SweepDaemon`:
every handler parses JSON, calls one daemon method under its own lock,
and renders JSON back.  The server binds ``127.0.0.1`` (never a public
interface) on an ephemeral port by default, and advertises itself via
an atomic *endpoint file* (``<cache>/serve/endpoint.json``) that
doubles as the single-daemon-per-workdir lock: a live pid in the file
means a daemon already owns this workdir.

Routes:

``GET /healthz``
    cheap liveness: pid, state, queue depth — 200 while the daemon
    accepts connections at all.
``GET /status``
    the full :meth:`SweepDaemon.status` document (queue, tenants,
    leases, breakers) — what ``repro.obs serve`` renders.
``GET /ticket/<id>``
    per-ticket progress; 404 for unknown tickets.
``GET /ticket/<id>/results``
    the canonical ``--results-json`` bytes for a *complete* ticket;
    409 while units are still queued or leased.
``POST /submit``
    ``{"tenant": ..., "units": [{benchmark, api, device, size,
    options}, ...]}`` — 200 with a ticket, 400 for malformed units,
    429 for quota rejections, 503 for backpressure / open breaker /
    draining (the :class:`~repro.serve.admission.AdmissionVerdict`
    status mapping).
``POST /drain``
    stop admission; in-flight leases finish, queued work persists.
"""
from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from ..telemetry import log
from .wal import serve_dir

__all__ = [
    "ServeAPI",
    "endpoint_path",
    "read_endpoint",
    "write_endpoint",
    "clear_endpoint",
    "pid_alive",
]

#: max accepted request body (a submission of a few hundred units is
#: well under this; anything larger is a client bug, not a sweep)
_MAX_BODY = 4 << 20


def endpoint_path(cache_dir) -> Path:
    """The daemon's discovery file (and workdir lock) location."""
    return serve_dir(cache_dir) / "endpoint.json"


def pid_alive(pid: int) -> bool:
    try:
        os.kill(int(pid), 0)
    except (OSError, ValueError, TypeError):
        return False
    return True


def read_endpoint(cache_dir) -> Optional[dict]:
    """The advertised endpoint, or None when absent/unreadable."""
    try:
        with open(endpoint_path(cache_dir)) as f:
            ep = json.load(f)
    except (OSError, ValueError):
        return None
    return ep if isinstance(ep, dict) else None


def write_endpoint(cache_dir, host: str, port: int) -> Path:
    path = endpoint_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w") as f:
        json.dump(
            {"host": host, "port": port, "pid": os.getpid(),
             "unix": time.time()},
            f, sort_keys=True,
        )
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def clear_endpoint(cache_dir) -> None:
    """Remove the endpoint file iff this process owns it."""
    ep = read_endpoint(cache_dir)
    if ep is not None and ep.get("pid") != os.getpid():
        return
    try:
        os.unlink(endpoint_path(cache_dir))
    except OSError:
        pass


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    daemon = None  # type: ignore[assignment]  # bound by ServeAPI

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: A003 - BaseHTTPRequestHandler API
        pass  # the daemon journals what matters; stderr chatter helps no one

    def _send(self, status: int, doc) -> None:
        body = (
            doc if isinstance(doc, (bytes, bytearray))
            else json.dumps(doc, sort_keys=True).encode()
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _body(self) -> Optional[dict]:
        try:
            n = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return None
        if n <= 0 or n > _MAX_BODY:
            return None
        try:
            doc = json.loads(self.rfile.read(n))
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, self.daemon.healthz())
        elif path == "/status":
            self._send(200, self.daemon.status())
        elif path.startswith("/ticket/"):
            parts = path.split("/")  # ["", "ticket", <id>] or +["results"]
            ticket = parts[2] if len(parts) > 2 else ""
            if len(parts) == 4 and parts[3] == "results":
                self._ticket_results(ticket)
            elif len(parts) == 3:
                st = self.daemon.ticket_status(ticket)
                if st is None:
                    self._send(404, {"error": "unknown ticket", "ticket": ticket})
                else:
                    self._send(200, st)
            else:
                self._send(404, {"error": "not found", "path": self.path})
        else:
            self._send(404, {"error": "not found", "path": self.path})

    def _ticket_results(self, ticket: str) -> None:
        if self.daemon.ticket_status(ticket) is None:
            self._send(404, {"error": "unknown ticket", "ticket": ticket})
            return
        try:
            doc = self.daemon.ticket_results_json(ticket)
        except RuntimeError as e:
            self._send(500, {"error": str(e), "ticket": ticket})
            return
        if doc is None:
            self._send(
                409, {"error": "ticket not complete yet", "ticket": ticket}
            )
        else:
            # already-canonical bytes: do NOT re-encode (byte identity
            # with the sweep CLIs' --results-json is the contract)
            self._send(200, doc.encode())

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.rstrip("/")
        if path == "/submit":
            body = self._body()
            if body is None:
                self._send(400, {"error": "bad or missing JSON body"})
                return
            outcome = self.daemon.submit(
                body.get("tenant", "default"), body.get("units") or []
            )
            self._send(outcome.status, dict(outcome))
        elif path == "/drain":
            self.daemon.drain()
            self._send(200, {"ok": True, "state": "draining"})
        else:
            self._send(404, {"error": "not found", "path": self.path})


class ServeAPI:
    """The daemon's HTTP server: bind loopback, advertise, serve."""

    def __init__(self, daemon, host: str = "127.0.0.1", port: int = 0):
        handler = type("_BoundHandler", (_Handler,), {"daemon": daemon})
        self.sweep_daemon = daemon
        self.server = ThreadingHTTPServer((host, int(port)), handler)
        self.server.daemon_threads = True
        self.host, self.port = self.server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServeAPI":
        write_endpoint(self.sweep_daemon.cache_dir, self.host, self.port)
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        log.info(
            "serve.listen",
            f"API listening on http://{self.host}:{self.port} "
            f"(endpoint file: {endpoint_path(self.sweep_daemon.cache_dir)})",
        )
        return self

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        clear_endpoint(self.sweep_daemon.cache_dir)
