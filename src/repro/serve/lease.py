"""Lease-fenced dispatch: who may execute a unit, and for how long.

A **lease** is the daemon's grant of one work unit to one worker.  It
carries a **fencing token** — a monotonically increasing integer that
is never reused, not even across daemon restarts (the WAL replay
raises the floor past every token it has ever seen).  Completion is
only accepted under the token of the *current* lease; a worker whose
lease was reclaimed (because its heartbeat went stale, or because the
daemon restarted) can still finish and durably write its result to the
content-addressed cache — that write is idempotent and byte-identical —
but its late ``done`` report is *fenced*: rejected, journaled, and
harmless.  This is what makes "zero lost, zero duplicated" hold under
``kill -9`` of any participant.

Liveness uses the same rule :mod:`repro.obs` applies to sweep
journals: a lease whose holder has not renewed within
``STALE_BEATS`` (3) heartbeat intervals is presumed dead and reclaimed
(:data:`~repro.obs.registry.STALE_BEATS`).
"""
from __future__ import annotations

import dataclasses
import time
from typing import Optional

from ..obs.registry import STALE_BEATS

__all__ = ["Lease", "LeaseManager", "default_ttl"]


def default_ttl(heartbeat_interval: float) -> float:
    """Lease time-to-live: the obs liveness rule, 3x the beat period."""
    return STALE_BEATS * max(0.1, float(heartbeat_interval))


@dataclasses.dataclass
class Lease:
    """One live grant: (digest, fencing token, deadline)."""

    digest: str
    token: int
    attempt: int
    acquired: float
    deadline: float
    #: worker process pid, once known (diagnostics only — fencing never
    #: trusts pids, which the OS recycles)
    pid: Optional[int] = None

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.monotonic() if now is None else now) > self.deadline


class LeaseManager:
    """Issues, renews, releases, and reaps leases.  Not thread-safe by
    itself — the daemon serializes every call under its state lock."""

    def __init__(self, ttl: float, floor: int = 1):
        self.ttl = float(ttl)
        #: next token to issue; strictly greater than every token ever
        #: journaled (the WAL replay supplies the floor on restart)
        self._next = max(1, int(floor))
        self._by_digest: dict = {}  # digest -> Lease

    def __len__(self) -> int:
        return len(self._by_digest)

    def active(self) -> list:
        return list(self._by_digest.values())

    def holder(self, digest: str) -> Optional[Lease]:
        return self._by_digest.get(digest)

    def acquire(self, digest: str, attempt: int) -> Lease:
        """Grant a fresh lease on ``digest`` under a brand-new token."""
        if digest in self._by_digest:
            raise RuntimeError(f"digest {digest[:8]} is already leased")
        now = time.monotonic()
        lease = Lease(
            digest=digest, token=self._next, attempt=attempt,
            acquired=now, deadline=now + self.ttl,
        )
        self._next += 1
        self._by_digest[digest] = lease
        return lease

    def renew(self, digest: str, token: int) -> bool:
        """Push the deadline out one TTL; False if the token is stale."""
        lease = self._by_digest.get(digest)
        if lease is None or lease.token != token:
            return False
        lease.deadline = time.monotonic() + self.ttl
        return True

    def release(self, digest: str, token: Optional[int]) -> bool:
        """Drop the lease iff ``token`` is the current grant.

        Returns False — the *fencing* verdict — when the lease was
        already reclaimed or reassigned: the caller's completion is
        late and must not be applied.
        """
        lease = self._by_digest.get(digest)
        if lease is None or token is None or lease.token != token:
            return False
        del self._by_digest[digest]
        return True

    def reclaim_expired(self, now: Optional[float] = None) -> list:
        """Remove and return every lease past its deadline."""
        now = time.monotonic() if now is None else now
        dead = [l for l in self._by_digest.values() if l.expired(now)]
        for lease in dead:
            del self._by_digest[lease.digest]
        return dead
