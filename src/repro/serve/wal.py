"""The durable queue WAL: the daemon's single source of truth.

The sweep daemon journals every queue transition to one append-only,
fsynced JSONL file under the workdir (``<cache>/serve/queue.jsonl``),
in the same record style as the per-run sweep journal
(:mod:`repro.exec.journal`): one compact JSON object per line, flushed
and fsynced before the operation it describes is acknowledged.  A
``kill -9`` of the daemon therefore loses nothing — the WAL replays
into exactly the queue the daemon died with, and every lease that was
open at death is reclaimed (its fencing token is permanently invalid,
because tokens are monotonic across boots).

Record types (``"t"``):

``boot``
    one per daemon start: schema, boot epoch, pid, jobs.  Epochs are
    the coarse fencing level — any lease token issued before the
    latest boot is stale by construction.
``submit``
    one per (ticket, unit): tenant, ticket id, digest, label, and the
    full unit dict (so replay can re-dispatch without re-deriving
    anything).
``reject``
    an admission rejection (quota / backpressure / breaker / drain),
    with the tenant and reason — the audit trail for 429s.
``lease``
    unit handed to a worker under fencing ``token``.
``done`` / ``fail``
    terminal unit outcomes (``done`` only after the result is durably
    in the content-addressed cache — same ordering contract as the
    sweep journal).
``requeue``
    a lease reclaimed (holder died or its heartbeat went stale); the
    unit goes back to the queue, the old token is fenced.
``fenced``
    a *late* completion under a reclaimed token was rejected.
``breaker``
    a per-device circuit breaker changed state.
``hb``
    daemon liveness beat (pid, interval, progress counters) — the
    3x-interval staleness rule :mod:`repro.obs` applies to sweep
    journals applies here identically.
``drain`` / ``state``
    drain requested; terminal state of one daemon boot
    (``stopped`` clean, ``interrupted`` with work left).
"""
from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

from ..telemetry import metrics
from ..telemetry.metrics import FSYNC_BUCKETS_S

__all__ = [
    "QueueWAL",
    "QueueReplay",
    "UnitEntry",
    "TicketEntry",
    "serve_dir",
    "wal_path",
    "replay",
    "WAL_SCHEMA",
]

WAL_SCHEMA = 1

#: unit states the replay (and the live daemon) distinguish
UNIT_STATES = ("queued", "leased", "done", "failed")


def serve_dir(cache_dir) -> Path:
    """Where a sweep workdir keeps its daemon state."""
    return Path(cache_dir) / "serve"


def wal_path(cache_dir) -> Path:
    """The durable queue WAL for a sweep workdir (one per workdir)."""
    return serve_dir(cache_dir) / "queue.jsonl"


class QueueWAL:
    """Append-only, fsynced JSONL writer for the daemon queue."""

    def __init__(self, path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._f = open(self.path, "a")
        self.closed = False

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        if self.closed:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        t0 = time.perf_counter()
        with self._lock:
            self._f.write(line + "\n")
            self._f.flush()
            if self.fsync:
                try:
                    os.fsync(self._f.fileno())
                except OSError:
                    pass
        metrics.counter("serve.wal.appends").inc()
        metrics.histogram("serve.wal.append_s", FSYNC_BUCKETS_S).observe(
            time.perf_counter() - t0
        )

    # -- record helpers ----------------------------------------------------
    def record_boot(self, epoch: int, jobs: int) -> None:
        self.append(
            {"t": "boot", "schema": WAL_SCHEMA, "epoch": epoch,
             "pid": os.getpid(), "jobs": jobs, "unix": time.time()}
        )

    def record_submit(
        self, ticket: str, tenant: str, digest: str, label: str, unit: dict
    ) -> None:
        self.append(
            {"t": "submit", "ticket": ticket, "tenant": tenant, "d": digest,
             "label": label, "unit": unit, "unix": time.time()}
        )

    def record_reject(self, tenant: str, reason: str, count: int) -> None:
        self.append(
            {"t": "reject", "tenant": tenant, "reason": reason,
             "count": count, "unix": time.time()}
        )

    def record_lease(self, digest: str, token: int, attempt: int) -> None:
        self.append(
            {"t": "lease", "d": digest, "token": token, "attempt": attempt,
             "unix": time.time()}
        )

    def record_done(self, digest: str, token: Optional[int], source: str) -> None:
        self.append(
            {"t": "done", "d": digest, "token": token, "source": source,
             "unix": time.time()}
        )

    def record_fail(
        self, digest: str, token: Optional[int], kind: str,
        injected: bool, attempts: int,
    ) -> None:
        self.append(
            {"t": "fail", "d": digest, "token": token, "kind": kind,
             "injected": injected, "attempts": attempts, "unix": time.time()}
        )

    def record_requeue(self, digest: str, token: int, reason: str) -> None:
        self.append(
            {"t": "requeue", "d": digest, "token": token, "reason": reason,
             "unix": time.time()}
        )

    def record_fenced(self, digest: str, token: int) -> None:
        self.append({"t": "fenced", "d": digest, "token": token, "unix": time.time()})

    def record_breaker(self, device: str, state: str) -> None:
        self.append(
            {"t": "breaker", "device": device, "state": state, "unix": time.time()}
        )

    def record_heartbeat(self, interval: float, **progress) -> None:
        self.append(
            {"t": "hb", "pid": os.getpid(), "interval": float(interval),
             "unix": time.time(), **progress}
        )

    def record_drain(self) -> None:
        self.append({"t": "drain", "unix": time.time()})

    def record_state(self, state: str) -> None:
        self.append({"t": "state", "state": state, "unix": time.time()})

    def close(self) -> None:
        if self.closed:
            return
        with self._lock:
            self.closed = True
            self._f.close()

    def __enter__(self) -> "QueueWAL":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- replay ---------------------------------------------------------------
@dataclasses.dataclass
class UnitEntry:
    """One deduplicated work unit the queue knows about."""

    digest: str
    label: str
    unit: dict
    #: tenant that first submitted the unit — leases are charged here
    owner: str
    state: str = "queued"
    attempts: int = 0
    #: every tenant that submitted this unit (dedup fan-in)
    tenants: set = dataclasses.field(default_factory=set)
    #: every ticket that references this unit
    tickets: set = dataclasses.field(default_factory=set)
    #: how the terminal ``done`` was served: "run" | "cache"
    source: str = ""
    kind: str = ""
    injected: bool = False


@dataclasses.dataclass
class TicketEntry:
    """One submission: a tenant's ordered list of unit digests."""

    ticket: str
    tenant: str
    digests: list = dataclasses.field(default_factory=list)
    submitted_unix: float = 0.0


@dataclasses.dataclass
class QueueReplay:
    """What the WAL says the queue looked like at the last append."""

    path: Optional[Path] = None
    epoch: int = 0
    #: fencing floor: the next lease token must be strictly greater
    #: than every token the WAL has ever mentioned
    next_token: int = 1
    units: dict = dataclasses.field(default_factory=dict)  # digest -> UnitEntry
    tickets: dict = dataclasses.field(default_factory=dict)  # id -> TicketEntry
    #: leases open at the moment the WAL ends (digest -> token); on a
    #: daemon restart these are exactly the reclaim set
    open_leases: dict = dataclasses.field(default_factory=dict)
    #: terminal state of the *last* boot ("running" = killed outright)
    state: str = "running"
    torn_lines: int = 0
    records: int = 0
    last_heartbeat: Optional[dict] = None
    last_unix: Optional[float] = None

    def queued_digests(self) -> list:
        """Dispatchable digests, submission order (leased = reclaimable)."""
        return [
            d for d, u in self.units.items() if u.state in ("queued", "leased")
        ]

    def summary(self) -> dict:
        by_state: dict = {}
        for u in self.units.values():
            by_state[u.state] = by_state.get(u.state, 0) + 1
        return {
            "epoch": self.epoch,
            "state": self.state,
            "units": len(self.units),
            "tickets": len(self.tickets),
            "open_leases": len(self.open_leases),
            "by_state": dict(sorted(by_state.items())),
            "torn_lines": self.torn_lines,
        }


def replay(path) -> QueueReplay:
    """Replay one queue WAL; torn trailing lines are skipped, not fatal."""
    path = Path(path)
    rep = QueueReplay(path=path)
    try:
        raw = path.read_text()
    except OSError:
        return rep
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            rep.torn_lines += 1
            continue
        rep.records += 1
        u = rec.get("unix")
        if isinstance(u, (int, float)):
            rep.last_unix = u if rep.last_unix is None else max(rep.last_unix, u)
        _apply(rep, rec)
    return rep


def _apply(rep: QueueReplay, rec: dict) -> None:
    t = rec.get("t")
    if t == "boot":
        rep.epoch = max(rep.epoch, int(rec.get("epoch", 0)))
        rep.state = "running"  # a new boot supersedes the old terminal state
    elif t == "submit":
        d = rec["d"]
        entry = rep.units.get(d)
        if entry is None:
            entry = rep.units[d] = UnitEntry(
                digest=d, label=rec.get("label", ""),
                unit=rec.get("unit") or {}, owner=rec.get("tenant", ""),
            )
        entry.tenants.add(rec.get("tenant", ""))
        entry.tickets.add(rec["ticket"])
        tk = rep.tickets.get(rec["ticket"])
        if tk is None:
            tk = rep.tickets[rec["ticket"]] = TicketEntry(
                ticket=rec["ticket"], tenant=rec.get("tenant", ""),
                submitted_unix=rec.get("unix") or 0.0,
            )
        tk.digests.append(d)
    elif t == "lease":
        d, token = rec["d"], int(rec["token"])
        rep.next_token = max(rep.next_token, token + 1)
        entry = rep.units.get(d)
        if entry is not None:
            entry.state = "leased"
            entry.attempts = max(entry.attempts, int(rec.get("attempt", 1)))
        rep.open_leases[d] = token
    elif t == "done":
        d = rec["d"]
        entry = rep.units.get(d)
        if entry is not None:
            entry.state = "done"
            entry.source = rec.get("source", "run")
        rep.open_leases.pop(d, None)
    elif t == "fail":
        d = rec["d"]
        entry = rep.units.get(d)
        if entry is not None:
            entry.state = "failed"
            entry.kind = rec.get("kind", "ERROR")
            entry.injected = bool(rec.get("injected"))
            entry.attempts = max(entry.attempts, int(rec.get("attempts", 1)))
        rep.open_leases.pop(d, None)
    elif t == "requeue":
        d = rec["d"]
        entry = rep.units.get(d)
        if entry is not None and entry.state == "leased":
            entry.state = "queued"
        rep.open_leases.pop(d, None)
    elif t == "hb":
        rep.last_heartbeat = rec
    elif t == "state":
        rep.state = rec.get("state", rep.state)
    # "reject", "fenced" and "breaker" records are audit trail only:
    # they never change queue membership
