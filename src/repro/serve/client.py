"""A tiny stdlib client for the sweep daemon's local API.

Used by the ``repro.serve submit/status/drain`` subcommands, the
``repro.obs serve`` view, and the tests — anything that wants to talk
to a running daemon without hand-rolling ``http.client`` calls.
Discovery goes through the endpoint file the daemon writes
(``<cache>/serve/endpoint.json``); a dead pid there means the daemon
was killed, and the caller should fall back to WAL replay for a
post-mortem view.
"""
from __future__ import annotations

import http.client
import json
from typing import Optional

from .api import pid_alive, read_endpoint

__all__ = ["ServeClient", "ServeError", "discover"]


class ServeError(RuntimeError):
    """A non-2xx response from the daemon (carries status + body)."""

    def __init__(self, status: int, body):
        self.status = status
        self.body = body
        detail = body.get("detail") if isinstance(body, dict) else ""
        reason = body.get("error") if isinstance(body, dict) else body
        super().__init__(
            f"daemon said {status}: {reason}" + (f" ({detail})" if detail else "")
        )


class ServeClient:
    """One daemon endpoint; every method is a single HTTP round trip."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                doc = json.loads(raw) if raw else None
            except ValueError:
                doc = raw.decode(errors="replace")
            if resp.status >= 400:
                raise ServeError(resp.status, doc)
            return resp.status, doc, raw
        finally:
            conn.close()

    # -- API surface -------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def status(self) -> dict:
        return self._request("GET", "/status")[1]

    def submit(self, tenant: str, units: list) -> dict:
        return self._request(
            "POST", "/submit", {"tenant": tenant, "units": units}
        )[1]

    def drain(self) -> dict:
        return self._request("POST", "/drain")[1]

    def ticket(self, ticket: str) -> dict:
        return self._request("GET", f"/ticket/{ticket}")[1]

    def ticket_results(self, ticket: str) -> bytes:
        """The canonical results document, as the daemon's exact bytes."""
        return self._request("GET", f"/ticket/{ticket}/results")[2]

    def alive(self) -> bool:
        try:
            return bool(self.healthz().get("ok"))
        except (OSError, ServeError):
            return False


def discover(cache_dir) -> Optional[ServeClient]:
    """A client for the daemon advertising in ``cache_dir``, if live."""
    ep = read_endpoint(cache_dir)
    if ep is None or not pid_alive(ep.get("pid", -1)):
        return None
    client = ServeClient(ep.get("host", "127.0.0.1"), ep.get("port", 0))
    return client if client.alive() else None
