"""Sweep-as-a-service: a crash-safe daemon over the sweep engine.

``python -m repro.serve`` turns one sweep workdir into a long-running
service: submissions arrive over a local HTTP JSON API, are deduped by
content digest against the :class:`~repro.exec.cache.ResultCache`, and
dispatched through **leases with fencing tokens** journaled to a
durable queue WAL — so a ``kill -9`` of any worker *or of the daemon
itself* loses nothing and duplicates nothing.

The package splits along the same lines the guarantees do:

:mod:`repro.serve.wal`
    the durable queue (append-only fsynced JSONL + torn-tail-tolerant
    replay) — the single source of truth across crashes
:mod:`repro.serve.lease`
    fencing tokens, renewal, and the 3x-heartbeat staleness reclaim
:mod:`repro.serve.admission`
    per-tenant quotas (429), queue backpressure and per-device circuit
    breakers (503)
:mod:`repro.serve.worker`
    the one-process-per-lease worker speaking the 0/1/75 exit contract
:mod:`repro.serve.daemon`
    the queue/dispatch core tying the above together
:mod:`repro.serve.api` / :mod:`repro.serve.client`
    the loopback HTTP surface and its tiny stdlib client
"""
from __future__ import annotations

from .admission import (
    AdmissionVerdict,
    BreakerBoard,
    CircuitBreaker,
    TenantQuota,
)
from .api import ServeAPI, endpoint_path, read_endpoint
from .client import ServeClient, ServeError, discover
from .daemon import SweepDaemon
from .lease import Lease, LeaseManager, default_ttl
from .wal import QueueWAL, replay, serve_dir, wal_path
from .worker import worker_main

__all__ = [
    "SweepDaemon",
    "ServeAPI",
    "ServeClient",
    "ServeError",
    "discover",
    "TenantQuota",
    "AdmissionVerdict",
    "CircuitBreaker",
    "BreakerBoard",
    "Lease",
    "LeaseManager",
    "default_ttl",
    "QueueWAL",
    "replay",
    "serve_dir",
    "wal_path",
    "endpoint_path",
    "read_endpoint",
    "worker_main",
]
