"""Admission control: per-tenant quotas, backpressure, circuit breakers.

Every submission passes three gates *before* anything is journaled or
queued, and a rejection is atomic — either the whole submission is
admitted or none of it is:

1. **Per-tenant quotas** — each tenant may keep at most
   ``max_outstanding`` units queued-or-leased at once, and at most
   ``max_inflight`` leases running concurrently (the latter is enforced
   at dispatch: a unit whose owner is at its in-flight cap is skipped
   until a slot frees).  Over-quota submissions are rejected with a
   ``429``-style verdict naming the limit.
2. **Queue backpressure** — a global bound on queued units protects the
   daemon's memory and the WAL's growth; past it, *every* tenant gets
   ``503 backpressure`` until the queue drains.
3. **Circuit breakers** — one breaker per device backend.  A device
   whose units keep failing terminally (``threshold`` consecutive
   failures, successes reset the count) trips *open*: submissions
   targeting it are rejected for ``cooldown`` seconds, after which the
   breaker goes *half-open* and admits again; the next success on the
   device closes it, the next failure re-opens it.  This extends the
   engine's degraded-mode idea (demote instead of churn) to the
   admission surface: a crashing backend sheds load instead of eating
   the queue.
"""
from __future__ import annotations

import dataclasses
import time
from typing import Optional

__all__ = [
    "AdmissionVerdict",
    "TenantQuota",
    "CircuitBreaker",
    "BreakerBoard",
    "REJECT_QUOTA",
    "REJECT_BACKPRESSURE",
    "REJECT_BREAKER",
    "REJECT_DRAINING",
]

#: rejection reasons, mapped onto HTTP-ish status codes by the API layer
REJECT_QUOTA = "quota"  # 429
REJECT_BACKPRESSURE = "backpressure"  # 503
REJECT_BREAKER = "breaker_open"  # 503
REJECT_DRAINING = "draining"  # 503


@dataclasses.dataclass
class AdmissionVerdict:
    ok: bool
    reason: str = ""
    detail: str = ""

    @property
    def status(self) -> int:
        """The HTTP status code this verdict maps onto."""
        if self.ok:
            return 200
        return 429 if self.reason == REJECT_QUOTA else 503


@dataclasses.dataclass
class TenantQuota:
    """Per-tenant admission limits (one shared default, no favorites)."""

    #: max units queued-or-leased at once (admission-time gate)
    max_outstanding: int = 64
    #: max concurrent leases (dispatch-time gate)
    max_inflight: int = 4

    def admit(self, outstanding: int, new: int) -> AdmissionVerdict:
        if outstanding + new > self.max_outstanding:
            return AdmissionVerdict(
                False, REJECT_QUOTA,
                f"{outstanding} outstanding + {new} new > "
                f"max_outstanding {self.max_outstanding}",
            )
        return AdmissionVerdict(True)


class CircuitBreaker:
    """Three-state breaker for one device backend."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int = 3, cooldown: float = 30.0):
        self.threshold = max(1, int(threshold))
        self.cooldown = max(0.0, float(cooldown))
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def _maybe_half_open(self, now: float) -> None:
        if (
            self.state == self.OPEN
            and self.opened_at is not None
            and now - self.opened_at >= self.cooldown
        ):
            self.state = self.HALF_OPEN

    def allows(self, now: Optional[float] = None) -> bool:
        """May new work targeting this device be admitted right now?"""
        now = time.monotonic() if now is None else now
        self._maybe_half_open(now)
        return self.state != self.OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            self.opened_at = None

    def record_failure(self, now: Optional[float] = None) -> bool:
        """Count one terminal failure; returns True when this trips it."""
        now = time.monotonic() if now is None else now
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = self.OPEN
            self.opened_at = now
            self.trips += 1
            return True
        return False

    def as_dict(self, now: Optional[float] = None) -> dict:
        now = time.monotonic() if now is None else now
        self._maybe_half_open(now)
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "cooldown_remaining_s": (
                max(0.0, self.cooldown - (now - self.opened_at))
                if self.state == self.OPEN and self.opened_at is not None
                else 0.0
            ),
        }


class BreakerBoard:
    """The daemon's breakers, one per device name, created on demand."""

    def __init__(self, threshold: int = 3, cooldown: float = 30.0):
        self.threshold = threshold
        self.cooldown = cooldown
        self._breakers: dict = {}

    def get(self, device: str) -> CircuitBreaker:
        b = self._breakers.get(device)
        if b is None:
            b = self._breakers[device] = CircuitBreaker(
                self.threshold, self.cooldown
            )
        return b

    def open_devices(self, devices, now: Optional[float] = None) -> list:
        """The subset of ``devices`` whose breaker currently rejects."""
        return sorted(
            {d for d in devices if not self.get(d).allows(now)}
        )

    def as_dict(self) -> dict:
        return {d: b.as_dict() for d, b in sorted(self._breakers.items())}
