"""CLI: the sweep daemon and its control-plane subcommands.

    # run the daemon (foreground; SIGTERM drains gracefully)
    python -m repro.serve --cache-dir .repro-cache --jobs 4

    # from another shell: submit work, wait, fetch canonical results
    python -m repro.serve submit Sobel FFT --device GTX480 --api both \\
        --tenant alice --wait 120 --results-json out.json

    # inspect / drain
    python -m repro.serve status --json
    python -m repro.serve drain

The daemon owns one sweep workdir (``--cache-dir``): it binds a
loopback port, advertises it in ``<cache>/serve/endpoint.json``, and
journals every queue transition to ``<cache>/serve/queue.jsonl``.
``kill -9`` it mid-sweep and the next boot replays the WAL, reclaims
orphaned leases, and finishes the queue with zero lost or duplicated
units.  Exit codes follow the sweep lifecycle contract: 0 clean,
1 failed units, 75 (``EX_TEMPFAIL``) when queued work remains for the
next boot.
"""
from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time

from .. import exec as rexec
from ..arch.specs import ALL_DEVICES
from ..benchsuite.registry import REAL_WORLD, REGISTRY, SYNTHETIC
from .admission import TenantQuota
from .api import ServeAPI, pid_alive, read_endpoint
from .client import ServeError, discover
from .daemon import SweepDaemon
from .wal import replay, wal_path

_SUBCOMMANDS = ("submit", "status", "drain")


def _add_cache_dir(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep workdir (default: $REPRO_CACHE_DIR or .repro-cache)",
    )


def _cache_dir(args) -> str:
    return args.cache_dir or rexec.default_cache_dir()


# -- daemon ----------------------------------------------------------------
def _daemon_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the crash-safe sweep daemon for one workdir",
    )
    _add_cache_dir(ap)
    ap.add_argument("--jobs", type=int, default=4, metavar="N",
                    help="dispatcher threads / max concurrent leases (default 4)")
    ap.add_argument("--host", default="127.0.0.1",
                    help="bind address (loopback only; default 127.0.0.1)")
    ap.add_argument("--port", type=int, default=0, metavar="P",
                    help="bind port (default 0 = ephemeral, advertised "
                    "in the endpoint file)")
    ap.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="per-unit wall-clock budget")
    ap.add_argument("--retries", type=int, default=2, metavar="N",
                    help="re-dispatch budget for transient/crashed units "
                    "(default 2)")
    ap.add_argument("--backoff", type=float, default=0.05, metavar="SEC",
                    help="base of the jittered exponential retry backoff")
    ap.add_argument("--quota-outstanding", type=int, default=64, metavar="N",
                    help="per-tenant max queued-or-leased units (default 64)")
    ap.add_argument("--quota-inflight", type=int, default=None, metavar="N",
                    help="per-tenant max concurrent leases (default: --jobs)")
    ap.add_argument("--queue-bound", type=int, default=256, metavar="N",
                    help="global queued-unit bound before 503 backpressure")
    ap.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                    help="consecutive terminal failures that open a "
                    "device's circuit breaker")
    ap.add_argument("--breaker-cooldown", type=float, default=30.0,
                    metavar="SEC", help="seconds an open breaker rejects "
                    "before going half-open")
    ap.add_argument("--grace", type=float, default=30.0, metavar="SEC",
                    help="drain grace for in-flight leases on shutdown")
    ap.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault-injection plan (JSON or compact spec; "
                    "default: $REPRO_FAULTS)")
    return ap


def _run_daemon(argv) -> int:
    args = _daemon_parser().parse_args(argv)
    cache_dir = _cache_dir(args)
    ep = read_endpoint(cache_dir)
    if ep is not None and pid_alive(ep.get("pid", -1)):
        print(
            f"error: a daemon (pid {ep['pid']}) already owns {cache_dir} "
            f"(endpoint http://{ep.get('host')}:{ep.get('port')})",
            file=sys.stderr,
        )
        return 1
    daemon = SweepDaemon(
        cache_dir,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        quota=TenantQuota(
            max_outstanding=args.quota_outstanding,
            max_inflight=(
                args.quota_inflight if args.quota_inflight is not None
                else args.jobs
            ),
        ),
        queue_bound=args.queue_bound,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        faults=args.faults,
    )
    daemon.start()
    api = ServeAPI(daemon, host=args.host, port=args.port).start()
    print(
        f"repro.serve: epoch {daemon.epoch} on http://{api.host}:{api.port} "
        f"(workdir {cache_dir}); SIGTERM drains",
        flush=True,
    )
    stop_requested = threading.Event()

    def _on_signal(signum, frame):
        stop_requested.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _on_signal)
        except (ValueError, OSError):
            pass
    while not stop_requested.wait(0.2):
        pass
    print("repro.serve: draining...", flush=True)
    summary = daemon.stop(grace=args.grace)
    api.stop()
    print(
        f"repro.serve: {summary['state']} "
        f"({summary['remaining']} unit(s) left, "
        f"{summary['unexpected_failures']} unexpected failure(s))",
        flush=True,
    )
    return summary["exit_code"]


# -- submit ----------------------------------------------------------------
def _submit_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve submit",
        description="Submit benchmarks to a running sweep daemon",
    )
    ap.add_argument("names", nargs="*",
                    help=f"benchmarks: {', '.join(REGISTRY)}")
    ap.add_argument("--all", action="store_true", help="submit every benchmark")
    ap.add_argument("--device", default="GTX480", choices=sorted(ALL_DEVICES))
    ap.add_argument("--api", default="both",
                    choices=["cuda", "opencl", "both"])
    ap.add_argument("--size", default="default",
                    choices=["small", "default"])
    ap.add_argument("--tenant", default="default",
                    help="tenant name for quota accounting")
    _add_cache_dir(ap)
    ap.add_argument("--wait", type=float, default=None, metavar="SEC",
                    help="block until the ticket completes (or SEC passes)")
    ap.add_argument("--results-json", default=None, metavar="FILE",
                    help="write the ticket's canonical results document "
                    "(implies --wait; byte-identical to any sweep CLI's)")
    return ap


def _cmd_submit(argv) -> int:
    ap = _submit_parser()
    args = ap.parse_args(argv)
    names = (SYNTHETIC + REAL_WORLD) if args.all else args.names
    if not names:
        ap.error("give benchmark names or --all")
    spec = ALL_DEVICES[args.device]
    apis = ["cuda", "opencl"] if args.api == "both" else [args.api]
    if "cuda" in apis and not spec.supports_cuda():
        print(f"note: {spec.name} is not CUDA-capable; submitting OpenCL only")
        apis = ["opencl"]
    units = [
        {"benchmark": n, "api": a, "device": spec.name, "size": args.size}
        for n in names
        for a in apis
    ]
    cache_dir = _cache_dir(args)
    client = discover(cache_dir)
    if client is None:
        print(
            f"error: no live daemon for {cache_dir} "
            "(start one: python -m repro.serve)",
            file=sys.stderr,
        )
        return 1
    try:
        outcome = client.submit(args.tenant, units)
    except ServeError as e:
        print(f"error: {e}", file=sys.stderr)
        # a quota/backpressure rejection is retryable-later, not fatal:
        # the same EX_TEMPFAIL the sweep CLIs use for resumable exits
        return 75 if e.status in (429, 503) else 1
    ticket = outcome["ticket"]
    print(
        f"ticket {ticket}: {outcome['units']} unit(s) admitted "
        f"({outcome['cached']} cache-served, {outcome['deduped']} deduped)"
    )
    wait_s = args.wait if args.wait is not None else (
        600.0 if args.results_json else None
    )
    if wait_s is None:
        return 0
    deadline = time.monotonic() + wait_s
    while True:
        st = client.ticket(ticket)
        if st["complete"]:
            break
        if time.monotonic() > deadline:
            print(
                f"error: ticket {ticket} incomplete after {wait_s:g}s: "
                f"{st['units']}",
                file=sys.stderr,
            )
            return 75
        time.sleep(0.2)
    failed = st["units"].get("failed", 0)
    for row in st["rows"]:
        tag = row["state"] if row["state"] != "done" else (
            f"done({row['source']})"
        )
        extra = f" kind={row['kind']}" if row["kind"] else ""
        print(f"  {row['label']:40s} {tag}{extra}")
    if args.results_json:
        raw = client.ticket_results(ticket)
        with open(args.results_json, "wb") as f:
            f.write(raw)
        print(f"wrote {args.results_json} ({len(raw)} bytes)")
    return 1 if failed else 0


# -- status / drain --------------------------------------------------------
def _cmd_status(argv) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.serve status")
    _add_cache_dir(ap)
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="print the raw status document")
    args = ap.parse_args(argv)
    cache_dir = _cache_dir(args)
    client = discover(cache_dir)
    if client is not None:
        doc = client.status()
        live = True
    else:
        # dead daemon: the WAL is the post-mortem source of truth
        rep = replay(wal_path(cache_dir))
        doc = rep.summary()
        doc["wal"] = str(wal_path(cache_dir))
        live = False
    if args.as_json:
        print(json.dumps(doc, sort_keys=True, indent=2))
        return 0
    if live:
        u = doc["units"]
        print(
            f"daemon pid {doc['pid']} ({doc['state']}, epoch {doc['epoch']}, "
            f"up {doc['uptime_s']:g}s)"
        )
        print(
            f"  units: {u['queued']} queued, {u['leased']} leased, "
            f"{u['done']} done, {u['failed']} failed"
        )
        for t, row in doc["tenants"].items():
            print(
                f"  tenant {t}: {row['outstanding']} outstanding, "
                f"{row['inflight']} in-flight, {row['rejected']} rejected"
            )
        for lease in doc["leases"]:
            print(
                f"  lease #{lease['token']} {lease['label']} "
                f"(pid {lease['pid']}, {lease['age_s']:g}s old)"
            )
        for dev, b in doc["breakers"].items():
            if b["state"] != "closed":
                print(f"  breaker {dev}: {b['state']}")
    else:
        print(f"no live daemon; WAL says: {json.dumps(doc, sort_keys=True)}")
    return 0


def _cmd_drain(argv) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.serve drain")
    _add_cache_dir(ap)
    args = ap.parse_args(argv)
    client = discover(_cache_dir(args))
    if client is None:
        print("error: no live daemon", file=sys.stderr)
        return 1
    client.drain()
    print("drain requested")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        cmd, rest = argv[0], argv[1:]
        if cmd == "submit":
            return _cmd_submit(rest)
        if cmd == "status":
            return _cmd_status(rest)
        return _cmd_drain(rest)
    return _run_daemon(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
