"""Lowering: kernel IR -> virtual-ISA instructions, style-directed.

One engine serves both front ends; every behavioural difference is a
:class:`~repro.compiler.style.CodegenStyle` knob.  See ``style.py`` for
why the knobs are set the way they are.
"""
from __future__ import annotations

import itertools
from typing import Optional, Union

from ..kir.expr import (
    BinOp,
    BufferRef,
    Const,
    Expr,
    Load,
    Select,
    SpecialReg,
    UnOp,
    Var,
)
from ..kir.stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Store,
    While,
)
from ..kir.types import AddrSpace, Scalar, is_float, is_integer, sizeof
from ..ptx.instructions import Imm, Instr, Reg, RegAllocator
from ..ptx.isa import Op
from ..ptx.module import PTXKernel, PTXParam, ResourceUsage
from .style import CodegenStyle

__all__ = ["lower_kernel"]

_CMP_OPS = {"lt", "le", "gt", "ge", "eq", "ne"}

_BIN_TO_OP = {
    "add": Op.ADD,
    "sub": Op.SUB,
    "mul": Op.MUL,
    "div": Op.DIV,
    "rem": Op.REM,
    "min": Op.MIN,
    "max": Op.MAX,
    "and": Op.AND,
    "or": Op.OR,
    "xor": Op.XOR,
    "shl": Op.SHL,
    "shr": Op.SHR,
}

_UN_TO_OP = {
    "neg": Op.NEG,
    "not": Op.NOT,
    "abs": Op.ABS,
    "sqrt": Op.SQRT,
    "rsqrt": Op.RSQRT,
    "sin": Op.SIN,
    "cos": Op.COS,
    "floor": Op.FLOOR,
}

_LOG2E = 1.4426950408889634
_LN2 = 0.6931471805599453


def _is_pow2(v) -> bool:
    try:
        iv = int(v)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return False
    return iv > 0 and (iv & (iv - 1)) == 0


def _mentions_var(key, name: str) -> bool:
    if isinstance(key, tuple):
        if len(key) == 2 and key[0] == "var" and key[1] == name:
            return True
        return any(_mentions_var(k, name) for k in key)
    return False


def _key_vars(key) -> frozenset:
    """All variable names mentioned anywhere in an expression key.

    One traversal instead of one :func:`_mentions_var` walk per
    (key, name) query — the CSE memo caches this per key.
    """
    out: set = set()
    stack = [key]
    while stack:
        k = stack.pop()
        if isinstance(k, tuple):
            if len(k) == 2 and k[0] == "var" and isinstance(k[1], str):
                out.add(k[1])
            else:
                stack.extend(k)
    return frozenset(out)


def _assigned_names(body) -> set[str]:
    """Variable names mutated anywhere under ``body`` (incl. loop vars)."""
    from ..kir.visit import walk_stmts

    names: set[str] = set()
    for s in walk_stmts(body):
        if isinstance(s, (Let, Assign)):
            names.add(s.var.name)
        elif isinstance(s, For):
            names.add(s.var.name)
    return names


def _is_pure(e: Expr) -> bool:
    if isinstance(e, Load):
        return False
    if isinstance(e, BinOp):
        return _is_pure(e.a) and _is_pure(e.b)
    if isinstance(e, UnOp):
        return _is_pure(e.a)
    if isinstance(e, Select):
        return _is_pure(e.pred) and _is_pure(e.a) and _is_pure(e.b)
    return True


class Lowerer:
    def __init__(self, kernel: Kernel, style: CodegenStyle):
        self.kernel = kernel
        self.style = style
        self.ra = RegAllocator()
        self.instrs: list[Instr] = []
        self.env: dict[str, Reg] = {}
        self.sreg_cache: dict[str, Reg] = {}
        self.param_cache: dict[str, Reg] = {}
        self.memo: dict = {}
        #: key -> frozenset of mentioned variable names (pure function
        #: of the key, so entries never go stale)
        self._memo_kv: dict = {}
        self.cur_pred: Optional[tuple] = None
        self._labels = itertools.count()
        # shared-memory layout
        self.shared_offsets: dict[str, int] = {}
        off = 0
        for b in kernel.shared:
            size = sizeof(b.elem)
            off = (off + size - 1) // size * size
            self.shared_offsets[b.name] = off
            off += (b.length or 0) * size
        self.shared_bytes = off

    # ------------------------------------------------------------------
    def emit(self, instr: Instr) -> Instr:
        if self.cur_pred is not None and instr.pred is None:
            instr.pred = self.cur_pred
        self.instrs.append(instr)
        return instr

    def new_label(self, prefix: str) -> str:
        return f"{prefix}_{next(self._labels)}"

    def label(self, name: str) -> None:
        self.instrs.append(Instr(Op.LABEL, label=name))

    # -- leaf reads -----------------------------------------------------
    def sreg(self, name: str) -> Reg:
        r = self.sreg_cache.get(name)
        if r is None:
            r = self.ra.new(Scalar.U32)
            self.emit(Instr(Op.MOV, Scalar.U32, dst=r, sreg=name))
            self.sreg_cache[name] = r
        return r

    def param_reg(self, name: str, dtype: Scalar) -> Reg:
        r = self.param_cache.get(name)
        if r is None:
            r = self.ra.new(dtype)
            self.emit(
                Instr(Op.LD, dtype, dst=r, space=AddrSpace.PARAM, param=name)
            )
            self.param_cache[name] = r
        return r

    # -- expression lowering ---------------------------------------------
    def eval(self, e: Expr, into: Optional[Reg] = None) -> Union[Reg, Imm]:
        """Lower ``e``; return the operand holding its value.

        When ``into`` is given, the value must end up in that register
        (used by the SSA-direct style to compute straight into a
        variable's home register).
        """
        val = self._eval(e, into)
        if into is not None and val is not into:
            self.emit(Instr(Op.MOV, into.dtype, dst=into, srcs=(val,)))
            return into
        return val

    def _memo_get(self, e: Expr):
        if not self.style.cse or not _is_pure(e):
            return None
        return self.memo.get(e.key())

    def _memo_put(self, e: Expr, reg: Reg) -> None:
        if self.style.cse and self.cur_pred is None and _is_pure(e):
            key = e.key()
            self.memo[key] = reg
            self._kv(key)

    def _kv(self, key) -> frozenset:
        vs = self._memo_kv.get(key)
        if vs is None:
            vs = self._memo_kv[key] = _key_vars(key)
        return vs

    def invalidate_var(self, name: str) -> None:
        if self.memo:
            self.memo = {
                k: v for k, v in self.memo.items() if name not in self._kv(k)
            }

    def _eval(self, e: Expr, into: Optional[Reg]) -> Union[Reg, Imm]:
        if isinstance(e, Const):
            return Imm(e.value, e.ctype)
        if isinstance(e, Var):
            return self.env[e.name]
        if isinstance(e, SpecialReg):
            return self.sreg(e.reg.value)

        hit = self._memo_get(e)
        if hit is not None:
            return hit

        if isinstance(e, BinOp):
            out = self._eval_binop(e, into)
        elif isinstance(e, UnOp):
            out = self._eval_unop(e, into)
        elif isinstance(e, Select):
            p = self.as_operand(e.pred)
            a = self.as_operand(e.a)
            b = self.as_operand(e.b)
            out = into or self.ra.new(e.dtype)
            self.emit(Instr(Op.SELP, e.dtype, dst=out, srcs=(a, b, p)))
        elif isinstance(e, Load):
            out = self._eval_load(e, into)
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"cannot lower {e!r}")

        if isinstance(out, Reg) and out is not into:
            self._memo_put(e, out)
        return out

    def as_operand(self, e: Expr) -> Union[Reg, Imm]:
        return self._eval(e, None)

    # mad/fma fusion candidates: add(mul(a,b), c) or add(c, mul(a,b))
    def _mad_parts(self, e: BinOp):
        if e.op != "add":
            return None
        if isinstance(e.a, BinOp) and e.a.op == "mul":
            return e.a.a, e.a.b, e.b
        if isinstance(e.b, BinOp) and e.b.op == "mul":
            return e.b.a, e.b.b, e.a
        return None

    def _eval_binop(self, e: BinOp, into: Optional[Reg]) -> Union[Reg, Imm]:
        dt = e.dtype
        if e.op in _CMP_OPS:
            a = self.as_operand(e.a)
            b = self.as_operand(e.b)
            out = into or self.ra.new(Scalar.PRED)
            self.emit(Instr(Op.SETP, e.a.dtype, dst=out, srcs=(a, b), cmp=e.op))
            return out
        if e.op in ("land", "lor"):
            a = self.as_operand(e.a)
            b = self.as_operand(e.b)
            out = into or self.ra.new(Scalar.PRED)
            op = Op.AND if e.op == "land" else Op.OR
            self.emit(Instr(op, Scalar.PRED, dst=out, srcs=(a, b)))
            return out

        # multiply-add fusion
        parts = self._mad_parts(e)
        if parts is not None:
            a, b, c = parts
            if is_integer(dt) and self.style.fuse_int_mad:
                out = into or self.ra.new(dt)
                self.emit(
                    Instr(
                        Op.MAD,
                        dt,
                        dst=out,
                        srcs=(
                            self.as_operand(a),
                            self.as_operand(b),
                            self.as_operand(c),
                        ),
                    )
                )
                return out
            if is_float(dt) and self.style.float_fuse:
                out = into or self.ra.new(dt)
                self.emit(
                    Instr(
                        Op.MAD if self.style.float_fuse == "mad" else Op.FMA,
                        dt,
                        dst=out,
                        srcs=(
                            self.as_operand(a),
                            self.as_operand(b),
                            self.as_operand(c),
                        ),
                    )
                )
                return out

        # float division by a constant -> multiply by the reciprocal
        # (NVOPENCC does this whenever CSE is on; CLC does not)
        if (
            self.style.cse
            and e.op == "div"
            and is_float(dt)
            and isinstance(e.b, Const)
            and float(e.b.value) != 0.0
        ):
            a = self.as_operand(e.a)
            out = into or self.ra.new(dt)
            self.emit(
                Instr(
                    Op.MUL,
                    dt,
                    dst=out,
                    srcs=(a, Imm(1.0 / float(e.b.value), dt)),
                )
            )
            return out

        # strength reduction of integer div/rem by powers of two
        if (
            self.style.strength_reduce
            and e.op in ("div", "rem")
            and is_integer(dt)
            and isinstance(e.b, Const)
            and _is_pow2(e.b.value)
        ):
            a = self.as_operand(e.a)
            out = into or self.ra.new(dt)
            if e.op == "div":
                sh = int(e.b.value).bit_length() - 1
                self.emit(
                    Instr(Op.SHR, dt, dst=out, srcs=(a, Imm(sh, Scalar.U32)))
                )
            else:
                self.emit(
                    Instr(
                        Op.AND,
                        dt,
                        dst=out,
                        srcs=(a, Imm(int(e.b.value) - 1, dt)),
                    )
                )
            return out

        a = self.as_operand(e.a)
        b = self.as_operand(e.b)
        out = into or self.ra.new(dt)
        self.emit(Instr(_BIN_TO_OP[e.op], dt, dst=out, srcs=(a, b)))
        return out

    def _eval_unop(self, e: UnOp, into: Optional[Reg]) -> Union[Reg, Imm]:
        a = self.as_operand(e.a)
        out = into or self.ra.new(e.dtype)
        if e.op == "exp":
            # exp(x) = ex2(x * log2 e) — two instructions, like nvcc
            t = self.ra.new(e.dtype)
            self.emit(
                Instr(Op.MUL, e.dtype, dst=t, srcs=(a, Imm(_LOG2E, e.dtype)))
            )
            self.emit(Instr(Op.EX2, e.dtype, dst=out, srcs=(t,)))
            return out
        if e.op == "log":
            t = self.ra.new(e.dtype)
            self.emit(Instr(Op.LG2, e.dtype, dst=t, srcs=(a,)))
            self.emit(
                Instr(Op.MUL, e.dtype, dst=out, srcs=(t, Imm(_LN2, e.dtype)))
            )
            return out
        if e.op in ("f2i", "i2f", "u2f", "f2u", "widen"):
            self.emit(Instr(Op.CVT, e.dtype, dst=out, srcs=(a,)))
            return out
        self.emit(Instr(_UN_TO_OP[e.op], e.dtype, dst=out, srcs=(a,)))
        return out

    # -- memory ---------------------------------------------------------
    def buffer_address(self, buf: BufferRef, index: Expr) -> Reg:
        """Byte address of ``buf[index]`` (style-directed arithmetic)."""
        memo_key = None
        if self.style.cse and _is_pure(index):
            memo_key = ("addr", buf.name, index.key())
            hit = self.memo.get(memo_key)
            if hit is not None:
                return hit
        size = sizeof(buf.elem)
        idx = self.as_operand(index)
        addr = self.ra.new(Scalar.U32)
        if buf.space is AddrSpace.SHARED:
            base: Union[Reg, Imm] = Imm(self.shared_offsets[buf.name], Scalar.U32)
        else:
            base = self.param_reg(buf.name, Scalar.U32)
        if self.style.addr_via_mad:
            self.emit(
                Instr(
                    Op.MAD,
                    Scalar.U32,
                    dst=addr,
                    srcs=(idx, Imm(size, Scalar.U32), base),
                )
            )
        else:
            sh = size.bit_length() - 1
            t = self.ra.new(Scalar.U32)
            self.emit(
                Instr(Op.SHL, Scalar.U32, dst=t, srcs=(idx, Imm(sh, Scalar.U32)))
            )
            self.emit(Instr(Op.ADD, Scalar.U32, dst=addr, srcs=(t, base)))
        if memo_key is not None and self.cur_pred is None:
            self.memo[memo_key] = addr
            self._kv(memo_key)
        return addr

    def _eval_load(self, e: Load, into: Optional[Reg]) -> Reg:
        out = into or self.ra.new(e.dtype)
        if e.via_texture:
            idx = self.as_operand(e.index)
            self.emit(
                Instr(
                    Op.TEX,
                    e.dtype,
                    dst=out,
                    srcs=(idx,),
                    space=AddrSpace.TEXTURE,
                    param=e.buf.name,
                )
            )
            return out
        addr = self.buffer_address(e.buf, e.index)
        self.emit(Instr(Op.LD, e.dtype, dst=out, srcs=(addr,), space=e.buf.space))
        return out

    # -- statements -------------------------------------------------------
    def define_var(self, var: Var) -> Reg:
        r = self.env.get(var.name)
        if r is None:
            r = self.ra.new(var.dtype)
            self.env[var.name] = r
        return r

    def assign_var(self, var: Var, value: Expr) -> None:
        home = self.define_var(var)
        if self.style.home_regs:
            tmp = self.as_operand(value)
            self.emit(Instr(Op.MOV, var.dtype, dst=home, srcs=(tmp,)))
        else:
            self.eval(value, into=home)
        self.invalidate_var(var.name)

    def invalidate_vars(self, names) -> None:
        if self.memo and names:
            self.memo = {
                k: v
                for k, v in self.memo.items()
                if not (self._kv(k) & names)
            }

    def lower_block(self, body) -> None:
        """Lower a nested region with CSE-memo isolation.

        On exit the memo reverts to the entry snapshot *minus* entries
        depending on variables the region mutates: entries created inside
        may have been computed under a partial mask (or inside a loop) and
        entries depending on mutated variables are stale after the region.
        """
        assigned = _assigned_names(body)
        snapshot = dict(self.memo)
        for s in body:
            self.lower_stmt(s)
        self.memo = {
            k: v
            for k, v in snapshot.items()
            if not (self._kv(k) & assigned)
        }

    def lower_stmt(self, s) -> None:
        if isinstance(s, (Let, Assign)):
            self.assign_var(s.var, s.value)
        elif isinstance(s, Store):
            val = self.as_operand(s.value)
            addr = self.buffer_address(s.buf, s.index)
            self.emit(
                Instr(Op.ST, s.buf.elem, srcs=(addr, val), space=s.buf.space)
            )
        elif isinstance(s, Barrier):
            assert self.cur_pred is None, "barrier under predication"
            self.emit(Instr(Op.BAR))
        elif isinstance(s, If):
            self.lower_if(s)
        elif isinstance(s, For):
            self.lower_for(s)
        elif isinstance(s, While):
            self.lower_while(s)
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"cannot lower {s!r}")

    # an if-body is predicable when it is a short run of simple statements
    def _predicable(self, body) -> bool:
        if not self.style.predicate_ifs:
            return False
        if len(body) > self.style.predicate_limit:
            return False
        return all(isinstance(x, (Let, Assign, Store)) for x in body)

    def lower_if(self, s: If) -> None:
        if not s.orelse and self._predicable(s.then) and self.cur_pred is None:
            p = self.as_operand(s.cond)
            self.cur_pred = (p, True)
            try:
                self.lower_block(s.then)
            finally:
                self.cur_pred = None
            return

        p = self.as_operand(s.cond)
        end = self.new_label("ENDIF")
        target = self.new_label("ELSE") if s.orelse else end
        self.emit(
            Instr(Op.BRA, pred=(p, False), target=target, reconv=end)
        )
        self.lower_block(s.then)
        if s.orelse:
            self.emit(Instr(Op.BRA, target=end))
            self.label(target)
            self.lower_block(s.orelse)
        self.label(end)

    def lower_for(self, s: For) -> None:
        var_reg = self.define_var(s.var)
        init = self.as_operand(s.start)
        self.emit(Instr(Op.MOV, s.var.dtype, dst=var_reg, srcs=(init,)))
        # everything the loop mutates must be recomputed inside it, so
        # pre-loop memo entries over those variables are unusable within
        self.invalidate_vars(_assigned_names(s.body) | {s.var.name})
        top = self.new_label("LOOP")
        end = self.new_label("LEND")
        self.label(top)
        stop = self.as_operand(s.stop)
        p = self.ra.new(Scalar.PRED)
        self.emit(Instr(Op.SETP, s.var.dtype, dst=p, srcs=(var_reg, stop), cmp="lt"))
        self.emit(Instr(Op.BRA, pred=(p, False), target=end, reconv=end))
        self.lower_block(s.body)
        step = self.as_operand(s.step)
        self.emit(Instr(Op.ADD, s.var.dtype, dst=var_reg, srcs=(var_reg, step)))
        self.invalidate_var(s.var.name)
        self.emit(Instr(Op.BRA, target=top))
        self.label(end)

    def lower_while(self, s: While) -> None:
        self.invalidate_vars(_assigned_names(s.body))
        top = self.new_label("WLOOP")
        end = self.new_label("WEND")
        self.label(top)
        p = self.as_operand(s.cond)
        self.emit(Instr(Op.BRA, pred=(p, False), target=end, reconv=end))
        self.lower_block(s.body)
        self.emit(Instr(Op.BRA, target=top))
        self.label(end)

    def _preload_bases_and_sregs(self) -> None:
        from ..kir.visit import stmt_exprs, walk_exprs, walk_stmts

        sregs: set[str] = set()
        bases: set[str] = set()
        for s in walk_stmts(self.kernel.body):
            tops = list(stmt_exprs(s))
            if isinstance(s, Store):
                bases.add(s.buf.name if s.buf.space is not AddrSpace.SHARED else "")
            for top in tops:
                for e in walk_exprs(top):
                    if isinstance(e, SpecialReg):
                        sregs.add(e.reg.value)
                    elif isinstance(e, Load):
                        if e.via_texture or e.buf.space is AddrSpace.SHARED:
                            continue
                        bases.add(e.buf.name)
        bases.discard("")
        for name in sorted(sregs):
            self.sreg(name)
        for name in sorted(bases):
            self.param_reg(name, Scalar.U32)

    # ------------------------------------------------------------------
    def run(self) -> PTXKernel:
        # Materialize every parameter and geometry register the kernel
        # touches at entry, under the full thread mask.  Lazy loads inside
        # divergent regions would cache values only valid for the lanes
        # active at first use.
        for p in self.kernel.scalars():
            self.env[p.name] = self.param_reg(p.name, p.dtype)
        self._preload_bases_and_sregs()
        self.lower_block(self.kernel.body)
        self.emit(Instr(Op.EXIT))

        params = []
        for p in self.kernel.params:
            if isinstance(p, ScalarParam):
                params.append(PTXParam(p.name, p.dtype, is_pointer=False))
            else:
                params.append(
                    PTXParam(p.name, p.elem, is_pointer=True, space=p.space)
                )
        out = PTXKernel(
            name=self.kernel.name,
            params=params,
            instrs=self.instrs,
            shared_decls={
                b.name: (b.elem, b.length, self.shared_offsets[b.name])
                for b in self.kernel.shared
            },
            producer=self.style.name,
            dialect=self.kernel.dialect,
        )
        out.resources = ResourceUsage(
            shared_bytes=self.shared_bytes,
            uses_texture=any(i.op is Op.TEX for i in self.instrs),
        )
        out.virtual_regs = out.max_reg_index() + 1
        return out


def lower_kernel(kernel: Kernel, style: CodegenStyle) -> PTXKernel:
    """Lower a (possibly pre-transformed) IR kernel to virtual ISA."""
    return Lowerer(kernel, style).run()
