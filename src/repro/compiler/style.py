"""Code-generation styles: where front-end "maturity" lives.

The paper explains the FFT gap by front-end compiler maturity, observed
as radically different PTX instruction mixes for identical source
(Table V).  We encode each front end's habits as a :class:`CodegenStyle`
consumed by the shared lowering engine:

* **NVOPENCC** (CUDA): aggressive auto-unrolling and branch-pruning
  constant folding, expression CSE, integer ``mad`` fusion for address
  math, predication of small ``if`` bodies, and a two-address, mov-rich
  emission discipline (every source variable has a *home* register that
  results are ``mov``-ed into — the reason CUDA PTX shows hundreds of
  ``mov``/``st.local``/``ld.local`` yet few arithmetic instructions).

* **CLC** (OpenCL): unrolls only where the programmer wrote a pragma,
  folds only literal-literal arithmetic (never prunes control flow),
  re-materializes every address expression (no CSE), lowers power-of-two
  division/modulo to ``shr``/``and`` masks, keeps conditionals as
  ``setp``/``selp``/``bra``, and fuses float multiply-add into ``fma``.
"""
from __future__ import annotations

import dataclasses

__all__ = ["CodegenStyle", "NVOPENCC_STYLE", "CLC_STYLE"]


@dataclasses.dataclass(frozen=True)
class CodegenStyle:
    name: str
    #: memoize pure subexpressions into registers (expression CSE)
    cse: bool
    #: give every source variable a home register and ``mov`` results in
    home_regs: bool
    #: fuse integer ``a*b+c`` (address math) into one ``mad``
    fuse_int_mad: bool
    #: opcode for float ``a*b+c`` fusion: "mad" (GT200-era nvopencc),
    #: "fma" (OpenCL C compiler), or None (no fusion)
    float_fuse: str | None
    #: compute buffer addresses with ``mad`` (else ``shl``+``add``)
    addr_via_mad: bool
    #: lower small if-bodies to predicated instructions instead of branches
    predicate_ifs: bool
    #: max predicable if-body size (real instructions)
    predicate_limit: int
    #: strength-reduce div/rem by power-of-two constants to shr/and
    strength_reduce: bool
    #: auto-unroll constant-trip loops up to this many iterations
    #: (0 disables; pragmas are always honored)
    auto_unroll_limit: int
    #: constant folding may prune If/Select with constant conditions
    fold_prunes_branches: bool


NVOPENCC_STYLE = CodegenStyle(
    name="nvopencc",
    cse=True,
    home_regs=True,
    fuse_int_mad=True,
    float_fuse="mad",  # GT200-era nvopencc emitted mad.f32, not fma
    addr_via_mad=True,
    predicate_ifs=True,
    predicate_limit=4,
    strength_reduce=True,
    auto_unroll_limit=64,
    fold_prunes_branches=True,
)

CLC_STYLE = CodegenStyle(
    name="clc",
    cse=False,
    home_regs=False,
    fuse_int_mad=False,
    float_fuse="fma",
    addr_via_mad=False,
    predicate_ifs=False,
    predicate_limit=0,
    strength_reduce=True,
    auto_unroll_limit=0,
    fold_prunes_branches=False,
)
