"""PTXAS — the back-end: register allocation, spilling, resource report.

This is step (6) of the paper's eight-step development flow (Fig. 9).
The allocator computes loop-aware live ranges over the linear stream,
measures peak pressure, and — when pressure exceeds the device's
per-thread register budget — spills the longest live ranges to thread-
local memory (``st.local``/``ld.local``).  Spill traffic is what makes
over-unrolled kernels slow (the paper's OpenCL-FDTD-at-point-a collapse,
Fig. 7) and the register count feeds the occupancy calculator.
"""
from __future__ import annotations

import dataclasses

from ..kir.types import AddrSpace, Scalar, sizeof
from ..ptx.instructions import Imm, Instr, Reg
from ..ptx.isa import Op
from ..ptx.module import PTXKernel

__all__ = ["assemble", "LiveRange", "DEGRADE_BUDGET_FLOOR"]

#: in the degraded-allocator mode the effective register budget shrinks
#: proportionally to how far the loop body exceeds the span threshold,
#: never below this fraction (calibrated against paper Fig. 7)
DEGRADE_BUDGET_FLOOR = 0.35


@dataclasses.dataclass
class LiveRange:
    reg: Reg
    start: int
    end: int

    def length(self) -> int:
        return self.end - self.start


def _live_ranges(kernel: PTXKernel, conservative_span: int) -> dict:
    """Loop-aware linear live ranges, keyed by register index.

    Precise rule (NVOPENCC-quality, and CLC on ordinary loops): only
    registers that genuinely cross the back edge — read in the body
    before being (re)defined there, or live-through — are extended
    across the body.

    Liveness itself is always precise; the *degraded* behaviour of the
    CLC allocator on huge loop bodies is modeled in :func:`assemble`
    (its effective register budget shrinks as a body outgrows
    ``conservative_span``), because 2010-era linear-scan allocators lose
    packing efficiency as a body's live-range count explodes.  That is
    what a 9x pragma-unroll does to FDTD's z-loop, and the mechanism
    behind the paper's OpenCL collapse in Fig. 7.
    """
    ranges: dict[int, LiveRange] = {}
    for pc, i in enumerate(kernel.instrs):
        for r in i.regs_read():
            lr = ranges.get(r.idx)
            if lr is None:
                ranges[r.idx] = LiveRange(r, pc, pc)
            else:
                lr.end = max(lr.end, pc)
        if i.dst is not None:
            lr = ranges.get(i.dst.idx)
            if lr is None:
                ranges[i.dst.idx] = LiveRange(i.dst, pc, pc)
            else:
                lr.start = min(lr.start, pc)
                lr.end = max(lr.end, pc)

    # extend across backward branches until stable (handles nested loops)
    labels = kernel.label_map()
    back_edges = [
        (labels[i.target], pc)
        for pc, i in enumerate(kernel.instrs)
        if i.op is Op.BRA and labels.get(i.target, pc + 1) <= pc
    ]

    # per-pc read/def index lists, gathered once (regs_read() allocates)
    reads_at = [tuple(r.idx for r in i.regs_read()) for i in kernel.instrs]
    def_at = [None if i.dst is None else i.dst.idx for i in kernel.instrs]
    span_cache: dict = {}

    def _carried_set(t: int, b: int) -> frozenset:
        """Registers whose first event in [t, b] is a read (not a def).

        One pass decides every register of the span at once; within an
        instruction the definition counts before the reads, so a
        self-redefinition (``r = f(r)``) is *not* loop-carried — the
        same order the per-register scan used.
        """
        hit = span_cache.get((t, b))
        if hit is not None:
            return hit
        decided: set = set()
        carried: set = set()
        for pc in range(t, b + 1):
            d = def_at[pc]
            if d is not None and d not in decided:
                decided.add(d)
            for ridx in reads_at[pc]:
                if ridx not in decided:
                    decided.add(ridx)
                    carried.add(ridx)
        out = frozenset(carried)
        span_cache[(t, b)] = out
        return out

    changed = True
    while changed:
        changed = False
        for t, b in back_edges:
            carried = _carried_set(t, b)
            for lr in ranges.values():
                if not (lr.start <= b and lr.end >= t):
                    continue  # does not intersect the loop span
                # extend only values that truly cross the back edge —
                # read in the body before any redefinition there, or
                # live-through (defined before, used after)
                live_through = lr.start < t and lr.end > b
                if not (live_through or lr.reg.idx in carried):
                    continue
                ns, ne = min(lr.start, t), max(lr.end, b)
                if (ns, ne) != (lr.start, lr.end):
                    lr.start, lr.end = ns, ne
                    changed = True
    return ranges


def _pressure(ranges: dict, n_points: int, skip: set) -> tuple:
    """(peak pressure, argmax point) over data registers not in ``skip``."""
    delta = [0] * (n_points + 2)
    for lr in ranges.values():
        if lr.reg.idx in skip or lr.reg.dtype is Scalar.PRED:
            continue
        w = 2 if lr.reg.dtype in (Scalar.F64, Scalar.S64, Scalar.U64) else 1
        delta[lr.start] += w
        delta[lr.end + 1] -= w
    peak = cur = 0
    at = 0
    for pc, d in enumerate(delta):
        cur += d
        if cur > peak:
            peak, at = cur, pc
    return peak, at


def assemble(
    kernel: PTXKernel,
    max_regs: int,
    verify_after: bool = True,
    conservative_span: int = 0,
) -> PTXKernel:
    """Allocate registers for ``kernel`` in place and fill its resources.

    ``max_regs`` is the device's per-thread register budget;
    ``conservative_span`` (CLC-quality allocator) shrinks the effective
    budget on loop bodies longer than that many instructions — see
    :func:`_live_ranges`.  Returns the same kernel object for chaining.
    """
    ranges = _live_ranges(kernel, conservative_span)
    if conservative_span:
        labels = kernel.label_map()
        spans = [
            pc - labels[i.target]
            for pc, i in enumerate(kernel.instrs)
            if i.op is Op.BRA and labels.get(i.target, pc + 1) <= pc
        ]
        worst = max(spans, default=0)
        if worst > conservative_span:
            scale = max(DEGRADE_BUDGET_FLOOR, conservative_span / worst)
            max_regs = max(12, int(max_regs * scale))
    n = len(kernel.instrs)
    spilled: set[int] = set()

    peak, at = _pressure(ranges, n, spilled)
    guard = 0
    while peak > max_regs:
        # spill the longest live range crossing the pressure peak
        candidates = [
            lr
            for lr in ranges.values()
            if lr.reg.idx not in spilled
            and lr.reg.dtype is not Scalar.PRED
            and lr.start <= at <= lr.end
            and lr.length() > 0
        ]
        if not candidates:
            break
        victim = max(candidates, key=LiveRange.length)
        spilled.add(victim.reg.idx)
        peak, at = _pressure(ranges, n, spilled)
        guard += 1
        if guard > 4096:  # pragma: no cover - safety net
            break

    slot_bytes = 0
    slots: dict[int, int] = {}
    if spilled:
        for idx in sorted(spilled):
            width = sizeof(ranges[idx].reg.dtype)
            slot_bytes = (slot_bytes + width - 1) // width * width
            slots[idx] = slot_bytes
            slot_bytes += width

        out: list[Instr] = []
        for i in kernel.instrs:
            # reload spilled sources
            for r in i.regs_read():
                if r.idx in slots:
                    out.append(
                        Instr(
                            Op.LD,
                            r.dtype,
                            dst=r,
                            srcs=(Imm(slots[r.idx], Scalar.U32),),
                            space=AddrSpace.LOCAL,
                            pred=i.pred,
                        )
                    )
            out.append(i)
            if i.dst is not None and i.dst.idx in slots:
                out.append(
                    Instr(
                        Op.ST,
                        i.dst.dtype,
                        srcs=(Imm(slots[i.dst.idx], Scalar.U32), i.dst),
                        space=AddrSpace.LOCAL,
                        pred=i.pred,
                    )
                )
        kernel.instrs = out

    kernel.resources.registers = int(min(peak, max_regs))
    kernel.resources.spill_bytes = slot_bytes
    if verify_after:
        from ..ptx.verify import verify

        verify(kernel)
    return kernel
