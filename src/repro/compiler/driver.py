"""Dialect-dispatching compile entry point."""
from __future__ import annotations

from ..kir.stmt import Kernel
from ..ptx.module import PTXKernel
from .clc import compile_opencl
from .nvopencc import compile_cuda

__all__ = ["compile_kernel"]


def compile_kernel(kernel: Kernel, max_regs: int = 124) -> PTXKernel:
    """Compile with the front end matching the kernel's dialect."""
    if kernel.dialect == "cuda":
        return compile_cuda(kernel, max_regs=max_regs)
    if kernel.dialect == "opencl":
        return compile_opencl(kernel, max_regs=max_regs)
    raise ValueError(f"unknown dialect {kernel.dialect!r}")
