"""Front-end compilers (NVOPENCC / CLC), shared lowering, and PTXAS."""
from .clc import compile_opencl
from .driver import compile_kernel
from .lower import lower_kernel
from .nvopencc import compile_cuda
from .ptxas import assemble
from .style import CLC_STYLE, CodegenStyle, NVOPENCC_STYLE

__all__ = [
    "compile_kernel",
    "compile_cuda",
    "compile_opencl",
    "lower_kernel",
    "assemble",
    "CodegenStyle",
    "NVOPENCC_STYLE",
    "CLC_STYLE",
]
