"""In-process compilation cache shared by the two front ends.

Sweeps compile the same few source kernels hundreds of times (every
device x experiment unit rebuilds its programs from scratch), and the
pipeline is pure: output depends only on the source kernel, the
dialect, and the register budget.  The cache keys on exactly those and
returns a *defensive copy* per hit — callers mutate the result
(``Program.build`` rewrites ``defines``, runtimes set ``producer``) and
digests are memoized onto kernel objects, so shared instances would
alias across programs.

The KIR ``Kernel`` tree is plain nested dataclasses, so a structural
serialization of it is a deterministic fingerprint of the source:
``pickle`` gives the same bytes for trees built the same way and runs
at C speed, where the dataclass ``repr`` walk dominated compile-hit
cost.  Instruction lists are copied shallowly: ``Instr`` objects are
never mutated after assembly.
"""
from __future__ import annotations

import dataclasses
import pickle

from ..kir.stmt import Kernel
from ..ptx.module import PTXKernel

__all__ = ["cached_compile", "cache_stats", "clear"]

_cache: dict = {}
_CAP = 512  # source kernels are small; this is plenty for any sweep
_hits = 0
_misses = 0


def _key(dialect: str, kernel: Kernel, max_regs: int) -> tuple:
    # ``defines`` is attached as a plain attribute, not a field, so the
    # structural dump of the kernel tree does not cover it
    return (
        dialect,
        max_regs,
        pickle.dumps((kernel, getattr(kernel, "defines", None)), protocol=4),
    )


def _clone(ptx: PTXKernel) -> PTXKernel:
    k = PTXKernel(
        name=ptx.name,
        params=list(ptx.params),
        instrs=list(ptx.instrs),
        resources=dataclasses.replace(ptx.resources),
        shared_decls=dict(ptx.shared_decls),
        producer=ptx.producer,
        dialect=ptx.dialect,
        virtual_regs=ptx.virtual_regs,
        defines=dict(ptx.defines),
    )
    # the content digest covers exactly the fields cloned above, so it
    # transfers — sweeps then pay one digest per unique compile
    d = ptx.__dict__.get("_content_digest")
    if d is not None:
        k.__dict__["_content_digest"] = d
    return k


def cached_compile(dialect: str, kernel: Kernel, max_regs: int, compile_fn):
    """Return a compiled copy of ``kernel``, compiling on first sight."""
    global _hits, _misses
    key = _key(dialect, kernel, max_regs)
    entry = _cache.get(key)
    if entry is not None:
        _hits += 1
        return _clone(entry)
    _misses += 1
    ptx = compile_fn()
    ptx.content_digest()  # memoize pre-clone so every copy inherits it
    if len(_cache) < _CAP:
        _cache[key] = _clone(ptx)
    return ptx


def cache_stats() -> dict:
    return {"hits": _hits, "misses": _misses, "entries": len(_cache)}


def clear() -> None:
    """Drop all entries (tests use this to force cold compiles)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
