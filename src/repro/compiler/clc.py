"""CLC — the OpenCL C front-end compiler (paper Fig. 9, step 5).

Pipeline: literal-only constant fold -> pragma-only unroll -> re-fold ->
style-directed lowering (no CSE, shift+add addressing, branchy control
flow, float-fma fusion) -> DCE -> ptxas with a reduced effective
register budget.

The reduced budget models the 2010-era OpenCL allocator's earlier
spilling (it pins address temporaries and does not coalesce copies);
this is the documented calibration behind the OpenCL FDTD collapse when
unrolling at point *a* (paper Fig. 7).
"""
from __future__ import annotations

from ..kir.stmt import Kernel
from ..ptx.module import PTXKernel
from .ccache import cached_compile
from .lower import lower_kernel
from .passes.constfold import fold_constants
from .passes.dce import eliminate_dead_code
from .passes.unroll import unroll_loops
from .ptxas import assemble
from .style import CLC_STYLE

__all__ = ["compile_opencl", "CLC_REG_BUDGET_FACTOR", "CLC_CONSERVATIVE_SPAN"]

#: fraction of the device register budget the CLC allocator can use
#: before spilling (calibrated against paper Fig. 7; see module docs).
CLC_REG_BUDGET_FACTOR = 0.75

#: loop-body length (instructions) beyond which the CLC allocator's
#: liveness degrades to whole-body ranges (see compiler/ptxas.py)
CLC_CONSERVATIVE_SPAN = 300


def compile_opencl(
    kernel: Kernel, max_regs: int = 124, force: bool = False
) -> PTXKernel:
    """Compile an OpenCL-dialect kernel to allocated virtual ISA."""
    if kernel.dialect != "opencl" and not force:
        raise ValueError(
            f"kernel {kernel.name!r} is {kernel.dialect}-dialect; "
            "use compile_cuda (or force=True)"
        )
    return cached_compile(
        "opencl", kernel, max_regs, lambda: _compile(kernel, max_regs)
    )


def _compile(kernel: Kernel, max_regs: int) -> PTXKernel:
    log: list[str] = []
    k = fold_constants(kernel, prune_branches=False, algebraic=False)
    k, report = unroll_loops(k, auto_limit=0, honor_pragmas=True)
    log += report.log_lines()
    k = fold_constants(k, prune_branches=False, algebraic=False)
    ptx = lower_kernel(k, CLC_STYLE)
    removed = eliminate_dead_code(ptx)
    if removed:
        log.append(f"dce removed {removed} instructions")
    effective = max(16, int(max_regs * CLC_REG_BUDGET_FACTOR))
    assemble(ptx, max_regs=effective, conservative_span=CLC_CONSERVATIVE_SPAN)
    ptx.producer = "clc"
    ptx.defines = dict(getattr(kernel, "defines", {}) or {})
    return ptx
