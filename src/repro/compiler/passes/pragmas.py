"""Edit unroll pragmas on a kernel — the knob behind Figs. 6 and 7.

The paper's FDTD experiment adds/removes ``#pragma unroll`` at two named
points ("a": the outer xy-plane loop, "b": the inner radius loop).  These
helpers rewrite a kernel's pragma set without touching anything else, so
experiments can build ``CUDA_a,b``, ``CUDA_b``, ``OpenCL_a,b`` ... variants
from one source kernel.
"""
from __future__ import annotations

import dataclasses
from typing import Optional

from ...kir.stmt import For, If, Kernel, Unroll, While

__all__ = ["set_unroll_point", "strip_unroll_point", "unroll_points"]


def _rewrite(body, point: str, pragma: Optional[Unroll]):
    out = []
    for s in body:
        if isinstance(s, For):
            u = s.unroll
            if u is not None and u.point == point:
                u = pragma
            elif u is None and pragma is not None and pragma.point == point:
                # adding a pragma requires the loop to be tagged; loops are
                # tagged by carrying an Unroll whose factor may be 0
                u = s.unroll
            out.append(
                For(s.var, s.start, s.stop, s.step, _rewrite(s.body, point, pragma), u)
            )
        elif isinstance(s, If):
            out.append(
                If(
                    s.cond,
                    _rewrite(s.then, point, pragma),
                    _rewrite(s.orelse, point, pragma),
                )
            )
        elif isinstance(s, While):
            out.append(While(s.cond, _rewrite(s.body, point, pragma)))
        else:
            out.append(s)
    return tuple(out)


def set_unroll_point(kernel: Kernel, point: str, factor: int) -> Kernel:
    """Return a copy with the pragma at ``point`` set to ``factor``."""
    return dataclasses.replace(
        kernel,
        body=list(_rewrite(kernel.body, point, Unroll(factor, point))),
        params=list(kernel.params),
        shared=list(kernel.shared),
    )


def strip_unroll_point(kernel: Kernel, point: str) -> Kernel:
    """Return a copy with the pragma at ``point`` removed."""
    return dataclasses.replace(
        kernel,
        body=list(_rewrite(kernel.body, point, None)),
        params=list(kernel.params),
        shared=list(kernel.shared),
    )


def unroll_points(kernel: Kernel) -> dict:
    """Map pragma point name -> factor for every annotated loop."""
    from ...kir.visit import walk_stmts

    return {
        s.unroll.point: s.unroll.factor
        for s in walk_stmts(kernel.body)
        if isinstance(s, For) and s.unroll is not None and s.unroll.point
    }
