"""Loop unrolling — ``#pragma unroll`` and front-end auto-unrolling.

NVOPENCC honors pragmas *and* automatically unrolls any constant-trip
loop up to its ``auto_unroll_limit``; CLC honors explicit pragmas only.
This asymmetry is the paper's §IV-B.2 (the FDTD pragma experiments of
Figs. 6–7) and feeds §IV-B.4 (FFT instruction-mix differences).

Unrolled copies are alpha-renamed so the result still validates, and the
loop variable is substituted with its per-copy value (a constant for full
unrolls, ``var + k*step`` for partial ones).  The expansion mechanics
live in :mod:`repro.kir.transform`, shared with the source-level rewrite
rules of :mod:`repro.kir.rewrite` so the two unroll paths cannot drift.
"""
from __future__ import annotations

import dataclasses

from ...kir.stmt import Barrier, For, If, Kernel, UNROLL_FULL, While
from ...kir.transform import const_trip as _const_trip
from ...kir.transform import expand_full, expand_partial

__all__ = ["unroll_loops", "UnrollReport"]

#: refuse to expand loops beyond this many copies (compile-time guard)
MAX_EXPANSION = 1024


@dataclasses.dataclass
class UnrollReport:
    unrolled: list = dataclasses.field(default_factory=list)
    skipped: list = dataclasses.field(default_factory=list)

    def log_lines(self) -> list:
        out = [f"unrolled loop over {v!r} ({n} copies)" for v, n in self.unrolled]
        out += [f"could not unroll loop over {v!r}: {why}" for v, why in self.skipped]
        return out


#: auto-unroll budget: statements after expansion (pragmas are exempt)
AUTO_UNROLL_BUDGET = 512


def _auto_unrollable(s: For, trip: int) -> bool:
    """Whether NVOPENCC would unroll this loop *without* a pragma.

    Real front ends do not auto-unroll loops containing barriers (the
    copies would multiply synchronization) and respect a code-growth
    budget; pragma-annotated loops bypass both checks.
    """
    from ...kir.visit import walk_stmts

    body_stmts = 0
    for st in walk_stmts(s.body):
        body_stmts += 1
        if isinstance(st, Barrier):
            return False
    return trip * max(body_stmts, 1) <= AUTO_UNROLL_BUDGET


def _expand_full(s: For, report: UnrollReport) -> list:
    out = expand_full(s)
    report.unrolled.append((s.var.name, _const_trip(s)))
    return out


def _expand_partial(s: For, factor: int, report: UnrollReport) -> list:
    out = expand_partial(s, factor)
    report.unrolled.append((s.var.name, factor))
    return out


def unroll_loops(
    kernel: Kernel, auto_limit: int = 0, honor_pragmas: bool = True
) -> tuple:
    """Return ``(new_kernel, UnrollReport)``.

    ``auto_limit``: full-unroll any *unannotated* constant-trip loop with
    at most this many iterations (NVOPENCC behaviour; 0 disables).
    """
    report = UnrollReport()

    def visit_body(body) -> list:
        out: list = []
        for s in body:
            if isinstance(s, If):
                out.append(
                    If(s.cond, tuple(visit_body(s.then)), tuple(visit_body(s.orelse)))
                )
            elif isinstance(s, While):
                out.append(While(s.cond, tuple(visit_body(s.body))))
            elif isinstance(s, For):
                s = For(
                    s.var, s.start, s.stop, s.step, tuple(visit_body(s.body)), s.unroll
                )
                trip = _const_trip(s)
                pragma = s.unroll if honor_pragmas else None
                if pragma is not None:
                    if trip is None:
                        report.skipped.append(
                            (s.var.name, "trip count not a compile-time constant")
                        )
                        out.append(s)
                    elif pragma.factor == UNROLL_FULL or pragma.factor >= trip:
                        if trip > MAX_EXPANSION:
                            report.skipped.append((s.var.name, "loop too large"))
                            out.append(s)
                        else:
                            out.extend(_expand_full(s, report))
                    elif pragma.factor > 1:
                        out.extend(_expand_partial(s, pragma.factor, report))
                    else:
                        out.append(s)
                elif (
                    auto_limit
                    and trip is not None
                    and 0 < trip <= auto_limit
                    and _auto_unrollable(s, trip)
                ):
                    out.extend(_expand_full(s, report))
                else:
                    out.append(s)
            else:
                out.append(s)
        return out

    new = dataclasses.replace(
        kernel,
        body=visit_body(kernel.body),
        params=list(kernel.params),
        shared=list(kernel.shared),
    )
    return new, report
