"""Loop unrolling — ``#pragma unroll`` and front-end auto-unrolling.

NVOPENCC honors pragmas *and* automatically unrolls any constant-trip
loop up to its ``auto_unroll_limit``; CLC honors explicit pragmas only.
This asymmetry is the paper's §IV-B.2 (the FDTD pragma experiments of
Figs. 6–7) and feeds §IV-B.4 (FFT instruction-mix differences).

Unrolled copies are alpha-renamed so the result still validates, and the
loop variable is substituted with its per-copy value (a constant for full
unrolls, ``var + k*step`` for partial ones).
"""
from __future__ import annotations

import dataclasses
from typing import Iterable

from ...kir.expr import BinOp, Const, Expr, Var
from ...kir.stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    Stmt,
    Store,
    UNROLL_FULL,
    While,
)
from ...kir.visit import map_expr

__all__ = ["unroll_loops", "UnrollReport"]

#: refuse to expand loops beyond this many copies (compile-time guard)
MAX_EXPANSION = 1024


@dataclasses.dataclass
class UnrollReport:
    unrolled: list = dataclasses.field(default_factory=list)
    skipped: list = dataclasses.field(default_factory=list)

    def log_lines(self) -> list:
        out = [f"unrolled loop over {v!r} ({n} copies)" for v, n in self.unrolled]
        out += [f"could not unroll loop over {v!r}: {why}" for v, why in self.skipped]
        return out


def _subst(e: Expr, mapping: dict) -> Expr:
    def repl(n: Expr) -> Expr:
        if isinstance(n, Var) and n.name in mapping:
            return mapping[n.name]
        return n

    return map_expr(e, repl)


def _declared_names(body: Iterable[Stmt]) -> set:
    """Names declared *within* a body (Lets and nested loop variables)."""
    from ...kir.visit import walk_stmts

    names = set()
    for s in walk_stmts(body):
        if isinstance(s, Let):
            names.add(s.var.name)
        elif isinstance(s, For):
            names.add(s.var.name)
    return names


def _rename_body(body, mapping: dict, suffix: str):
    """Copy a body substituting expressions and alpha-renaming decls.

    ``mapping`` is mutated sequentially at this nesting level (a ``Let``
    renames all *subsequent* uses of its name in this copy) and copied
    for nested blocks so branch-local renames do not leak out.
    """
    out = []
    for s in body:
        if isinstance(s, Let):
            nv = Var(f"{s.var.name}{suffix}", s.var.vtype)
            out.append(Let(nv, _subst(s.value, mapping)))
            mapping[s.var.name] = nv
        elif isinstance(s, Assign):
            tgt = mapping.get(s.var.name)
            if isinstance(tgt, Const):
                raise ValueError(
                    f"loop variable {s.var.name!r} is assigned inside an "
                    "unrolled loop body"
                )
            nv = tgt if isinstance(tgt, Var) else s.var
            out.append(Assign(nv, _subst(s.value, mapping)))
        elif isinstance(s, Store):
            out.append(Store(s.buf, _subst(s.index, mapping), _subst(s.value, mapping)))
        elif isinstance(s, Barrier):
            out.append(s)
        elif isinstance(s, If):
            out.append(
                If(
                    _subst(s.cond, mapping),
                    tuple(_rename_body(s.then, dict(mapping), suffix)),
                    tuple(_rename_body(s.orelse, dict(mapping), suffix)),
                )
            )
        elif isinstance(s, For):
            nv = Var(f"{s.var.name}{suffix}", s.var.vtype)
            inner = dict(mapping)
            inner[s.var.name] = nv
            out.append(
                For(
                    nv,
                    _subst(s.start, mapping),
                    _subst(s.stop, mapping),
                    _subst(s.step, mapping),
                    tuple(_rename_body(s.body, inner, suffix)),
                    s.unroll,
                )
            )
        elif isinstance(s, While):
            out.append(
                While(
                    _subst(s.cond, mapping),
                    tuple(_rename_body(s.body, dict(mapping), suffix)),
                )
            )
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown statement {s!r}")
    return out


#: auto-unroll budget: statements after expansion (pragmas are exempt)
AUTO_UNROLL_BUDGET = 512


def _auto_unrollable(s: For, trip: int) -> bool:
    """Whether NVOPENCC would unroll this loop *without* a pragma.

    Real front ends do not auto-unroll loops containing barriers (the
    copies would multiply synchronization) and respect a code-growth
    budget; pragma-annotated loops bypass both checks.
    """
    from ...kir.visit import walk_stmts

    body_stmts = 0
    for st in walk_stmts(s.body):
        body_stmts += 1
        if isinstance(st, Barrier):
            return False
    return trip * max(body_stmts, 1) <= AUTO_UNROLL_BUDGET


def _const_trip(s: For):
    if (
        isinstance(s.start, Const)
        and isinstance(s.stop, Const)
        and isinstance(s.step, Const)
        and int(s.step.value) > 0
    ):
        lo, hi, st = int(s.start.value), int(s.stop.value), int(s.step.value)
        if hi <= lo:
            return 0
        return (hi - lo + st - 1) // st
    return None


def _expand_full(s: For, report: UnrollReport) -> list:
    trip = _const_trip(s)
    lo, st = int(s.start.value), int(s.step.value)
    out = []
    for k in range(trip):
        mapping = {s.var.name: Const(lo + k * st, s.var.vtype)}
        out.extend(_rename_body(s.body, mapping, f"__u{s.var.name}{k}"))
    report.unrolled.append((s.var.name, trip))
    return out


def _expand_partial(s: For, factor: int, report: UnrollReport) -> list:
    """Unroll by ``factor``: main loop with ``factor`` copies + remainder."""
    trip = _const_trip(s)
    lo, hi, st = int(s.start.value), int(s.stop.value), int(s.step.value)
    main_trips = (trip // factor) * factor
    copies = []
    for k in range(factor):
        mapping = {
            s.var.name: BinOp("add", s.var, Const(k * st, s.var.vtype))
            if k
            else s.var
        }
        copies.extend(_rename_body(s.body, mapping, f"__p{s.var.name}{k}"))
    main = For(
        s.var,
        s.start,
        Const(lo + main_trips * st, s.var.vtype),
        Const(factor * st, s.var.vtype),
        tuple(copies),
        None,
    )
    out: list = [main]
    for k in range(main_trips, trip):
        mapping = {s.var.name: Const(lo + k * st, s.var.vtype)}
        out.extend(_rename_body(s.body, mapping, f"__r{s.var.name}{k}"))
    report.unrolled.append((s.var.name, factor))
    return out


def unroll_loops(
    kernel: Kernel, auto_limit: int = 0, honor_pragmas: bool = True
) -> tuple:
    """Return ``(new_kernel, UnrollReport)``.

    ``auto_limit``: full-unroll any *unannotated* constant-trip loop with
    at most this many iterations (NVOPENCC behaviour; 0 disables).
    """
    report = UnrollReport()

    def visit_body(body) -> list:
        out: list = []
        for s in body:
            if isinstance(s, If):
                out.append(
                    If(s.cond, tuple(visit_body(s.then)), tuple(visit_body(s.orelse)))
                )
            elif isinstance(s, While):
                out.append(While(s.cond, tuple(visit_body(s.body))))
            elif isinstance(s, For):
                s = For(
                    s.var, s.start, s.stop, s.step, tuple(visit_body(s.body)), s.unroll
                )
                trip = _const_trip(s)
                pragma = s.unroll if honor_pragmas else None
                if pragma is not None:
                    if trip is None:
                        report.skipped.append(
                            (s.var.name, "trip count not a compile-time constant")
                        )
                        out.append(s)
                    elif pragma.factor == UNROLL_FULL or pragma.factor >= trip:
                        if trip > MAX_EXPANSION:
                            report.skipped.append((s.var.name, "loop too large"))
                            out.append(s)
                        else:
                            out.extend(_expand_full(s, report))
                    elif pragma.factor > 1:
                        out.extend(_expand_partial(s, pragma.factor, report))
                    else:
                        out.append(s)
                elif (
                    auto_limit
                    and trip is not None
                    and 0 < trip <= auto_limit
                    and _auto_unrollable(s, trip)
                ):
                    out.extend(_expand_full(s, report))
                else:
                    out.append(s)
            else:
                out.append(s)
        return out

    new = dataclasses.replace(
        kernel,
        body=visit_body(kernel.body),
        params=list(kernel.params),
        shared=list(kernel.shared),
    )
    return new, report
