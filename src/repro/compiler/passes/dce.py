"""Dead-code elimination over the virtual ISA.

Removes instructions whose results are never read, iterating to a fixed
point.  Side-effecting instructions (stores, branches, barriers, exits)
are roots and never removed.  Loads are considered removable when their
destination is dead — both real front ends delete dead loads, and the
interpreter would otherwise charge memory traffic for them.
"""
from __future__ import annotations

from ...ptx.instructions import Instr, Reg
from ...ptx.isa import Op
from ...ptx.module import PTXKernel

__all__ = ["eliminate_dead_code"]

_SIDE_EFFECT = {Op.ST, Op.BRA, Op.BAR, Op.EXIT, Op.LABEL}


def eliminate_dead_code(kernel: PTXKernel) -> int:
    """Remove dead instructions in place; return how many were removed."""
    removed_total = 0
    while True:
        used: set[int] = set()
        for i in kernel.instrs:
            for r in i.regs_read():
                used.add(r.idx)
        keep: list[Instr] = []
        removed = 0
        for i in kernel.instrs:
            if (
                i.op not in _SIDE_EFFECT
                and i.dst is not None
                and i.dst.idx not in used
            ):
                removed += 1
                continue
            keep.append(i)
        kernel.instrs = keep
        removed_total += removed
        if removed == 0:
            return removed_total
