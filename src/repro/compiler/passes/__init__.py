"""Compiler passes: KIR-level (fold, unroll, pragmas) and PTX-level (dce)."""
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .pragmas import set_unroll_point, strip_unroll_point, unroll_points
from .unroll import UnrollReport, unroll_loops

__all__ = [
    "fold_constants",
    "eliminate_dead_code",
    "set_unroll_point",
    "strip_unroll_point",
    "unroll_points",
    "unroll_loops",
    "UnrollReport",
]
