"""Constant folding over the kernel IR.

Two strengths, matching the two front ends:

* ``prune_branches=True`` (NVOPENCC): folds literal arithmetic *and*
  eliminates ``If``/``Select``/``For`` whose conditions become constant —
  after full unrolling this is what erases the FFT twiddle conditionals
  from CUDA PTX (Table V shows only 2 ``setp``).
* ``prune_branches=False`` (CLC): folds literal-literal arithmetic only;
  control flow survives to PTX as dynamic ``setp``/``selp``/``bra``.
"""
from __future__ import annotations

import dataclasses
from typing import Iterable

from ...kir.eval import _eval
from ...kir.expr import BinOp, Const, Expr, Load, Select, UnOp, Var
from ...kir.stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    Stmt,
    Store,
    While,
)
from ...kir.types import Scalar, is_integer
from ...kir.visit import map_expr

__all__ = ["fold_constants"]


def _const_of(e: Expr):
    if isinstance(e, Const):
        return e.value
    return None


def _all_const(*exprs: Expr) -> bool:
    return all(isinstance(e, Const) for e in exprs)


def _fold_node(e: Expr, prune_branches: bool, algebraic: bool) -> Expr:
    """Fold one node whose children are already folded."""
    if isinstance(e, BinOp) and _all_const(e.a, e.b):
        try:
            v = _eval(e, {}, {})
        except (ZeroDivisionError, NotImplementedError):
            return e
        return Const(
            bool(v) if e.dtype is Scalar.PRED else v.item() if hasattr(v, "item") else v,
            e.dtype,
        )
    if isinstance(e, UnOp) and isinstance(e.a, Const):
        try:
            v = _eval(e, {}, {})
        except NotImplementedError:
            return e
        return Const(v.item() if hasattr(v, "item") else v, e.dtype)
    if prune_branches and isinstance(e, Select) and isinstance(e.pred, Const):
        return e.a if e.pred.value else e.b

    if algebraic and isinstance(e, BinOp):
        av, bv = _const_of(e.a), _const_of(e.b)
        if e.op == "add":
            if av == 0:
                return e.b
            if bv == 0:
                return e.a
        elif e.op == "sub" and bv == 0:
            return e.a
        elif e.op == "mul":
            if av == 1:
                return e.b
            if bv == 1:
                return e.a
            if (av == 0 or bv == 0) and is_integer(e.dtype):
                return Const(0, e.dtype)
        elif e.op == "div" and bv == 1:
            return e.a
        elif e.op in ("shl", "shr") and bv == 0:
            return e.a
    return e


def _fold_expr(e: Expr, prune: bool, algebraic: bool) -> Expr:
    return map_expr(e, lambda n: _fold_node(n, prune, algebraic))


def _assigned_in(body) -> set:
    from ...kir.visit import walk_stmts

    names = set()
    for s in walk_stmts(body):
        if isinstance(s, (Let, Assign)):
            names.add(s.var.name)
        elif isinstance(s, For):
            names.add(s.var.name)
    return names


def fold_constants(
    kernel: Kernel, prune_branches: bool = True, algebraic: bool = True
) -> Kernel:
    """Return a new kernel with constants folded (input left untouched).

    With ``prune_branches=True`` this additionally performs sparse
    constant *propagation* through ``Let``/``Assign`` chains — after the
    NVOPENCC unroller expands a stage loop, chained counter updates
    (``l = l*2``) become compile-time constants, which in turn folds the
    per-stage index arithmetic and conditionals.  This is the mechanism
    behind the lean CUDA column of Table V.
    """
    propagate = prune_branches

    def fe(e: Expr, env: dict) -> Expr:
        if propagate and env:

            def repl(n: Expr) -> Expr:
                if isinstance(n, Var) and n.name in env:
                    return env[n.name]
                return _fold_node(n, prune_branches, algebraic)

            from ...kir.visit import map_expr

            return map_expr(e, repl)
        return _fold_expr(e, prune_branches, algebraic)

    def fold_body(body: Iterable[Stmt], env: dict) -> list[Stmt]:
        out: list[Stmt] = []
        for s in body:
            if isinstance(s, (Let, Assign)):
                val = fe(s.value, env)
                if propagate:
                    if isinstance(val, Const):
                        env[s.var.name] = Const(val.value, s.var.dtype)
                    else:
                        env.pop(s.var.name, None)
                out.append(type(s)(s.var, val))
            elif isinstance(s, Store):
                out.append(Store(s.buf, fe(s.index, env), fe(s.value, env)))
            elif isinstance(s, Barrier):
                out.append(s)
            elif isinstance(s, If):
                cond = fe(s.cond, env)
                if prune_branches and isinstance(cond, Const):
                    out.extend(fold_body(s.then if cond.value else s.orelse, env))
                    continue
                killed = _assigned_in(s.then) | _assigned_in(s.orelse)
                then = fold_body(s.then, dict(env))
                orelse = fold_body(s.orelse, dict(env))
                for name in killed:
                    env.pop(name, None)
                out.append(If(cond, tuple(then), tuple(orelse)))
            elif isinstance(s, For):
                start = fe(s.start, env)  # evaluated once, before the loop
                killed_early = _assigned_in(s.body) | {s.var.name}
                for name in killed_early:
                    env.pop(name, None)
                # stop/step re-evaluate every iteration: fold them only
                # with loop-invariant knowledge
                stop, step = fe(s.stop, env), fe(s.step, env)
                if (
                    prune_branches
                    and _all_const(start, stop)
                    and start.value >= stop.value
                ):
                    continue  # provably zero-trip loop
                inner = fold_body(s.body, dict(env))
                out.append(For(s.var, start, stop, step, tuple(inner), s.unroll))
            elif isinstance(s, While):
                killed = _assigned_in(s.body)
                for name in killed:
                    env.pop(name, None)
                cond = fe(s.cond, env)
                if prune_branches and isinstance(cond, Const) and not cond.value:
                    continue
                out.append(While(cond, tuple(fold_body(s.body, dict(env)))))
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown statement {s!r}")
        return out

    return dataclasses.replace(
        kernel,
        body=fold_body(kernel.body, {}),
        params=list(kernel.params),
        shared=list(kernel.shared),
    )
