"""NVOPENCC — the CUDA front-end compiler (paper Fig. 9, step 5).

Pipeline: branch-pruning constant fold -> pragma + auto unroll ->
re-fold -> style-directed lowering (CSE, integer-mad addressing,
if-predication, mov-rich home registers) -> DCE -> ptxas.

The maturity of this pipeline relative to :mod:`repro.compiler.clc` is
the paper's explanation for the FFT gap (§IV-B.4, Table V).
"""
from __future__ import annotations

from ..kir.stmt import Kernel
from ..ptx.module import PTXKernel
from .ccache import cached_compile
from .lower import lower_kernel
from .passes.constfold import fold_constants
from .passes.dce import eliminate_dead_code
from .passes.unroll import unroll_loops
from .ptxas import assemble
from .style import NVOPENCC_STYLE

__all__ = ["compile_cuda"]


def compile_cuda(
    kernel: Kernel, max_regs: int = 124, force: bool = False
) -> PTXKernel:
    """Compile a CUDA-dialect kernel to allocated virtual ISA.

    ``max_regs`` is the target device's per-thread register budget
    (124 on GT200-class, 63 on Fermi).  ``force`` permits compiling an
    OpenCL-dialect kernel (used by cross-front-end experiments only).
    """
    if kernel.dialect != "cuda" and not force:
        raise ValueError(
            f"kernel {kernel.name!r} is {kernel.dialect}-dialect; "
            "use compile_opencl (or force=True)"
        )
    return cached_compile(
        "cuda", kernel, max_regs, lambda: _compile(kernel, max_regs)
    )


def _compile(kernel: Kernel, max_regs: int) -> PTXKernel:
    log: list[str] = []
    k = fold_constants(kernel, prune_branches=True, algebraic=True)
    k, report = unroll_loops(
        k, auto_limit=NVOPENCC_STYLE.auto_unroll_limit, honor_pragmas=True
    )
    log += report.log_lines()
    k = fold_constants(k, prune_branches=True, algebraic=True)
    ptx = lower_kernel(k, NVOPENCC_STYLE)
    removed = eliminate_dead_code(ptx)
    if removed:
        log.append(f"dce removed {removed} instructions")
    assemble(ptx, max_regs=max_regs)
    ptx.producer = "nvopencc"
    ptx.defines = dict(getattr(kernel, "defines", {}) or {})
    return ptx
