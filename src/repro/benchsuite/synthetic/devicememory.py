"""DeviceMemory — SHOC's global-memory bandwidth synthetic (Fig. 1).

The measured quantity is achieved peak bandwidth (AP_BW) from a
perfectly coalesced read stream at work-group size 256 — the paper notes
AP_BW depends on the work-group size and fixes it at 256, as we do.
A strided variant is included for the coalescing ablation benches.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["DeviceMemory"]

ITERS = 16


def _read_kernel(dialect, name: str, stride_mode: bool):
    k = KernelBuilder(name, dialect)
    g = k.buffer("g", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    nthreads = k.scalar("nthreads", Scalar.S32)
    gid = k.let("gid", k.global_id(0))
    s = k.let("s", 0.0, Scalar.F32)
    if stride_mode:
        # each thread walks a contiguous chunk: maximally *uncoalesced*
        j = k.let("j", gid * ITERS)
        with k.for_("it", 0, ITERS, unroll=k.unroll()) as _:
            k.assign(s, s + g[j])
            k.assign(j, j + 1)
    else:
        # warp-contiguous grid-stride walk: maximally coalesced
        j = k.let("j", gid)
        with k.for_("it", 0, ITERS, unroll=k.unroll()) as _:
            k.assign(s, s + g[j])
            k.assign(j, j + nthreads)
    k.store(out, gid, s)
    return k.finish()


class DeviceMemory(Benchmark):
    name = "DeviceMemory"
    metric = Metric("GB/sec")
    default_options = {"wg": 256, "pattern": "coalesced"}

    def kernels(self, dialect, options, defines, params):
        return [
            _read_kernel(dialect, "read_coalesced", stride_mode=False),
            _read_kernel(dialect, "read_strided", stride_mode=True),
        ]

    def sizes(self):
        return {
            "small": {"n_threads": 2048},
            "default": {"n_threads": 15360},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n_threads = params["n_threads"]
        wg = options["wg"]
        n = n_threads * ITERS
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 1, n).astype(np.float32)
        d_g = api.alloc(n)
        d_out = api.alloc(n_threads)
        api.write(d_g, data)
        kname = (
            "read_coalesced" if options["pattern"] == "coalesced" else "read_strided"
        )
        secs = api.launch(kname, n_threads, wg, g=d_g, out=d_out, nthreads=n_threads)
        got = api.read(d_out, n_threads)
        m = data.reshape(ITERS, n_threads)
        ref = (
            m.sum(axis=0, dtype=np.float32)
            if options["pattern"] == "coalesced"
            else data.reshape(n_threads, ITERS).sum(axis=1, dtype=np.float32)
        )
        ok = np.allclose(got, ref, rtol=1e-4)
        gbs = n * 4 / secs / 1e9
        return self.result(api, gbs, secs, ok, detail={"bytes": n * 4})
