"""MaxFlops — SHOC's peak floating-point synthetic benchmark (Fig. 2).

Two kernels, matching the paper's §IV-A.2:

* ``maxflops_madmul`` — a mul and a mad interleaved, so GT200's
  dual-issue pipeline (R=3) can co-issue them;
* ``maxflops_mad`` — mad-only, the right shape for Fermi (R=2).

The host picks the variant matching the device architecture, exactly as
SHOC's MaxFlops selects per-device kernels.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["MaxFlops"]

ITERS = 64  # unrolled chain iterations
PAIRS = 4  # (mad, mul) pairs per iteration


def _chain_kernel(dialect, name: str, mad_only: bool):
    k = KernelBuilder(name, dialect)
    inp = k.buffer("inp", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    gid = k.let("gid", k.global_id(0))
    x = k.let("x", inp[gid])
    y = k.let("y", x + 1.25)
    # both front ends unroll on an explicit pragma -> identical native code
    with k.for_("it", 0, ITERS, unroll=k.unroll()) as _:
        for _p in range(PAIRS):
            k.assign(x, x * 0.999 + 0.0001)  # mad/fma
            if mad_only:
                k.assign(y, y * 1.001 + 0.0002)  # mad/fma
            else:
                k.assign(y, y * 0.999)  # bare mul, dual-issue candidate
    k.store(out, gid, x + y)
    return k.finish()


def _reference(inp: np.ndarray, mad_only: bool) -> np.ndarray:
    x = inp.copy()
    y = (x + np.float32(1.25)).astype(np.float32)
    for _ in range(ITERS * PAIRS):
        x = (x * np.float32(0.999) + np.float32(0.0001)).astype(np.float32)
        if mad_only:
            y = (y * np.float32(1.001) + np.float32(0.0002)).astype(np.float32)
        else:
            y = (y * np.float32(0.999)).astype(np.float32)
    return (x + y).astype(np.float32)


class MaxFlops(Benchmark):
    name = "MaxFlops"
    metric = Metric("GFlops/sec")
    default_options = {"wg": 256}

    def kernels(self, dialect, options, defines, params):
        return [
            _chain_kernel(dialect, "maxflops_mad", mad_only=True),
            _chain_kernel(dialect, "maxflops_madmul", mad_only=False),
        ]

    def sizes(self):
        return {
            "small": {"n": 2048},
            "default": {"n": 15360},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        wg = options["wg"]
        # GT200 peaks via dual-issued mul+mad; everything else via mad-only
        mad_only = api.spec.timing.dual_issue_efficiency == 0
        kname = "maxflops_mad" if mad_only else "maxflops_madmul"
        g = np.random.default_rng(7)
        inp = g.uniform(0.5, 1.5, n).astype(np.float32)
        d_in = api.alloc(n)
        d_out = api.alloc(n)
        api.write(d_in, inp)
        secs = api.launch(kname, n, wg, inp=d_in, out=d_out)
        got = api.read(d_out, n)
        ok = np.allclose(got, _reference(inp, mad_only), rtol=1e-4, atol=1e-5)
        flops_per_thread = ITERS * PAIRS * (2 + (2 if mad_only else 1))
        gflops = n * flops_per_thread / secs / 1e9
        return self.result(
            api, gflops, secs, ok, detail={"kernel": kname, "threads": n}
        )
