"""Synthetic peak-performance benchmarks (paper §III-B.1)."""
from .devicememory import DeviceMemory
from .maxflops import MaxFlops

__all__ = ["MaxFlops", "DeviceMemory"]
