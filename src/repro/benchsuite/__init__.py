"""The 16-benchmark suite of Table II, plus infrastructure."""
from .base import Benchmark, BenchResult, CudaHost, HostAPI, Metric, OpenCLHost, host_for
from .registry import REAL_WORLD, REGISTRY, SYNTHETIC, TABLE2, get_benchmark

__all__ = [
    "Benchmark",
    "BenchResult",
    "HostAPI",
    "CudaHost",
    "OpenCLHost",
    "host_for",
    "REGISTRY",
    "TABLE2",
    "REAL_WORLD",
    "SYNTHETIC",
    "get_benchmark",
]
