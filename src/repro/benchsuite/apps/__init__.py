"""Real-world applications of Table II."""
