"""SPMV — sparse matrix-vector multiply, CSR scalar kernel (SHOC).

One thread per row; the gathered ``x`` vector is the irregular read-only
stream that the CUDA version binds to **texture memory** (SHOC does
exactly this) while the OpenCL version reads plain global memory — the
programming-model difference of §IV-B.1 and the subject of Figs. 4/5.
``options["use_texture"]`` toggles the CUDA binding for the Fig. 4
ablation.  An optional warp-per-row variant exists for the Table VI
CPU observation (warp-oriented optimization collapsing on Intel920).
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric
from ..data import banded_csr

__all__ = ["SPMV"]


def _scalar_kernel(dialect, use_texture: bool):
    k = KernelBuilder("spmv_csr", dialect, wg_hint=128)
    vals = k.buffer("vals", Scalar.F32)
    cols = k.buffer("cols", Scalar.S32)
    rowptr = k.buffer("rowptr", Scalar.S32)
    x = k.buffer("x", Scalar.F32)
    y = k.buffer("y", Scalar.F32)
    nrows = k.scalar("nrows", Scalar.S32)
    row = k.let("row", k.global_id(0), Scalar.S32)
    with k.if_(row < nrows):
        lo = k.let("lo", rowptr[row])
        hi = k.let("hi", rowptr[row + 1])
        acc = k.let("acc", 0.0, Scalar.F32)
        with k.for_("j", lo, hi) as j:
            col = k.let("colv", cols[j])
            xv = k.texload(x, col) if use_texture else x[col]
            k.assign(acc, acc + vals[j] * xv)
        k.store(y, row, acc)
    return k.finish()


def _warp_kernel(dialect, warp_size: int):
    """Warp-per-row variant (the §V CPU-collapse ablation).

    A warp cooperates on one row, reducing partials through shared
    memory — great on GPUs, pure overhead when a "warp" is 4 SSE lanes.
    """
    wg = 128
    k = KernelBuilder("spmv_csr_warp", dialect, wg_hint=wg)
    vals = k.buffer("vals", Scalar.F32)
    cols = k.buffer("cols", Scalar.S32)
    rowptr = k.buffer("rowptr", Scalar.S32)
    x = k.buffer("x", Scalar.F32)
    y = k.buffer("y", Scalar.F32)
    nrows = k.scalar("nrows", Scalar.S32)
    part = k.shared("part", Scalar.F32, wg)
    t = k.let("t", k.tid.x, Scalar.S32)
    lane = k.let("lane", t % warp_size)
    wid = k.let("wid", k.global_id(0) // warp_size, Scalar.S32)
    k.store(part, t, 0.0)
    with k.if_(wid < nrows):
        lo = k.let("lo", rowptr[wid])
        hi = k.let("hi", rowptr[wid + 1])
        acc = k.let("acc", 0.0, Scalar.F32)
        j = k.let("j", lo + lane)
        with k.while_(j < hi):
            k.assign(acc, acc + vals[j] * x[cols[j]])
            k.assign(j, j + warp_size)
        k.store(part, t, acc)
    k.barrier()
    # log2 tree over the warp's slice
    step = warp_size // 2
    while step >= 1:
        with k.if_((lane < step).logical_and(wid < nrows)):
            k.store(part, t, part[t] + part[t + step])
        k.barrier()
        step //= 2
    with k.if_(lane.eq(0).logical_and(wid < nrows)):
        k.store(y, wid, part[t])
    return k.finish()


class SPMV(Benchmark):
    name = "SPMV"
    metric = Metric("GFlops/sec")
    #: texture is a CUDA-only facility; SHOC's CUDA SPMV binds x to it
    default_options = {
        "use_texture": {"cuda": True, "opencl": False},
        "variant": "scalar",  # or "warp"
        "wg": 128,
    }

    def kernels(self, dialect, options, defines, params):
        if options["variant"] == "warp":
            return [_warp_kernel(dialect, defines.get("WARP_SIZE", 32))]
        use_tex = options["use_texture"] and dialect.allows_texture
        return [_scalar_kernel(dialect, use_tex)]

    def sizes(self):
        return {
            "small": {"nrows": 512, "band": 48, "nnz": 8},
            "default": {"nrows": 8192, "band": 384, "nnz": 12},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        nrows, band, nnz = params["nrows"], params["band"], params["nnz"]
        rowptr, cols, vals = banded_csr(nrows, band, nnz, seed=1)
        rng = np.random.default_rng(17)
        x = rng.uniform(-1, 1, nrows).astype(np.float32)
        d_vals = api.alloc(len(vals))
        d_cols = api.alloc(len(cols), Scalar.S32)
        d_rp = api.alloc(len(rowptr), Scalar.S32)
        d_x = api.alloc(nrows)
        d_y = api.alloc(nrows)
        for d, hbuf in (
            (d_vals, vals),
            (d_cols, cols),
            (d_rp, rowptr),
            (d_x, x),
        ):
            api.write(d, hbuf)
        wg = options["wg"]
        if options["variant"] == "warp":
            threads = nrows * api.spec.warp_width
            secs = api.launch(
                "spmv_csr_warp",
                threads,
                wg,
                vals=d_vals,
                cols=d_cols,
                rowptr=d_rp,
                x=d_x,
                y=d_y,
                nrows=nrows,
            )
        else:
            secs = api.launch(
                "spmv_csr",
                nrows,
                wg,
                vals=d_vals,
                cols=d_cols,
                rowptr=d_rp,
                x=d_x,
                y=d_y,
                nrows=nrows,
            )
        got = api.read(d_y, nrows)
        ref = np.zeros(nrows, dtype=np.float32)
        for r in range(nrows):
            sl = slice(rowptr[r], rowptr[r + 1])
            ref[r] = np.dot(vals[sl], x[cols[sl]])
        ok = np.allclose(got, ref, rtol=1e-3, atol=1e-4)
        gflops = 2 * len(vals) / secs / 1e9
        return self.result(
            api, gflops, secs, ok, detail={"nnz": len(vals), "variant": options["variant"]}
        )
