"""MxM — dense matrix multiplication (NVIDIA SDK, Table II).

The SDK's classic 16x16 shared-memory tiled SGEMM: both input tiles are
staged through shared memory, the inner product loop carries a
``#pragma unroll``, and the resulting mad/fma chains are where the two
front ends' fusion habits show (mad.f32 vs fma).
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["MxM"]

TILE = 16


def _kernel(dialect):
    k = KernelBuilder("sgemm", dialect, wg_hint=TILE * TILE)
    a = k.buffer("a", Scalar.F32)
    b = k.buffer("b", Scalar.F32)
    c = k.buffer("c", Scalar.F32)
    n = k.scalar("n", Scalar.S32)  # square, multiple of TILE
    ntiles = k.scalar("ntiles", Scalar.S32)
    asub = k.shared("asub", Scalar.F32, TILE * TILE)
    bsub = k.shared("bsub", Scalar.F32, TILE * TILE)
    tx = k.let("tx", k.tid.x, Scalar.S32)
    ty = k.let("ty", k.tid.y, Scalar.S32)
    row = k.let("row", k.ctaid.y * TILE + ty)
    col = k.let("col", k.ctaid.x * TILE + tx)
    acc = k.let("acc", 0.0, Scalar.F32)
    with k.for_("t", 0, ntiles) as t:
        k.store(asub, ty * TILE + tx, a[row * n + (t * TILE + tx)])
        k.store(bsub, ty * TILE + tx, b[(t * TILE + ty) * n + col])
        k.barrier()
        with k.for_("kk", 0, TILE, unroll=k.unroll()) as kk:
            k.assign(acc, acc + asub[ty * TILE + kk] * bsub[kk * TILE + tx])
        k.barrier()
    k.store(c, row * n + col, acc)
    return k.finish()


class MxM(Benchmark):
    name = "MxM"
    metric = Metric("GFlops/sec")

    def kernels(self, dialect, options, defines, params):
        return [_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"n": 32},
            "default": {"n": 96},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        rng = np.random.default_rng(13)
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        d_a = api.alloc(n * n)
        d_b = api.alloc(n * n)
        d_c = api.alloc(n * n)
        api.write(d_a, a)
        api.write(d_b, b)
        secs = api.launch(
            "sgemm", (n, n), (TILE, TILE), a=d_a, b=d_b, c=d_c, n=n, ntiles=n // TILE
        )
        got = api.read(d_c, n * n).reshape(n, n)
        ok = np.allclose(got, a @ b, rtol=1e-3, atol=1e-3)
        gflops = 2 * n**3 / secs / 1e9
        return self.result(api, gflops, secs, ok, detail={"n": n})
