"""STNW — sorting networks: bitonic key/value sort (NVIDIA SDK).

The SDK's ``sortingNetworks`` structure: a shared-memory kernel fully
sorts each 2*WG-element segment (all stages with k <= 2*WG run inside
one launch, key and value arrays staged in local memory), then the host
drives the remaining global merge stages one compare-exchange launch per
(stage, pass).  Two consequences the paper observes:

* the many small launches of the merge phase expose OpenCL's higher
  enqueue latency (§IV-B.4);
* the shared staging (2 x 2*WG x 4B arrays = 8 KB with WG=256) exceeds
  the Cell/BE's local-store budget -> ``CL_OUT_OF_RESOURCES`` ("ABT" in
  Table VI).
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["STNW"]

WG = 256
SEG = 2 * WG


def _local_kernel(dialect):
    """Sort each SEG-element segment entirely in shared memory."""
    k = KernelBuilder("bitonic_local", dialect, wg_hint=WG)
    keys = k.buffer("keys", Scalar.S32)
    vals = k.buffer("vals", Scalar.S32)
    sk = k.shared("sk", Scalar.S32, SEG)
    sv = k.shared("sv", Scalar.S32, SEG)
    t = k.let("t", k.tid.x, Scalar.S32)
    base = k.let("base", k.ctaid.x * SEG, Scalar.S32)
    k.store(sk, t, keys[base + t])
    k.store(sk, t + WG, keys[base + t + WG])
    k.store(sv, t, vals[base + t])
    k.store(sv, t + WG, vals[base + t + WG])
    k.barrier()
    # all network stages with k <= SEG; python-level loops mirror the
    # SDK's compile-time expansion over (size, stride)
    size = 2
    while size <= SEG:
        stride = size // 2
        while stride >= 1:
            i = k.let(f"i_{size}_{stride}", 2 * t - (t % stride))
            ixj = k.let(f"x_{size}_{stride}", i + stride)
            # direction comes from the *global* element index: the
            # segment-size stage alternates per segment
            up = k.let(
                f"u_{size}_{stride}", (((base + i) & size).eq(0)), Scalar.PRED
            )
            a = k.let(f"a_{size}_{stride}", sk[i])
            b = k.let(f"b_{size}_{stride}", sk[ixj])
            swap = k.let(
                f"s_{size}_{stride}", k.select(up, a > b, a < b), Scalar.PRED
            )
            with k.if_(swap):
                av = k.let(f"av_{size}_{stride}", sv[i])
                k.store(sk, i, b)
                k.store(sk, ixj, a)
                k.store(sv, i, sv[ixj])
                k.store(sv, ixj, av)
            k.barrier()
            stride //= 2
        size *= 2
    k.store(keys, base + t, sk[t])
    k.store(keys, base + t + WG, sk[t + WG])
    k.store(vals, base + t, sv[t])
    k.store(vals, base + t + WG, sv[t + WG])
    return k.finish()


def _global_kernel(dialect):
    """One compare-exchange pass of the global merge stages."""
    k = KernelBuilder("bitonic_ce", dialect, wg_hint=WG)
    keys = k.buffer("keys", Scalar.S32)
    vals = k.buffer("vals", Scalar.S32)
    j = k.scalar("j", Scalar.S32)
    kk = k.scalar("kk", Scalar.S32)
    i = k.let("i", k.global_id(0), Scalar.S32)
    ixj = k.let("ixj", i ^ j)
    with k.if_(ixj > i):
        a = k.let("a", keys[i])
        b = k.let("b", keys[ixj])
        up = k.let("up", (i & kk).eq(0), Scalar.PRED)
        swap = k.let("swap", k.select(up, a > b, a < b), Scalar.PRED)
        with k.if_(swap):
            av = k.let("av", vals[i])
            k.store(keys, i, b)
            k.store(keys, ixj, a)
            k.store(vals, i, vals[ixj])
            k.store(vals, ixj, av)
    return k.finish()


class STNW(Benchmark):
    name = "STNW"
    metric = Metric("MElements/sec")

    def kernels(self, dialect, options, defines, params):
        return [_local_kernel(dialect), _global_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"n": 2 * SEG},
            "default": {"n": 8 * SEG},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        rng = np.random.default_rng(37)
        keys = rng.integers(0, 1 << 30, n).astype(np.int32)
        vals = np.arange(n, dtype=np.int32)
        d_keys = api.alloc(n, Scalar.S32)
        d_vals = api.alloc(n, Scalar.S32)
        api.write(d_keys, keys)
        api.write(d_vals, vals)
        secs = api.launch("bitonic_local", n // 2, WG, keys=d_keys, vals=d_vals)
        kk = 2 * SEG
        while kk <= n:
            j = kk // 2
            while j >= 1:
                secs += api.launch(
                    "bitonic_ce", n, WG, keys=d_keys, vals=d_vals, j=j, kk=kk
                )
                j //= 2
            kk *= 2
        gk = api.read(d_keys, n)
        gv = api.read(d_vals, n)
        order = np.argsort(keys, kind="stable")
        ok = np.array_equal(gk, keys[order]) and bool(
            np.array_equal(keys[gv], gk)
        )
        meps = n / secs / 1e6
        return self.result(api, meps, secs, ok, detail={"launches": api.launch_count})
