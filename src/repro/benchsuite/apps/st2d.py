"""St2D — two-dimensional nine-point stencil (SHOC, Table II).

One sweep of SHOC's Stencil2D: 16x16 blocks stage an 18x18 tile (with
halo) through shared memory; edge threads fetch the halo, producing the
divergence the SIMT stack has to handle.  Several iterations ping-pong
between two buffers, as SHOC does.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric
from ..data import gray_image

__all__ = ["St2D", "WEIGHTS"]

B = 16
TW = B + 2  # tile width with halo

#: center, edge, corner weights (SHOC's defaults)
WEIGHTS = (0.25, 0.125, 0.0625)


def _kernel(dialect):
    wc, we, wk = WEIGHTS
    k = KernelBuilder("stencil9", dialect, wg_hint=B * B)
    inp = k.buffer("inp", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    w = k.scalar("w", Scalar.S32)
    h = k.scalar("h", Scalar.S32)
    tile = k.shared("tile", Scalar.F32, TW * TW)
    tx = k.let("tx", k.tid.x, Scalar.S32)
    ty = k.let("ty", k.tid.y, Scalar.S32)
    # signed: border arithmetic (x-1 at x==0) must not wrap
    x = k.let("x", k.ctaid.x * B + tx, Scalar.S32)
    y = k.let("y", k.ctaid.y * B + ty, Scalar.S32)
    # clamp-to-edge sampling indices
    def clamped(cx, cy):
        cxv = k.max(0, k.min(cx, w - 1))
        cyv = k.max(0, k.min(cy, h - 1))
        return inp[cyv * w + cxv]

    k.store(tile, (ty + 1) * TW + (tx + 1), clamped(x, y))
    with k.if_(tx.eq(0)):
        k.store(tile, (ty + 1) * TW + 0, clamped(x - 1, y))
    with k.if_(tx.eq(B - 1)):
        k.store(tile, (ty + 1) * TW + (TW - 1), clamped(x + 1, y))
    with k.if_(ty.eq(0)):
        k.store(tile, 0 * TW + (tx + 1), clamped(x, y - 1))
    with k.if_(ty.eq(B - 1)):
        k.store(tile, (TW - 1) * TW + (tx + 1), clamped(x, y + 1))
    # corners (needed by the 9-point box stencil)
    with k.if_(tx.eq(0).logical_and(ty.eq(0))):
        k.store(tile, 0, clamped(x - 1, y - 1))
    with k.if_(tx.eq(B - 1).logical_and(ty.eq(0))):
        k.store(tile, TW - 1, clamped(x + 1, y - 1))
    with k.if_(tx.eq(0).logical_and(ty.eq(B - 1))):
        k.store(tile, (TW - 1) * TW, clamped(x - 1, y + 1))
    with k.if_(tx.eq(B - 1).logical_and(ty.eq(B - 1))):
        k.store(tile, (TW - 1) * TW + TW - 1, clamped(x + 1, y + 1))
    k.barrier()
    cx = k.let("cx", tx + 1)
    cy = k.let("cy", ty + 1)
    acc = k.let("acc", tile[cy * TW + cx] * wc, Scalar.F32)
    k.assign(
        acc,
        acc
        + we
        * (
            tile[cy * TW + cx - 1]
            + tile[cy * TW + cx + 1]
            + tile[(cy - 1) * TW + cx]
            + tile[(cy + 1) * TW + cx]
        ),
    )
    k.assign(
        acc,
        acc
        + wk
        * (
            tile[(cy - 1) * TW + cx - 1]
            + tile[(cy - 1) * TW + cx + 1]
            + tile[(cy + 1) * TW + cx - 1]
            + tile[(cy + 1) * TW + cx + 1]
        ),
    )
    with k.if_((x < w).logical_and(y < h)):
        k.store(out, y * w + x, acc)
    return k.finish()


def stencil_reference(a: np.ndarray, iters: int) -> np.ndarray:
    wc, we, wk = WEIGHTS
    cur = a.astype(np.float32)
    for _ in range(iters):
        p = np.pad(cur, 1, mode="edge")
        cur = (
            wc * p[1:-1, 1:-1]
            + we * (p[1:-1, :-2] + p[1:-1, 2:] + p[:-2, 1:-1] + p[2:, 1:-1])
            + wk * (p[:-2, :-2] + p[:-2, 2:] + p[2:, :-2] + p[2:, 2:])
        ).astype(np.float32)
    return cur


class St2D(Benchmark):
    name = "St2D"
    metric = Metric("sec", higher_is_better=False)
    default_options = {"iters": 4}

    def kernels(self, dialect, options, defines, params):
        return [_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"w": 32, "h": 32},
            "default": {"w": 128, "h": 128},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        w, h = params["w"], params["h"]
        iters = options["iters"]
        img = gray_image(w, h, seed=2)
        d_a = api.alloc(w * h)
        d_b = api.alloc(w * h)
        api.write(d_a, img)
        secs = 0.0
        bufs = [d_a, d_b]
        for it in range(iters):
            secs += api.launch(
                "stencil9", (w, h), (B, B), inp=bufs[it % 2], out=bufs[(it + 1) % 2], w=w, h=h
            )
        got = api.read(bufs[iters % 2], w * h).reshape(h, w)
        ok = np.allclose(got, stencil_reference(img, iters), rtol=1e-3, atol=1e-3)
        return self.result(api, secs, secs, ok, detail={"iters": iters})
