"""BFS — frontier-based breadth-first search (Rodinia, Table II).

Rodinia's two-kernel formulation: kernel 1 expands the current frontier
(mask arrays, benign write races on the "updating" flags); kernel 2
promotes updated nodes into the next frontier and raises a device flag.
The host iterates — one kernel pair plus a flag read-back per BFS level.

Because the per-level device work is small, total time is dominated by
per-launch overhead, and OpenCL's larger, size-dependent launch latency
(§IV-B.4) makes BFS one of the benchmarks where OpenCL loses end to end.
The metric is therefore *total* wall time, as in the paper.
"""
from __future__ import annotations

from collections import deque

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric
from ..data import layered_graph

__all__ = ["BFS", "bfs_reference"]

WG = 256


def _kernel1(dialect):
    k = KernelBuilder("bfs_expand", dialect, wg_hint=WG)
    rowptr = k.buffer("rowptr", Scalar.S32)
    cols = k.buffer("cols", Scalar.S32)
    frontier = k.buffer("frontier", Scalar.S32)
    updating = k.buffer("updating", Scalar.S32)
    visited = k.buffer("visited", Scalar.S32)
    cost = k.buffer("cost", Scalar.S32)
    n = k.scalar("n", Scalar.S32)
    tid = k.let("tid", k.global_id(0), Scalar.S32)
    with k.if_((tid < n).logical_and(frontier[tid].eq(1))):
        k.store(frontier, tid, 0)
        myc = k.let("myc", cost[tid])
        lo = k.let("lo", rowptr[tid])
        hi = k.let("hi", rowptr[tid + 1])
        with k.for_("e", lo, hi) as e:
            nb = k.let("nb", cols[e])
            with k.if_(visited[nb].eq(0)):
                k.store(cost, nb, myc + 1)
                k.store(updating, nb, 1)
    return k.finish()


def _kernel2(dialect):
    k = KernelBuilder("bfs_promote", dialect, wg_hint=WG)
    frontier = k.buffer("frontier", Scalar.S32)
    updating = k.buffer("updating", Scalar.S32)
    visited = k.buffer("visited", Scalar.S32)
    over = k.buffer("over", Scalar.S32)
    n = k.scalar("n", Scalar.S32)
    tid = k.let("tid", k.global_id(0), Scalar.S32)
    with k.if_((tid < n).logical_and(updating[tid].eq(1))):
        k.store(frontier, tid, 1)
        k.store(visited, tid, 1)
        k.store(updating, tid, 0)
        k.store(over, 0, 1)
    return k.finish()


def bfs_reference(rowptr: np.ndarray, cols: np.ndarray, n: int, src: int = 0):
    cost = np.full(n, -1, dtype=np.int32)
    cost[src] = 0
    q = deque([src])
    while q:
        u = q.popleft()
        for e in range(rowptr[u], rowptr[u + 1]):
            v = cols[e]
            if cost[v] < 0:
                cost[v] = cost[u] + 1
                q.append(v)
    return cost


class BFS(Benchmark):
    name = "BFS"
    metric = Metric("sec", higher_is_better=False)

    def kernels(self, dialect, options, defines, params):
        return [_kernel1(dialect), _kernel2(dialect)]

    def sizes(self):
        return {
            "small": {"levels": 6, "width": 128},
            "default": {"levels": 24, "width": 192},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        rowptr, cols, n = layered_graph(params["levels"], params["width"], seed=9)
        d = {
            "rowptr": (rowptr, Scalar.S32),
            "cols": (cols, Scalar.S32),
        }
        bufs = {}
        for name, (arr, elem) in d.items():
            bufs[name] = api.alloc(len(arr), elem)
            api.write(bufs[name], arr)
        frontier = np.zeros(n, dtype=np.int32)
        visited = np.zeros(n, dtype=np.int32)
        cost = np.zeros(n, dtype=np.int32)
        frontier[0] = 1
        visited[0] = 1
        for name, arr in (
            ("frontier", frontier),
            ("updating", np.zeros(n, dtype=np.int32)),
            ("visited", visited),
            ("cost", cost),
            ("over", np.zeros(1, dtype=np.int32)),
        ):
            bufs[name] = api.alloc(len(arr), Scalar.S32)
            api.write(bufs[name], arr)

        api.reset_clock()
        kernel_secs = 0.0
        iterations = 0
        while True:
            api.write(bufs["over"], np.zeros(1, dtype=np.int32))
            kernel_secs += api.launch(
                "bfs_expand",
                n,
                WG,
                rowptr=bufs["rowptr"],
                cols=bufs["cols"],
                frontier=bufs["frontier"],
                updating=bufs["updating"],
                visited=bufs["visited"],
                cost=bufs["cost"],
                n=n,
            )
            kernel_secs += api.launch(
                "bfs_promote",
                n,
                WG,
                frontier=bufs["frontier"],
                updating=bufs["updating"],
                visited=bufs["visited"],
                over=bufs["over"],
                n=n,
            )
            iterations += 1
            if int(api.read(bufs["over"], 1)[0]) == 0:
                break
            if iterations > n:  # pragma: no cover - safety net
                raise RuntimeError("BFS failed to converge")
        total = api.elapsed()
        got = api.read(bufs["cost"], n)
        ref = bfs_reference(rowptr, cols, n)
        reached = ref >= 0
        ok = bool(np.array_equal(got[reached], ref[reached]))
        return self.result(
            api,
            total,
            kernel_secs,
            ok,
            wall=total,
            detail={"levels": iterations, "nodes": n},
        )
