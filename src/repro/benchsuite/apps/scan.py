"""Scan — exclusive prefix sum (NVIDIA SDK, Table II).

The SDK's work-efficient Blelloch scan: each block scans a 2*WG-element
segment in shared memory (up-sweep, clear, down-sweep), block sums are
scanned, and a second kernel adds the block offsets.  The power-of-two
index arithmetic (``offset*(2*tid+1)-1``) is shift-friendly, and the
log-tree phases thin out the active warps — the classic occupancy decay
the timing model's per-group costing captures.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["Scan"]

WG = 256
SEG = 2 * WG
LOG_SEG = 9


def _scan_kernel(dialect):
    k = KernelBuilder("scan_block", dialect, wg_hint=WG)
    inp = k.buffer("inp", Scalar.S32)
    out = k.buffer("out", Scalar.S32)
    sums = k.buffer("sums", Scalar.S32)
    sh = k.shared("sh", Scalar.S32, SEG)
    t = k.let("t", k.tid.x, Scalar.S32)
    base = k.let("base", k.ctaid.x * SEG, Scalar.S32)
    k.store(sh, t, inp[base + t])
    k.store(sh, t + WG, inp[base + t + WG])
    k.barrier()
    # up-sweep
    with k.for_("d", 0, LOG_SEG) as d:
        off = k.let("off", 1 << d)
        nact = k.let("nact", SEG >> (d + 1))
        with k.if_(t < nact):
            ai = k.let("ai", off * (2 * t + 1) - 1)
            bi = k.let("bi", off * (2 * t + 2) - 1)
            k.store(sh, bi, sh[bi] + sh[ai])
        k.barrier()
    # save the total and clear the root
    with k.if_(t.eq(0)):
        k.store(sums, k.ctaid.x, sh[SEG - 1])
        k.store(sh, SEG - 1, 0)
    k.barrier()
    # down-sweep
    with k.for_("d2", 0, LOG_SEG) as d2:
        off = k.let("off2", SEG >> (d2 + 1))
        nact = k.let("nact2", 1 << d2)
        with k.if_(t < nact):
            ai = k.let("ai2", off * (2 * t + 1) - 1)
            bi = k.let("bi2", off * (2 * t + 2) - 1)
            tmp = k.let("tmp", sh[ai])
            k.store(sh, ai, sh[bi])
            k.store(sh, bi, sh[bi] + tmp)
        k.barrier()
    k.store(out, base + t, sh[t])
    k.store(out, base + t + WG, sh[t + WG])
    return k.finish()


def _add_offsets_kernel(dialect):
    k = KernelBuilder("scan_add_offsets", dialect, wg_hint=WG)
    out = k.buffer("out", Scalar.S32)
    offs = k.buffer("offs", Scalar.S32)
    b = k.let("b", k.ctaid.x, Scalar.S32)
    t = k.let("t", k.tid.x, Scalar.S32)
    base = k.let("base", b * SEG)
    v = k.let("v", offs[b])
    k.store(out, base + t, out[base + t] + v)
    k.store(out, base + t + WG, out[base + t + WG] + v)
    return k.finish()


class Scan(Benchmark):
    name = "Scan"
    metric = Metric("MElements/sec")

    def kernels(self, dialect, options, defines, params):
        return [_scan_kernel(dialect), _add_offsets_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"n": 2 * SEG},
            "default": {"n": 16 * SEG},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        blocks = n // SEG
        rng = np.random.default_rng(31)
        data = rng.integers(0, 64, n).astype(np.int32)
        d_in = api.alloc(n, Scalar.S32)
        d_out = api.alloc(n, Scalar.S32)
        d_sums = api.alloc(blocks, Scalar.S32)
        api.write(d_in, data)
        secs = api.launch(
            "scan_block", blocks * WG, WG, inp=d_in, out=d_out, sums=d_sums
        )
        sums = api.read(d_sums, blocks)
        offs = np.concatenate([[0], np.cumsum(sums[:-1])]).astype(np.int32)
        d_offs = api.alloc(blocks, Scalar.S32)
        api.write(d_offs, offs)
        secs += api.launch(
            "scan_add_offsets", blocks * WG, WG, out=d_out, offs=d_offs
        )
        got = api.read(d_out, n)
        ref = np.concatenate([[0], np.cumsum(data[:-1], dtype=np.int64)])
        ok = np.array_equal(got.astype(np.int64), ref)
        meps = n / secs / 1e6
        return self.result(api, meps, secs, ok, detail={"n": n})
