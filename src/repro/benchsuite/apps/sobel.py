"""Sobel — X-direction Sobel operator on a gray image (SELF, Table II).

The paper's §IV-B.3 centerpiece: the OpenCL implementation keeps the
3x3 filter in **constant memory** while the CUDA one reads it from plain
global memory.  On GTX280 (no global-memory cache) the constant cache's
broadcast makes the OpenCL version ~3x faster; on GTX480 the Fermi L1
catches the filter reads and the difference evaporates (Figs. 3 and 8).
``options["use_constant"]`` flips the filter's address space, which is
exactly the experiment of Fig. 8 — applied as the rewrite engine's
``promote`` rule rather than a hand-coded second kernel: the constant
variant is *generated* from the global-memory baseline.
"""
from __future__ import annotations

import hashlib

import numpy as np

from ...kir import KernelBuilder, Scalar
from ...kir.rewrite import apply_variant
from ..base import Benchmark, BenchResult, HostAPI, Metric
from ..data import gray_image

__all__ = ["Sobel", "SOBEL_X"]

SOBEL_X = np.array(
    [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float32
)


def _kernel(dialect):
    k = KernelBuilder("sobel", dialect, wg_hint=256)
    img = k.buffer("img", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    filt = k.buffer("filt", Scalar.F32)
    w = k.scalar("w", Scalar.S32)
    h = k.scalar("h", Scalar.S32)
    x = k.let("x", k.global_id(0), Scalar.S32)
    y = k.let("y", k.global_id(1), Scalar.S32)
    inside = (
        (x >= 1).logical_and(x < w - 1).logical_and(y >= 1).logical_and(y < h - 1)
    )
    with k.if_(inside):
        acc = k.let("acc", 0.0, Scalar.F32)
        with k.for_("fy", 0, 3, unroll=k.unroll()) as fy:
            with k.for_("fx", 0, 3, unroll=k.unroll()) as fx:
                k.assign(
                    acc,
                    acc
                    + img[(y + fy - 1) * w + (x + fx - 1)] * filt[fy * 3 + fx],
                )
        k.store(out, y * w + x, acc)
    return k.finish()


def sobel_reference(img2d: np.ndarray) -> np.ndarray:
    h, w = img2d.shape
    out = np.zeros_like(img2d)
    f = SOBEL_X
    for fy in range(3):
        for fx in range(3):
            out[1 : h - 1, 1 : w - 1] += (
                f[fy, fx] * img2d[fy : fy + h - 2, fx : fx + w - 2]
            )
    return out


class Sobel(Benchmark):
    name = "Sobel"
    metric = Metric("sec", higher_is_better=False)
    #: the paper's as-found asymmetry (§IV-B.3)
    default_options = {
        "use_constant": {"cuda": False, "opencl": True},
        "wg": (16, 16),
    }

    def kernels(self, dialect, options, defines, params):
        kerns = [_kernel(dialect)]
        if options["use_constant"]:
            # Fig. 8's constant-memory placement, derived mechanically
            kerns = apply_variant(kerns, "sobel!promote:filt")
        return kerns

    def sizes(self):
        return {
            "small": {"w": 64, "h": 64},
            "default": {"w": 184, "h": 184},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        w, h = params["w"], params["h"]
        img = gray_image(w, h)
        d_img = api.alloc(w * h)
        d_out = api.alloc(w * h)
        d_filt = api.alloc(9)
        api.write(d_img, img)
        api.write(d_filt, SOBEL_X.reshape(-1))
        secs = api.launch(
            "sobel", (w, h), options["wg"], img=d_img, out=d_out, filt=d_filt, w=w, h=h
        )
        got = api.read(d_out, w * h).reshape(h, w)
        ok = np.allclose(got, sobel_reference(img), rtol=1e-4, atol=1e-3)
        return self.result(
            api,
            secs,
            secs,
            ok,
            detail={
                "use_constant": options["use_constant"],
                # exact output identity, for the variant differential harness
                "out_digest": hashlib.sha256(got.tobytes()).hexdigest(),
            },
        )
