"""Reduce — array sum reduction (SHOC, Table II).

SHOC's reduction shape: each block grid-strides over its slice, then
tree-reduces in shared memory; a tiny second kernel combines the block
partials on the device so the measured bytes/second cover the whole
array reduction.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["Reduce"]

WG = 256
LOG_WG = 8


def _reduce_kernel(dialect):
    k = KernelBuilder("reduce_partial", dialect, wg_hint=WG)
    inp = k.buffer("inp", Scalar.F32)
    partials = k.buffer("partials", Scalar.F32)
    n = k.scalar("n", Scalar.S32)
    sh = k.shared("sh", Scalar.F32, WG)
    t = k.let("t", k.tid.x, Scalar.S32)
    gid = k.let("gid", k.global_id(0), Scalar.S32)
    stride = k.let("stride", k.global_size(0), Scalar.S32)
    acc = k.let("acc", 0.0, Scalar.F32)
    j = k.let("j", gid)
    with k.while_(j < n):
        k.assign(acc, acc + inp[j])
        k.assign(j, j + stride)
    k.store(sh, t, acc)
    k.barrier()
    # tree reduction: s = WG/2, WG/4, ... 1
    with k.for_("step", 0, LOG_WG) as step:
        s = k.let(f"s", (WG >> 1) >> step)
        with k.if_(t < s):
            k.store(sh, t, sh[t] + sh[t + s])
        k.barrier()
    with k.if_(t.eq(0)):
        k.store(partials, k.ctaid.x, sh[0])
    return k.finish()


def _combine_kernel(dialect):
    k = KernelBuilder("reduce_combine", dialect, wg_hint=WG)
    partials = k.buffer("partials", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    nparts = k.scalar("nparts", Scalar.S32)
    sh = k.shared("sh", Scalar.F32, WG)
    t = k.let("t", k.tid.x, Scalar.S32)
    v = k.let("v", 0.0, Scalar.F32)
    with k.if_(t < nparts):
        k.assign(v, partials[t])
    k.store(sh, t, v)
    k.barrier()
    with k.for_("step", 0, LOG_WG) as step:
        s = k.let("s", (WG >> 1) >> step)
        with k.if_(t < s):
            k.store(sh, t, sh[t] + sh[t + s])
        k.barrier()
    with k.if_(t.eq(0)):
        k.store(out, 0, sh[0])
    return k.finish()


class Reduce(Benchmark):
    name = "Reduce"
    metric = Metric("GB/sec")
    default_options = {"blocks": 24}

    def kernels(self, dialect, options, defines, params):
        return [_reduce_kernel(dialect), _combine_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"n": 4096},
            "default": {"n": 65536},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        blocks = options["blocks"]
        rng = np.random.default_rng(5)
        data = rng.uniform(0, 1, n).astype(np.float32)
        d_in = api.alloc(n)
        d_part = api.alloc(blocks)
        d_out = api.alloc(1)
        api.write(d_in, data)
        secs = api.launch(
            "reduce_partial", blocks * WG, WG, inp=d_in, partials=d_part, n=n
        )
        secs += api.launch(
            "reduce_combine", WG, WG, partials=d_part, out=d_out, nparts=blocks
        )
        got = float(api.read(d_out, 1)[0])
        # block-wise f32 summation: compare against a tolerant reference
        ok = abs(got - data.sum(dtype=np.float64)) < max(1e-3 * n, 1.0)
        gbs = n * 4 / secs / 1e9
        return self.result(api, gbs, secs, ok, detail={"n": n})
