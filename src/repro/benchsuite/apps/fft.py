"""FFT — batched 512-point radix-2 Stockham FFT (SHOC-style).

This is the paper's compiler showcase (§IV-B.4, Table V): the CUDA and
OpenCL kernels are *the same source* — a stage loop carrying the
``l``/``m`` counters with an explicit ``#pragma unroll`` — yet the two
front ends produce wildly different code.  NVOPENCC's constant
propagation resolves the unrolled counters, turning the per-butterfly
index math (``u/m``, ``u%m``) into shifts and constants; CLC unrolls
but leaves the counters live, so every butterfly executes real integer
division/remainder and twiddle-index arithmetic.  That instruction-mix
difference is Table V, and the resulting slowdown is why FFT shows the
largest PR gap in Fig. 3.

Each work-group transforms one 512-point signal held in shared memory
(ping-pong halves), 256 threads = one butterfly per thread per stage.
"""
from __future__ import annotations

import math

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["FFT", "N_POINTS"]

N_POINTS = 512
THREADS = N_POINTS // 2
STAGES = 9
#: standard FFT cost model: 5 N log2 N flops per transform
FLOPS_PER_TRANSFORM = 5 * N_POINTS * STAGES


def _forward_kernel(dialect):
    k = KernelBuilder("forward", dialect, wg_hint=THREADS)
    re_in = k.buffer("re_in", Scalar.F32)
    im_in = k.buffer("im_in", Scalar.F32)
    re_out = k.buffer("re_out", Scalar.F32)
    im_out = k.buffer("im_out", Scalar.F32)
    sre = k.shared("sre", Scalar.F32, 2 * N_POINTS)
    sim_ = k.shared("sim", Scalar.F32, 2 * N_POINTS)
    u = k.let("u", k.tid.x, Scalar.S32)
    base = k.let("base", k.ctaid.x * N_POINTS, Scalar.S32)
    # load both halves into ping buffer (offset 0)
    k.store(sre, u, re_in[base + u])
    k.store(sim_, u, im_in[base + u])
    k.store(sre, u + THREADS, re_in[base + u + THREADS])
    k.store(sim_, u + THREADS, im_in[base + u + THREADS])
    k.barrier()
    # Stockham stage counters, updated as the stage loop runs: after the
    # pragma unroll NVOPENCC constant-propagates them; CLC does not.
    l = k.let("l", THREADS)  # halves each stage
    m = k.let("m", 1)  # doubles each stage
    pin = k.let("pin", 0)  # ping-pong input offset
    with k.for_("s", 0, STAGES, unroll=k.unroll(point="stages")) as s:
        j = k.let("j", u / m)
        kk = k.let("kk", u % m)
        # j == 0 twiddle shortcut (w = 1): a standard FFT optimization.
        # NVOPENCC predicates the small body; CLC emits setp/bra pairs —
        # part of the Table V flow-control asymmetry.
        wr = k.let("wr", 1.0, Scalar.F32)
        wi = k.let("wi", 0.0, Scalar.F32)
        with k.if_(j > 0):
            theta = k.let(
                f"theta", -math.pi * k.i2f(j) / k.i2f(l), Scalar.F32
            )
            k.assign(wr, k.cos(theta))
            k.assign(wi, k.sin(theta))
        a = k.let("a", pin + kk + j * m)
        c0r = k.let("c0r", sre[a])
        c0i = k.let("c0i", sim_[a])
        c1r = k.let("c1r", sre[a + THREADS])
        c1i = k.let("c1i", sim_[a + THREADS])
        pout = k.let("pout", N_POINTS - pin)
        o = k.let("o", pout + kk + 2 * j * m)
        k.store(sre, o, c0r + c1r)
        k.store(sim_, o, c0i + c1i)
        dr = k.let("dr", c0r - c1r)
        di = k.let("di", c0i - c1i)
        k.store(sre, o + m, wr * dr - wi * di)
        k.store(sim_, o + m, wr * di + wi * dr)
        k.barrier()
        k.assign(l, l / 2)
        k.assign(m, m * 2)
        k.assign(pin, N_POINTS - pin)
    # after 9 stages the result sits at offset (9 % 2) * N = N
    fin = k.let("fin", pin)
    k.store(re_out, base + u, sre[fin + u])
    k.store(im_out, base + u, sim_[fin + u])
    k.store(re_out, base + u + THREADS, sre[fin + u + THREADS])
    k.store(im_out, base + u + THREADS, sim_[fin + u + THREADS])
    return k.finish()


class FFT(Benchmark):
    name = "FFT"
    metric = Metric("GFlops/sec")
    default_options = {"batch": None}  # None -> size-defined

    def kernels(self, dialect, options, defines, params):
        return [_forward_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"batch": 2},
            "default": {"batch": 24},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        batch = options["batch"] or params["batch"]
        n = batch * N_POINTS
        rng = np.random.default_rng(23)
        re = rng.uniform(-1, 1, n).astype(np.float32)
        im = rng.uniform(-1, 1, n).astype(np.float32)
        d_re = api.alloc(n)
        d_im = api.alloc(n)
        d_ro = api.alloc(n)
        d_io = api.alloc(n)
        api.write(d_re, re)
        api.write(d_im, im)
        secs = api.launch(
            "forward",
            batch * THREADS,
            THREADS,
            re_in=d_re,
            im_in=d_im,
            re_out=d_ro,
            im_out=d_io,
        )
        gr = api.read(d_ro, n).reshape(batch, N_POINTS)
        gi = api.read(d_io, n).reshape(batch, N_POINTS)
        ref = np.fft.fft(
            re.reshape(batch, N_POINTS) + 1j * im.reshape(batch, N_POINTS), axis=1
        )
        ok = np.allclose(gr + 1j * gi, ref, rtol=1e-2, atol=2e-2)
        gflops = batch * FLOPS_PER_TRANSFORM / secs / 1e9
        return self.result(api, gflops, secs, ok, detail={"batch": batch})
