"""MD — Lennard-Jones molecular dynamics force computation (SHOC).

One thread per atom, looping over a precomputed neighbor list.  The
neighbor *position* gathers are irregular, read-only, and reused across
nearby atoms — the access pattern texture memory was made for.  SHOC's
CUDA MD fetches positions through ``tex1Dfetch``; the OpenCL version
cannot (§IV-B.1), giving Fig. 4's ablation via ``options["use_texture"]``.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric
from ..data import clustered_positions, neighbor_lists

__all__ = ["MD", "LJ_CUTOFF_SQ"]

LJ_CUTOFF_SQ = 16.0
#: analytic flop count per neighbor interaction (as SHOC reports)
FLOPS_PER_PAIR = 16


def _kernel(dialect, use_texture: bool):
    k = KernelBuilder("lj_force", dialect, wg_hint=128)
    px = k.buffer("px", Scalar.F32)
    py = k.buffer("py", Scalar.F32)
    pz = k.buffer("pz", Scalar.F32)
    neigh = k.buffer("neigh", Scalar.S32)
    fx = k.buffer("fx", Scalar.F32)
    fy = k.buffer("fy", Scalar.F32)
    fz = k.buffer("fz", Scalar.F32)
    n = k.scalar("n", Scalar.S32)
    maxn = k.scalar("maxn", Scalar.S32)
    i = k.let("i", k.global_id(0), Scalar.S32)

    def pos(buf, idx):
        return k.texload(buf, idx) if use_texture else buf[idx]

    with k.if_(i < n):
        xi = k.let("xi", pos(px, i))
        yi = k.let("yi", pos(py, i))
        zi = k.let("zi", pos(pz, i))
        ax = k.let("ax", 0.0, Scalar.F32)
        ay = k.let("ay", 0.0, Scalar.F32)
        az = k.let("az", 0.0, Scalar.F32)
        with k.for_("j", 0, maxn) as j:
            jn = k.let("jn", neigh[i * maxn + j])
            dx = k.let("dx", pos(px, jn) - xi)
            dy = k.let("dy", pos(py, jn) - yi)
            dz = k.let("dz", pos(pz, jn) - zi)
            r2 = k.let("r2", dx * dx + dy * dy + dz * dz)
            with k.if_(r2 < LJ_CUTOFF_SQ):
                inv = k.let("inv", 1.0 / r2)
                r6 = k.let("r6", inv * inv * inv)
                force = k.let("force", r6 * (r6 - 0.5) * inv)
                k.assign(ax, ax + dx * force)
                k.assign(ay, ay + dy * force)
                k.assign(az, az + dz * force)
        k.store(fx, i, ax)
        k.store(fy, i, ay)
        k.store(fz, i, az)
    return k.finish()


def md_reference(px, py, pz, neigh, maxn):
    n = px.size
    nl = neigh.reshape(n, maxn)
    out = np.zeros((3, n), dtype=np.float32)
    for i in range(n):
        dx = px[nl[i]] - px[i]
        dy = py[nl[i]] - py[i]
        dz = pz[nl[i]] - pz[i]
        r2 = dx * dx + dy * dy + dz * dz
        m = r2 < LJ_CUTOFF_SQ
        inv = np.where(m, 1.0 / np.where(m, r2, 1.0), 0.0).astype(np.float32)
        r6 = inv * inv * inv
        f = r6 * (r6 - np.float32(0.5)) * inv
        out[0, i] = np.sum(dx * f * m, dtype=np.float32)
        out[1, i] = np.sum(dy * f * m, dtype=np.float32)
        out[2, i] = np.sum(dz * f * m, dtype=np.float32)
    return out


class MD(Benchmark):
    name = "MD"
    metric = Metric("GFlops/sec")
    default_options = {
        "use_texture": {"cuda": True, "opencl": False},
        "wg": 128,
    }

    def kernels(self, dialect, options, defines, params):
        use_tex = options["use_texture"] and dialect.allows_texture
        return [_kernel(dialect, use_tex)]

    def sizes(self):
        return {
            "small": {"n": 512, "maxn": 12},
            "default": {"n": 4096, "maxn": 16},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n, maxn = params["n"], params["maxn"]
        px, py, pz = clustered_positions(n, seed=4)
        neigh = neighbor_lists(n, maxn, seed=4)
        bufs = {}
        for name, arr, elem in (
            ("px", px, Scalar.F32),
            ("py", py, Scalar.F32),
            ("pz", pz, Scalar.F32),
            ("neigh", neigh, Scalar.S32),
        ):
            bufs[name] = api.alloc(len(arr), elem)
            api.write(bufs[name], arr)
        d_fx, d_fy, d_fz = (api.alloc(n) for _ in range(3))
        secs = api.launch(
            "lj_force",
            n,
            options["wg"],
            px=bufs["px"],
            py=bufs["py"],
            pz=bufs["pz"],
            neigh=bufs["neigh"],
            fx=d_fx,
            fy=d_fy,
            fz=d_fz,
            n=n,
            maxn=maxn,
        )
        got = np.stack([api.read(d, n) for d in (d_fx, d_fy, d_fz)])
        ref = md_reference(px, py, pz, neigh, maxn)
        ok = np.allclose(got, ref, rtol=1e-3, atol=1e-3)
        gflops = n * maxn * FLOPS_PER_PAIR / secs / 1e9
        return self.result(
            api, gflops, secs, ok, detail={"use_texture": options["use_texture"]}
        )
