"""FDTD — finite-difference time-domain stencil sweep (NVIDIA SDK).

The SDK's FDTD3d structure: 2D thread blocks tile the xy-plane, the
kernel marches through z keeping a register window of the +-RADIUS
z-neighbors and staging each plane's xy-neighborhood in a shared tile.

The two unroll pragmas of the paper's §IV-B.2 listing are faithfully
reproduced:

* point **a** — ``#pragma unroll 9`` on the z-march loop (the SDK's CUDA
  code has it; its OpenCL port does not);
* point **b** — ``#pragma unroll`` on the radius loop (both have it).

Figs. 6 and 7 toggle these via ``options["unroll_a"]``/``unroll_b``:
removing *a* costs CUDA ~15%, while *adding* *a* to the OpenCL build
makes CLC's allocator collapse on the 9x-unrolled body (spills), the
paper's most dramatic compiler finding.

Both pragmas are *generated*: the kernel is built bare and the rewrite
engine's ``pragma`` rule attaches them (``fdtd_step!pragma:iz:9`` etc.),
so the paper's hand-annotated variants and ``--variants`` sweeps share
one mechanism.
"""
from __future__ import annotations

import hashlib

import numpy as np

from ...kir import KernelBuilder, Scalar, UNROLL_FULL
from ...kir.rewrite import apply_variant
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["FDTD", "RADIUS", "COEFFS"]

B = 16
RADIUS = 3
TW = B + 2 * RADIUS  # shared tile width
#: symmetric stencil coefficients c0..cR
COEFFS = (0.50, 0.16, 0.09, 0.05)


def _kernel(dialect, dimz_const: int):
    """Build the bare FDTD kernel (no unroll pragmas).

    The paper's point-a/point-b pragmas are attached afterwards by the
    rewrite engine's ``pragma`` rule.  ``dimz_const`` is baked in at
    build time (the SDK's FDTD3d compiles dimz as a macro too, which is
    what makes ``#pragma unroll 9`` legal on the z loop).
    """
    k = KernelBuilder("fdtd_step", dialect, wg_hint=B * B)
    inp = k.buffer("inp", Scalar.F32)  # padded (dimz+2R) x (ny+2R) x (nx+2R)
    out = k.buffer("out", Scalar.F32)  # dimz x ny x nx
    # stencil coefficients live in constant memory in both versions, as
    # in the SDK's FDTD3d (broadcast reads; a plain global buffer would
    # partition-camp on GT200)
    from ...kir import AddrSpace

    coef = k.buffer("coef", Scalar.F32, AddrSpace.CONST)
    nx = k.scalar("nx", Scalar.S32)
    ny = k.scalar("ny", Scalar.S32)
    dimz = dimz_const
    tile = k.shared("tile", Scalar.F32, TW * TW)
    tx = k.let("tx", k.tid.x, Scalar.S32)
    ty = k.let("ty", k.tid.y, Scalar.S32)
    x = k.let("x", k.ctaid.x * B + tx, Scalar.S32)
    y = k.let("y", k.ctaid.y * B + ty, Scalar.S32)
    psx = k.let("psx", nx + 2 * RADIUS)
    psy = k.let("psy", ny + 2 * RADIUS)
    plane = k.let("plane", psx * psy)
    # padded in-plane index of this thread's column
    pidx = k.let("pidx", (y + RADIUS) * psx + (x + RADIUS))

    # register window over z: behind_R..behind_1, current, front_1..front_R
    behind = [
        k.let(f"behind{i}", inp[(RADIUS - i) * plane + pidx])
        for i in range(RADIUS, 0, -1)
    ]  # behind[0] = behind_R ... behind[-1] = behind_1
    current = k.let("current", inp[RADIUS * plane + pidx])
    front = [
        k.let(f"front{i}", inp[(RADIUS + i) * plane + pidx])
        for i in range(1, RADIUS + 1)
    ]

    with k.for_("iz", 0, dimz) as iz:
        # stage the current plane's neighborhood
        k.store(tile, (ty + RADIUS) * TW + tx + RADIUS, current)
        inbase = k.let("inbase", (iz + RADIUS) * plane)
        with k.if_(tx < RADIUS):
            k.store(
                tile,
                (ty + RADIUS) * TW + tx,
                inp[inbase + (y + RADIUS) * psx + x],
            )
        with k.if_(tx >= B - RADIUS):
            k.store(
                tile,
                (ty + RADIUS) * TW + tx + 2 * RADIUS,
                inp[inbase + (y + RADIUS) * psx + (x + 2 * RADIUS)],
            )
        with k.if_(ty < RADIUS):
            k.store(
                tile,
                ty * TW + tx + RADIUS,
                inp[inbase + y * psx + (x + RADIUS)],
            )
        with k.if_(ty >= B - RADIUS):
            k.store(
                tile,
                (ty + 2 * RADIUS) * TW + tx + RADIUS,
                inp[inbase + (y + 2 * RADIUS) * psx + (x + RADIUS)],
            )
        k.barrier()
        acc = k.let("acc", current * COEFFS[0], Scalar.F32)
        with k.for_("rr", 1, RADIUS + 1) as rr:
            cv = k.let("cv", coef[rr])
            k.assign(
                acc,
                acc
                + cv
                * (
                    tile[(ty + RADIUS) * TW + tx + RADIUS - rr]
                    + tile[(ty + RADIUS) * TW + tx + RADIUS + rr]
                    + tile[(ty + RADIUS - rr) * TW + tx + RADIUS]
                    + tile[(ty + RADIUS + rr) * TW + tx + RADIUS]
                ),
            )
        # z-direction contributions from the register window
        for i in range(1, RADIUS + 1):
            k.assign(
                acc, acc + COEFFS[i] * (front[i - 1] + behind[RADIUS - i])
            )
        k.store(out, iz * nx * ny + y * nx + x, acc)
        # slide the window one plane forward
        for i in range(RADIUS - 1):
            k.assign(behind[i], behind[i + 1])
        k.assign(behind[RADIUS - 1], current)
        k.assign(current, front[0])
        for i in range(RADIUS - 1):
            k.assign(front[i], front[i + 1])
        k.assign(
            front[RADIUS - 1],
            inp[(iz + 1 + 2 * RADIUS) * plane + pidx],
        )
        k.barrier()
    return k.finish()


def fdtd_reference(vol: np.ndarray, dimz: int, ny: int, nx: int) -> np.ndarray:
    """vol: padded (dimz+2R, ny+2R, nx+2R) volume."""
    out = np.zeros((dimz, ny, nx), dtype=np.float32)
    R = RADIUS
    for z in range(dimz):
        acc = COEFFS[0] * vol[z + R, R : R + ny, R : R + nx]
        for r in range(1, R + 1):
            acc = acc + COEFFS[r] * (
                vol[z + R, R : R + ny, R - r : R - r + nx]
                + vol[z + R, R : R + ny, R + r : R + r + nx]
                + vol[z + R, R - r : R - r + ny, R : R + nx]
                + vol[z + R, R + r : R + r + ny, R : R + nx]
                + vol[z + R - r, R : R + ny, R : R + nx]
                + vol[z + R + r, R : R + ny, R : R + nx]
            )
        out[z] = acc.astype(np.float32)
    return out


class FDTD(Benchmark):
    name = "FDTD"
    metric = Metric("MPoints/sec")
    #: as shipped (paper §IV-B.2): CUDA has the pragma at point a,
    #: the OpenCL port only at point b
    default_options = {
        "unroll_a": {"cuda": 9, "opencl": None},
        "unroll_b": UNROLL_FULL,
    }

    @staticmethod
    def _pragma_app(site: str, factor) -> str:
        return f"pragma:{site}:{'full' if factor == UNROLL_FULL else factor}"

    def kernels(self, dialect, options, defines, params):
        kerns = [_kernel(dialect, params["dimz"])]
        # attach the paper's point-a / point-b pragmas as rewrite rules
        apps = []
        if options["unroll_a"] is not None:
            apps.append(self._pragma_app("iz", options["unroll_a"]))
        if options["unroll_b"] is not None:
            apps.append(self._pragma_app("rr", options["unroll_b"]))
        if apps:
            kerns = apply_variant(kerns, "fdtd_step!" + "+".join(apps))
        return kerns

    def sizes(self):
        return {
            "small": {"nx": 32, "ny": 32, "dimz": 18},
            "default": {"nx": 64, "ny": 64, "dimz": 18},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        nx, ny, dimz = params["nx"], params["ny"], params["dimz"]
        R = RADIUS
        rng = np.random.default_rng(43)
        vol = np.zeros((dimz + 2 * R, ny + 2 * R, nx + 2 * R), dtype=np.float32)
        vol[R : R + dimz, R : R + ny, R : R + nx] = rng.uniform(
            -1, 1, (dimz, ny, nx)
        ).astype(np.float32)
        # pad one extra plane so the window pre-load never reads past
        padded = np.concatenate([vol, np.zeros_like(vol[:1])])
        d_in = api.alloc(padded.size)
        d_out = api.alloc(dimz * ny * nx)
        d_coef = api.alloc(len(COEFFS))
        api.write(d_in, padded.reshape(-1))
        api.write(d_coef, np.asarray(COEFFS, dtype=np.float32))
        secs = api.launch(
            "fdtd_step",
            (nx, ny),
            (B, B),
            inp=d_in,
            out=d_out,
            coef=d_coef,
            nx=nx,
            ny=ny,
        )
        got = api.read(d_out, dimz * ny * nx).reshape(dimz, ny, nx)
        ref = fdtd_reference(vol, dimz, ny, nx)
        ok = np.allclose(got, ref, rtol=1e-3, atol=1e-3)
        mpoints = dimz * ny * nx / secs / 1e6
        return self.result(
            api,
            mpoints,
            secs,
            ok,
            detail={
                "unroll_a": options["unroll_a"],
                "unroll_b": options["unroll_b"],
                # exact output identity, for the variant differential harness
                "out_digest": hashlib.sha256(got.tobytes()).hexdigest(),
            },
        )
