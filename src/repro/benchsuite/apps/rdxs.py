"""RdxS — LSD radix sort, 4-bit digits (NVIDIA SDK, Table II).

The Zagha–Blelloch/Satish four-step structure per pass: per-block digit
histogram, a scan of the digit-major histogram matrix, and a rank-and-
scatter kernel whose thread ranking goes through per-*warp* shared
counter rows.

**The Table VI "FL" bug, reproduced faithfully:** the ranking rows are
indexed by ``tid / WARP_SIZE`` where ``WARP_SIZE`` is a build-time
define the platform headers set from the device (32 on NVIDIA, 64 on
AMD wavefronts, 4 on APP's SSE-mapped CPU lanes) — but the offset-
combination loop that sums "rows before mine" was written with a
hard-coded 32 (as the CUDA-SDK-derived port was).  On WARP_SIZE == 32
devices the two agree and the sort is correct; on the HD5870 and the
Intel920 they disagree, threads land on wrong scatter offsets, and the
kernel completes with wrongly-sorted output — the paper's "FL".

On the Cell/BE the WARP_SIZE=4 counter layout needs 64 rows x 16
counters (4 KB) plus the tile staging, exceeding the local-store budget:
``CL_OUT_OF_RESOURCES`` at enqueue — the paper's "ABT".
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["RdxS"]

WG = 256
RADIX = 16
#: the hard-coded warp size the host-derived combination loop assumes
ASSUMED_WARP = 32


def _hist_kernel(dialect, warp_size: int):
    rows = WG // warp_size
    k = KernelBuilder("radix_hist", dialect, wg_hint=WG)
    keys = k.buffer("keys", Scalar.U32)
    ghist = k.buffer("ghist", Scalar.S32)
    shift = k.scalar("shift", Scalar.S32)
    nblocks = k.scalar("nblocks", Scalar.S32)
    tile = k.shared("tile", Scalar.U32, WG)
    counters = k.shared("counters", Scalar.S32, rows * RADIX)
    t = k.let("t", k.tid.x, Scalar.S32)
    blk = k.let("blk", k.ctaid.x, Scalar.S32)
    k.store(tile, t, keys[blk * WG + t])
    for i in range(-(-rows * RADIX // WG)):
        idx = i * WG + t
        if rows * RADIX >= (i + 1) * WG:
            k.store(counters, idx, 0)
        else:
            with k.if_(idx < rows * RADIX):
                k.store(counters, idx, 0)
    k.barrier()
    digit = k.let("digit", ((tile[t] >> shift) & (RADIX - 1)), Scalar.S32)
    row = k.let("row", t / warp_size)
    # warp-serialized counting (the Zagha–Blelloch trick)
    for lane in range(warp_size):
        with k.if_((t % warp_size).eq(lane)):
            k.store(
                counters, row * RADIX + digit, counters[row * RADIX + digit] + 1
            )
    k.barrier()
    with k.if_(t < RADIX):
        total = k.let("total", 0, Scalar.S32)
        for r in range(rows):
            k.assign(total, total + counters[r * RADIX + t])
        # digit-major layout so the host scan orders (digit, block)
        k.store(ghist, t * nblocks + blk, total)
    return k.finish()


def _scatter_kernel(dialect, warp_size: int):
    rows = WG // warp_size
    k = KernelBuilder("radix_scatter", dialect, wg_hint=WG)
    keys_in = k.buffer("keys_in", Scalar.U32)
    keys_out = k.buffer("keys_out", Scalar.U32)
    base = k.buffer("base", Scalar.S32)  # scanned (digit, block) offsets
    shift = k.scalar("shift", Scalar.S32)
    nblocks = k.scalar("nblocks", Scalar.S32)
    tile = k.shared("tile", Scalar.U32, WG)
    counters = k.shared("counters", Scalar.S32, rows * RADIX)
    t = k.let("t", k.tid.x, Scalar.S32)
    blk = k.let("blk", k.ctaid.x, Scalar.S32)
    k.store(tile, t, keys_in[blk * WG + t])
    for i in range(-(-rows * RADIX // WG)):
        idx = i * WG + t
        if rows * RADIX >= (i + 1) * WG:
            k.store(counters, idx, 0)
        else:
            with k.if_(idx < rows * RADIX):
                k.store(counters, idx, 0)
    k.barrier()
    digit = k.let("digit", ((tile[t] >> shift) & (RADIX - 1)), Scalar.S32)
    row = k.let("row", t / warp_size)  # rows follow the REAL warp size
    rank = k.let("rank", 0, Scalar.S32)
    for lane in range(warp_size):
        with k.if_((t % warp_size).eq(lane)):
            k.assign(rank, counters[row * RADIX + digit])
            k.store(counters, row * RADIX + digit, rank + 1)
    k.barrier()
    # offset combination: sum the counter rows *before mine*.  BUG (as
    # shipped): the row index here assumes warps of 32 — see module docs.
    row_h = k.let("row_h", t / ASSUMED_WARP)
    local_base = k.let("local_base", 0, Scalar.S32)
    for r in range(WG // ASSUMED_WARP):
        with k.if_(k.const(r, Scalar.S32) < row_h):
            k.assign(local_base, local_base + counters[r * RADIX + digit])
    pos = k.let("pos", base[digit * nblocks + blk] + local_base + rank)
    k.store(keys_out, pos, tile[t])
    return k.finish()


class RdxS(Benchmark):
    name = "RdxS"
    metric = Metric("MElements/sec")
    default_options = {"key_bits": 16}

    def kernels(self, dialect, options, defines, params):
        ws = defines.get("WARP_SIZE", 32)
        return [_hist_kernel(dialect, ws), _scatter_kernel(dialect, ws)]

    def sizes(self):
        return {
            "small": {"n": 4 * WG},
            "default": {"n": 16 * WG},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        bits = options["key_bits"]
        nblocks = n // WG
        rng = np.random.default_rng(41)
        keys = rng.integers(0, 1 << bits, n).astype(np.uint32)
        d_a = api.alloc(n, Scalar.U32)
        d_b = api.alloc(n, Scalar.U32)
        d_hist = api.alloc(RADIX * nblocks, Scalar.S32)
        d_base = api.alloc(RADIX * nblocks, Scalar.S32)
        api.write(d_a, keys)
        src, dst = d_a, d_b
        secs = 0.0
        for shift in range(0, bits, 4):
            secs += api.launch(
                "radix_hist", n, WG, keys=src, ghist=d_hist, shift=shift, nblocks=nblocks
            )
            hist = api.read(d_hist, RADIX * nblocks)
            base = np.concatenate([[0], np.cumsum(hist[:-1])]).astype(np.int32)
            api.write(d_base, base)
            secs += api.launch(
                "radix_scatter",
                n,
                WG,
                keys_in=src,
                keys_out=dst,
                base=d_base,
                shift=shift,
                nblocks=nblocks,
            )
            src, dst = dst, src
        got = api.read(src, n)
        ok = np.array_equal(got, np.sort(keys))
        meps = n / secs / 1e6
        return self.result(
            api,
            meps,
            secs,
            ok,
            detail={"warp_size": api.spec.warp_width, "passes": bits // 4},
        )
