"""DXTC — high-quality DXT1 texture compression (NVIDIA SDK, Table II).

One thread compresses one 4x4 pixel block: the 16 texels are staged
through shared memory (the SDK stages and votes through shared memory
too, and that staging footprint — 12 KB per work-group — is what makes
DXTC exceed the Cell/BE's local store and abort, Table VI).  Endpoints
are the extreme-luminance colors; each texel is matched to the nearest
of the 4 palette interpolants and packed as 2-bit indices.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric
from ..data import rgb_image

__all__ = ["DXTC"]

WG = 64
PIX = 16  # texels per 4x4 block

_LW = (0.299, 0.587, 0.114)


def _kernel(dialect):
    k = KernelBuilder("dxt1_compress", dialect, wg_hint=WG)
    r = k.buffer("r", Scalar.F32)
    g = k.buffer("g", Scalar.F32)
    b = k.buffer("b", Scalar.F32)
    out_idx = k.buffer("out_idx", Scalar.U32)
    out_ep = k.buffer("out_ep", Scalar.U32)
    w = k.scalar("w", Scalar.S32)  # image width in pixels (multiple of 4)
    nblocks = k.scalar("nblocks", Scalar.S32)
    # staging: 16 texels x 3 channels per thread
    sr = k.shared("sr", Scalar.F32, WG * PIX)
    sg = k.shared("sg", Scalar.F32, WG * PIX)
    sb = k.shared("sb", Scalar.F32, WG * PIX)
    t = k.let("t", k.tid.x, Scalar.S32)
    blk = k.let("blk", k.global_id(0), Scalar.S32)
    bw = k.let("bw", w / 4)  # blocks per row
    with k.if_(blk < nblocks):
        bx = k.let("bx", blk % bw)
        by = k.let("by", blk / bw)
        for p in range(PIX):  # unrolled at source, as the SDK does
            px = bx * 4 + (p % 4)
            py = by * 4 + (p // 4)
            k.store(sr, t * PIX + p, r[py * w + px])
            k.store(sg, t * PIX + p, g[py * w + px])
            k.store(sb, t * PIX + p, b[py * w + px])
    k.barrier()
    with k.if_(blk < nblocks):
        # find extreme-luminance texels
        lmin = k.let("lmin", 1e30, Scalar.F32)
        lmax = k.let("lmax", -1e30, Scalar.F32)
        iminv = k.let("iminv", 0, Scalar.S32)
        imaxv = k.let("imaxv", 0, Scalar.S32)
        for p in range(PIX):
            lum = k.let(
                f"lum{p}",
                _LW[0] * sr[t * PIX + p]
                + _LW[1] * sg[t * PIX + p]
                + _LW[2] * sb[t * PIX + p],
                Scalar.F32,
            )
            with k.if_(lum < lmin):
                k.assign(lmin, lum)
                k.assign(iminv, p)
            with k.if_(lum > lmax):
                k.assign(lmax, lum)
                k.assign(imaxv, p)
        # endpoint colors
        c0r = k.let("c0r", sr[t * PIX + imaxv])
        c0g = k.let("c0g", sg[t * PIX + imaxv])
        c0b = k.let("c0b", sb[t * PIX + imaxv])
        c1r = k.let("c1r", sr[t * PIX + iminv])
        c1g = k.let("c1g", sg[t * PIX + iminv])
        c1b = k.let("c1b", sb[t * PIX + iminv])
        third = 1.0 / 3.0
        pal = []
        pal.append((c0r, c0g, c0b))
        pal.append((c1r, c1g, c1b))
        pal.append(
            (
                k.let("p2r", (c0r * 2.0 + c1r) * third),
                k.let("p2g", (c0g * 2.0 + c1g) * third),
                k.let("p2b", (c0b * 2.0 + c1b) * third),
            )
        )
        pal.append(
            (
                k.let("p3r", (c0r + c1r * 2.0) * third),
                k.let("p3g", (c0g + c1g * 2.0) * third),
                k.let("p3b", (c0b + c1b * 2.0) * third),
            )
        )
        indices = k.let("indices", k.const(0, Scalar.U32), Scalar.U32)
        for p in range(PIX):
            best = k.let(f"best{p}", 1e30, Scalar.F32)
            bidx = k.let(f"bidx{p}", k.const(0, Scalar.U32), Scalar.U32)
            for ci, (pr, pg, pb) in enumerate(pal):
                dr = sr[t * PIX + p] - pr
                dg = sg[t * PIX + p] - pg
                db = sb[t * PIX + p] - pb
                dist = k.let(f"d{p}_{ci}", dr * dr + dg * dg + db * db)
                with k.if_(dist < best):
                    k.assign(best, dist)
                    k.assign(bidx, ci)
            k.assign(indices, indices | (bidx << (2 * p)))
        k.store(out_idx, blk, indices)
        # endpoints quantized to 8-bit channels, packed 0x00RRGGBB each
        ep0 = k.let(
            "ep0",
            (k.f2u(c0r) << 16) | (k.f2u(c0g) << 8) | k.f2u(c0b),
            Scalar.U32,
        )
        ep1 = k.let(
            "ep1",
            (k.f2u(c1r) << 16) | (k.f2u(c1g) << 8) | k.f2u(c1b),
            Scalar.U32,
        )
        k.store(out_ep, blk * 2, ep0)
        k.store(out_ep, blk * 2 + 1, ep1)
    return k.finish()


def dxtc_reference(r, g, b, w, h):
    bw, bh = w // 4, h // 4
    n = bw * bh
    out_idx = np.zeros(n, dtype=np.uint32)
    out_ep = np.zeros(2 * n, dtype=np.uint32)
    lw = np.array(_LW, dtype=np.float32)
    for blk in range(n):
        bx, by = blk % bw, blk // bw
        pix = np.zeros((PIX, 3), dtype=np.float32)
        for p in range(PIX):
            px, py = bx * 4 + p % 4, by * 4 + p // 4
            pix[p] = (r[py, px], g[py, px], b[py, px])
        lum = pix @ lw
        # strict-< / strict-> scans, matching the kernel's update order
        imin = imax = 0
        lmin, lmax = np.float32(1e30), np.float32(-1e30)
        for p in range(PIX):
            if lum[p] < lmin:
                lmin, imin = lum[p], p
            if lum[p] > lmax:
                lmax, imax = lum[p], p
        c0, c1 = pix[imax], pix[imin]
        third = np.float32(1.0 / 3.0)
        pal = np.stack([c0, c1, (c0 * 2 + c1) * third, (c0 + c1 * 2) * third])
        indices = np.uint32(0)
        for p in range(PIX):
            d = ((pix[p] - pal) ** 2).sum(axis=1)
            best, bidx = np.float32(1e30), 0
            for ci in range(4):
                if d[ci] < best:
                    best, bidx = d[ci], ci
            indices |= np.uint32(bidx) << np.uint32(2 * p)
        out_idx[blk] = indices
        q = lambda c: np.uint32(int(c))
        out_ep[2 * blk] = (q(c0[0]) << 16) | (q(c0[1]) << 8) | q(c0[2])
        out_ep[2 * blk + 1] = (q(c1[0]) << 16) | (q(c1[1]) << 8) | q(c1[2])
    return out_idx, out_ep


class DXTC(Benchmark):
    name = "DXTC"
    metric = Metric("MPixels/sec")

    def kernels(self, dialect, options, defines, params):
        return [_kernel(dialect)]

    def sizes(self):
        return {
            "small": {"w": 32, "h": 32},
            "default": {"w": 96, "h": 96},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        w, h = params["w"], params["h"]
        r, g, b = rgb_image(w, h, seed=6)
        nblocks = (w // 4) * (h // 4)
        d_r = api.alloc(w * h)
        d_g = api.alloc(w * h)
        d_b = api.alloc(w * h)
        d_idx = api.alloc(nblocks, Scalar.U32)
        d_ep = api.alloc(2 * nblocks, Scalar.U32)
        api.write(d_r, r)
        api.write(d_g, g)
        api.write(d_b, b)
        secs = api.launch(
            "dxt1_compress",
            nblocks,
            WG,
            r=d_r,
            g=d_g,
            b=d_b,
            out_idx=d_idx,
            out_ep=d_ep,
            w=w,
            nblocks=nblocks,
        )
        gi = api.read(d_idx, nblocks)
        ge = api.read(d_ep, 2 * nblocks)
        ri, re = dxtc_reference(r, g, b, w, h)
        ok = np.array_equal(gi, ri) and np.array_equal(ge, re)
        mpix = w * h / secs / 1e6
        return self.result(api, mpix, secs, ok, detail={"blocks": nblocks})
