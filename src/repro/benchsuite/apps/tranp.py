"""TranP — matrix transposition with shared memory (SELF, Table II).

The classic shared-memory tiled transpose: a 16x16 tile staged through
shared memory with a +1 padding column to dodge bank conflicts, so both
the read and the write are coalesced.  On CPU devices the staging is
pure overhead ("all OpenCL memory objects for CPU are cached implicitly
by hardware"), the paper's Table VI TranP observation — toggleable via
``options["use_local"]`` for the portability ablation.
"""
from __future__ import annotations

import numpy as np

from ...kir import KernelBuilder, Scalar
from ..base import Benchmark, BenchResult, HostAPI, Metric

__all__ = ["TranP"]

TILE = 16


def _kernel(dialect, use_local: bool):
    k = KernelBuilder("transpose", dialect, wg_hint=TILE * TILE)
    inp = k.buffer("inp", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    n = k.scalar("n", Scalar.S32)  # square matrix, multiple of TILE
    tx = k.let("tx", k.tid.x, Scalar.S32)
    ty = k.let("ty", k.tid.y, Scalar.S32)
    bx = k.let("bx", k.ctaid.x, Scalar.S32)
    by = k.let("by", k.ctaid.y, Scalar.S32)
    x = k.let("x", bx * TILE + tx)
    y = k.let("y", by * TILE + ty)
    if use_local:
        tile = k.shared("tile", Scalar.F32, TILE * (TILE + 1))
        k.store(tile, ty * (TILE + 1) + tx, inp[y * n + x])
        k.barrier()
        x2 = k.let("x2", by * TILE + tx)
        y2 = k.let("y2", bx * TILE + ty)
        k.store(out, y2 * n + x2, tile[tx * (TILE + 1) + ty])
    else:
        # naive: uncoalesced write; the baseline for the local-memory
        # ablation on CPU-class devices
        k.store(out, x * n + y, inp[y * n + x])
    return k.finish()


class TranP(Benchmark):
    name = "TranP"
    metric = Metric("GB/sec")
    default_options = {"use_local": True}

    def kernels(self, dialect, options, defines, params):
        return [_kernel(dialect, options["use_local"])]

    def sizes(self):
        return {
            "small": {"n": 64},
            "default": {"n": 192},
        }

    def host_run(self, api: HostAPI, params, options) -> BenchResult:
        n = params["n"]
        rng = np.random.default_rng(11)
        a = rng.uniform(0, 1, (n, n)).astype(np.float32)
        d_in = api.alloc(n * n)
        d_out = api.alloc(n * n)
        api.write(d_in, a)
        secs = api.launch(
            "transpose", (n, n), (TILE, TILE), inp=d_in, out=d_out, n=n
        )
        got = api.read(d_out, n * n).reshape(n, n)
        ok = np.array_equal(got, a.T)
        gbs = 2 * n * n * 4 / secs / 1e9
        return self.result(api, gbs, secs, ok, detail={"n": n})
