"""Deterministic workload generators for the benchmark suite.

Every generator takes an explicit seed so benchmark runs are exactly
reproducible (the virtual-clock simulator is deterministic end to end).
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "rng",
    "gray_image",
    "layered_graph",
    "banded_csr",
    "clustered_positions",
    "neighbor_lists",
    "rgb_image",
]


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE + seed)


def gray_image(width: int, height: int, seed: int = 0) -> np.ndarray:
    """A grayscale f32 image with smooth structure + noise (Sobel/St2D)."""
    g = rng(seed)
    y, x = np.mgrid[0:height, 0:width].astype(np.float32)
    img = (
        np.sin(x * 0.21) * 40
        + np.cos(y * 0.13) * 40
        + g.normal(0, 6, (height, width))
    )
    return (img - img.min()).astype(np.float32)


def rgb_image(width: int, height: int, seed: int = 0) -> tuple:
    """Three f32 channel arrays in [0, 255] (DXTC input)."""
    g = rng(seed)
    chans = []
    for c in range(3):
        base = gray_image(width, height, seed=seed * 3 + c)
        chans.append((base / max(base.max(), 1e-6) * 255.0).astype(np.float32))
    return tuple(chans)


def layered_graph(
    levels: int, width: int, fan_out: int = 3, seed: int = 0
) -> tuple:
    """A layered DAG-ish graph in CSR form (BFS workload).

    ``levels`` layers of ``width`` nodes; each node points to ``fan_out``
    random nodes of the next layer (plus a few intra-layer edges).  BFS
    from node 0 visits one layer per iteration, so the *host-side* loop
    runs ``levels`` times — which is what makes BFS sensitive to kernel
    launch overhead (paper §IV-B.4).

    Returns ``(row_offsets s32[n+1], columns s32[m], n_nodes)``.
    """
    g = rng(seed)
    n = levels * width
    adj: list[list[int]] = [[] for _ in range(n)]
    for lv in range(levels - 1):
        base, nxt = lv * width, (lv + 1) * width
        for i in range(width):
            node = base + i
            outs = g.integers(0, width, fan_out)
            adj[node].extend(int(nxt + o) for o in outs)
            # one intra-layer edge for irregularity
            adj[node].append(int(base + ((i + 1) % width)))
    # make sure layer 0 is reachable from the source
    for i in range(1, width):
        adj[0].append(i)
    row = np.zeros(n + 1, dtype=np.int32)
    cols: list[int] = []
    for i, outs in enumerate(adj):
        uniq = sorted(set(outs) - {i})
        cols.extend(uniq)
        row[i + 1] = len(cols)
    return row, np.asarray(cols, dtype=np.int32), n


def banded_csr(
    nrows: int, band: int, nnz_per_row: int, seed: int = 0
) -> tuple:
    """A banded random sparse matrix in CSR (SPMV workload).

    Column indices stay within ``band`` of the diagonal, giving the
    gathered ``x`` vector the spatial locality a texture cache can catch
    (the paper's MD/SPMV texture result needs reuse to exist).
    Returns ``(rowptr s32[n+1], cols s32[m], vals f32[m])``.
    """
    g = rng(seed)
    rowptr = np.zeros(nrows + 1, dtype=np.int32)
    cols: list[int] = []
    vals: list[float] = []
    for r in range(nrows):
        lo = max(0, r - band)
        hi = min(nrows - 1, r + band)
        k = min(nnz_per_row, hi - lo + 1)
        cs = np.sort(g.choice(np.arange(lo, hi + 1), size=k, replace=False))
        cols.extend(int(c) for c in cs)
        vals.extend(float(v) for v in g.normal(0, 1, k))
        rowptr[r + 1] = len(cols)
    return (
        rowptr,
        np.asarray(cols, dtype=np.int32),
        np.asarray(vals, dtype=np.float32),
    )


def clustered_positions(n: int, seed: int = 0) -> tuple:
    """Atom positions laid out cluster-by-cluster (MD workload).

    Spatially-sorted positions give neighbor gathers locality — again,
    what the texture cache exploits.
    Returns ``(px, py, pz)`` f32 arrays.
    """
    g = rng(seed)
    per = 8
    clusters = -(-n // per)
    centers = g.uniform(0, 20, (clusters, 3))
    pts = centers.repeat(per, axis=0)[:n] + g.normal(0, 0.4, (n, 3))
    pts = pts.astype(np.float32)
    return pts[:, 0].copy(), pts[:, 1].copy(), pts[:, 2].copy()


def neighbor_lists(n: int, k: int, seed: int = 0) -> np.ndarray:
    """k nearest-ish neighbors per atom, as an s32[n*k] index array."""
    g = rng(seed)
    idx = np.empty((n, k), dtype=np.int32)
    for i in range(n):
        lo = max(0, i - k)
        hi = min(n, i + k + 1)
        cand = np.setdiff1d(np.arange(lo, hi), [i])
        if cand.size < k:
            cand = np.concatenate([cand, g.integers(0, n, k - cand.size)])
        idx[i] = g.choice(cand, size=k, replace=False)
    return idx.reshape(-1)
