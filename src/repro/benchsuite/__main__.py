"""CLI: run benchmarks directly.

    python -m repro.benchsuite Sobel FFT --device GTX280 --api both
    python -m repro.benchsuite --all --device GTX480 --size small --jobs 4

Runs go through the :mod:`repro.exec` sweep engine: each (benchmark,
api) pair is one work unit, cold units fan out over ``--jobs`` worker
processes, and results are memoized in the content-addressed cache
(disable with ``--no-cache``).
"""
from __future__ import annotations

import argparse

from .. import exec as rexec
from .. import telemetry
from ..arch.specs import ALL_DEVICES
from ..errors import UnitFailed
from ..telemetry import spans as tspans
from .registry import REAL_WORLD, REGISTRY, SYNTHETIC


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.benchsuite",
        description="Run Table II benchmarks on the simulated devices",
    )
    ap.add_argument("names", nargs="*", help=f"benchmarks: {', '.join(REGISTRY)}")
    ap.add_argument("--all", action="store_true", help="run every benchmark")
    ap.add_argument("--device", default="GTX480", choices=sorted(ALL_DEVICES))
    ap.add_argument("--api", default="both", choices=["cuda", "opencl", "both"])
    ap.add_argument("--size", default="default", choices=["small", "default"])
    ap.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan cold work units out over N worker processes",
    )
    ap.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    ap.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this run",
    )
    ap.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="cut any single work unit off after SEC wall-clock seconds",
    )
    ap.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry a unit up to N times on transient failures (default 2)",
    )
    telemetry.add_telemetry_arguments(ap)
    args = ap.parse_args(argv)

    names = (SYNTHETIC + REAL_WORLD) if args.all else args.names
    if not names:
        ap.error("give benchmark names or --all")
    spec = ALL_DEVICES[args.device]
    apis = ["cuda", "opencl"] if args.api == "both" else [args.api]
    if "cuda" in apis and not spec.supports_cuda():
        print(f"note: {spec.name} is not CUDA-capable; running OpenCL only")
        apis = ["opencl"]

    cache = None if args.no_cache else (args.cache_dir or rexec.default_cache_dir())
    executor = rexec.SweepExecutor(
        jobs=args.jobs, cache=cache, timeout=args.timeout,
        retries=args.retries, progress=not args.quiet,
    )
    units = [
        rexec.make_unit(name, api, spec, args.size)
        for name in names
        for api in apis
    ]

    print(f"{'benchmark':10s} {'api':7s} {'value':>12s} {'unit':14s} "
          f"{'kernel':>10s} {'status':6s}")
    print("-" * 66)
    rc = 0
    tr = telemetry.start_run(args, "repro.benchsuite")
    with rexec.use_executor(executor), tspans.use_tracer(tr):
        executor.prewarm(units)
        for unit in units:
            try:
                r = executor.run_unit(unit).bench
            except UnitFailed as e:
                # terminal engine failure (crash/timeout/...): one row,
                # not a dead CLI — the remaining units still run
                rc = 1
                print(
                    f"{unit.benchmark:10s} {unit.api:7s} {'-':>12s} {'-':14s} "
                    f"{'-':>10s} {e.kind.value:6s}"
                )
                continue
            status = "ok" if r.ok() else (r.failure or "FL")
            if not r.ok():
                rc = 1
            kern = "-" if r.kernel_seconds != r.kernel_seconds else (
                f"{r.kernel_seconds * 1e6:.1f}us"
            )
            val = "-" if r.value != r.value else f"{r.value:.4g}"
            print(
                f"{unit.benchmark:10s} {unit.api:7s} {val:>12s} {r.unit:14s} "
                f"{kern:>10s} {status:6s}"
            )
        if executor.stats.failures:
            from ..prof.report import render_failures

            print(render_failures(executor.stats))
    telemetry.finish_run(
        args, tr, "repro.benchsuite", executor=executor, cache_dir=cache
    )
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
