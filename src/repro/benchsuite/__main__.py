"""CLI: run benchmarks directly.

    python -m repro.benchsuite Sobel FFT --device GTX280 --api both
    python -m repro.benchsuite --all --device GTX480 --size small
"""
from __future__ import annotations

import argparse

from ..arch.specs import ALL_DEVICES
from .base import host_for
from .registry import REAL_WORLD, REGISTRY, SYNTHETIC, get_benchmark


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.benchsuite",
        description="Run Table II benchmarks on the simulated devices",
    )
    ap.add_argument("names", nargs="*", help=f"benchmarks: {', '.join(REGISTRY)}")
    ap.add_argument("--all", action="store_true", help="run every benchmark")
    ap.add_argument("--device", default="GTX480", choices=sorted(ALL_DEVICES))
    ap.add_argument("--api", default="both", choices=["cuda", "opencl", "both"])
    ap.add_argument("--size", default="default", choices=["small", "default"])
    args = ap.parse_args(argv)

    names = (SYNTHETIC + REAL_WORLD) if args.all else args.names
    if not names:
        ap.error("give benchmark names or --all")
    spec = ALL_DEVICES[args.device]
    apis = ["cuda", "opencl"] if args.api == "both" else [args.api]
    if "cuda" in apis and not spec.supports_cuda():
        print(f"note: {spec.name} is not CUDA-capable; running OpenCL only")
        apis = ["opencl"]

    print(f"{'benchmark':10s} {'api':7s} {'value':>12s} {'unit':14s} "
          f"{'kernel':>10s} {'status':6s}")
    print("-" * 66)
    rc = 0
    for name in names:
        for api in apis:
            r = get_benchmark(name).run(host_for(api, spec), size=args.size)
            status = "ok" if r.ok() else (r.failure or "FL")
            if not r.ok():
                rc = 1
            kern = "-" if r.kernel_seconds != r.kernel_seconds else (
                f"{r.kernel_seconds * 1e6:.1f}us"
            )
            val = "-" if r.value != r.value else f"{r.value:.4g}"
            print(
                f"{name:10s} {api:7s} {val:>12s} {r.unit:14s} "
                f"{kern:>10s} {status:6s}"
            )
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
