"""CLI: run benchmarks directly.

    python -m repro.benchsuite Sobel FFT --device GTX280 --api both
    python -m repro.benchsuite --all --device GTX480 --size small --jobs 4

Runs go through the :mod:`repro.exec` sweep engine: each (benchmark,
api) pair is one work unit, cold units fan out over ``--jobs`` worker
processes, and results are memoized in the content-addressed cache
(disable with ``--no-cache``).

The run is crash-safe: a journal under the cache dir records every
unit start/finish, SIGINT/SIGTERM drain gracefully (exit 75 =
resumable), and ``--resume`` reruns only what the interrupted run did
not finish.  ``--results-json`` writes a canonical, wall-clock-free
result document that is byte-identical however the results were
obtained (cold, warm, parallel, or interrupted-then-resumed).
"""
from __future__ import annotations

import argparse
import sys

from .. import exec as rexec
from .. import telemetry
from ..arch.specs import ALL_DEVICES
from ..errors import SweepInterrupted, UnitFailed
from ..exec import lifecycle
from ..telemetry import spans as tspans
from .registry import REAL_WORLD, REGISTRY, SYNTHETIC


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.benchsuite",
        description="Run Table II benchmarks on the simulated devices",
    )
    ap.add_argument("names", nargs="*", help=f"benchmarks: {', '.join(REGISTRY)}")
    ap.add_argument("--all", action="store_true", help="run every benchmark")
    ap.add_argument("--device", default="GTX480", choices=sorted(ALL_DEVICES))
    ap.add_argument("--api", default="both", choices=["cuda", "opencl", "both"])
    ap.add_argument("--size", default="default", choices=["small", "default"])
    ap.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan cold work units out over N worker processes",
    )
    ap.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    ap.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this run",
    )
    ap.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="cut any single work unit off after SEC wall-clock seconds",
    )
    ap.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry a unit up to N times on transient failures (default 2)",
    )
    ap.add_argument(
        "--results-json", default=None, metavar="FILE",
        help="write all results as canonical JSON (deterministic bytes; "
        "skipped when the run is interrupted)",
    )
    ap.add_argument(
        "--variants", action="store_true",
        help="also generate and run every legal rewrite-rule variant of "
        "each benchmark's kernels (repro.kir.rewrite), comparing each "
        "variant's output to its baseline",
    )
    ap.add_argument(
        "--check-variants", action="store_true",
        help="like --variants, but any semantics-preservation violation "
        "(variant output differs from baseline) fails the run",
    )
    ap.add_argument(
        "--variant-manifest", default=None, metavar="FILE",
        help="write the variant differential results as a JSON artifact",
    )
    lifecycle.add_lifecycle_arguments(ap)
    telemetry.add_telemetry_arguments(ap)
    args = ap.parse_args(argv)

    names = (SYNTHETIC + REAL_WORLD) if args.all else args.names
    if not names:
        ap.error("give benchmark names or --all")
    spec = ALL_DEVICES[args.device]
    apis = ["cuda", "opencl"] if args.api == "both" else [args.api]
    if "cuda" in apis and not spec.supports_cuda():
        print(f"note: {spec.name} is not CUDA-capable; running OpenCL only")
        apis = ["opencl"]

    cache = None if args.no_cache else (args.cache_dir or rexec.default_cache_dir())
    tr = telemetry.start_run(args, "repro.benchsuite")
    journal, replay = lifecycle.open_journal(
        args, cache, tr.trace_id, "repro.benchsuite", argv
    )
    executor = rexec.SweepExecutor(
        jobs=args.jobs, cache=cache, timeout=args.timeout,
        retries=args.retries, progress=telemetry.progress_mode(args),
        journal=journal, resumed=replay,
        preflight=not args.no_preflight, grace=args.grace,
    )
    if replay is not None and executor.cache is not None:
        executor.cache.purge_tmp()
    units = [
        rexec.make_unit(name, api, spec, args.size)
        for name in names
        for api in apis
    ]

    print(f"{'benchmark':10s} {'api':7s} {'value':>12s} {'unit':14s} "
          f"{'kernel':>10s} {'status':6s}")
    print("-" * 66)
    rc = 0
    results = []
    with rexec.use_executor(executor), tspans.use_tracer(tr), \
            lifecycle.GracefulShutdown(executor, grace=args.grace) as shutdown:
        executor.prewarm(units)
        for unit in units:
            try:
                ur = executor.run_unit(unit)
            except UnitFailed as e:
                # terminal engine failure (crash/timeout/...): one row,
                # not a dead CLI — the remaining units still run
                rc = 1
                print(
                    f"{unit.benchmark:10s} {unit.api:7s} {'-':>12s} {'-':14s} "
                    f"{'-':>10s} {e.kind.value:6s}"
                )
                continue
            except SweepInterrupted:
                # draining: this unit is cold and stays that way;
                # --resume will simulate it
                print(
                    f"{unit.benchmark:10s} {unit.api:7s} {'-':>12s} {'-':14s} "
                    f"{'-':>10s} {'INT':6s}"
                )
                continue
            results.append(ur)
            r = ur.bench
            status = "ok" if r.ok() else (r.failure or "FL")
            if not r.ok():
                rc = 1
            kern = "-" if r.kernel_seconds != r.kernel_seconds else (
                f"{r.kernel_seconds * 1e6:.1f}us"
            )
            val = "-" if r.value != r.value else f"{r.value:.4g}"
            print(
                f"{unit.benchmark:10s} {unit.api:7s} {val:>12s} {r.unit:14s} "
                f"{kern:>10s} {status:6s}"
            )
        checks = []
        if args.variants or args.check_variants:
            for unit in units:
                try:
                    checks.extend(
                        rexec.check_unit_variants(
                            executor, unit, preflight=not args.no_preflight
                        )
                    )
                except UnitFailed:
                    rc = 1  # baseline itself died; nothing to compare against
                except SweepInterrupted:
                    break
            if checks:
                bad = sum(c.violation for c in checks)
                print(f"\nvariants ({len(checks)} checked, {bad} violations):")
                print(rexec.render_checks(checks))
                if bad and args.check_variants:
                    rc = 1
        if executor.stats.failures:
            from ..prof.report import render_failures

            print(render_failures(executor.stats))
    interrupted = shutdown.interrupted or executor.draining
    state, code = lifecycle.run_outcome(interrupted, rc)
    if journal is not None:
        journal.close(state)
    if interrupted:
        tr.abandon("interrupted")
        print(
            f"run interrupted; resume with: --resume {tr.trace_id}",
            file=sys.stderr,
        )
    elif args.results_json:
        # only a *complete* run writes the canonical artifact: a partial
        # document must never masquerade as the sweep's results
        with open(args.results_json, "w") as f:
            f.write(rexec.canonical_results_json(results))
    if args.variant_manifest and not interrupted:
        with open(args.variant_manifest, "w") as f:
            f.write(rexec.variant_manifest(checks))
    telemetry.finish_run(
        args, tr, "repro.benchsuite", executor=executor, cache_dir=cache,
        lifecycle=lifecycle.lifecycle_summary(
            state, code, journal=journal, replay=replay, executor=executor
        ),
    )
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
