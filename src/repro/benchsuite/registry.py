"""Benchmark registry — the paper's Table II, programmatically.

``REGISTRY`` maps benchmark name -> class; ``TABLE2`` carries the
metadata columns (suite of origin, dwarf class, metric) so reports can
render the table.  ``REAL_WORLD`` lists the 14 applications of Fig. 3 /
Table VI in the paper's column order.
"""
from __future__ import annotations

import dataclasses

from .apps.bfs import BFS
from .apps.dxtc import DXTC
from .apps.fdtd import FDTD
from .apps.fft import FFT
from .apps.md import MD
from .apps.mxm import MxM
from .apps.rdxs import RdxS
from .apps.reduce import Reduce
from .apps.scan import Scan
from .apps.sobel import Sobel
from .apps.spmv import SPMV
from .apps.st2d import St2D
from .apps.stnw import STNW
from .apps.tranp import TranP
from .base import Benchmark
from .synthetic.devicememory import DeviceMemory
from .synthetic.maxflops import MaxFlops

__all__ = ["REGISTRY", "TABLE2", "REAL_WORLD", "SYNTHETIC", "get_benchmark"]


@dataclasses.dataclass(frozen=True)
class Table2Row:
    name: str
    suite: str
    dwarf: str
    metric: str
    description: str


TABLE2 = [
    Table2Row("BFS", "Rodinia", "Graph Traversal", "sec", "Graph breadth first search"),
    Table2Row("Sobel", "SELF", "Dense Linear Algebra", "sec", "Sobel operator on a gray image in X direction"),
    Table2Row("TranP", "SELF", "Dense Linear Algebra", "GB/sec", "Matrix transposition with shared memory"),
    Table2Row("Reduce", "SHOC", "Reduce", "GB/sec", "Calculate a reduction of an array"),
    Table2Row("FFT", "SHOC", "Spectral Methods", "GFlops/sec", "Fast Fourier Transform"),
    Table2Row("MD", "SHOC", "N-Body Methods", "GFlops/sec", "Molecular dynamics"),
    Table2Row("SPMV", "SHOC", "Sparse Linear Algebra", "GFlops/sec", "Multiplication of sparse matrix and vector (CSR)"),
    Table2Row("St2D", "SHOC", "Structured Grids", "sec", "A two-dimensional nine point stencil calculation"),
    Table2Row("DXTC", "NSDK", "Dense Linear Algebra", "MPixels/sec", "High quality DXT compression"),
    Table2Row("RdxS", "NSDK", "Sort", "MElements/sec", "Radix sort"),
    Table2Row("Scan", "NSDK", "Scan", "MElements/sec", "Get prefix sum of an array"),
    Table2Row("STNW", "NSDK", "Sort", "MElements/sec", "Use comparator networks to sort an array"),
    Table2Row("MxM", "NSDK", "Dense Linear Algebra", "GFlops/sec", "Matrix multiplication"),
    Table2Row("FDTD", "NSDK", "Structured Grids", "MPoints/sec", "Finite-difference time-domain method"),
]

REGISTRY: dict = {
    cls.name: cls
    for cls in (
        MaxFlops,
        DeviceMemory,
        BFS,
        Sobel,
        TranP,
        Reduce,
        FFT,
        MD,
        SPMV,
        St2D,
        DXTC,
        RdxS,
        Scan,
        STNW,
        MxM,
        FDTD,
    )
}

SYNTHETIC = ["MaxFlops", "DeviceMemory"]
#: Fig. 3 / Table VI column order
REAL_WORLD = [r.name for r in TABLE2]


def get_benchmark(name: str) -> Benchmark:
    try:
        return REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(REGISTRY)}"
        ) from None
