"""Benchmark infrastructure: host-API adapters and the benchmark base.

The paper's fairness methodology (§IV-C, step 3) requires the CUDA and
OpenCL versions of a benchmark to use "similar APIs to access the same
type of hardware resources" and the same timers.  We enforce that
structurally: each benchmark writes its host logic *once* against
:class:`HostAPI`; the two adapters map it onto the CUDA runtime and the
OpenCL runtime.  Differences that remain — kernel dialect, front-end
compiler, launch overheads, texture/constant-memory availability — are
exactly the differences the paper studies.
"""
from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from ..arch.specs import DeviceSpec
from ..errors import FailureKind, classify
from ..kir.dialect import CUDA, Dialect, OPENCL
from ..kir.stmt import Kernel as KirKernel
from ..kir.types import Scalar
from ..runtime.cuda.api import CudaContext, CudaError, DevicePointer
from ..runtime.opencl import api as cl

__all__ = [
    "HostAPI",
    "CudaHost",
    "OpenCLHost",
    "host_for",
    "Benchmark",
    "BenchResult",
    "Metric",
]


@dataclasses.dataclass(frozen=True)
class Metric:
    """A benchmark's performance metric (Table II column 4)."""

    unit: str
    higher_is_better: bool = True


@dataclasses.dataclass
class BenchResult:
    benchmark: str
    api: str  # "cuda" | "opencl"
    device: str
    value: float  # in Metric.unit
    unit: str
    kernel_seconds: float
    wall_seconds: float
    launches: int
    correct: bool
    failure: Optional[str] = None  # "ABT" / "FL" / error code
    detail: dict = dataclasses.field(default_factory=dict)

    def ok(self) -> bool:
        return self.failure is None and self.correct


class HostAPI(abc.ABC):
    """Uniform host-side surface over the two runtimes."""

    api_name: str
    dialect: Dialect

    @property
    @abc.abstractmethod
    def spec(self) -> DeviceSpec: ...

    @abc.abstractmethod
    def build(self, kernels: Sequence[KirKernel], defines: Optional[Mapping] = None) -> None:
        """Compile kernels for this device (step 5/6 of the flow)."""

    @abc.abstractmethod
    def alloc(self, count: int, elem: Scalar = Scalar.F32): ...

    @abc.abstractmethod
    def write(self, buf, host: np.ndarray) -> None: ...

    @abc.abstractmethod
    def read(self, buf, count: int) -> np.ndarray: ...

    @abc.abstractmethod
    def launch(self, name: str, global_threads, wg, **args) -> float:
        """Run a kernel over ``global_threads`` work-items grouped in
        ``wg``-sized groups; returns the device-side kernel seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """Virtual host clock (for end-to-end timings)."""

    # shared bookkeeping
    kernel_seconds = 0.0
    launch_count = 0

    @property
    def warp_size(self) -> int:
        return self.spec.warp_width

    def reset_clock(self) -> None:
        self._t0 = self.now()

    def elapsed(self) -> float:
        return self.now() - getattr(self, "_t0", 0.0)


def _dims(global_threads, wg):
    g = global_threads if isinstance(global_threads, tuple) else (global_threads,)
    l = wg if isinstance(wg, tuple) else (wg,)
    g = g + (1,) * (3 - len(g))
    l = l + (1,) * (3 - len(l))
    return g, l


class CudaHost(HostAPI):
    api_name = "cuda"
    dialect = CUDA

    def __init__(self, spec: DeviceSpec):
        self.ctx = CudaContext(spec)
        self.fns: dict = {}
        self.kernel_seconds = 0.0
        self.launch_count = 0

    @property
    def spec(self) -> DeviceSpec:
        return self.ctx.spec

    def build(self, kernels, defines=None) -> None:
        for k in kernels:
            self.fns[k.name] = self.ctx.compile(k)

    def alloc(self, count, elem=Scalar.F32):
        return self.ctx.malloc(count, elem)

    def write(self, buf, host) -> None:
        self.ctx.memcpy_htod(buf, host)

    def read(self, buf, count) -> np.ndarray:
        return self.ctx.memcpy_dtoh(buf, count)

    def launch(self, name, global_threads, wg, **args) -> float:
        g, l = _dims(global_threads, wg)
        grid = tuple(-(-gi // li) for gi, li in zip(g, l))
        res = self.ctx.launch(self.fns[name], grid, l, args)
        self.kernel_seconds += res.kernel_seconds
        self.launch_count += 1
        return res.kernel_seconds

    def now(self) -> float:
        return self.ctx.now


class OpenCLHost(HostAPI):
    api_name = "opencl"
    dialect = OPENCL

    def __init__(self, spec: DeviceSpec):
        self.clctx = cl.create_context_for(spec.name)
        self.queue = cl.CommandQueue(self.clctx)
        self.kernels: dict = {}
        self.kernel_seconds = 0.0
        self.launch_count = 0
        self.program: Optional[cl.Program] = None

    @property
    def spec(self) -> DeviceSpec:
        return self.clctx.device.spec

    def build(self, kernels, defines=None) -> None:
        self.program = cl.Program(self.clctx, list(kernels)).build(defines)
        for k in kernels:
            self.kernels[k.name] = self.program.kernel(k.name)

    def alloc(self, count, elem=Scalar.F32):
        return cl.Buffer.create(self.clctx, count, elem)

    def write(self, buf, host) -> None:
        self.queue.enqueue_write_buffer(buf, host)

    def read(self, buf, count) -> np.ndarray:
        arr, _ = self.queue.enqueue_read_buffer(buf, count)
        return arr

    def launch(self, name, global_threads, wg, **args) -> float:
        g, l = _dims(global_threads, wg)
        # OpenCL global sizes count work-items and must be padded to a
        # multiple of the work-group size (the usual host idiom)
        gsz = tuple(-(-gi // li) * li for gi, li in zip(g, l))
        kern = self.kernels[name]
        kern.set_args(**args)
        ev = self.queue.enqueue_nd_range(kern, gsz, l)
        self.kernel_seconds += ev.kernel_seconds
        self.launch_count += 1
        return ev.kernel_seconds

    def now(self) -> float:
        return self.queue.now


def host_for(api: str, spec: DeviceSpec) -> HostAPI:
    if api == "cuda":
        return CudaHost(spec)
    if api == "opencl":
        return OpenCLHost(spec)
    raise ValueError(f"unknown API {api!r}")


class Benchmark(abc.ABC):
    """One of the paper's Table II applications.

    Subclasses provide kernels (per dialect, honoring ``options`` such as
    ``use_texture``/``use_constant``/unroll pragmas) and a host driver
    shared by both APIs.
    """

    name: str
    metric: Metric
    #: options accepted by ``kernels`` and their defaults per dialect;
    #: asymmetric defaults reproduce the paper's "as shipped" comparisons
    default_options: dict = {}

    @abc.abstractmethod
    def kernels(
        self, dialect: Dialect, options: Mapping, defines: Mapping, params: Mapping
    ) -> list[KirKernel]: ...

    def build_kernels(
        self, dialect: Dialect, options: Mapping, defines: Mapping, params: Mapping
    ) -> list[KirKernel]:
        """Kernels after variant rewriting — the single build entry point.

        Every consumer of a benchmark's kernels (host runs, fingerprints,
        the ABT preflight) goes through here, so a ``rewrite`` option —
        a :mod:`repro.kir.rewrite` token like ``sobel!promote:filt`` —
        is applied uniformly and the exec-layer digest automatically
        covers the rewritten sources.  (The key is ``rewrite`` rather
        than ``variant`` because some benchmarks — SPMV — already use
        ``variant`` for their own algorithmic alternatives.)
        """
        kerns = self.kernels(dialect, options, defines, params)
        token = options.get("rewrite") if options else None
        if token:
            from ..kir.rewrite import apply_variant

            kerns = apply_variant(kerns, token)
        return kerns

    @abc.abstractmethod
    def sizes(self) -> dict:
        """Named problem sizes: {"small": {...}, "default": {...}}."""

    @abc.abstractmethod
    def host_run(self, api: HostAPI, params: Mapping, options: Mapping) -> BenchResult:
        """Allocate, transfer, launch, verify; return the result."""

    # -- orchestration ------------------------------------------------------
    def options_for(self, dialect: Dialect, overrides: Optional[Mapping]) -> dict:
        opts = {}
        for key, per_dialect in self.default_options.items():
            if isinstance(per_dialect, dict):
                opts[key] = per_dialect[dialect.name]
            else:
                opts[key] = per_dialect
        if overrides:
            opts.update(overrides)
        return opts

    def defines_for(self, api: HostAPI) -> dict:
        """Build-time macros; SDK-style code bakes the wavefront width."""
        return {"WARP_SIZE": api.spec.warp_width}

    def run(
        self,
        api: HostAPI,
        size: str = "default",
        options: Optional[Mapping] = None,
    ) -> BenchResult:
        params = self.sizes()[size]
        opts = self.options_for(api.dialect, options)
        defines = self.defines_for(api)
        kerns = self.build_kernels(api.dialect, opts, defines, params)
        try:
            api.build(kerns, defines)
        except (cl.CLError, CudaError) as e:
            return self._failure(api, e)
        try:
            return self.host_run(api, params, opts)
        except (cl.CLError, CudaError) as e:
            return self._failure(api, e)

    def _failure(self, api: HostAPI, err) -> BenchResult:
        """Record a failed run, classifying the error structurally.

        Resource aborts (``repro.errors.classify(err) is ABT``) keep the
        paper's byte-compatible "ABT" tag; everything else surfaces its
        driver error code.  ``err`` may also be a pre-computed tag
        string for benchmarks that detect failure without an exception.
        """
        if isinstance(err, BaseException):
            if classify(err) is FailureKind.ABT:
                tag = "ABT"
            else:
                tag = str(getattr(err, "code", None) or err)
        else:
            tag = str(err)
        return BenchResult(
            benchmark=self.name,
            api=api.api_name,
            device=api.spec.name,
            value=float("nan"),
            unit=self.metric.unit,
            kernel_seconds=float("nan"),
            wall_seconds=float("nan"),
            launches=0,
            correct=False,
            failure=tag,
        )

    def result(
        self,
        api: HostAPI,
        value: float,
        kernel_seconds: float,
        correct: bool,
        wall: float = 0.0,
        detail: Optional[dict] = None,
    ) -> BenchResult:
        return BenchResult(
            benchmark=self.name,
            api=api.api_name,
            device=api.spec.name,
            value=value,
            unit=self.metric.unit,
            kernel_seconds=kernel_seconds,
            wall_seconds=wall,
            launches=api.launch_count,
            correct=correct,
            failure=None if correct else "FL",
            detail=detail or {},
        )
