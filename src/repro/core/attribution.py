"""Gap attribution — §IV-B's four-way analysis, automated.

Given a benchmark whose PR falls outside the similarity band, the
attributor re-runs targeted ablations matching the paper's analysis:

* **programming-model** (§IV-B.1): re-measure with texture memory
  removed from the CUDA version;
* **native-kernel optimizations** (§IV-B.2): equalize unroll pragmas and
  constant-memory usage across the two versions;
* **architecture** (§IV-B.3): compare the gap across device generations
  (a gap that vanishes on Fermi is a cache-hierarchy artifact);
* **compiler/runtime** (§IV-B.4): compare static instruction mixes of
  the two compiled kernels and the per-launch overhead share.

The result ranks the factors by how much of the gap each ablation
closes — the same reasoning the paper walks through manually.

Since the ``repro.prof`` subsystem landed, every factor cites the
profiler's counters from the baseline run (texture hit rate, launch
overhead share, spill traffic) instead of re-deriving the mechanisms:
the claim "texture memory explains this gap" comes with the measured
hit rate that backs it.
"""
from __future__ import annotations

import dataclasses
from typing import Optional

from ..arch.specs import DeviceSpec
from ..benchsuite.registry import get_benchmark
from .comparison import compare
from .metrics import SIMILARITY_BAND, similar

__all__ = ["Attribution", "Factor", "attribute_gap"]


@dataclasses.dataclass(frozen=True)
class Factor:
    name: str
    description: str
    #: PR after the equalizing ablation (None when not applicable)
    pr_after: Optional[float]
    #: |PR-1| reduction achieved by the ablation (0 when n/a)
    gap_closed: float


@dataclasses.dataclass
class Attribution:
    benchmark: str
    device: str
    pr_before: float
    factors: list
    #: profiler counters cited by the factor descriptions (repro.prof)
    evidence: dict = dataclasses.field(default_factory=dict)

    @property
    def dominant(self) -> Optional[Factor]:
        real = [f for f in self.factors if f.pr_after is not None]
        return max(real, key=lambda f: f.gap_closed) if real else None

    def report(self) -> str:
        lines = [
            f"{self.benchmark} on {self.device}: PR = {self.pr_before:.3f}"
        ]
        for f in sorted(
            self.factors, key=lambda f: -(f.gap_closed or 0.0)
        ):
            pr = "n/a" if f.pr_after is None else f"{f.pr_after:.3f}"
            lines.append(
                f"  {f.name:24s} PR after ablation: {pr:>6s}  "
                f"gap closed: {f.gap_closed:+.3f}"
            )
        d = self.dominant
        if d is not None:
            lines.append(f"  dominant factor: {d.name}")
        if self.evidence:
            lines.append("  profiler evidence (repro.prof):")
            for api, ev in sorted(self.evidence.items()):
                lines.append(
                    f"    {api:6s} tex hit {ev['texture_hit_rate']:.1%} "
                    f"({ev['texture_fetches']} fetches)  "
                    f"launch overhead {ev['launch_overhead_s'] * 1e6:.1f}us  "
                    f"spill {ev['spill_bytes']:.0f}B  "
                    f"tx/req {ev['transactions_per_request']:.2f}  "
                    f"bound: {ev['bound']}"
                )
        return "\n".join(lines)


def _gap(pr: float) -> float:
    return abs(1.0 - pr)


def attribute_gap(
    name: str, spec: DeviceSpec, size: str = "small"
) -> Attribution:
    """Run the ablation battery for one benchmark/device pair."""
    bench = get_benchmark(name)
    base = compare(bench, spec, size=size)
    pr0 = base.pr.pr
    factors: list = []
    opts = bench.default_options

    # profiler counters from the baseline run: the factors below cite
    # these instead of re-deriving the mechanisms they blame
    cp, olp = base.cuda_profile, base.opencl_profile
    evidence: dict = {}
    for api, prof in (("cuda", cp), ("opencl", olp)):
        if prof is None:
            continue
        tex = prof.caches.get("tex")
        evidence[api] = {
            "texture_fetches": tex.accesses if tex is not None else 0,
            "texture_hit_rate": prof.texture_hit_rate,
            "launch_overhead_s": prof.launch_overhead_s,
            "spill_bytes": prof.spill_bytes,
            "transactions_per_request": prof.transactions_per_request,
            "bound": prof.bound_term or prof.bound,
        }

    # programming model: texture memory (CUDA-only facility)
    if "use_texture" in opts:
        tex_note = ""
        if cp is not None and cp.caches.get("tex") is not None:
            tex = cp.caches["tex"]
            if tex.accesses:
                tex_note = (
                    f"; profiled texture hit rate {tex.hit_rate():.1%} "
                    f"over {tex.accesses} fetches"
                )
        ab = compare(
            bench, spec, size=size, cuda_options={"use_texture": False}
        )
        factors.append(
            Factor(
                "programming-model",
                "remove texture memory from the CUDA version (Fig. 5)"
                + tex_note,
                ab.pr.pr,
                _gap(pr0) - _gap(ab.pr.pr),
            )
        )
    else:
        factors.append(
            Factor("programming-model", "no texture usage to equalize", None, 0.0)
        )

    # native-kernel optimizations: constant memory / unroll pragmas
    equalized = {}
    if "use_constant" in opts:
        equalized["use_constant"] = True
    if "unroll_a" in opts:
        equalized["unroll_a"] = None
    if equalized:
        ab = compare(
            bench,
            spec,
            size=size,
            cuda_options=dict(equalized),
            opencl_options=dict(equalized),
        )
        factors.append(
            Factor(
                "native-optimizations",
                f"equalize {sorted(equalized)} in both versions (Figs. 6-8)",
                ab.pr.pr,
                _gap(pr0) - _gap(ab.pr.pr),
            )
        )
    else:
        factors.append(
            Factor(
                "native-optimizations",
                "both versions already use identical optimizations",
                None,
                0.0,
            )
        )

    # architecture: does the gap survive on the other NVIDIA generation?
    from ..arch.specs import GTX280, GTX480

    other = GTX480 if spec.name == GTX280.name else GTX280
    cross = compare(bench, other, size=size)
    factors.append(
        Factor(
            "architecture",
            f"same comparison on {other.name} (cache hierarchy, §IV-B.3)",
            cross.pr.pr,
            _gap(pr0) - _gap(cross.pr.pr),
        )
    )

    # compiler/runtime: static instruction-mix disparity as evidence
    from ..compiler import compile_cuda, compile_opencl
    from ..kir.dialect import CUDA, OPENCL
    from ..ptx.stats import class_totals, histogram

    ck = bench.kernels(CUDA, bench.options_for(CUDA, None), {"WARP_SIZE": 32}, bench.sizes()[size])[0]
    ok_ = bench.kernels(OPENCL, bench.options_for(OPENCL, None), {"WARP_SIZE": 32}, bench.sizes()[size])[0]
    hc = class_totals(histogram(compile_cuda(ck, spec.max_regs_per_thread)))
    ho = class_totals(
        histogram(compile_opencl(ok_, spec.max_regs_per_thread))
    )
    tc, to = sum(hc.values()), sum(ho.values())
    imbalance = abs(to - tc) / max(tc, 1)
    spill_note = ""
    if cp is not None and olp is not None and (cp.spill_bytes or olp.spill_bytes):
        spill_note = (
            f"; profiled spill traffic CUDA={cp.spill_bytes:.0f}B "
            f"OpenCL={olp.spill_bytes:.0f}B"
        )
    factors.append(
        Factor(
            "compiler",
            f"static instruction count CUDA={tc} OpenCL={to} "
            f"(front-end maturity, Table V)" + spill_note,
            None,
            min(imbalance, _gap(pr0)),
        )
    )

    # runtime: per-launch overhead, measured by the profiler on the
    # baseline run (the BFS mechanism of §IV-B.4)
    if cp is not None and olp is not None:
        c_share = cp.launch_overhead_s / max(
            cp.launch_overhead_s + cp.total_s, 1e-12
        )
        o_share = olp.launch_overhead_s / max(
            olp.launch_overhead_s + olp.total_s, 1e-12
        )
        factors.append(
            Factor(
                "runtime-overhead",
                f"profiled launch overhead "
                f"CUDA {cp.launch_overhead_s * 1e6:.1f}us "
                f"({c_share:.1%} of device time) vs "
                f"OpenCL {olp.launch_overhead_s * 1e6:.1f}us "
                f"({o_share:.1%}) — §IV-B.4",
                None,
                min(max(o_share - c_share, 0.0), _gap(pr0)),
            )
        )

    return Attribution(name, spec.name, pr0, factors, evidence=evidence)
