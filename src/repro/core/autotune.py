"""Parameter auto-tuner — the paper's proposed future work (§VI).

"We would like to develop an auto-tuner to adapt general-purpose OpenCL
programs to all available specific platforms."  This is a small,
honest version of that: exhaustive search over user-supplied discrete
parameter axes (work-group size, unroll factors, optimization toggles),
scoring each configuration by the benchmark's own metric on the target
device.  Deterministic simulation makes the search exactly reproducible.
"""
from __future__ import annotations

import dataclasses
import itertools
from typing import Mapping, Optional, Sequence

from ..arch.specs import DeviceSpec
from ..benchsuite.base import Benchmark, host_for
from ..benchsuite.registry import get_benchmark

__all__ = ["TuneResult", "autotune"]


@dataclasses.dataclass(frozen=True)
class TuneResult:
    benchmark: str
    device: str
    api: str
    best_options: dict
    best_value: float
    unit: str
    #: every evaluated point: (options, value or None on failure)
    trace: tuple

    def speedup_over(self, baseline_value: float, higher_is_better: bool = True) -> float:
        if higher_is_better:
            return self.best_value / baseline_value
        return baseline_value / self.best_value


def autotune(
    benchmark,
    spec: DeviceSpec,
    axes: Mapping[str, Sequence],
    api: str = "opencl",
    size: str = "small",
) -> TuneResult:
    """Exhaustively tune ``axes`` (option name -> candidate values)."""
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    assert isinstance(benchmark, Benchmark)
    names = sorted(axes)
    best_opts: Optional[dict] = None
    best_val: Optional[float] = None
    trace = []
    for combo in itertools.product(*(axes[n] for n in names)):
        opts = dict(zip(names, combo))
        try:
            res = benchmark.run(host_for(api, spec), size=size, options=opts)
        except Exception:
            trace.append((opts, None))
            continue
        if not res.ok():
            trace.append((opts, None))
            continue
        score = res.value if benchmark.metric.higher_is_better else -res.value
        trace.append((opts, res.value))
        if best_val is None or score > (
            best_val if benchmark.metric.higher_is_better else -best_val
        ):
            best_val = res.value
            best_opts = opts
    if best_opts is None:
        raise RuntimeError(
            f"no working configuration found for {benchmark.name} on {spec.name}"
        )
    return TuneResult(
        benchmark=benchmark.name,
        device=spec.name,
        api=api,
        best_options=best_opts,
        best_value=best_val,
        unit=benchmark.metric.unit,
        trace=tuple(trace),
    )
