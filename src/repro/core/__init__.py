"""The paper's methodology as a library: PR, fairness, attribution, tuning."""
from .attribution import Attribution, Factor, attribute_gap
from .autotune import TuneResult, autotune
from .comparison import ComparisonOutcome, compare, compare_many
from .fairness import (
    ComparisonConfig,
    FairnessFinding,
    Role,
    Step,
    STEP_ROLES,
    audit,
    is_fair,
)
from .metrics import PRResult, SIMILARITY_BAND, performance_ratio, similar

__all__ = [
    "PRResult",
    "SIMILARITY_BAND",
    "performance_ratio",
    "similar",
    "ComparisonOutcome",
    "compare",
    "compare_many",
    "ComparisonConfig",
    "FairnessFinding",
    "Role",
    "Step",
    "STEP_ROLES",
    "audit",
    "is_fair",
    "Attribution",
    "Factor",
    "attribute_gap",
    "TuneResult",
    "autotune",
]
