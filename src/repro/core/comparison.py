"""Pairwise CUDA/OpenCL comparison runner.

Runs one benchmark through both runtimes on one device and produces a
:class:`~repro.core.metrics.PRResult` plus the fairness audit of the two
configurations — the machine that generates Fig. 3's bars.
"""
from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from ..arch.specs import DeviceSpec
from ..benchsuite.base import Benchmark
from ..benchsuite.registry import get_benchmark
from ..kir.dialect import CUDA, OPENCL
from .fairness import ComparisonConfig, audit, describe
from .metrics import PRResult

__all__ = ["ComparisonOutcome", "compare", "compare_many"]


@dataclasses.dataclass
class ComparisonOutcome:
    pr: PRResult
    fairness: list  # FairnessFinding items (empty = fair comparison)
    cuda_config: ComparisonConfig
    opencl_config: ComparisonConfig
    #: aggregated per-launch profiles of the two runs (repro.prof); None
    #: when the run recorded no launches (build failure etc.)
    cuda_profile: object = None
    opencl_profile: object = None

    @property
    def fair(self) -> bool:
        from .fairness import Role

        return not [f for f in self.fairness if f.role is not Role.COMPILER]


def compare(
    benchmark,
    spec: DeviceSpec,
    size: str = "default",
    cuda_options: Optional[Mapping] = None,
    opencl_options: Optional[Mapping] = None,
) -> ComparisonOutcome:
    """Run ``benchmark`` under both APIs on ``spec`` and compute the PR.

    ``cuda_options``/``opencl_options`` override the benchmark's
    per-dialect defaults — the knob the paper turns when it equalizes
    texture memory, constant memory, or unroll pragmas to make a
    comparison fair.
    """
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    assert isinstance(benchmark, Benchmark)

    from ..exec import make_unit, run_unit

    cuda_unit = run_unit(make_unit(benchmark.name, "cuda", spec, size, cuda_options))
    opencl_unit = run_unit(
        make_unit(benchmark.name, "opencl", spec, size, opencl_options)
    )
    cuda_res, cuda_prof = cuda_unit.bench, cuda_unit.profile
    opencl_res, opencl_prof = opencl_unit.bench, opencl_unit.profile

    params = benchmark.sizes()[size]
    c_opts = benchmark.options_for(CUDA, cuda_options)
    o_opts = benchmark.options_for(OPENCL, opencl_options)
    wg = c_opts.get("wg", "default")
    c_cfg = describe(benchmark.name, "cuda", spec.name, c_opts, params, wg)
    o_cfg = describe(benchmark.name, "opencl", spec.name, o_opts, params, wg)

    return ComparisonOutcome(
        pr=PRResult.from_pair(cuda_res, opencl_res, benchmark.metric),
        fairness=audit(c_cfg, o_cfg),
        cuda_config=c_cfg,
        opencl_config=o_cfg,
        cuda_profile=cuda_prof,
        opencl_profile=opencl_prof,
    )


def compare_many(
    names, specs, size: str = "default"
) -> dict:
    """PR matrix over benchmarks x devices: {(name, device): outcome}."""
    out = {}
    for name in names:
        for spec in specs:
            out[(name, spec.name)] = compare(name, spec, size=size)
    return out
