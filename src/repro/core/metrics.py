"""The Performance Ratio — Equation (1) of the paper.

``PR = Performance_OpenCL / Performance_CUDA``, computed on each
benchmark's own metric (Table II).  For time-valued metrics ("sec"),
performance is the reciprocal of the measurement, so PR < 1 always means
"OpenCL is slower".  The paper deems the two models *similar* when
``|1 - PR| < 0.1``.
"""
from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..benchsuite.base import BenchResult, Metric

__all__ = ["SIMILARITY_BAND", "performance_ratio", "PRResult", "similar"]

#: the paper's similarity threshold: |1 - PR| < 0.1
SIMILARITY_BAND = 0.1


def _as_performance(value: float, metric: Metric) -> float:
    """Convert a measurement to a 'higher is better' performance number."""
    if metric.higher_is_better:
        return value
    if value <= 0:
        raise ValueError(f"non-positive time measurement: {value}")
    return 1.0 / value


def performance_ratio(
    opencl_value: float, cuda_value: float, metric: Metric
) -> float:
    """Equation (1) on raw metric values."""
    po = _as_performance(opencl_value, metric)
    pc = _as_performance(cuda_value, metric)
    if pc == 0:
        raise ValueError("CUDA performance is zero; PR undefined")
    return po / pc


def similar(pr: float, band: float = SIMILARITY_BAND) -> bool:
    """The paper's similarity criterion ``|1 - PR| < band``."""
    return abs(1.0 - pr) < band


@dataclasses.dataclass(frozen=True)
class PRResult:
    """A paired CUDA/OpenCL measurement with its PR."""

    benchmark: str
    device: str
    cuda: BenchResult
    opencl: BenchResult
    pr: float

    @property
    def similar(self) -> bool:
        return similar(self.pr)

    @property
    def verdict(self) -> str:
        if math.isnan(self.pr):
            return "n/a"
        if self.similar:
            return "similar"
        return "OpenCL slower" if self.pr < 1 else "OpenCL faster"

    @classmethod
    def from_pair(
        cls, cuda: BenchResult, opencl: BenchResult, metric: Metric
    ) -> "PRResult":
        if cuda.benchmark != opencl.benchmark or cuda.device != opencl.device:
            raise ValueError("PR pairs must share benchmark and device")
        if not (cuda.ok() and opencl.ok()):
            pr = float("nan")
        else:
            pr = performance_ratio(opencl.value, cuda.value, metric)
        return cls(cuda.benchmark, cuda.device, cuda, opencl, pr)
