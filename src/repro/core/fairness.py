"""The eight-step fair-comparison methodology (paper §IV-C, Fig. 9).

The paper's normative contribution: a CUDA/OpenCL comparison is *fair*
exactly when all eight steps of the development flow are configured the
same.  We model the flow as data — a :class:`ComparisonConfig` records
each step's configuration for one implementation — and :func:`audit`
reports the steps on which two configurations diverge, with the paper's
role attribution (programmer / compiler / user) for each step.

``describe(benchmark, api)`` derives a configuration automatically from
a benchmark's resolved options and the toolchain, so experiments can
state *why* a given comparison is or is not fair.
"""
from __future__ import annotations

import dataclasses
import enum
from typing import Mapping, Optional

__all__ = [
    "Step",
    "Role",
    "STEP_ROLES",
    "ComparisonConfig",
    "FairnessFinding",
    "audit",
    "is_fair",
]


class Step(enum.IntEnum):
    """The eight steps of Fig. 9, in flow order."""

    PROBLEM_DESCRIPTION = 1
    ALGORITHM_TRANSLATION = 2
    IMPLEMENTATION = 3
    NATIVE_KERNEL_OPTIMIZATIONS = 4
    FIRST_STAGE_COMPILATION = 5
    SECOND_STAGE_COMPILATION = 6
    PROGRAM_CONFIGURATION = 7
    RUNNING_ON_GPUS = 8


class Role(enum.Enum):
    """Who controls a step (Fig. 9's three roles)."""

    PROGRAMMER = "programmer"
    COMPILER = "compiler"
    USER = "user"


#: the paper's role assignment: programmers own steps 1-4, compilers 5-6,
#: users 7-8
STEP_ROLES: dict = {
    Step.PROBLEM_DESCRIPTION: Role.PROGRAMMER,
    Step.ALGORITHM_TRANSLATION: Role.PROGRAMMER,
    Step.IMPLEMENTATION: Role.PROGRAMMER,
    Step.NATIVE_KERNEL_OPTIMIZATIONS: Role.PROGRAMMER,
    Step.FIRST_STAGE_COMPILATION: Role.COMPILER,
    Step.SECOND_STAGE_COMPILATION: Role.COMPILER,
    Step.PROGRAM_CONFIGURATION: Role.USER,
    Step.RUNNING_ON_GPUS: Role.USER,
}


@dataclasses.dataclass(frozen=True)
class ComparisonConfig:
    """One implementation's configuration of the eight steps.

    Each field is a hashable description of the corresponding step.
    ``native_optimizations`` is where texture memory, constant memory
    and unroll pragmas live — the paper's §IV-B gap sources (a)-(c);
    ``first_stage_compiler`` is gap source (d).
    """

    problem: str
    algorithm: str
    implementation: str  # API family + host structure
    native_optimizations: tuple  # sorted (name, value) pairs
    first_stage_compiler: str  # "nvopencc" | "clc"
    second_stage_compiler: str  # "ptxas" backend identity
    problem_parameters: tuple  # sorted (name, value) pairs
    algorithmic_parameters: tuple  # work-group size etc.
    device: str

    def step_value(self, step: Step):
        return {
            Step.PROBLEM_DESCRIPTION: self.problem,
            Step.ALGORITHM_TRANSLATION: self.algorithm,
            Step.IMPLEMENTATION: self.implementation,
            Step.NATIVE_KERNEL_OPTIMIZATIONS: self.native_optimizations,
            Step.FIRST_STAGE_COMPILATION: self.first_stage_compiler,
            Step.SECOND_STAGE_COMPILATION: self.second_stage_compiler,
            Step.PROGRAM_CONFIGURATION: (
                self.problem_parameters,
                self.algorithmic_parameters,
            ),
            Step.RUNNING_ON_GPUS: self.device,
        }[step]


@dataclasses.dataclass(frozen=True)
class FairnessFinding:
    step: Step
    role: Role
    left: object
    right: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"step {int(self.step)} ({self.step.name.lower()}, "
            f"{self.role.value}): {self.left!r} != {self.right!r}"
        )


def audit(left: ComparisonConfig, right: ComparisonConfig) -> list:
    """All steps on which the two configurations differ."""
    out = []
    for step in Step:
        lv, rv = left.step_value(step), right.step_value(step)
        if lv != rv:
            out.append(FairnessFinding(step, STEP_ROLES[step], lv, rv))
    return out


def is_fair(left: ComparisonConfig, right: ComparisonConfig, allow_compiler_steps: bool = True) -> bool:
    """The paper's definition, with one pragmatic relaxation.

    Steps 5-6 necessarily differ between CUDA and OpenCL (different
    front ends exist by construction); the paper's point is that all
    *programmer- and user-controlled* steps must match.  Pass
    ``allow_compiler_steps=False`` for the strict literal reading.
    """
    findings = audit(left, right)
    if allow_compiler_steps:
        findings = [f for f in findings if f.role is not Role.COMPILER]
    return not findings


def describe(
    benchmark_name: str,
    api_name: str,
    device: str,
    options: Mapping,
    size_params: Mapping,
    wg: object,
) -> ComparisonConfig:
    """Derive a step configuration from a benchmark run's inputs."""
    return ComparisonConfig(
        problem=benchmark_name,
        algorithm=benchmark_name,  # both dialects share one algorithm here
        implementation=f"{benchmark_name}-host-shared",
        native_optimizations=tuple(sorted((k, str(v)) for k, v in options.items())),
        first_stage_compiler="nvopencc" if api_name == "cuda" else "clc",
        second_stage_compiler="ptxas",
        problem_parameters=tuple(sorted((k, str(v)) for k, v in size_params.items())),
        algorithmic_parameters=(("wg", str(wg)),),
        device=device,
    )
