"""Typed failure taxonomy for the whole execution stack.

The paper's portability study (Table VI) is a failure-mode taxonomy:
"ABT" rows abort at enqueue with ``CL_OUT_OF_RESOURCES``; "FL" rows run
to completion with wrong results (the baked-in warp-size assumption).
This module makes those — and the operational failure modes of the
sweep engine itself (timeouts, worker crashes, cache corruption,
transient faults) — first-class typed exceptions, and provides
:func:`classify` as the single place that maps any exception onto a
:class:`FailureKind`.

Classification is structural, never textual: it reads the ``code``
attribute driver-style errors carry (``CLError``, ``LaunchFailure``)
and walks the ``__cause__`` chain, instead of substring-matching
stringified exceptions.

The module is a leaf: it imports nothing from the rest of ``repro`` so
every layer (sim, runtime, benchsuite, exec, faults) can depend on it.
"""
from __future__ import annotations

import enum
from typing import Optional

__all__ = [
    "FailureKind",
    "ReproError",
    "ResourceError",
    "ValidationError",
    "TransientError",
    "UnitTimeout",
    "WorkerCrash",
    "CacheCorruptionError",
    "UnitFailed",
    "SweepInterrupted",
    "ABORT_CODES",
    "classify",
    "is_injected",
]


class FailureKind(enum.Enum):
    """How a work unit (or a single launch) failed.

    ``ABT``/``FL`` are the paper's Table VI rows; the rest are the
    operational kinds the fault-tolerant engine distinguishes.
    """

    ABT = "ABT"  # aborted at enqueue: resource limits (CL_OUT_OF_RESOURCES)
    FL = "FL"  # functional loss: completed with wrong results
    TRANSIENT = "TRANSIENT"  # retryable fault (spurious I/O, flaky worker)
    TIMEOUT = "TIMEOUT"  # unit exceeded its wall-clock budget
    CRASH = "CRASH"  # worker process died (signal, os._exit, OOM kill)
    CACHE = "CACHE"  # on-disk result entry corrupt / wrong schema
    ERROR = "ERROR"  # anything else


#: driver error codes that mean "aborted for lack of device resources" —
#: the structural equivalent of Table VI's "ABT"
ABORT_CODES = frozenset(
    {
        "CL_OUT_OF_RESOURCES",
        "CL_MEM_OBJECT_ALLOCATION_FAILURE",
        "CUDA_ERROR_OUT_OF_RESOURCES",
        "cudaErrorLaunchOutOfResources",
    }
)


class ReproError(RuntimeError):
    """Base of the typed hierarchy.

    ``code`` is the structured driver error code when one exists;
    ``kind`` is the default classification for the class (instances may
    override).  ``injected`` marks faults planted by ``repro.faults``.
    """

    kind: FailureKind = FailureKind.ERROR
    injected: bool = False

    def __init__(self, message: str = "", code: Optional[str] = None):
        super().__init__(message)
        self.code = code


class ResourceError(ReproError):
    """Launch rejected for lack of device resources — Table VI "ABT"."""

    kind = FailureKind.ABT

    def __init__(self, message: str = "", code: str = "CL_OUT_OF_RESOURCES"):
        super().__init__(message, code=code)


class ValidationError(ReproError):
    """Ran to completion but produced wrong results — Table VI "FL"."""

    kind = FailureKind.FL


class TransientError(ReproError):
    """A fault worth retrying (the engine applies bounded backoff)."""

    kind = FailureKind.TRANSIENT


class UnitTimeout(ReproError):
    """A work unit exceeded its wall-clock budget and was cut off."""

    kind = FailureKind.TIMEOUT

    def __init__(self, message: str = "", seconds: Optional[float] = None):
        super().__init__(message)
        self.seconds = seconds


class WorkerCrash(ReproError):
    """The process executing a unit died without reporting a result."""

    kind = FailureKind.CRASH


class CacheCorruptionError(ReproError):
    """An on-disk result entry is unparseable or fails schema checks."""

    kind = FailureKind.CACHE

    def __init__(self, message: str = "", path=None):
        super().__init__(message)
        self.path = path


class UnitFailed(ReproError):
    """Raised when a unit is served from the engine's failure record.

    Carries the classified kind of the underlying failure so callers
    can render it without re-deriving; repeated requests for a
    quarantined unit raise this instead of re-executing the poison.
    """

    def __init__(
        self,
        label: str,
        kind: FailureKind,
        message: str = "",
        injected: bool = False,
    ):
        super().__init__(f"{label}: {kind.value}: {message}")
        self.label = label
        self.kind = kind
        self.injected = injected


class SweepInterrupted(ReproError):
    """The run is draining after SIGINT/SIGTERM: no new work is admitted.

    Raised when a work unit is requested while the engine is shutting
    down gracefully and the unit is not already cached.  This is not a
    unit failure — the unit was never attempted — so it carries no
    :class:`FailureKind` beyond the default; callers translate it into
    the interrupted-resumable exit code (see ``repro.exec.lifecycle``).
    """

    def __init__(self, label: str = "", message: str = ""):
        super().__init__(
            message or f"sweep draining; {label or 'unit'} not admitted"
        )
        self.label = label


def classify(exc: BaseException) -> FailureKind:
    """Map any exception onto a :class:`FailureKind`.

    Precedence: an explicit ``kind`` carried by a typed error, then a
    structured ``code`` attribute matching :data:`ABORT_CODES`, then the
    same checks down the ``__cause__``/``__context__`` chain.  Unknown
    exceptions classify as :attr:`FailureKind.ERROR` — never by
    substring-matching the message.
    """
    seen: set = set()
    e: Optional[BaseException] = exc
    while e is not None and id(e) not in seen:
        seen.add(id(e))
        kind = getattr(e, "kind", None)
        if isinstance(kind, FailureKind) and kind is not FailureKind.ERROR:
            return kind
        if getattr(e, "code", None) in ABORT_CODES:
            return FailureKind.ABT
        e = e.__cause__ if e.__cause__ is not None else e.__context__
    return FailureKind.ERROR


def is_injected(exc: BaseException) -> bool:
    """True when the exception (or its cause) was planted by repro.faults."""
    seen: set = set()
    e: Optional[BaseException] = exc
    while e is not None and id(e) not in seen:
        seen.add(id(e))
        if getattr(e, "injected", False):
            return True
        e = e.__cause__ if e.__cause__ is not None else e.__context__
    return False
