"""The virtual instruction set: opcodes and their Table-V classification.

The paper's Table V groups PTX instructions into five classes —
Arithmetic, Logic/Shift, Data Movement, Flow Control, Synchronization —
and counts each mnemonic (with loads/stores split per state space).
:func:`klass_of` and :func:`stats_key` implement exactly that taxonomy so
``repro.ptx.stats`` can print the same rows.
"""
from __future__ import annotations

import enum

from ..kir.types import AddrSpace, Scalar

__all__ = ["Op", "IClass", "klass_of", "stats_key", "is_memory", "is_load", "is_store"]


class IClass(enum.Enum):
    ARITHMETIC = "Arithmetic"
    LOGIC = "Logic/Shift"
    DATA = "Data Movement"
    FLOW = "Flow Control"
    SYNC = "Synchronization"
    OTHER = "Other"


class Op(enum.Enum):
    # arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    FMA = "fma"
    MAD = "mad"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    EX2 = "ex2"  # 2^x — exp() lowers through this, as nvcc does
    LG2 = "lg2"
    FLOOR = "floor"
    # logic / shift
    AND = "and"
    OR = "or"
    NOT = "not"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # data movement
    MOV = "mov"
    CVT = "cvt"
    LD = "ld"
    ST = "st"
    TEX = "tex"  # tex.1d fetch — data movement through the texture path
    # flow control
    SETP = "setp"
    SELP = "selp"
    BRA = "bra"
    # synchronization
    BAR = "bar"
    # structure
    EXIT = "exit"
    LABEL = "label"  # pseudo-op carrying a label name; free at run time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op.{self.name}"


_CLASS = {
    **{
        o: IClass.ARITHMETIC
        for o in (
            Op.ADD,
            Op.SUB,
            Op.MUL,
            Op.DIV,
            Op.REM,
            Op.FMA,
            Op.MAD,
            Op.NEG,
            Op.ABS,
            Op.MIN,
            Op.MAX,
            Op.SQRT,
            Op.RSQRT,
            Op.SIN,
            Op.COS,
            Op.EX2,
            Op.LG2,
            Op.FLOOR,
        )
    },
    **{o: IClass.LOGIC for o in (Op.AND, Op.OR, Op.NOT, Op.XOR, Op.SHL, Op.SHR)},
    **{o: IClass.DATA for o in (Op.MOV, Op.CVT, Op.LD, Op.ST, Op.TEX)},
    **{o: IClass.FLOW for o in (Op.SETP, Op.SELP, Op.BRA)},
    Op.BAR: IClass.SYNC,
    Op.EXIT: IClass.OTHER,
    Op.LABEL: IClass.OTHER,
}


def klass_of(op: Op) -> IClass:
    return _CLASS[op]


def is_memory(op: Op) -> bool:
    return op in (Op.LD, Op.ST, Op.TEX)


def is_load(op: Op) -> bool:
    return op in (Op.LD, Op.TEX)


def is_store(op: Op) -> bool:
    return op is Op.ST


def stats_key(op: Op, space: AddrSpace | None = None) -> str:
    """The row name Table V uses for an instruction.

    Loads and stores are split per state space (``ld.global`` etc.);
    texture fetches are reported as ``ld.tex``.
    """
    if op is Op.TEX:
        return "ld.tex"
    if op in (Op.LD, Op.ST) and space is not None:
        return f"{op.value}.{space.value}"
    return op.value
