"""Textual rendering of compiled kernels, in PTX-flavored syntax."""
from __future__ import annotations

from ..kir.types import Scalar
from .instructions import Imm, Instr, Reg
from .isa import Op
from .module import PTXKernel

__all__ = ["format_instr", "format_kernel"]

_TY = {
    Scalar.U32: "u32",
    Scalar.S32: "s32",
    Scalar.U64: "u64",
    Scalar.S64: "s64",
    Scalar.F32: "f32",
    Scalar.F64: "f64",
    Scalar.PRED: "pred",
}


def format_instr(i: Instr) -> str:
    if i.op is Op.LABEL:
        return f"{i.label}:"
    guard = ""
    if i.pred is not None:
        reg, sense = i.pred
        guard = f"@{'' if sense else '!'}{reg} "
    if i.op is Op.BRA:
        extra = f"  // reconv {i.reconv}" if i.reconv else ""
        return f"    {guard}bra {i.target};{extra}"
    if i.op is Op.BAR:
        return f"    {guard}bar.sync 0;"
    if i.op is Op.EXIT:
        return f"    {guard}exit;"
    name = i.op.value
    if i.op in (Op.LD, Op.ST) and i.space is not None:
        name = f"{name}.{i.space.value}"
    if i.op is Op.TEX:
        name = "tex.1d"
    if i.op is Op.SETP and i.cmp:
        name = f"setp.{i.cmp}"
    name = f"{name}.{_TY[i.dtype]}"
    ops = []
    if i.dst is not None:
        ops.append(str(i.dst))
    ops.extend(str(s) for s in i.srcs)
    return f"    {guard}{name} {', '.join(ops)};"


def format_kernel(k: PTXKernel) -> str:
    params = ", ".join(
        f".param .{'u64' if p.is_pointer else _TY[p.dtype]} {p.name}"
        for p in k.params
    )
    head = [
        f"// produced by {k.producer} ({k.dialect} dialect)",
        f"// regs={k.resources.registers} spill={k.resources.spill_bytes}B "
        f"shared={k.resources.shared_bytes}B",
        f".entry {k.name}({params})",
        "{",
    ]
    body = [format_instr(i) for i in k.instrs]
    return "\n".join(head + body + ["}"])
