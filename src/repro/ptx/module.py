"""Kernel and module containers for compiled code."""
from __future__ import annotations

import dataclasses
import hashlib
import pickle
from typing import Iterable, Optional

from ..kir.stmt import Kernel as KirKernel
from ..kir.types import AddrSpace, Scalar
from .instructions import Instr, Reg
from .isa import Op

__all__ = ["PTXParam", "PTXKernel", "PTXModule", "ResourceUsage"]


@dataclasses.dataclass(frozen=True)
class PTXParam:
    name: str
    dtype: Scalar
    is_pointer: bool
    space: AddrSpace = AddrSpace.GLOBAL  # pointee space for pointers


@dataclasses.dataclass
class ResourceUsage:
    """Per-thread / per-block resource footprint reported by ptxas.

    Occupancy and the Cell/BE "ABT" failures in Table VI both key off
    these numbers.
    """

    registers: int = 0
    spill_bytes: int = 0  # per-thread .local spill slots
    shared_bytes: int = 0  # static __shared__ per block
    uses_texture: bool = False


@dataclasses.dataclass
class PTXKernel:
    name: str
    params: list[PTXParam]
    instrs: list[Instr]
    resources: ResourceUsage = dataclasses.field(default_factory=ResourceUsage)
    #: shared-space declarations: name -> (elem scalar, length)
    shared_decls: dict = dataclasses.field(default_factory=dict)
    #: which front end produced this code ("nvopencc" / "clc")
    producer: str = ""
    #: dialect of the source kernel ("cuda" / "opencl")
    dialect: str = ""
    #: number of virtual registers before allocation (for diagnostics)
    virtual_regs: int = 0
    #: macros the kernel was compiled with (e.g. WARP_SIZE); informational
    defines: dict = dataclasses.field(default_factory=dict)

    def label_map(self) -> dict[str, int]:
        """Map label name -> instruction index (labels are pseudo-ops)."""
        return {
            i.label: pc for pc, i in enumerate(self.instrs) if i.op is Op.LABEL
        }

    def real_instrs(self) -> Iterable[Instr]:
        """Instructions excluding LABEL pseudo-ops."""
        return (i for i in self.instrs if i.op is not Op.LABEL)

    def static_size(self) -> int:
        return sum(1 for _ in self.real_instrs())

    def max_reg_index(self) -> int:
        hi = -1
        for i in self.instrs:
            for r in i.regs_read():
                hi = max(hi, r.idx)
            if i.dst is not None:
                hi = max(hi, i.dst.idx)
        return hi

    def pointer_params(self) -> list[PTXParam]:
        return [p for p in self.params if p.is_pointer]

    def content_digest(self) -> str:
        """Stable digest of the executable content, memoized on self.

        Covers everything that affects what a launch computes (code,
        params, resources, shared decls, dialect) and nothing that does
        not (producer, defines, diagnostics).  The compile cache copies
        the memoized value onto clones, so sweeps pay one digest per
        unique compile; the launch memo keys on it.
        """
        d = self.__dict__.get("_content_digest")
        if d is None:
            blob = pickle.dumps(
                (
                    self.name,
                    self.params,
                    self.instrs,
                    self.resources,
                    sorted(self.shared_decls.items()),
                    self.dialect,
                ),
                protocol=4,
            )
            d = hashlib.blake2b(blob, digest_size=16).hexdigest()
            self.__dict__["_content_digest"] = d
        return d


@dataclasses.dataclass
class PTXModule:
    """A compiled translation unit: one or more kernels plus build info."""

    kernels: dict
    producer: str = ""
    source: Optional[KirKernel] = None
    build_log: list = dataclasses.field(default_factory=list)

    def kernel(self, name: str) -> PTXKernel:
        return self.kernels[name]

    def __iter__(self):
        return iter(self.kernels.values())
