"""Instruction and operand objects of the virtual ISA.

Instructions are mutable only through replacement (passes rebuild the
instruction list); operand objects are immutable and hashable so passes
can key tables on them.
"""
from __future__ import annotations

import dataclasses
import itertools
from typing import Optional, Union

from ..kir.types import AddrSpace, Scalar
from .isa import Op

__all__ = ["Reg", "Imm", "Operand", "Instr", "RegAllocator"]

_PREFIX = {
    Scalar.U32: "r",
    Scalar.S32: "r",
    Scalar.U64: "rd",
    Scalar.S64: "rd",
    Scalar.F32: "f",
    Scalar.F64: "fd",
    Scalar.PRED: "p",
}


@dataclasses.dataclass(frozen=True)
class Reg:
    """A virtual (pre-ptxas) or physical (post-ptxas) register."""

    idx: int
    dtype: Scalar
    physical: bool = False

    def __str__(self) -> str:
        tag = "%%" if self.physical else "%"
        return f"{tag}{_PREFIX[self.dtype]}{self.idx}"


@dataclasses.dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: Union[int, float, bool]
    dtype: Scalar

    def __str__(self) -> str:
        if self.dtype is Scalar.F32:
            return f"0f({self.value})"
        if self.dtype is Scalar.F64:
            return f"0d({self.value})"
        return str(self.value)


Operand = Union[Reg, Imm]


@dataclasses.dataclass
class Instr:
    """One virtual-ISA instruction.

    Attributes
    ----------
    op:
        Opcode.
    dtype:
        The operating type (result type for ALU ops, element type for
        memory ops, source type for ``setp``).
    dst:
        Destination register, or ``None`` (stores, branches, ``bar``).
    srcs:
        Source operands.  For ``ld``/``st``/``tex``: ``srcs[0]`` is the
        byte-address register (element index register for ``tex``) and,
        for ``st``, ``srcs[1]`` is the stored value.
    pred:
        Optional guard ``(reg, sense)`` rendering as ``@p`` / ``@!p``.
    space:
        State space for ``ld``/``st``.
    cmp:
        Comparison kind for ``setp`` (``lt``/``le``/...).
    target / reconv:
        Branch target label and its reconvergence label (the compiler
        annotates every potentially-divergent branch; the SIMT stack in
        the simulator relies on this, the way real hardware relies on
        ``SSY`` annotations from ptxas).
    label:
        For ``Op.LABEL`` pseudo-instructions only: the label name.
    """

    op: Op
    dtype: Scalar = Scalar.S32
    dst: Optional[Reg] = None
    srcs: tuple = ()
    pred: Optional[tuple] = None  # (Reg, bool sense)
    space: Optional[AddrSpace] = None
    cmp: Optional[str] = None
    target: Optional[str] = None
    reconv: Optional[str] = None
    label: Optional[str] = None
    #: for ``mov`` from a geometry register: the SReg value name ("tid.x")
    sreg: Optional[str] = None
    #: for ``ld.param`` / ``tex``: the parameter (texture ref) name
    param: Optional[str] = None

    def regs_read(self) -> list[Reg]:
        out = [s for s in self.srcs if isinstance(s, Reg)]
        if self.pred is not None:
            out.append(self.pred[0])
        return out

    def reg_written(self) -> Optional[Reg]:
        return self.dst

    def with_srcs(self, srcs: tuple) -> "Instr":
        return dataclasses.replace(self, srcs=srcs)

    def with_dst(self, dst: Optional[Reg]) -> "Instr":
        return dataclasses.replace(self, dst=dst)

    def copy(self) -> "Instr":
        return dataclasses.replace(self)


class RegAllocator:
    """Hands out fresh virtual registers during lowering and passes."""

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def new(self, dtype: Scalar) -> Reg:
        return Reg(next(self._counter), dtype)

    def clone_counter(self) -> int:
        """Peek the next index (used when passes append registers)."""
        n = next(self._counter)
        return n
