"""PTX-like virtual ISA: instructions, kernels, statistics, verification."""
from .instructions import Imm, Instr, Reg, RegAllocator
from .isa import IClass, Op, is_load, is_memory, is_store, klass_of, stats_key
from .module import PTXKernel, PTXModule, PTXParam, ResourceUsage
from .printer import format_instr, format_kernel
from .stats import class_totals, histogram, table
from .verify import PTXVerificationError, verify

__all__ = [
    "Imm",
    "Instr",
    "Reg",
    "RegAllocator",
    "IClass",
    "Op",
    "klass_of",
    "stats_key",
    "is_memory",
    "is_load",
    "is_store",
    "PTXKernel",
    "PTXModule",
    "PTXParam",
    "ResourceUsage",
    "format_instr",
    "format_kernel",
    "histogram",
    "class_totals",
    "table",
    "verify",
    "PTXVerificationError",
]
