"""Structural verifier for compiled kernels.

Run after every pass in debug builds; catches def-before-use violations,
dangling branch targets, missing reconvergence annotations, and type
mismatches that the simulator would otherwise misexecute silently.
"""
from __future__ import annotations

from ..kir.types import Scalar
from .instructions import Imm, Reg
from .isa import Op
from .module import PTXKernel

__all__ = ["verify", "PTXVerificationError"]


class PTXVerificationError(ValueError):
    pass


def verify(kernel: PTXKernel) -> None:
    labels = kernel.label_map()
    defined: set[int] = set()
    param_names = {p.name for p in kernel.params}

    for pc, i in enumerate(kernel.instrs):
        where = f"{kernel.name}@{pc}"
        if i.op is Op.LABEL:
            if not i.label:
                raise PTXVerificationError(f"{where}: unnamed label")
            continue
        if i.op is Op.BRA:
            if i.target not in labels:
                raise PTXVerificationError(
                    f"{where}: branch to unknown label {i.target!r}"
                )
            if i.pred is not None and i.reconv is None:
                raise PTXVerificationError(
                    f"{where}: predicated branch lacks reconvergence label"
                )
            if i.reconv is not None and i.reconv not in labels:
                raise PTXVerificationError(
                    f"{where}: unknown reconvergence label {i.reconv!r}"
                )
        if i.op is Op.ST and len(i.srcs) != 2:
            raise PTXVerificationError(f"{where}: st needs address + value")
        if i.op in (Op.LD, Op.ST) and i.space is None:
            raise PTXVerificationError(f"{where}: {i.op.value} without state space")
        if i.op is Op.SETP:
            if i.dst is None or i.dst.dtype is not Scalar.PRED:
                raise PTXVerificationError(f"{where}: setp must define a predicate")
            if not i.cmp:
                raise PTXVerificationError(f"{where}: setp without comparison kind")
        if i.op is Op.SELP and len(i.srcs) != 3:
            raise PTXVerificationError(f"{where}: selp needs (a, b, pred)")

        # def-before-use over straight-line order.  Our generators emit
        # code where every register is defined textually before any use
        # (loop-carried variables are initialized ahead of the loop), so
        # this linear check is sound for the code we produce.
        for r in i.regs_read():
            if r.idx not in defined:
                raise PTXVerificationError(
                    f"{where}: use of undefined register {r} in "
                    f"{i.op.value}"
                )
        if i.dst is not None:
            defined.add(i.dst.idx)

    if kernel.instrs and not any(
        i.op is Op.EXIT for i in kernel.instrs
    ):  # pragma: no cover - all generators emit exit
        raise PTXVerificationError(f"{kernel.name}: kernel does not exit")
