"""Static instruction statistics — the machinery behind Table V.

The paper compares the PTX emitted by the CUDA and OpenCL front-end
compilers for the FFT "forward" kernel, counting instructions per
mnemonic grouped into five classes.  :func:`histogram` computes the same
rows for any compiled kernel, and :func:`table` renders a two-column
comparison in the paper's layout.
"""
from __future__ import annotations

from collections import Counter
from typing import Mapping

from .isa import IClass, Op, klass_of, stats_key
from .module import PTXKernel

__all__ = ["histogram", "class_totals", "table", "TABLE5_ROWS"]

#: Row order of Table V in the paper (per class).
TABLE5_ROWS: dict = {
    IClass.ARITHMETIC: [
        "add",
        "sub",
        "mul",
        "div",
        "fma",
        "mad",
        "neg",
    ],
    IClass.LOGIC: ["and", "or", "not", "xor", "shl", "shr"],
    IClass.DATA: [
        "cvt",
        "mov",
        "ld.param",
        "ld.local",
        "ld.shared",
        "ld.const",
        "ld.global",
        "st.local",
        "st.shared",
        "st.global",
    ],
    IClass.FLOW: ["setp", "selp", "bra"],
    IClass.SYNC: ["bar"],
}


def histogram(kernel: PTXKernel) -> Counter:
    """Static instruction counts keyed by Table-V row names."""
    h: Counter = Counter()
    for i in kernel.real_instrs():
        if i.op is Op.EXIT:
            continue
        h[stats_key(i.op, i.space)] += 1
    return h


def class_totals(hist: Mapping[str, int]) -> Counter:
    """Sum a histogram into the five instruction classes."""
    totals: Counter = Counter()
    for key, n in hist.items():
        base = key.split(".")[0]
        op = Op(base)
        totals[klass_of(op)] += n
    return totals


def table(
    left: PTXKernel, right: PTXKernel, left_name: str = "CUDA", right_name: str = "OpenCL"
) -> str:
    """Render a Table-V-style side-by-side comparison of two kernels."""
    lh, rh = histogram(left), histogram(right)
    width = 14
    lines = [
        f"{'Class':<16} {'Instruction':<{width}} {left_name:>8} {right_name:>8}"
    ]
    lines.append("-" * len(lines[0]))
    grand_l = grand_r = 0
    for klass, rows in TABLE5_ROWS.items():
        sub_l = sub_r = 0
        for row in rows:
            l, r = lh.get(row, 0), rh.get(row, 0)
            sub_l += l
            sub_r += r
            lines.append(f"{klass.value:<16} {row:<{width}} {l:>8} {r:>8}")
        # rows not in the canonical list but present (rem, min, tex, ...)
        for row in sorted(set(lh) | set(rh)):
            base = row.split(".")[0]
            if row in rows or klass_of(Op(base)) is not klass:
                continue
            l, r = lh.get(row, 0), rh.get(row, 0)
            sub_l += l
            sub_r += r
            lines.append(f"{klass.value:<16} {row:<{width}} {l:>8} {r:>8}")
        lines.append(f"{'Sub-total':<16} {'':<{width}} {sub_l:>8} {sub_r:>8}")
        grand_l += sub_l
        grand_r += sub_r
    lines.append(f"{'Total':<16} {'':<{width}} {grand_l:>8} {grand_r:>8}")
    return "\n".join(lines)
