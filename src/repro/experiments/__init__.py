"""Experiment harness: one module per figure/table of the paper."""
from . import (
    fig1_bandwidth,
    fig2_flops,
    fig3_pr,
    fig4_texture,
    fig5_texture_pr,
    fig6_unroll,
    fig7_unroll_pr,
    fig8_constmem,
    table5_ptx,
    table6_portability,
)
from .report import ExperimentResult

EXPERIMENTS = {
    "fig1": fig1_bandwidth,
    "fig2": fig2_flops,
    "fig3": fig3_pr,
    "fig4": fig4_texture,
    "fig5": fig5_texture_pr,
    "fig6": fig6_unroll,
    "fig7": fig7_unroll_pr,
    "fig8": fig8_constmem,
    "table5": table5_ptx,
    "table6": table6_portability,
}

__all__ = ["EXPERIMENTS", "ExperimentResult"]
