"""Table V — PTX instruction statistics for the FFT "forward" kernel.

The paper counts static instructions in the PTX emitted by the two
front-end compilers for the *same* kernel source.  The shape to hold:

* OpenCL has ~2x more arithmetic instructions;
* OpenCL has many logic/shift instructions, CUDA nearly none;
* OpenCL has many flow-control instructions, CUDA nearly none;
* CUDA has far more data-movement instructions, dominated by ``mov``;
* the time-consuming memory instructions (ld/st.global, ld/st.shared)
  and the barriers are identical.
"""
from __future__ import annotations

from ..benchsuite.apps.fft import _forward_kernel
from ..compiler import compile_cuda, compile_opencl
from ..kir.dialect import CUDA, OPENCL
from ..ptx.isa import IClass
from ..ptx.stats import class_totals, histogram, table
from .report import ExperimentResult

__all__ = ["run", "units", "compiled_pair"]


def units(size: str = "default") -> list:
    """Table V is a pure compile-time measurement: no sweep units."""
    return []


def compiled_pair(max_regs: int = 124):
    kc = compile_cuda(_forward_kernel(CUDA), max_regs=max_regs)
    ko = compile_opencl(_forward_kernel(OPENCL), max_regs=max_regs)
    return kc, ko


def run(size: str = "default") -> ExperimentResult:
    kc, ko = compiled_pair()
    hc, ho = histogram(kc), histogram(ko)
    tc, to = class_totals(hc), class_totals(ho)

    res = ExperimentResult(
        "table5",
        'PTX instruction statistics, FFT "forward" kernel',
        ["class", "CUDA", "OpenCL"],
        [],
        notes=[table(kc, ko)],
        size=size,
    )
    for klass in (
        IClass.ARITHMETIC,
        IClass.LOGIC,
        IClass.DATA,
        IClass.FLOW,
        IClass.SYNC,
    ):
        res.add(
            **{"class": klass.value, "CUDA": tc.get(klass, 0), "OpenCL": to.get(klass, 0)}
        )
    res.add(
        **{"class": "Total", "CUDA": sum(tc.values()), "OpenCL": sum(to.values())}
    )

    res.check(
        "OpenCL emits far more arithmetic",
        "521 vs 220 (~2.4x)",
        f"{to[IClass.ARITHMETIC]} vs {tc[IClass.ARITHMETIC]}",
        to[IClass.ARITHMETIC] > 1.2 * tc[IClass.ARITHMETIC],
    )
    res.check(
        "OpenCL emits many logic/shift instructions, CUDA nearly none",
        "163 vs 4",
        f"{to[IClass.LOGIC]} vs {tc[IClass.LOGIC]}",
        to[IClass.LOGIC] >= 5 * max(tc[IClass.LOGIC], 1),
    )
    res.check(
        "OpenCL emits more flow control",
        "188 vs 4",
        f"{to[IClass.FLOW]} vs {tc[IClass.FLOW]}",
        to[IClass.FLOW] > tc[IClass.FLOW],
    )
    res.check(
        "CUDA is data-movement heavy (mov dominates)",
        "1131 vs 351, mov=687",
        f"{tc[IClass.DATA]} vs {to[IClass.DATA]}, mov={hc.get('mov', 0)}",
        tc[IClass.DATA] > to[IClass.DATA] and hc.get("mov", 0) > 3 * ho.get("mov", 1),
    )
    mem_same = all(
        hc.get(k, 0) == ho.get(k, 0)
        for k in ("ld.global", "st.global", "ld.shared", "st.shared", "bar")
    )
    res.check(
        "time-consuming memory instructions identical",
        "ld/st.global, ld/st.shared, bar equal",
        "equal" if mem_same else "differ",
        mem_same,
    )
    res.check(
        "CUDA emits no integer/float division (strength-reduced or folded)",
        "div=0",
        f"div={hc.get('div', 0)}",
        hc.get("div", 0) == 0 and ho.get("div", 0) > 0,
    )
    return res
