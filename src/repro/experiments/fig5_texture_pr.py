"""Fig. 5 — PR before and after removing texture memory (MD & SPMV).

Paper: once the CUDA versions stop using texture memory, the PR returns
to the similarity band — the gap was a programming-model difference,
not an OpenCL deficiency.
"""
from __future__ import annotations

from ..arch.specs import GTX280, GTX480
from ..core.comparison import compare
from ..core.metrics import SIMILARITY_BAND
from ..exec import make_unit
from .report import ExperimentResult

__all__ = ["run", "units"]


def units(size: str = "default") -> list:
    out = []
    for name in ("MD", "SPMV"):
        for spec in (GTX280, GTX480):
            out.append(make_unit(name, "cuda", spec, size))
            out.append(make_unit(name, "cuda", spec, size, {"use_texture": False}))
            out.append(make_unit(name, "opencl", spec, size))
    return out


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig5",
        "PR before/after removing texture memory from CUDA (MD, SPMV)",
        ["benchmark", "device", "PR before", "PR after", "after in band?"],
        [],
        size=size,
    )
    for name in ("MD", "SPMV"):
        for spec in (GTX280, GTX480):
            before = compare(name, spec, size=size)
            after = compare(
                name, spec, size=size, cuda_options={"use_texture": False}
            )
            in_band = abs(1 - after.pr.pr) < 2.5 * SIMILARITY_BAND
            res.add(
                benchmark=name,
                device=spec.name,
                **{
                    "PR before": before.pr.pr,
                    "PR after": after.pr.pr,
                    "after in band?": "yes" if in_band else "no",
                },
            )
            res.check(
                f"{name}/{spec.name}: fair comparison closes the gap",
                "PR ~1 after removal",
                f"{before.pr.pr:.2f} -> {after.pr.pr:.2f}",
                abs(1 - after.pr.pr) < abs(1 - before.pr.pr) + 0.02 and in_band,
            )
    return res
