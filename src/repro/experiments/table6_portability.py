"""Table VI — OpenCL portability: all benchmarks on the other platforms.

Paper behaviours to reproduce:

* every benchmark *compiles*; most run properly (cross-platform
  portability with minor modifications);
* FFT, DXTC, RdxS, STNW abort ("ABT") on the Cell/BE —
  ``CL_OUT_OF_RESOURCES`` from the tiny local store / register budget;
* RdxS completes with wrong results ("FL") on HD5870 and Intel920 —
  the hard-coded warp-size-32 assumption vs wavefront 64 / SSE lanes;
* TranP's local-memory staging is counterproductive on the CPU device;
* performance ordering: HD5870 broadly comparable to the NVIDIA GPUs,
  Intel920 well below, Cell/BE lowest.
"""
from __future__ import annotations

from ..arch.specs import CELLBE, HD5870, INTEL920
from ..benchsuite.registry import REAL_WORLD, get_benchmark
from ..exec import make_unit, run_benchmark
from .report import ExperimentResult

__all__ = ["run", "units"]

PAPER_ABT_CELL = {"FFT", "DXTC", "RdxS", "STNW"}
PAPER_FL = {("RdxS", "HD5870"), ("RdxS", "Intel920")}


def units(size: str = "default") -> list:
    out = [
        make_unit(name, "opencl", spec, size)
        for name in REAL_WORLD
        for spec in (HD5870, INTEL920, CELLBE)
    ]
    out.append(make_unit("TranP", "opencl", INTEL920, size, {"use_local": False}))
    return out


def run(size: str = "default") -> ExperimentResult:
    devices = (HD5870, INTEL920, CELLBE)
    res = ExperimentResult(
        "table6",
        "Performance data on prevailing platforms (OpenCL)",
        ["benchmark", "unit"] + [d.name for d in devices],
        [],
        size=size,
    )
    cells: dict = {}
    for name in REAL_WORLD:
        row = {"benchmark": name, "unit": get_benchmark(name).metric.unit}
        for spec in devices:
            r = run_benchmark(name, "opencl", spec, size)
            if r.failure == "ABT":
                row[spec.name] = "ABT"
            elif not r.correct:
                row[spec.name] = "FL"
            else:
                row[spec.name] = r.value
            cells[(name, spec.name)] = row[spec.name]
        res.add(**row)

    abt = {n for n in REAL_WORLD if cells[(n, "Cell/BE")] == "ABT"}
    res.check(
        "Cell/BE aborts exactly the paper's four benchmarks",
        sorted(PAPER_ABT_CELL),
        sorted(abt),
        abt == PAPER_ABT_CELL,
    )
    for name, dev in sorted(PAPER_FL):
        res.check(
            f"{name} fails with wrong results on {dev} (warp-size bug)",
            "FL",
            str(cells[(name, dev)]),
            cells[(name, dev)] == "FL",
        )
    ok_runs = sum(
        1
        for v in cells.values()
        if not isinstance(v, str)
    )
    res.check(
        "most benchmarks run properly on the other platforms",
        "all compile, most run",
        f"{ok_runs}/{len(cells)} run correctly",
        ok_runs >= len(cells) - 7,
    )
    # TranP local-memory ablation on the CPU device (paper §V):
    with_local = run_benchmark("TranP", "opencl", INTEL920, size)
    without = run_benchmark(
        "TranP", "opencl", INTEL920, size, {"use_local": False}
    )
    res.check(
        "TranP on Intel920: explicit local memory is pure overhead",
        "2.411 -> 0.215 GB/s with local (paper, vs implicit caching)",
        f"no-local {without.value:.3f} GB/s vs local {with_local.value:.3f} GB/s",
        without.value > with_local.value,
    )
    res.notes.append(
        "run `python -m repro.experiments table6 --size default` for the "
        "full-size sweep; 'ABT' = CL_OUT_OF_RESOURCES at enqueue, 'FL' = "
        "ran to completion with wrong results"
    )
    return res
