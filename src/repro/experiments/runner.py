"""CLI: regenerate any figure/table of the paper.

Usage::

    python -m repro.experiments fig1 [fig3 ...] [--size small|default]
    python -m repro.experiments all --size default --jobs 4

Every experiment decomposes into independent work units (one per
benchmark x device x API x config) that are prewarmed through the
:mod:`repro.exec` sweep engine: ``--jobs N`` fans cold units out over N
worker processes, and results are memoized in a content-addressed cache
(``--cache-dir``, default ``$REPRO_CACHE_DIR`` or ``.repro-cache``) so
warm reruns skip simulation entirely.  Rendered reports go to stdout
and are byte-identical whatever mix of cache hits and parallel workers
produced them; timings and the sweep summary go to stderr.

Execution is fault-tolerant: a work unit that fails terminally (after
``--retries`` transient retries, or cut off by ``--timeout``) is
recorded as a ``FailedUnit`` and quarantined while the rest of the
sweep completes; an experiment whose units failed is reported and
skipped instead of aborting the run.  The failure table goes to stderr
and into ``--sweep-json``.

Exits: ``0`` clean, ``1`` when any shape check valid at the requested
size fails or any unit failure was *not* planted by the ``repro.faults``
chaos harness (injected failures are expected in chaos runs and do not
fail the build), and ``75`` (``EX_TEMPFAIL``) when the run was
interrupted by SIGINT/SIGTERM: the engine drains instead of dying, the
run journal records ``interrupted``, and rerunning with ``--resume``
picks up exactly the unfinished units.
"""
from __future__ import annotations

import argparse
import json
import sys
import time

from .. import exec as rexec
from .. import telemetry
from ..errors import ReproError, SweepInterrupted
from ..exec import lifecycle
from ..telemetry import spans as tspans
from . import EXPERIMENTS

__all__ = ["main", "run_experiment", "collect_units", "build_executor"]


def run_experiment(name: str, size: str = "default"):
    try:
        mod = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return mod.run(size=size)


def collect_units(names, size: str) -> list:
    """Every work unit the named experiments will request, in order."""
    units = []
    for name in names:
        units += getattr(EXPERIMENTS[name], "units", lambda size: [])(size)
    return units


def add_sweep_arguments(ap: argparse.ArgumentParser) -> None:
    """The sweep-engine flags shared by the experiment-facing CLIs."""
    ap.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan cold work units out over N worker processes",
    )
    ap.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    ap.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this run",
    )
    ap.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="cut any single work unit off after SEC wall-clock seconds",
    )
    ap.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry a unit up to N times on transient failures (default 2)",
    )
    ap.add_argument(
        "--sweep-report", action="store_true",
        help="print the per-unit timing + cache hit/miss table (stderr)",
    )
    ap.add_argument(
        "--sweep-json", default=None, metavar="FILE",
        help="write the sweep summary (per-unit timings, hit/miss) as JSON",
    )
    lifecycle.add_lifecycle_arguments(ap)
    telemetry.add_telemetry_arguments(ap)


def build_executor(args, journal=None, resumed=None) -> rexec.SweepExecutor:
    cache = None
    if not args.no_cache:
        cache = args.cache_dir or rexec.default_cache_dir()
    ex = rexec.SweepExecutor(
        jobs=args.jobs,
        cache=cache,
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 2),
        progress=telemetry.progress_mode(args),
        journal=journal,
        resumed=resumed,
        preflight=not getattr(args, "no_preflight", False),
        grace=getattr(args, "grace", 30.0),
    )
    if resumed is not None and ex.cache is not None:
        # the previous run died; sweep its orphaned tmp files
        ex.cache.purge_tmp()
    return ex


def finish_sweep(args, executor: rexec.SweepExecutor) -> None:
    """Emit the sweep accounting the way the caller asked for it."""
    from ..telemetry import log

    st = executor.stats
    if st.records:
        log.info(
            "sweep.summary",
            f"sweep: {len(st.records)} unit requests, {st.hits} cache hits, "
            f"{st.misses} simulated ({st.sim_seconds:.1f}s simulation)",
        )
    if st.failures:
        from ..prof.report import render_failures

        injected = sum(1 for f in st.failures if f.injected)
        log.warn(
            "sweep.failures",
            f"sweep: {len(st.failures)} unit(s) failed terminally "
            f"({injected} injected)",
        )
        print(render_failures(st), file=sys.stderr)
    if args.sweep_report and st.records:
        from ..prof.report import render_sweep

        print(render_sweep(st), file=sys.stderr)
    if args.sweep_json:
        with open(args.sweep_json, "w") as f:
            json.dump(st.summary(), f, indent=2)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures/tables of Fang et al., ICPP 2011",
    )
    ap.add_argument(
        "experiments",
        nargs="+",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    ap.add_argument("--size", default="default", choices=["small", "default"])
    add_sweep_arguments(ap)
    args = ap.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
            )
    failures = 0
    aborted_unexpected = 0
    tr = telemetry.start_run(args, "repro.experiments")
    cache_dir = (
        None if args.no_cache
        else (args.cache_dir or rexec.default_cache_dir())
    )
    journal, replay = lifecycle.open_journal(
        args, cache_dir, tr.trace_id, "repro.experiments", argv
    )
    ex = build_executor(args, journal=journal, resumed=replay)
    with rexec.use_executor(ex), tspans.use_tracer(tr), \
            lifecycle.GracefulShutdown(ex, grace=args.grace) as shutdown:
        ex.prewarm(collect_units(names, args.size))
        for name in names:
            if ex.draining:
                print(f"({name}: not started, draining)", file=sys.stderr)
                continue
            t0 = time.time()
            try:
                with tspans.span("experiment", "engine", experiment=name):
                    res = run_experiment(name, size=args.size)
            except SweepInterrupted as e:
                # drain began mid-experiment: its remaining cold units
                # are left for --resume
                print(f"({name}: interrupted: {e})", file=sys.stderr)
                continue
            except ReproError as e:
                # a work unit this experiment needs failed terminally;
                # report and move on — one bad unit must not kill the run
                injected = getattr(e, "injected", False)
                print(
                    f"({name}: aborted by failed work unit"
                    f"{' [injected]' if injected else ''}: {e})",
                    file=sys.stderr,
                )
                if not injected:
                    aborted_unexpected += 1
                continue
            print(res.render())
            print()
            print(f"({name}: {time.time() - t0:.1f}s)", file=sys.stderr)
            failures += len(res.failed_checks())
        finish_sweep(args, ex)
        unexpected = len(ex.stats.unexpected_failures())
    interrupted = shutdown.interrupted or ex.draining
    state, code = lifecycle.run_outcome(
        interrupted, failures + unexpected + aborted_unexpected
    )
    if journal is not None:
        journal.close(state)
    if interrupted:
        tr.abandon("interrupted")
        print(
            f"run interrupted; resume with: --resume {tr.trace_id}",
            file=sys.stderr,
        )
    telemetry.finish_run(
        args, tr, "repro.experiments", executor=ex, cache_dir=cache_dir,
        lifecycle=lifecycle.lifecycle_summary(
            state, code, journal=journal, replay=replay, executor=ex
        ),
    )
    if failures:
        print(f"{failures} shape check(s) did not hold", file=sys.stderr)
    if unexpected or aborted_unexpected:
        print(
            f"{max(unexpected, aborted_unexpected)} non-injected unit "
            "failure(s)",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
