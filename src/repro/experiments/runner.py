"""CLI: regenerate any figure/table of the paper.

Usage::

    python -m repro.experiments fig1 [fig3 ...] [--size small|default]
    python -m repro.experiments all --size default
"""
from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS

__all__ = ["main", "run_experiment"]


def run_experiment(name: str, size: str = "default"):
    try:
        mod = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return mod.run(size=size)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures/tables of Fang et al., ICPP 2011",
    )
    ap.add_argument(
        "experiments",
        nargs="+",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    ap.add_argument("--size", default="default", choices=["small", "default"])
    args = ap.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    failures = 0
    for name in names:
        t0 = time.time()
        res = run_experiment(name, size=args.size)
        print(res.render())
        print(f"({time.time() - t0:.1f}s)")
        print()
        failures += sum(1 for c in res.checks if not c["holds"])
    if failures:
        print(f"{failures} shape check(s) did not hold", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
