"""Fig. 1 — peak device-memory bandwidth, CUDA vs OpenCL vs theoretical.

Paper observations to reproduce in shape:
* TP_BW = 141.7 GB/s (GTX280), 177.4 GB/s (GTX480) — Eq. (2) exactly;
* OpenCL achieves 68.6% / 87.7% of TP;
* OpenCL's AP_BW >= CUDA's (paper: +8.5% / +2.4%).
"""
from __future__ import annotations

from ..arch.peak import theoretical_bandwidth_gbs
from ..arch.specs import GTX280, GTX480
from ..exec import make_unit, run_benchmark
from .report import ExperimentResult

__all__ = ["run", "units"]

PAPER_FRACTION = {"GTX280": 0.686, "GTX480": 0.877}
PAPER_OPENCL_ADVANTAGE = {"GTX280": 1.085, "GTX480": 1.024}


def units(size: str = "default") -> list:
    return [
        make_unit("DeviceMemory", api, spec, size)
        for spec in (GTX280, GTX480)
        for api in ("cuda", "opencl")
    ]


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig1",
        "Peak bandwidth comparison (DeviceMemory, work-group 256)",
        ["device", "TP_BW (GB/s)", "CUDA AP (GB/s)", "OpenCL AP (GB/s)", "OpenCL %TP", "OpenCL/CUDA"],
        [],
        size=size,
    )
    for spec in (GTX280, GTX480):
        cuda = run_benchmark("DeviceMemory", "cuda", spec, size)
        ocl = run_benchmark("DeviceMemory", "opencl", spec, size)
        tp = theoretical_bandwidth_gbs(spec)
        frac = ocl.value / tp
        adv = ocl.value / cuda.value
        res.add(
            **{
                "device": spec.name,
                "TP_BW (GB/s)": tp,
                "CUDA AP (GB/s)": cuda.value,
                "OpenCL AP (GB/s)": ocl.value,
                "OpenCL %TP": 100 * frac,
                "OpenCL/CUDA": adv,
            }
        )
        paper_f = PAPER_FRACTION[spec.name]
        # a reduced working set cannot amortize launch ramp, so the
        # achieved-fraction check only means something at full size
        res.check(
            f"{spec.name}: OpenCL reaches a similar fraction of TP",
            f"{100 * paper_f:.1f}%",
            f"{100 * frac:.1f}%",
            abs(frac - paper_f) < 0.12,
            sizes=("default",),
        )
        res.check(
            f"{spec.name}: OpenCL not slower than CUDA",
            f"x{PAPER_OPENCL_ADVANTAGE[spec.name]:.3f}",
            f"x{adv:.3f}",
            adv > 0.97,
        )
    return res
