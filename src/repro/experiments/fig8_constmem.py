"""Fig. 8 — Sobel kernel time with and without constant memory.

Paper: on GTX280 the kernel runs ~4x faster with the filter in constant
memory (GT200 has no global-read cache, the constant cache broadcast is
the only cached path); on GTX480 there is hardly any change because the
Fermi L1/L2 catch the filter reads anyway.
"""
from __future__ import annotations

from ..arch.specs import GTX280, GTX480
from ..exec import make_unit, run_benchmark
from .report import ExperimentResult

__all__ = ["run", "units"]


def units(size: str = "default") -> list:
    return [
        make_unit("Sobel", api, spec, size, {"use_constant": c})
        for api in ("cuda", "opencl")
        for spec in (GTX280, GTX480)
        for c in (True, False)
    ]


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig8",
        "Sobel kernel time with/without constant memory (both APIs)",
        ["api", "device", "const (us)", "no const (us)", "speedup from const"],
        [],
        size=size,
    )
    speedups = {}
    for api in ("cuda", "opencl"):
        for spec in (GTX280, GTX480):
            with_c = run_benchmark(
                "Sobel", api, spec, size, {"use_constant": True}
            )
            wo_c = run_benchmark(
                "Sobel", api, spec, size, {"use_constant": False}
            )
            speedup = wo_c.kernel_seconds / with_c.kernel_seconds
            speedups[(api, spec.name)] = speedup
            res.add(
                api=api,
                device=spec.name,
                **{
                    "const (us)": with_c.kernel_seconds * 1e6,
                    "no const (us)": wo_c.kernel_seconds * 1e6,
                    "speedup from const": speedup,
                },
            )
    res.check(
        "GTX280: constant memory is a large win (no global cache)",
        "~4x (time drops to one quarter)",
        f"{speedups[('cuda', 'GTX280')]:.2f}x (CUDA), "
        f"{speedups[('opencl', 'GTX280')]:.2f}x (OpenCL)",
        speedups[("cuda", "GTX280")] > 1.5,
    )
    res.check(
        "GTX480: few changes (Fermi caches global reads)",
        "~1x",
        f"{speedups[('cuda', 'GTX480')]:.2f}x (CUDA)",
        speedups[("cuda", "GTX480")] < 1.35,
    )
    res.check(
        "the win is much larger on GTX280 than GTX480",
        "4x vs ~1x",
        f"{speedups[('cuda', 'GTX280')]:.2f}x vs {speedups[('cuda', 'GTX480')]:.2f}x",
        speedups[("cuda", "GTX280")] > 1.6 * speedups[("cuda", "GTX480")],
    )
    return res
