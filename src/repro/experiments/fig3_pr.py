"""Fig. 3 — PR of all real-world benchmarks on GTX280 and GTX480.

The paper's headline chart: for most applications CUDA is at most ~30%
faster (PR >= 0.7); Sobel is the outlier (PR ~3.2 on GTX280, ~0.83 on
GTX480, the constant-memory/caches story) and FFT shows the largest
CUDA advantage (front-end maturity).
"""
from __future__ import annotations

from ..arch.specs import GTX280, GTX480
from ..benchsuite.registry import REAL_WORLD
from ..core.comparison import compare
from ..exec import make_unit
from .report import ExperimentResult

__all__ = ["run", "units"]


def units(size: str = "default") -> list:
    return [
        make_unit(name, api, spec, size)
        for name in REAL_WORLD
        for spec in (GTX280, GTX480)
        for api in ("cuda", "opencl")
    ]

#: the paper's qualitative expectations per benchmark (GTX280, GTX480)
PAPER_SHAPE = {
    "Sobel": ("OpenCL much faster (PR ~3.2)", "similar-ish (PR ~0.83)"),
    "FFT": ("largest CUDA advantage", "largest CUDA advantage"),
    "BFS": ("CUDA faster (launch overhead)", "CUDA faster (launch overhead)"),
}


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig3",
        "Performance Ratio (OpenCL/CUDA) for all real-world benchmarks",
        ["benchmark", "PR GTX280", "PR GTX480", "verdict GTX280", "verdict GTX480"],
        [],
        size=size,
    )
    prs = {}
    for name in REAL_WORLD:
        row = {"benchmark": name}
        for spec in (GTX280, GTX480):
            out = compare(name, spec, size=size)
            prs[(name, spec.name)] = out.pr.pr
            row[f"PR {spec.name}"] = out.pr.pr
            row[f"verdict {spec.name}"] = out.pr.verdict
        res.add(**row)

    in_band = [
        v
        for (n, d), v in prs.items()
        if n not in ("Sobel",) and v == v  # not NaN
    ]
    frac = sum(1 for v in in_band if v >= 0.7) / max(len(in_band), 1)
    res.check(
        "for most applications, CUDA performs at most 30% better (PR >= 0.7)",
        "majority of measurements",
        f"{100 * frac:.0f}% of non-Sobel PRs >= 0.7",
        frac >= 0.5,
    )
    res.check(
        "Sobel on GTX280: OpenCL much faster (constant memory vs no cache)",
        "PR ~3.2",
        f"PR {prs[('Sobel', 'GTX280')]:.2f}",
        prs[("Sobel", "GTX280")] > 1.5,
    )
    res.check(
        "Sobel on GTX480: advantage gone (Fermi caches)",
        "PR ~0.83",
        f"PR {prs[('Sobel', 'GTX480')]:.2f}",
        0.6 < prs[("Sobel", "GTX480")] < 1.25,
    )
    fft_is_low = all(
        prs[("FFT", d)] <= min(v for (n, v) in [(k[0], vv) for k, vv in prs.items() if k[1] == d and k[0] != "Sobel"]) + 0.15
        for d in ("GTX280", "GTX480")
    )
    res.check(
        "FFT shows the largest CUDA advantage",
        "lowest PR of all benchmarks",
        f"PR280={prs[('FFT', 'GTX280')]:.2f} PR480={prs[('FFT', 'GTX480')]:.2f}",
        prs[("FFT", "GTX280")] < 0.75 and prs[("FFT", "GTX480")] < 0.75,
    )
    res.check(
        "BFS: OpenCL slower end-to-end (kernel launch time)",
        "PR < 1",
        f"PR280={prs[('BFS', 'GTX280')]:.2f} PR480={prs[('BFS', 'GTX480')]:.2f}",
        prs[("BFS", "GTX280")] < 0.95 and prs[("BFS", "GTX480")] < 0.95,
    )
    return res
