"""Fig. 7 — FDTD with/without unrolling at the two pragma points.

Three comparison groups, as in the paper:

* ``CUDA_b vs OpenCL_b`` — pragma only at point b for both: similar on
  GTX480, OpenCL ~15% faster on GTX280;
* ``CUDA_a,b vs OpenCL_b`` — as shipped;
* ``CUDA_a,b vs OpenCL_a,b`` — adding pragma a to the OpenCL build makes
  its allocator collapse: OpenCL drops to 48.3% / 66.1% of CUDA.
"""
from __future__ import annotations

from ..arch.specs import GTX280, GTX480
from ..core.comparison import compare
from ..exec import make_unit
from .report import ExperimentResult

__all__ = ["run", "units"]

PAPER_AB_RATIO = {"GTX280": 0.483, "GTX480": 0.661}


def units(size: str = "default") -> list:
    return [
        make_unit("FDTD", api, spec, size, {"unroll_a": a})
        for spec in (GTX280, GTX480)
        for api in ("cuda", "opencl")
        for a in (9, None)
    ]


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig7",
        "FDTD unrolled at different points (PR per group)",
        ["group", "device", "CUDA (MPts/s)", "OpenCL (MPts/s)", "PR"],
        [],
        size=size,
    )
    groups = {
        "b only (both)": ({"unroll_a": None}, {"unroll_a": None}),
        "CUDA a,b / OpenCL b": ({"unroll_a": 9}, {"unroll_a": None}),
        "a,b (both)": ({"unroll_a": 9}, {"unroll_a": 9}),
    }
    prs = {}
    for gname, (copts, oopts) in groups.items():
        for spec in (GTX280, GTX480):
            out = compare(
                "FDTD", spec, size=size, cuda_options=copts, opencl_options=oopts
            )
            prs[(gname, spec.name)] = (
                out.pr.cuda.value,
                out.pr.opencl.value,
                out.pr.pr,
            )
            res.add(
                group=gname,
                device=spec.name,
                **{
                    "CUDA (MPts/s)": out.pr.cuda.value,
                    "OpenCL (MPts/s)": out.pr.opencl.value,
                    "PR": out.pr.pr,
                },
            )
    res.check(
        "b-only: OpenCL far healthier than with pragma a (GTX280)",
        "PR(b) ~1.15 vs PR(a,b) ~0.48",
        f"PR(b) {prs[('b only (both)', 'GTX280')][2]:.2f} vs "
        f"PR(a,b) {prs[('a,b (both)', 'GTX280')][2]:.2f}",
        prs[("b only (both)", "GTX280")][2]
        > prs[("a,b (both)", "GTX280")][2] + 0.15,
    )
    res.notes.append(
        "deviation: the paper's OpenCL_b outruns CUDA_b by 15.1% on GTX280 "
        "(an occupancy boundary effect); our OpenCL_b trails CUDA_b by the "
        "CLC addressing overhead instead — see EXPERIMENTS.md"
    )
    for dev in ("GTX280", "GTX480"):
        pr_ab = prs[("a,b (both)", dev)][2]
        res.check(
            f"{dev}: unrolling point a collapses OpenCL",
            f"OpenCL at {100 * PAPER_AB_RATIO[dev]:.1f}% of CUDA",
            f"OpenCL at {100 * pr_ab:.1f}% of CUDA",
            pr_ab < 0.85,
        )
    res.check(
        "collapse is milder on Fermi (spills land in L1)",
        "48.3% (GTX280) < 66.1% (GTX480)",
        f"{100 * prs[('a,b (both)', 'GTX280')][2]:.1f}% vs "
        f"{100 * prs[('a,b (both)', 'GTX480')][2]:.1f}%",
        prs[("a,b (both)", "GTX280")][2]
        <= prs[("a,b (both)", "GTX480")][2] + 0.05,
    )
    return res
