"""Experiment result container + ASCII rendering."""
from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional

__all__ = ["ExperimentResult", "fmt"]


def fmt(v, nd: int = 3) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if math.isnan(v):
            return "n/a"
        if v != 0 and (abs(v) < 10 ** (-nd) or abs(v) >= 1e6):
            return f"{v:.3g}"
        return f"{v:.{nd}f}"
    return str(v)


@dataclasses.dataclass
class ExperimentResult:
    """Rows + provenance for one regenerated figure or table."""

    experiment: str  # e.g. "fig1"
    title: str
    columns: list
    rows: list  # list of dicts keyed by column name
    notes: list = dataclasses.field(default_factory=list)
    #: free-form paper-vs-measured records for EXPERIMENTS.md
    checks: list = dataclasses.field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def check(self, what: str, paper, measured, holds: bool) -> None:
        self.checks.append(
            {"what": what, "paper": paper, "measured": measured, "holds": holds}
        )

    def render(self) -> str:
        widths = {
            c: max(len(str(c)), *(len(fmt(r.get(c))) for r in self.rows))
            if self.rows
            else len(str(c))
            for c in self.columns
        }
        head = " | ".join(f"{c:>{widths[c]}}" for c in self.columns)
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [f"== {self.experiment}: {self.title} ==", head, sep]
        for r in self.rows:
            lines.append(
                " | ".join(f"{fmt(r.get(c)):>{widths[c]}}" for c in self.columns)
            )
        if self.checks:
            lines.append("")
            lines.append("shape checks vs paper:")
            for c in self.checks:
                mark = "PASS" if c["holds"] else "MISS"
                lines.append(
                    f"  [{mark}] {c['what']}: paper={c['paper']} "
                    f"measured={c['measured']}"
                )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)
