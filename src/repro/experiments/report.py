"""Experiment result container + ASCII rendering."""
from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional

__all__ = ["ExperimentResult", "fmt"]


def fmt(v, nd: int = 3) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if math.isnan(v):
            return "n/a"
        if v != 0 and (abs(v) < 10 ** (-nd) or abs(v) >= 1e6):
            return f"{v:.3g}"
        return f"{v:.{nd}f}"
    return str(v)


@dataclasses.dataclass
class ExperimentResult:
    """Rows + provenance for one regenerated figure or table."""

    experiment: str  # e.g. "fig1"
    title: str
    columns: list
    rows: list  # list of dicts keyed by column name
    notes: list = dataclasses.field(default_factory=list)
    #: free-form paper-vs-measured records for EXPERIMENTS.md
    checks: list = dataclasses.field(default_factory=list)
    #: the problem size this result was generated at (size-aware checks)
    size: str = "default"

    def add(self, **row) -> None:
        self.rows.append(row)

    def check(
        self, what: str, paper, measured, holds: bool, sizes=None
    ) -> None:
        """Record one shape check against the paper.

        ``sizes`` names the problem sizes the check is meaningful at;
        at other sizes it renders as SKIP (an expected miss — e.g. a
        bandwidth fraction that a reduced working set cannot reach) and
        does not count as a failure.  ``None`` means valid at any size.
        """
        self.checks.append(
            {
                "what": what,
                "paper": paper,
                "measured": measured,
                "holds": holds,
                "skipped": sizes is not None and self.size not in sizes,
            }
        )

    def failed_checks(self) -> list:
        """Checks that did not hold and were valid at this size."""
        return [
            c for c in self.checks if not c["holds"] and not c.get("skipped")
        ]

    def render(self) -> str:
        widths = {
            c: max(len(str(c)), *(len(fmt(r.get(c))) for r in self.rows))
            if self.rows
            else len(str(c))
            for c in self.columns
        }
        head = " | ".join(f"{c:>{widths[c]}}" for c in self.columns)
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [f"== {self.experiment}: {self.title} ==", head, sep]
        for r in self.rows:
            lines.append(
                " | ".join(f"{fmt(r.get(c)):>{widths[c]}}" for c in self.columns)
            )
        if self.checks:
            lines.append("")
            lines.append("shape checks vs paper:")
            for c in self.checks:
                if c.get("skipped"):
                    mark, suffix = "SKIP", f" (not valid at size={self.size})"
                else:
                    mark, suffix = ("PASS" if c["holds"] else "MISS"), ""
                lines.append(
                    f"  [{mark}] {c['what']}: paper={c['paper']} "
                    f"measured={c['measured']}{suffix}"
                )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)
