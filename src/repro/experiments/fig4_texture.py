"""Fig. 4 — performance impact of texture memory (CUDA, MD & SPMV).

Paper: removing texture drops performance to 87.6% / 65.1% (GTX280,
MD / SPMV) and 59.6% / 44.3% (GTX480) of the textured version.
"""
from __future__ import annotations

from ..arch.specs import GTX280, GTX480
from ..exec import make_unit, run_benchmark
from .report import ExperimentResult

__all__ = ["run", "units"]


def units(size: str = "default") -> list:
    return [
        make_unit(name, "cuda", spec, size, {"use_texture": tex})
        for name in ("MD", "SPMV")
        for spec in (GTX280, GTX480)
        for tex in (True, False)
    ]

PAPER_RETENTION = {
    ("MD", "GTX280"): 0.876,
    ("SPMV", "GTX280"): 0.651,
    ("MD", "GTX480"): 0.596,
    ("SPMV", "GTX480"): 0.443,
}


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig4",
        "Texture memory impact on the CUDA versions of MD and SPMV",
        ["benchmark", "device", "with tex", "without tex", "retention", "paper retention"],
        [],
        size=size,
    )
    for name in ("MD", "SPMV"):
        for spec in (GTX280, GTX480):
            with_tex = run_benchmark(
                name, "cuda", spec, size, {"use_texture": True}
            )
            wo_tex = run_benchmark(
                name, "cuda", spec, size, {"use_texture": False}
            )
            retention = wo_tex.value / with_tex.value
            paper = PAPER_RETENTION[(name, spec.name)]
            res.add(
                benchmark=name,
                device=spec.name,
                **{
                    "with tex": with_tex.value,
                    "without tex": wo_tex.value,
                    "retention": retention,
                    "paper retention": paper,
                },
            )
            # SPMV's small gather stream fits entirely in Fermi's L2, so
            # the texture path only shows its win at full size there
            res.check(
                f"{name}/{spec.name}: texture removal hurts",
                f"drops to {100 * paper:.1f}%",
                f"drops to {100 * retention:.1f}%",
                retention < 0.97,
                sizes=("default",)
                if (name, spec.name) == ("SPMV", "GTX480")
                else None,
            )
    return res
