"""Fig. 2 — peak floating-point throughput, CUDA vs OpenCL vs theoretical.

Paper: TP = 933.12 / 1344.96 GFlops (Eq. 3, R=3 GT200, R=2 Fermi);
achieved peaks ~71.5% / ~97.7% of TP with CUDA and OpenCL nearly equal.
"""
from __future__ import annotations

from ..arch.peak import theoretical_flops_gfs
from ..arch.specs import GTX280, GTX480
from ..exec import make_unit, run_benchmark
from .report import ExperimentResult

__all__ = ["run", "units"]

PAPER_FRACTION = {"GTX280": 0.715, "GTX480": 0.977}


def units(size: str = "default") -> list:
    return [
        make_unit("MaxFlops", api, spec, size)
        for spec in (GTX280, GTX480)
        for api in ("cuda", "opencl")
    ]


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig2",
        "Peak FLOPS comparison (MaxFlops; mul+mad on GT200, mad-only on Fermi)",
        ["device", "TP (GFlops)", "CUDA AP", "OpenCL AP", "OpenCL %TP", "OpenCL/CUDA"],
        [],
        size=size,
    )
    for spec in (GTX280, GTX480):
        cuda = run_benchmark("MaxFlops", "cuda", spec, size)
        ocl = run_benchmark("MaxFlops", "opencl", spec, size)
        tp = theoretical_flops_gfs(spec)
        frac = ocl.value / tp
        res.add(
            **{
                "device": spec.name,
                "TP (GFlops)": tp,
                "CUDA AP": cuda.value,
                "OpenCL AP": ocl.value,
                "OpenCL %TP": 100 * frac,
                "OpenCL/CUDA": ocl.value / cuda.value,
            }
        )
        # short small-size kernels pay loop/setup overhead the full-size
        # runs amortize, so the peak-fraction band is default-size only
        res.check(
            f"{spec.name}: achieved fraction of TP in band",
            f"{100 * PAPER_FRACTION[spec.name]:.1f}%",
            f"{100 * frac:.1f}%",
            abs(frac - PAPER_FRACTION[spec.name]) < 0.15,
            sizes=("default",),
        )
        res.check(
            f"{spec.name}: CUDA and OpenCL near-equal",
            "~1.0",
            f"{ocl.value / cuda.value:.3f}",
            0.85 < ocl.value / cuda.value < 1.2,
        )
    return res
