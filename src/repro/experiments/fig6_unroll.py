"""Fig. 6 — loop-unrolling impact on FDTD (CUDA only).

Paper: removing ``#pragma unroll 9`` at point *a* drops CUDA performance
to 85.1% (GTX280) / 82.6% (GTX480) of the pragma'd version.
"""
from __future__ import annotations

from ..arch.specs import GTX280, GTX480
from ..exec import make_unit, run_benchmark
from .report import ExperimentResult

__all__ = ["run", "units"]

PAPER_RETENTION = {"GTX280": 0.851, "GTX480": 0.826}


def units(size: str = "default") -> list:
    return [
        make_unit("FDTD", "cuda", spec, size, {"unroll_a": a})
        for spec in (GTX280, GTX480)
        for a in (9, None)
    ]


def run(size: str = "default") -> ExperimentResult:
    res = ExperimentResult(
        "fig6",
        "FDTD (CUDA) with vs without #pragma unroll at point a",
        ["device", "with a (MPts/s)", "without a", "retention", "paper retention"],
        [],
        size=size,
    )
    for spec in (GTX280, GTX480):
        with_a = run_benchmark("FDTD", "cuda", spec, size, {"unroll_a": 9})
        wo_a = run_benchmark("FDTD", "cuda", spec, size, {"unroll_a": None})
        retention = wo_a.value / with_a.value
        res.add(
            device=spec.name,
            **{
                "with a (MPts/s)": with_a.value,
                "without a": wo_a.value,
                "retention": retention,
                "paper retention": PAPER_RETENTION[spec.name],
            },
        )
        res.check(
            f"{spec.name}: removing the pragma costs ~15%",
            f"{100 * PAPER_RETENTION[spec.name]:.1f}%",
            f"{100 * retention:.1f}%",
            retention < 0.98,
        )
    return res
