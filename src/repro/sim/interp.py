"""SIMT functional interpreter over the virtual ISA.

Execution model: one *batch-wide* masked vector per group of thread
blocks.  The reconvergence-stack mechanism is width-agnostic, so running
all warps of B homogeneous blocks in lockstep produces bit-identical
functional results while letting every ALU instruction be a single
numpy op over the whole batch (the vectorize-don't-loop idiom of the
HPC guides).  Geometry vectors gain a per-block ``ctaid`` lane, and the
Python dispatch loop is amortized over B blocks per interpreter pass.

Per-warp costs are recovered exactly: an instruction executed under mask
``m`` is *issued* by every 32-lane group with an active lane, so its
issue cost is ``cost * active_groups(m)`` per block — identical to
executing blocks one at a time.  Memory instructions are costed per
hardware warp group (coalescing is a per-warp phenomenon) through
:class:`~repro.sim.memsys.MemorySystem`.

Batching invariants (the bit-identity contract, see DESIGN.md):

* **Deferred memory-system replay** — cache state (per-CU L1/tex/const
  banks, the shared L2) is order-sensitive, so the batched pass only
  *records* every memory access; at batch end the accesses replay per
  block in linear block order, reproducing the exact sequential cache
  evolution and DRAM-byte accumulation of per-block execution.
* **Per-block cost folds** — ``comp``/``memc`` accumulate per block in
  that block's own visit order, so the float summation order (and hence
  every last ulp of the timing model) matches per-block execution.
* **Per-block divergence bookkeeping** — EXIT kills only the blocks
  with lanes in the exiting frame; barriers check convergence per
  participating block; dual-issue pairing state is tracked per block.

The one assumption batching adds is that blocks of a launch do not
communicate through global memory mid-kernel (CUDA/OpenCL make no
inter-block ordering guarantee, so such kernels are racy anyway); the
property suite cross-checks batched against per-block execution.

Barriers become no-ops under block-lockstep (the interpreter checks the
mask is converged, which the KIR validator already guarantees), and
warp-synchronous idioms remain correct because block-lockstep is
strictly stronger than warp-lockstep.
"""
from __future__ import annotations

import os
from collections import Counter

import numpy as np

from ..arch.specs import DeviceSpec
from ..kir.types import AddrSpace, Scalar, np_dtype, sizeof
from ..ptx.instructions import Imm, Instr, Reg
from ..ptx.isa import Op, stats_key
from ..ptx.module import PTXKernel
from .memory import FlatMemory
from .memsys import MemorySystem

__all__ = ["LaunchStats", "run_grid", "SimulationError"]

_SFU_OPS = {Op.SQRT, Op.RSQRT, Op.SIN, Op.COS, Op.EX2, Op.LG2}

_CMP = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}

#: lockstep vector width target: blocks are batched until their combined
#: lane count reaches this, amortizing the per-instruction Python cost
_BATCH_LANES = 32768
_BATCH_CAP = 64


#: raw $REPRO_SIM_BATCH values already warned about (warn once per
#: value; this helper runs on every kernel launch)
_BATCH_ENV_WARNED: set = set()


def _batch_size(width: int, blocks: int) -> int:
    env = os.environ.get("REPRO_SIM_BATCH")
    if env:
        try:
            forced = int(env)
        except ValueError:
            forced = 0
        if forced > 0:
            return max(1, min(forced, blocks))
        if env not in _BATCH_ENV_WARNED:
            _BATCH_ENV_WARNED.add(env)
            from ..telemetry import log

            log.warn(
                "sim.batch_env",
                f"ignoring REPRO_SIM_BATCH={env!r} (need a positive "
                "integer); using the lane-budget default",
            )
    return max(1, min(_BATCH_CAP, _BATCH_LANES // max(width, 1), blocks))


class SimulationError(RuntimeError):
    pass


class LaunchStats:
    """Dynamic execution statistics of one kernel launch."""

    def __init__(self, n_cu: int):
        self.comp_cycles = np.zeros(n_cu, dtype=np.float64)
        self.mem_cycles = np.zeros(n_cu, dtype=np.float64)
        self.dyn_hist: Counter = Counter()
        #: issue/latency cycles charged per Table-V row (profiler feed)
        self.cyc_hist: Counter = Counter()
        self.warp_instructions = 0
        self.mem_instructions = 0
        self.blocks = 0
        self.barriers = 0
        #: per-warp memory-level-parallelism credit from straight-line
        #: code length (unrolled bodies issue more independent loads)
        self.ilp_factor = 1.0


class _SharedBatch:
    """Shared memory for a batch of blocks, one segment per block.

    Reproduces :class:`~repro.sim.memory.FlatMemory` semantics exactly
    per block — including the modulo wrap of out-of-range addresses
    into the block's own segment — by giving every block a stride-
    aligned slice of one flat byte buffer.
    """

    def __init__(self, nbytes: int, batch: int):
        # FlatMemory pads its buffer by 8 bytes; the per-block view size
        # (and therefore the wrap modulus) must match it bit-for-bit
        self.nb = int(nbytes) + 8
        self.stride = -(-self.nb // 8) * 8
        self.buf = np.zeros(batch * self.stride, dtype=np.uint8)
        self._views: dict = {}

    def _view(self, scalar: Scalar) -> np.ndarray:
        v = self._views.get(scalar)
        if v is None:
            size = sizeof(scalar)
            usable = (self.buf.size // size) * size
            v = self.buf[:usable].view(np_dtype(scalar))
            self._views[scalar] = v
        return v

    def _index(self, addrs: np.ndarray, blk: np.ndarray, size: int) -> np.ndarray:
        idx = (addrs // size) % (self.nb // size)  # per-block wrap
        return blk * (self.stride // size) + idx

    def load(self, addrs: np.ndarray, blk: np.ndarray, scalar: Scalar) -> np.ndarray:
        size = sizeof(scalar)
        return self._view(scalar)[self._index(addrs, blk, size)]

    def store(
        self, addrs: np.ndarray, blk: np.ndarray, values: np.ndarray, scalar: Scalar
    ) -> None:
        size = sizeof(scalar)
        # same-address conflicts resolve to the last lane, like FlatMemory
        self._view(scalar)[self._index(addrs, blk, size)] = values


class GridRunner:
    def __init__(
        self,
        kernel: PTXKernel,
        spec: DeviceSpec,
        memsys: MemorySystem,
        mem: FlatMemory,
        args: dict,
        grid: tuple,
        block: tuple,
        batch_blocks: int | None = None,
    ):
        self.k = kernel
        self.spec = spec
        self.memsys = memsys
        self.mem = mem
        self.args = args
        self.grid = grid
        self.block = block
        self.WW = spec.warp_width
        self.batch_blocks = batch_blocks
        self.stats = LaunchStats(spec.compute_units)
        # launch preparation is a pure function of (kernel, device,
        # block shape); benchmarks relaunch the same compiled kernel
        # many times, so the products are memoized on the kernel object
        # (read-only at run time, hence safe to share between runners)
        cache = kernel.__dict__.setdefault("_interp_prep", {})
        ck = (spec.name, block)
        prep = cache.get(ck)
        if prep is None:
            self._prepare_geometry()
            self._prepare_code()
            ilp = self._static_ilp()
            cache[ck] = (
                self.width,
                self.ngroups_full,
                self.tid,
                self.mask0,
                self.instrs,
                self.n_instr,
                self.target_pc,
                self.reconv_pc,
                self.cost,
                self.hkey,
                self.imm_cache,
                self.fp_guard,
                self._fp_err,
                ilp,
            )
        else:
            (
                self.width,
                self.ngroups_full,
                self.tid,
                self.mask0,
                self.instrs,
                self.n_instr,
                self.target_pc,
                self.reconv_pc,
                self.cost,
                self.hkey,
                self.imm_cache,
                self.fp_guard,
                self._fp_err,
                ilp,
            ) = prep
        self.stats.ilp_factor = ilp
        # ``is_full`` frames only imply an all-true mask when the block
        # size is a whole number of warps (no padding lanes)
        self._m0full = bool(self.mask0.all())

    # -- preparation -----------------------------------------------------
    def _prepare_geometry(self) -> None:
        bx, by, bz = self.block
        tpb = bx * by * bz
        # pad block width to a whole number of hardware warps
        self.width = -(-tpb // self.WW) * self.WW
        self.ngroups_full = self.width // self.WW
        lin = np.arange(self.width, dtype=np.uint32)
        self.tid = (lin % bx, (lin // bx) % by, lin // (bx * by))
        self.mask0 = lin < tpb

    def _prepare_code(self) -> None:
        """Pre-resolve labels, costs, and histogram keys per instruction."""
        instrs = self.k.instrs
        labels = self.k.label_map()
        t = self.spec.timing
        self.instrs = instrs
        self.n_instr = len(instrs)
        self.target_pc = [0] * self.n_instr
        self.reconv_pc = [0] * self.n_instr
        self.cost = [0.0] * self.n_instr
        self.hkey = [""] * self.n_instr
        self.imm_cache: list = [None] * self.n_instr
        # ops that legitimately produce inf/NaN run under a scoped
        # errstate; integer ops do not, so genuine overflow bugs warn
        self.fp_guard = [False] * self.n_instr
        self._fp_err = dict(
            divide="ignore", invalid="ignore", over="ignore", under="ignore"
        )
        for pc, i in enumerate(instrs):
            if i.op is Op.BRA:
                self.target_pc[pc] = labels[i.target]
                if i.reconv is not None:
                    self.reconv_pc[pc] = labels[i.reconv]
            c = t.alu_cycles
            if i.op in _SFU_OPS:
                c *= t.sfu_factor
            elif i.dtype is Scalar.F64 and i.op is not Op.LD and i.op is not Op.ST:
                c *= 8.0
            elif i.op in (Op.DIV, Op.REM) and i.dtype not in (
                Scalar.F32,
                Scalar.F64,
            ):
                c *= t.idiv_factor
            if i.op is Op.MOV and i.sreg is None and i.srcs and not isinstance(i.srcs[0], Imm):
                c *= t.reg_mov_factor
            self.cost[pc] = c
            self.hkey[pc] = stats_key(i.op, i.space)
            self.fp_guard[pc] = (
                i.dtype in (Scalar.F32, Scalar.F64)
                or i.op in _SFU_OPS
                or (
                    i.op is Op.CVT
                    and any(
                        getattr(s, "dtype", None) in (Scalar.F32, Scalar.F64)
                        for s in i.srcs
                    )
                )
            )
            self.imm_cache[pc] = tuple(
                np_dtype(s.dtype)(s.value) if isinstance(s, Imm) else None
                for s in i.srcs
            )

    def _static_ilp(self) -> float:
        """MLP credit from straight-line body length.

        A warp overlaps the independent loads inside one basic-block
        run; unrolled kernels have much longer runs (this is the
        documented reason unrolling helps memory-bound GPU code even
        when occupancy drops).  Scale: +1x per ~256 instructions of
        average back-edge-free run, capped at 2x.
        """
        real = [i for i in self.instrs if i.op is not Op.LABEL]
        loops = sum(
            1
            for pc, i in enumerate(self.instrs)
            if i.op is Op.BRA
            and self.target_pc[pc] <= pc
        )
        run = len(real) / (loops + 1)
        return float(min(2.0, 1.0 + run / 384.0))

    # -- register file -----------------------------------------------------
    def _read(self, regs: dict, operand, pc: int, slot: int):
        imm = self.imm_cache[pc][slot]
        if imm is not None:
            return imm
        arr = regs.get(operand.idx)
        if arr is None:
            arr = np.zeros(self._lanes, dtype=np_dtype(operand.dtype))
            regs[operand.idx] = arr
        return arr

    def _write(self, regs: dict, dst: Reg, val, mask, full: bool):
        dt = np_dtype(dst.dtype)
        arr = regs.get(dst.idx)
        if arr is None:
            arr = np.zeros(self._lanes, dtype=dt)
            regs[dst.idx] = arr
        if np.ndim(val) == 0:
            if full:
                arr[:] = val
            else:
                arr[mask] = dt(val)
        else:
            if val.dtype != dt:
                val = val.astype(dt)
            if full:
                arr[:] = val
            else:
                arr[mask] = val[mask]

    def _ngr_b(self, mask: np.ndarray, nb: int) -> np.ndarray:
        """Active 32-lane groups per block of the batch."""
        return (
            mask.reshape(nb, self.ngroups_full, self.WW)
            .any(axis=2)
            .sum(axis=1)
        )

    def _ngr_list(self, mask: np.ndarray, nb: int) -> list:
        """Per-block active-group counts as a plain Python list.

        Frames cache this (plus its sum) so the per-instruction loop
        never touches numpy reductions for cost bookkeeping.
        """
        return self._ngr_b(mask, nb).tolist()

    # -- ALU semantics -----------------------------------------------------
    def _alu(self, i: Instr, a, b=None, c=None):
        op = i.op
        if op is Op.ADD:
            return a + b
        if op is Op.SUB:
            return a - b
        if op is Op.MUL:
            return a * b
        if op is Op.MAD or op is Op.FMA:
            return a * b + c
        if op is Op.DIV:
            if i.dtype in (Scalar.F32, Scalar.F64):
                return a / b
            safe = np.where(b == 0, 1, b)
            return np.where(b == 0, 0, a // safe) if np.ndim(b) else (
                a // b if b else a * 0
            )
        if op is Op.REM:
            if np.ndim(b) == 0:
                return a % b if b else a * 0
            safe = np.where(b == 0, 1, b)
            return np.where(b == 0, 0, a % safe)
        if op is Op.MIN:
            return np.minimum(a, b)
        if op is Op.MAX:
            return np.maximum(a, b)
        if op is Op.AND:
            return np.logical_and(a, b) if i.dtype is Scalar.PRED else a & b
        if op is Op.OR:
            return np.logical_or(a, b) if i.dtype is Scalar.PRED else a | b
        if op is Op.XOR:
            return np.logical_xor(a, b) if i.dtype is Scalar.PRED else a ^ b
        if op is Op.SHL:
            m = 63 if i.dtype in (Scalar.S64, Scalar.U64) else 31
            return a << (b & m if np.ndim(b) else int(b) & m)
        if op is Op.SHR:
            m = 63 if i.dtype in (Scalar.S64, Scalar.U64) else 31
            return a >> (b & m if np.ndim(b) else int(b) & m)
        if op is Op.NEG:
            return -a
        if op is Op.NOT:
            return np.logical_not(a) if i.dtype is Scalar.PRED else ~a
        if op is Op.ABS:
            return np.abs(a)
        if op is Op.SQRT:
            # sqrt(negative) is NaN on real CUDA/OpenCL; propagate it
            return np.sqrt(a)
        if op is Op.RSQRT:
            return 1.0 / np.sqrt(a)
        if op is Op.SIN:
            return np.sin(a)
        if op is Op.COS:
            return np.cos(a)
        if op is Op.EX2:
            # overflow saturates to +inf, exactly like the hardware SFU
            return np.exp2(a)
        if op is Op.LG2:
            # lg2(0) = -inf, lg2(negative) = NaN — no clamping
            return np.log2(a)
        if op is Op.FLOOR:
            return np.floor(a)
        if op is Op.CVT:
            dt = np_dtype(i.dtype)
            return dt(a) if np.ndim(a) == 0 else a.astype(dt)
        raise SimulationError(f"no ALU semantics for {op}")  # pragma: no cover

    # -- batch execution ---------------------------------------------------
    def run_block(self, bidx: tuple, cu: int) -> None:
        """Run one block (a batch of size 1); kept for callers/tests."""
        self.run_batch([bidx], [cu])

    def run_batch(self, bidxs: list, cus: list) -> None:
        """Run a batch of consecutive blocks in lockstep.

        The functional pass interprets all blocks at once and *records*
        every cost-bearing visit; :meth:`_replay` then charges the
        memory system and the cycle accounting per block in linear
        block order, so the result is bit-identical to running the
        blocks one at a time (see the module docstring).
        """
        spec = self.spec
        t = spec.timing
        stats = self.stats
        hist = stats.dyn_hist
        WW = self.WW
        instrs = self.instrs
        n = self.n_instr
        nb = len(bidxs)
        width = self.width
        lanes = nb * width
        self._lanes = lanes

        u32 = np.uint32
        geom = {
            "tid.x": np.tile(self.tid[0], nb),
            "tid.y": np.tile(self.tid[1], nb),
            "tid.z": np.tile(self.tid[2], nb),
            "ctaid.x": np.repeat(np.asarray([b[0] for b in bidxs], dtype=u32), width),
            "ctaid.y": np.repeat(np.asarray([b[1] for b in bidxs], dtype=u32), width),
            "ctaid.z": np.repeat(np.asarray([b[2] for b in bidxs], dtype=u32), width),
            "ntid.x": u32(self.block[0]),
            "ntid.y": u32(self.block[1]),
            "ntid.z": u32(self.block[2]),
            "nctaid.x": u32(self.grid[0]),
            "nctaid.y": u32(self.grid[1]),
            "nctaid.z": u32(self.grid[2]),
        }
        #: per-lane local block index, for shared-memory segment routing
        self._blk = np.repeat(np.arange(nb, dtype=np.int64), width)
        shared = _SharedBatch(max(self.k.resources.shared_bytes, 64), nb)
        regs: dict[int, np.ndarray] = {}
        local: dict[int, np.ndarray] = {}
        mask0 = np.tile(self.mask0, nb)
        ngr0 = self._ngr_list(mask0, nb)
        live = mask0.copy()
        # frames: [mask, pc, reconv_pc, ngr_list, ngr_total, is_full]
        frames: list[list] = [[mask0, 0, n + 1, ngr0, sum(ngr0), True]]
        prev_mad = [False] * nb
        dual = t.dual_issue_efficiency
        #: recorded visits for the per-block replay (see _replay)
        visits: list[tuple] = []
        barriers = 0
        steps = 0
        # hot-loop locals; dynamic-instruction counts accumulate per pc
        # and flush into the Counter once per batch (integer sums, so
        # the flush order cannot change any value)
        hkey = self.hkey
        costl = self.cost
        tpc = self.target_pc
        imm_cache = self.imm_cache
        fp_guard = self.fp_guard
        fp_err = self._fp_err
        alu_c = t.alu_cycles
        dyn = [0] * n
        wi = 0
        bra_n = 0

        while frames:
            frame = frames[-1]
            mask, pc, rec, ngr_l, tot, full = frame
            if pc >= n:
                break
            if pc == rec and len(frames) > 1:
                frames.pop()
                continue
            steps += 1
            if steps > 80_000_000:  # pragma: no cover - runaway guard
                raise SimulationError("runaway kernel (80M batch steps)")
            i = instrs[pc]
            op = i.op
            if op is Op.LABEL:
                frame[1] = pc + 1
                continue
            if op is Op.EXIT:
                # kill every block with a lane in this frame, from every
                # frame — the batched equivalent of the per-block break
                killmask = np.repeat(
                    np.asarray([g > 0 for g in ngr_l]), width
                )
                live &= ~killmask
                kept = []
                for f in frames:
                    f[0] = f[0] & ~killmask
                    if f[0].any():
                        f[3] = self._ngr_list(f[0], nb)
                        f[4] = sum(f[3])
                        f[5] = False
                        kept.append(f)
                frames = kept
                continue

            active = mask
            afull = full
            if i.pred is not None:
                p, sense = i.pred
                pv = regs.get(p.idx)
                if pv is None:
                    pv = regs[p.idx] = np.zeros(lanes, dtype=bool)
                active = (mask & pv) if sense else (mask & ~pv)
                afull = False

            if op is Op.BRA:
                wi += tot
                bra_n += tot
                visits.append(("bra", "bra", ngr_l, None))
                if i.pred is None:
                    frame[1] = tpc[pc]
                    continue
                taken = active
                any_taken = taken.any()
                ntaken = mask & ~taken
                any_nt = ntaken.any()
                if not any_taken:
                    frame[1] = pc + 1
                    continue
                if not any_nt:
                    frame[1] = tpc[pc]
                    continue
                rpc = self.reconv_pc[pc]
                frame[1] = rpc
                nl = self._ngr_list(ntaken, nb)
                tl = self._ngr_list(taken, nb)
                frames.append([ntaken, pc + 1, rpc, nl, sum(nl), False])
                frames.append([taken, tpc[pc], rpc, tl, sum(tl), False])
                continue

            if op is Op.BAR:
                # block-lockstep: check per-block convergence, charge,
                # move on (blocks in *other* frames sync at their own
                # visit of this barrier)
                stray = live & ~mask
                if stray.any():
                    part = np.asarray([g > 0 for g in ngr_l])
                    diverged = part & (self._ngr_b(stray, nb) > 0)
                    if diverged.any():
                        raise SimulationError(
                            f"kernel {self.k.name!r}: barrier under divergence"
                        )
                barriers += sum(1 for g in ngr_l if g)
                visits.append(("bar", "bar", ngr_l, None))
                frame[1] = pc + 1
                continue

            wi += tot
            dyn[pc] += tot
            hk = hkey[pc]

            if op is Op.MOV:
                if i.sreg is not None:
                    val = geom[i.sreg]
                    visits.append(("c", hk, ngr_l, alu_c))
                else:
                    val = self._read(regs, i.srcs[0], pc, 0)
                    # reg-to-reg movs are mostly renamed away by ptxas
                    visits.append(("c", hk, ngr_l, costl[pc]))
                self._write(regs, i.dst, val, active, afull)
            elif op is Op.LD and i.space is AddrSpace.PARAM:
                self._write(regs, i.dst, self.args[i.param], active, afull)
                visits.append(("c", hk, ngr_l, alu_c))
            elif op is Op.LD and i.space is AddrSpace.LOCAL:
                off = int(i.srcs[0].value)
                slot = local.get(off)
                if slot is None:
                    slot = local[off] = np.zeros(
                        lanes, dtype=np_dtype(i.dtype)
                    )
                self._write(regs, i.dst, slot, active, afull)
                visits.append(("l", hk, ngr_l, sizeof(i.dtype)))
                stats.mem_instructions += tot
            elif op is Op.ST and i.space is AddrSpace.LOCAL:
                off = int(i.srcs[0].value)
                val = self._read(regs, i.srcs[1], pc, 1)
                slot = local.get(off)
                if slot is None:
                    slot = local[off] = np.zeros(
                        lanes, dtype=np_dtype(i.dtype)
                    )
                if np.ndim(val) == 0:
                    slot[active] = val
                else:
                    slot[active] = val[active]
                visits.append(("l", hk, ngr_l, sizeof(i.dtype)))
                stats.mem_instructions += tot
            elif op is Op.LD or op is Op.ST or op is Op.TEX:
                rows = self._memory_access(regs, i, pc, shared, active, afull, nb)
                visits.append(("m", hk, ngr_l, rows))
                stats.mem_instructions += tot
            elif op is Op.SETP:
                a = self._read(regs, i.srcs[0], pc, 0)
                b = self._read(regs, i.srcs[1], pc, 1)
                val = _CMP[i.cmp](a, b)
                if np.ndim(val) == 0:
                    val = np.full(lanes, bool(val))
                self._write(regs, i.dst, val, active, afull)
                visits.append(("c", hk, ngr_l, alu_c))
            elif op is Op.SELP:
                a = self._read(regs, i.srcs[0], pc, 0)
                b = self._read(regs, i.srcs[1], pc, 1)
                p = self._read(regs, i.srcs[2], pc, 2)
                self._write(regs, i.dst, np.where(p, a, b), active, afull)
                visits.append(("c", hk, ngr_l, alu_c))
            else:
                # inlined _read: register arrays resolve with one dict
                # probe per operand (immediates come pre-converted)
                imms = imm_cache[pc]
                srcs = []
                for j, s in enumerate(i.srcs):
                    v = imms[j]
                    if v is None:
                        v = regs.get(s.idx)
                        if v is None:
                            v = regs[s.idx] = np.zeros(
                                lanes, dtype=np_dtype(s.dtype)
                            )
                    srcs.append(v)
                if fp_guard[pc]:
                    with np.errstate(**fp_err):
                        val = self._alu(i, *srcs)
                else:
                    val = self._alu(i, *srcs)
                self._write(regs, i.dst, val, active, afull)
                cost = costl[pc]
                if (
                    dual > 0
                    and op is Op.MUL
                    and i.dtype is Scalar.F32
                    and any(prev_mad)
                ):
                    paired = cost * (1.0 - dual)
                    visits.append(
                        (
                            "C",
                            hk,
                            ngr_l,
                            [
                                (paired if pm else cost) * g
                                for pm, g in zip(prev_mad, ngr_l)
                            ],
                        )
                    )
                else:
                    visits.append(("c", hk, ngr_l, cost))
                # pairing looks through movs/loads, and is per block
                if dual > 0:
                    flag = op is Op.MAD or op is Op.FMA
                    prev_mad = [
                        flag if g else pm for g, pm in zip(ngr_l, prev_mad)
                    ]

            frame[1] = pc + 1

        stats.warp_instructions += wi
        if bra_n:
            hist["bra"] += bra_n
        for p2 in range(n):
            v = dyn[p2]
            if v:
                hist[hkey[p2]] += v
        stats.barriers += barriers
        self._replay(visits, nb, cus)

    def _memory_access(
        self, regs, i: Instr, pc: int, shared, active, afull, nb: int
    ) -> dict:
        """Perform the functional memory effect; record the cost rows.

        Returns ``{block: [(kind, addr_array, size), ...]}`` — the
        per-warp-row access descriptors the batch-end replay feeds to
        the memory system in per-block order.
        """
        size = sizeof(i.dtype)
        WW = self.WW
        lanes = self._lanes
        if i.op is Op.TEX:
            idx = self._read(regs, i.srcs[0], pc, 0)
            base = int(self.args[i.param])
            if np.ndim(idx) == 0:
                idx = np.full(lanes, idx)
            addr_full = idx.astype(np.int64) * size + base
        else:
            a = self._read(regs, i.srcs[0], pc, 0)
            if np.ndim(a) == 0:
                a = np.full(lanes, a)
            addr_full = a.astype(np.int64)

        # per hardware-warp cost rows (coalescing is a per-warp
        # phenomenon); rows of a block are contiguous and in-order
        nwpb = self.ngroups_full
        space = i.space
        if i.op is Op.TEX:
            kind = "t"
        elif space is AddrSpace.SHARED:
            kind = "s"
        elif space is AddrSpace.CONST:
            kind = "c"
        else:
            kind = "G" if i.op is Op.ST else "g"
        # fully-active visits skip the mask compaction entirely — the
        # compacted address list IS the full lane vector ("full" frames
        # only have every lane active when the block has no padding)
        afull = afull and self._m0full
        addrs = addr_full if afull else addr_full[active]
        rowdata: dict[int, list] = {}
        handled = False
        if kind in ("g", "G") and self.spec.architecture != "gt200":
            # line-rule devices: resolve every warp row's distinct cache
            # lines in one vectorized pass instead of one np.unique per
            # row (bit-identical to coalesce(): sorted distinct lines)
            line = self.spec.line_bytes
            if line & (line - 1) == 0:
                # power-of-two line: arithmetic shift is floor division
                sh = line.bit_length() - 1
                first = addr_full >> sh
                last = (addr_full + (size - 1)) >> sh
            else:  # pragma: no cover - no such device spec today
                first = addr_full // line
                last = (addr_full + (size - 1)) // line
            straddle_free = (
                np.array_equal(first, last)
                if afull
                else np.array_equal(first[active], last[active])
            )
            if straddle_free:
                if afull:
                    srt = np.sort(first.reshape(-1, WW), axis=1)
                    newv = np.empty(srt.shape, dtype=bool)
                    newv[:, 0] = True
                    newv[:, 1:] = srt[:, 1:] != srt[:, :-1]
                    keep = newv
                else:
                    sent = np.int64(np.iinfo(np.int64).max)
                    fm = np.where(active, first, sent).reshape(-1, WW)
                    srt = np.sort(fm, axis=1)
                    newv = np.empty(srt.shape, dtype=bool)
                    newv[:, 0] = True
                    newv[:, 1:] = srt[:, 1:] != srt[:, :-1]
                    keep = newv & (srt != sent)
                pk = "P" if kind == "G" else "p"
                # rows with active lanes are exactly the rows with kept
                # lines; one flat extraction, then per-row list slices
                cnt = keep.sum(axis=1).tolist()
                flat = (srt[keep] * line).tolist()
                pos = 0
                for r, c in enumerate(cnt):
                    if c:
                        rowdata.setdefault(r // nwpb, []).append(
                            (pk, flat[pos : pos + c], c * line)
                        )
                    pos += c
                handled = True
        elif (
            kind in ("g", "G")
            and self.spec.architecture == "gt200"
            and WW % 16 == 0
        ):
            # GT200 half-warp rule, vectorized across every warp row of
            # the visit (bit-identical to segments_gt200 for the common
            # shape: fully-active rows, no access straddling a 128B
            # segment).  Each half-warp chunks the *compacted* address
            # list; sorting it groups same-segment addresses into runs,
            # whose min/max drive the 128->64->32 shrink rule.
            if afull:
                cnt = np.full(addrs.size // WW, WW, dtype=np.int64)
                rows_uniform = True
            else:
                cnt = active.reshape(-1, WW).sum(axis=1)
                rows_uniform = bool(((cnt == 0) | (cnt == WW)).all())
            if rows_uniform:
                size_eff = size if size > 1 else 1
                half = addrs.reshape(-1, 16)
                srt = np.sort(half, axis=1)
                f = srt >> 7
                if np.array_equal(f, (srt + (size_eff - 1)) >> 7):
                    newv = np.empty(f.shape, dtype=bool)
                    newv[:, 0] = True
                    newv[:, 1:] = f[:, 1:] != f[:, :-1]
                    lastv = np.empty(f.shape, dtype=bool)
                    lastv[:, -1] = True
                    lastv[:, :-1] = newv[:, 1:]
                    firsts = srt[newv]
                    lasts = srt[lastv] + size_eff
                    fit64 = (firsts >> 6) << 6
                    ok64 = lasts <= fit64 + 64
                    fit32 = (firsts >> 5) << 5
                    ok32 = ok64 & (lasts <= fit32 + 32)
                    starts = np.where(
                        ok32, fit32, np.where(ok64, fit64, (firsts >> 7) << 7)
                    ).tolist()
                    widths = np.where(ok32, 32, np.where(ok64, 64, 128))
                    segrow = newv.sum(axis=1).reshape(-1, WW // 16).sum(axis=1)
                    if widths.size:
                        bounds = np.cumsum(segrow)
                        traffic = np.add.reduceat(
                            widths, np.r_[0, bounds[:-1]]
                        ).tolist()
                    else:
                        traffic = []
                    nsegs = segrow.tolist()
                    pk = "P" if kind == "G" else "p"
                    pos = 0
                    ar = 0
                    for r, c in enumerate(cnt.tolist()):
                        if c:
                            ns = nsegs[ar]
                            rowdata.setdefault(r // nwpb, []).append(
                                (pk, starts[pos : pos + ns], traffic[ar])
                            )
                            pos += ns
                            ar += 1
                    handled = True
        elif kind == "s":
            # bank-replay factors are a pure function of the address
            # pattern (no cache state), so resolve them here; blocks of
            # a batch almost always address shared memory identically,
            # so the per-block rows collapse onto block 0's patterns
            if afull:
                cnt = [WW] * (addrs.size // WW)
            else:
                cnt = active.reshape(-1, WW).sum(axis=1).tolist()
            if self.spec.local_mem_is_plain_memory:
                for r, c in enumerate(cnt):
                    if c:
                        rowdata.setdefault(r // nwpb, []).append(("S", 1, 0))
            else:
                memsys = self.memsys
                invariant = False
                if nb > 1:
                    am = addr_full.reshape(nb, -1)
                    mm = active.reshape(nb, -1)
                    invariant = bool(
                        np.array_equal(
                            am, np.broadcast_to(am[0], am.shape)
                        )
                        and np.array_equal(
                            mm, np.broadcast_to(mm[0], mm.shape)
                        )
                    )
                if invariant:
                    reps = [None] * nwpb
                    pos = 0
                    for r in range(nwpb):
                        c = cnt[r]
                        if c:
                            reps[r] = memsys.shared_replay_factor(
                                addrs[pos : pos + c]
                            )
                            pos += c
                    for r, c in enumerate(cnt):
                        if c:
                            rowdata.setdefault(r // nwpb, []).append(
                                ("S", reps[r % nwpb], 0)
                            )
                else:
                    pos = 0
                    for r, c in enumerate(cnt):
                        if c:
                            rowdata.setdefault(r // nwpb, []).append(
                                (
                                    "S",
                                    memsys.shared_replay_factor(
                                        addrs[pos : pos + c]
                                    ),
                                    0,
                                )
                            )
                            pos += c
            handled = True
        if not handled:
            # compacted lane addresses are row-major, so each warp row
            # owns a contiguous slice of ``addrs``
            if afull:
                cnt = [WW] * (addrs.size // WW)
            else:
                cnt = active.reshape(-1, WW).sum(axis=1).tolist()
            pos = 0
            for r, c in enumerate(cnt):
                if c:
                    rowdata.setdefault(r // nwpb, []).append(
                        (kind, addrs[pos : pos + c], size)
                    )
                pos += c

        if i.op is Op.TEX:
            val = self.mem.load(addrs, i.dtype)
            dt = np_dtype(i.dtype)
            arr = regs.get(i.dst.idx)
            if arr is None:
                arr = regs[i.dst.idx] = np.zeros(lanes, dtype=dt)
            if afull:
                arr[:] = val
            else:
                arr[active] = val
            return rowdata

        if space is AddrSpace.SHARED:
            blk = self._blk if afull else self._blk[active]
            if i.op is Op.ST:
                val = self._read(regs, i.srcs[1], pc, 1)
                if np.ndim(val) == 0:
                    val = np.full(lanes, val, dtype=np_dtype(i.dtype))
                shared.store(addrs, blk, val if afull else val[active], i.dtype)
            else:
                out = shared.load(addrs, blk, i.dtype)
                dt = np_dtype(i.dtype)
                arr = regs.get(i.dst.idx)
                if arr is None:
                    arr = regs[i.dst.idx] = np.zeros(lanes, dtype=dt)
                if afull:
                    arr[:] = out
                else:
                    arr[active] = out
            return rowdata

        if i.op is Op.ST:
            val = self._read(regs, i.srcs[1], pc, 1)
            if np.ndim(val) == 0:
                val = np.full(lanes, val, dtype=np_dtype(i.dtype))
            self.mem.store(addrs, val if afull else val[active], i.dtype)
        else:
            out = self.mem.load(addrs, i.dtype)
            dt = np_dtype(i.dtype)
            arr = regs.get(i.dst.idx)
            if arr is None:
                arr = regs[i.dst.idx] = np.zeros(lanes, dtype=dt)
            if afull:
                arr[:] = out
            else:
                arr[active] = out
        return rowdata

    def _replay(self, visits: list, nb: int, cus: list) -> None:
        """Charge the recorded visits per block, in linear block order.

        This reproduces exactly what per-block execution would have
        done to the (order-sensitive) memory-system state and to the
        float accumulation order of the cycle accounting: block ``j``
        replays all of its visits — memory accesses included — before
        block ``j + 1`` touches anything.
        """
        t = self.spec.timing
        memsys = self.memsys
        stats = self.stats
        cyc = stats.cyc_hist
        alu = t.alu_cycles
        for j in range(nb):
            cu = cus[j]
            comp = 0.0
            memc = 0.0
            for kind, key, ngr_l, data in visits:
                ngr = ngr_l[j]
                if not ngr:
                    continue
                if kind == "c":
                    c0 = comp + memc
                    comp += data * ngr
                    cyc[key] += comp + memc - c0
                elif kind == "m":
                    cost = 0.0
                    rl = data.get(j)
                    if rl is not None:
                        for kc, aa, size in rl:
                            if kc == "p":
                                cost += memsys.access_global_segs(
                                    cu, aa, size, False
                                )
                            elif kc == "P":
                                cost += memsys.access_global_segs(
                                    cu, aa, size, True
                                )
                            elif kc == "g":
                                ss = np.full(aa.shape, size, dtype=np.int64)
                                cost += memsys.access_global(cu, aa, ss, False)
                            elif kc == "G":
                                ss = np.full(aa.shape, size, dtype=np.int64)
                                cost += memsys.access_global(cu, aa, ss, True)
                            elif kc == "S":
                                # pre-resolved shared access: aa is the
                                # bank-replay factor (see record side)
                                memsys.shared_accesses += 1
                                memsys.shared_replays += aa - 1
                                cost += t.shared_latency + (aa - 1) * 4.0
                            elif kc == "s":
                                cost += memsys.access_shared(cu, aa)
                            elif kc == "c":
                                cost += memsys.access_const(cu, aa)
                            else:
                                ss = np.full(aa.shape, size, dtype=np.int64)
                                cost += memsys.access_texture(cu, aa, ss)
                    c0 = comp + memc
                    memc += cost
                    cyc[key] += comp + memc - c0
                elif kind == "C":
                    c0 = comp + memc
                    comp += data[j]
                    cyc[key] += comp + memc - c0
                elif kind == "l":
                    c0 = comp + memc
                    memc += memsys.access_local(cu, data, data) * ngr
                    cyc[key] += comp + memc - c0
                elif kind == "bra":
                    comp += alu * ngr
                    cyc["bra"] += alu * ngr
                else:  # "bar"
                    comp += alu * ngr
                    cyc["bar"] += alu * ngr
            stats.comp_cycles[cu] += comp
            stats.mem_cycles[cu] += memc
            stats.blocks += 1

    def run(self) -> LaunchStats:
        gx, gy, gz = self.grid
        n_cu = self.spec.compute_units
        bidxs = [
            (bx, by, bz)
            for bz in range(gz)
            for by in range(gy)
            for bx in range(gx)
        ]
        nblocks = len(bidxs)
        if self.batch_blocks is not None:
            batch = max(1, min(int(self.batch_blocks), nblocks))
        else:
            batch = _batch_size(self.width, nblocks)
        for lo in range(0, nblocks, batch):
            chunk = bidxs[lo : lo + batch]
            cus = [(lo + j) % n_cu for j in range(len(chunk))]
            self.run_batch(chunk, cus)
        return self.stats


def run_grid(
    kernel: PTXKernel,
    spec: DeviceSpec,
    memsys: MemorySystem,
    mem: FlatMemory,
    args: dict,
    grid: tuple,
    block: tuple,
    batch_blocks: int | None = None,
) -> LaunchStats:
    """Execute ``kernel`` over the ND-range; returns dynamic statistics."""
    return GridRunner(
        kernel, spec, memsys, mem, args, grid, block, batch_blocks=batch_blocks
    ).run()
