"""SIMT functional interpreter over the virtual ISA.

Execution model: one *block-wide* masked vector per thread block.  The
reconvergence-stack mechanism is width-agnostic, so running all warps of
a block in lockstep produces bit-identical functional results while
letting every ALU instruction be a single numpy op over the whole block
(the vectorize-don't-loop idiom of the HPC guides).

Per-warp costs are recovered exactly: an instruction executed under mask
``m`` is *issued* by every 32-lane group with an active lane, so its
issue cost is ``cost * active_groups(m)`` — identical to executing warps
one at a time.  Memory instructions are costed per hardware warp group
(coalescing is a per-warp phenomenon) through
:class:`~repro.sim.memsys.MemorySystem`.

Barriers become no-ops under block-lockstep (the interpreter checks the
mask is converged, which the KIR validator already guarantees), and
warp-synchronous idioms remain correct because block-lockstep is
strictly stronger than warp-lockstep.
"""
from __future__ import annotations

from collections import Counter

import numpy as np

from ..arch.specs import DeviceSpec
from ..kir.types import AddrSpace, Scalar, np_dtype, sizeof
from ..ptx.instructions import Imm, Instr, Reg
from ..ptx.isa import Op, stats_key
from ..ptx.module import PTXKernel
from .memory import FlatMemory
from .memsys import MemorySystem

__all__ = ["LaunchStats", "run_grid", "SimulationError"]

_SFU_OPS = {Op.SQRT, Op.RSQRT, Op.SIN, Op.COS, Op.EX2, Op.LG2}

_CMP = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


class SimulationError(RuntimeError):
    pass


class LaunchStats:
    """Dynamic execution statistics of one kernel launch."""

    def __init__(self, n_cu: int):
        self.comp_cycles = np.zeros(n_cu, dtype=np.float64)
        self.mem_cycles = np.zeros(n_cu, dtype=np.float64)
        self.dyn_hist: Counter = Counter()
        #: issue/latency cycles charged per Table-V row (profiler feed)
        self.cyc_hist: Counter = Counter()
        self.warp_instructions = 0
        self.mem_instructions = 0
        self.blocks = 0
        self.barriers = 0
        #: per-warp memory-level-parallelism credit from straight-line
        #: code length (unrolled bodies issue more independent loads)
        self.ilp_factor = 1.0


class GridRunner:
    def __init__(
        self,
        kernel: PTXKernel,
        spec: DeviceSpec,
        memsys: MemorySystem,
        mem: FlatMemory,
        args: dict,
        grid: tuple,
        block: tuple,
    ):
        self.k = kernel
        self.spec = spec
        self.memsys = memsys
        self.mem = mem
        self.args = args
        self.grid = grid
        self.block = block
        self.WW = spec.warp_width
        self.stats = LaunchStats(spec.compute_units)
        self._prepare_geometry()
        self._prepare_code()
        self.stats.ilp_factor = self._static_ilp()

    # -- preparation -----------------------------------------------------
    def _prepare_geometry(self) -> None:
        bx, by, bz = self.block
        tpb = bx * by * bz
        # pad block width to a whole number of hardware warps
        self.width = -(-tpb // self.WW) * self.WW
        self.ngroups_full = self.width // self.WW
        lin = np.arange(self.width, dtype=np.uint32)
        self.tid = (lin % bx, (lin // bx) % by, lin // (bx * by))
        self.mask0 = lin < tpb
        self.groups_full = int(
            self.mask0.reshape(-1, self.WW).any(axis=1).sum()
        )

    def _prepare_code(self) -> None:
        """Pre-resolve labels, costs, and histogram keys per instruction."""
        instrs = self.k.instrs
        labels = self.k.label_map()
        t = self.spec.timing
        self.instrs = instrs
        self.n_instr = len(instrs)
        self.target_pc = [0] * self.n_instr
        self.reconv_pc = [0] * self.n_instr
        self.cost = [0.0] * self.n_instr
        self.hkey = [""] * self.n_instr
        self.imm_cache: list = [None] * self.n_instr
        for pc, i in enumerate(instrs):
            if i.op is Op.BRA:
                self.target_pc[pc] = labels[i.target]
                if i.reconv is not None:
                    self.reconv_pc[pc] = labels[i.reconv]
            c = t.alu_cycles
            if i.op in _SFU_OPS:
                c *= t.sfu_factor
            elif i.dtype is Scalar.F64 and i.op is not Op.LD and i.op is not Op.ST:
                c *= 8.0
            elif i.op in (Op.DIV, Op.REM) and i.dtype not in (
                Scalar.F32,
                Scalar.F64,
            ):
                c *= t.idiv_factor
            if i.op is Op.MOV and i.sreg is None and i.srcs and not isinstance(i.srcs[0], Imm):
                c *= t.reg_mov_factor
            self.cost[pc] = c
            self.hkey[pc] = stats_key(i.op, i.space)
            self.imm_cache[pc] = tuple(
                np_dtype(s.dtype)(s.value) if isinstance(s, Imm) else None
                for s in i.srcs
            )

    def _static_ilp(self) -> float:
        """MLP credit from straight-line body length.

        A warp overlaps the independent loads inside one basic-block
        run; unrolled kernels have much longer runs (this is the
        documented reason unrolling helps memory-bound GPU code even
        when occupancy drops).  Scale: +1x per ~256 instructions of
        average back-edge-free run, capped at 2x.
        """
        real = [i for i in self.instrs if i.op is not Op.LABEL]
        loops = sum(
            1
            for pc, i in enumerate(self.instrs)
            if i.op is Op.BRA
            and self.target_pc[pc] <= pc
        )
        run = len(real) / (loops + 1)
        return float(min(2.0, 1.0 + run / 384.0))

    # -- register file -----------------------------------------------------
    def _read(self, regs: dict, operand, pc: int, slot: int):
        imm = self.imm_cache[pc][slot]
        if imm is not None:
            return imm
        arr = regs.get(operand.idx)
        if arr is None:
            arr = np.zeros(self.width, dtype=np_dtype(operand.dtype))
            regs[operand.idx] = arr
        return arr

    def _write(self, regs: dict, dst: Reg, val, mask, full: bool):
        dt = np_dtype(dst.dtype)
        arr = regs.get(dst.idx)
        if arr is None:
            arr = np.zeros(self.width, dtype=dt)
            regs[dst.idx] = arr
        if np.ndim(val) == 0:
            if full:
                arr[:] = val
            else:
                arr[mask] = dt(val)
        else:
            if val.dtype != dt:
                val = val.astype(dt)
            if full:
                arr[:] = val
            else:
                arr[mask] = val[mask]

    @staticmethod
    def _ngroups(mask: np.ndarray, ww: int) -> int:
        return int(mask.reshape(-1, ww).any(axis=1).sum())

    # -- ALU semantics -----------------------------------------------------
    def _alu(self, i: Instr, a, b=None, c=None):
        op = i.op
        if op is Op.ADD:
            return a + b
        if op is Op.SUB:
            return a - b
        if op is Op.MUL:
            return a * b
        if op is Op.MAD or op is Op.FMA:
            return a * b + c
        if op is Op.DIV:
            if i.dtype in (Scalar.F32, Scalar.F64):
                return a / b
            safe = np.where(b == 0, 1, b)
            return np.where(b == 0, 0, a // safe) if np.ndim(b) else (
                a // b if b else a * 0
            )
        if op is Op.REM:
            if np.ndim(b) == 0:
                return a % b if b else a * 0
            safe = np.where(b == 0, 1, b)
            return np.where(b == 0, 0, a % safe)
        if op is Op.MIN:
            return np.minimum(a, b)
        if op is Op.MAX:
            return np.maximum(a, b)
        if op is Op.AND:
            return np.logical_and(a, b) if i.dtype is Scalar.PRED else a & b
        if op is Op.OR:
            return np.logical_or(a, b) if i.dtype is Scalar.PRED else a | b
        if op is Op.XOR:
            return np.logical_xor(a, b) if i.dtype is Scalar.PRED else a ^ b
        if op is Op.SHL:
            return a << (b & 31 if np.ndim(b) else int(b) & 31)
        if op is Op.SHR:
            return a >> (b & 31 if np.ndim(b) else int(b) & 31)
        if op is Op.NEG:
            return -a
        if op is Op.NOT:
            return np.logical_not(a) if i.dtype is Scalar.PRED else ~a
        if op is Op.ABS:
            return np.abs(a)
        if op is Op.SQRT:
            return np.sqrt(np.maximum(a, 0))
        if op is Op.RSQRT:
            return 1.0 / np.sqrt(a)
        if op is Op.SIN:
            return np.sin(a)
        if op is Op.COS:
            return np.cos(a)
        if op is Op.EX2:
            return np.exp2(np.minimum(a, 126.0))
        if op is Op.LG2:
            return np.log2(np.maximum(a, np.finfo(np.float32).tiny))
        if op is Op.FLOOR:
            return np.floor(a)
        if op is Op.CVT:
            dt = np_dtype(i.dtype)
            return dt(a) if np.ndim(a) == 0 else a.astype(dt)
        raise SimulationError(f"no ALU semantics for {op}")  # pragma: no cover

    # -- block execution -----------------------------------------------------
    def run_block(self, bidx: tuple, cu: int) -> None:
        spec = self.spec
        t = spec.timing
        stats = self.stats
        hist = stats.dyn_hist
        cyc = stats.cyc_hist
        WW = self.WW
        instrs = self.instrs
        n = self.n_instr

        geom = {
            "tid.x": self.tid[0],
            "tid.y": self.tid[1],
            "tid.z": self.tid[2],
            "ctaid.x": np.uint32(bidx[0]),
            "ctaid.y": np.uint32(bidx[1]),
            "ctaid.z": np.uint32(bidx[2]),
            "ntid.x": np.uint32(self.block[0]),
            "ntid.y": np.uint32(self.block[1]),
            "ntid.z": np.uint32(self.block[2]),
            "nctaid.x": np.uint32(self.grid[0]),
            "nctaid.y": np.uint32(self.grid[1]),
            "nctaid.z": np.uint32(self.grid[2]),
        }
        shared = FlatMemory(max(self.k.resources.shared_bytes, 64))
        regs: dict[int, np.ndarray] = {}
        local: dict[int, np.ndarray] = {}
        # frames: [mask, pc, reconv_pc, ngroups, is_full]
        frames: list[list] = [[self.mask0, 0, n + 1, self.groups_full, True]]
        prev_op: Op | None = None
        comp = 0.0
        memc = 0.0
        barriers = 0
        steps = 0

        while frames:
            frame = frames[-1]
            mask, pc, rec, ngr, full = frame
            if pc >= n:
                break
            if pc == rec and len(frames) > 1:
                frames.pop()
                continue
            steps += 1
            if steps > 80_000_000:  # pragma: no cover - runaway guard
                raise SimulationError("runaway kernel (80M block steps)")
            i = instrs[pc]
            op = i.op
            if op is Op.LABEL:
                frame[1] = pc + 1
                continue
            if op is Op.EXIT:
                break

            active = mask
            afull = full
            if i.pred is not None:
                p, sense = i.pred
                pv = regs.get(p.idx)
                if pv is None:
                    pv = regs[p.idx] = np.zeros(self.width, dtype=bool)
                active = (mask & pv) if sense else (mask & ~pv)
                afull = False

            if op is Op.BRA:
                comp += t.alu_cycles * ngr
                stats.warp_instructions += ngr
                hist["bra"] += ngr
                cyc["bra"] += t.alu_cycles * ngr
                if i.pred is None:
                    frame[1] = self.target_pc[pc]
                    continue
                taken = active
                any_taken = taken.any()
                ntaken = mask & ~taken
                any_nt = ntaken.any()
                if not any_taken:
                    frame[1] = pc + 1
                    continue
                if not any_nt:
                    frame[1] = self.target_pc[pc]
                    continue
                rpc = self.reconv_pc[pc]
                frame[1] = rpc
                frames.append(
                    [ntaken, pc + 1, rpc, self._ngroups(ntaken, WW), False]
                )
                frames.append(
                    [taken, self.target_pc[pc], rpc, self._ngroups(taken, WW), False]
                )
                continue

            if op is Op.BAR:
                # block-lockstep: check convergence, charge, move on
                if len(frames) > 1:
                    raise SimulationError(
                        f"kernel {self.k.name!r}: barrier under divergence"
                    )
                barriers += 1
                comp += t.alu_cycles * ngr
                cyc["bar"] += t.alu_cycles * ngr
                frame[1] = pc + 1
                continue

            stats.warp_instructions += ngr
            hist[self.hkey[pc]] += ngr
            c0 = comp + memc  # cycles charged by this instruction

            if op is Op.MOV:
                if i.sreg is not None:
                    val = geom[i.sreg]
                    comp += t.alu_cycles * ngr
                else:
                    val = self._read(regs, i.srcs[0], pc, 0)
                    # reg-to-reg movs are mostly renamed away by ptxas
                    comp += self.cost[pc] * ngr
                self._write(regs, i.dst, val, active, afull)
            elif op is Op.LD and i.space is AddrSpace.PARAM:
                self._write(regs, i.dst, self.args[i.param], active, afull)
                comp += t.alu_cycles * ngr
            elif op is Op.LD and i.space is AddrSpace.LOCAL:
                off = int(i.srcs[0].value)
                slot = local.get(off)
                if slot is None:
                    slot = local[off] = np.zeros(
                        self.width, dtype=np_dtype(i.dtype)
                    )
                self._write(regs, i.dst, slot, active, afull)
                memc += (
                    self.memsys.access_local(cu, sizeof(i.dtype), sizeof(i.dtype))
                    * ngr
                )
                stats.mem_instructions += ngr
            elif op is Op.ST and i.space is AddrSpace.LOCAL:
                off = int(i.srcs[0].value)
                val = self._read(regs, i.srcs[1], pc, 1)
                slot = local.get(off)
                if slot is None:
                    slot = local[off] = np.zeros(
                        self.width, dtype=np_dtype(i.dtype)
                    )
                if np.ndim(val) == 0:
                    slot[active] = val
                else:
                    slot[active] = val[active]
                memc += (
                    self.memsys.access_local(cu, sizeof(i.dtype), sizeof(i.dtype))
                    * ngr
                )
                stats.mem_instructions += ngr
            elif op is Op.LD or op is Op.ST or op is Op.TEX:
                memc += self._memory_access(regs, i, pc, cu, shared, active, afull)
                stats.mem_instructions += ngr
            elif op is Op.SETP:
                a = self._read(regs, i.srcs[0], pc, 0)
                b = self._read(regs, i.srcs[1], pc, 1)
                val = _CMP[i.cmp](a, b)
                if np.ndim(val) == 0:
                    val = np.full(self.width, bool(val))
                self._write(regs, i.dst, val, active, afull)
                comp += t.alu_cycles * ngr
            elif op is Op.SELP:
                a = self._read(regs, i.srcs[0], pc, 0)
                b = self._read(regs, i.srcs[1], pc, 1)
                p = self._read(regs, i.srcs[2], pc, 2)
                self._write(regs, i.dst, np.where(p, a, b), active, afull)
                comp += t.alu_cycles * ngr
            else:
                srcs = [
                    self._read(regs, s, pc, j) for j, s in enumerate(i.srcs)
                ]
                val = self._alu(i, *srcs)
                self._write(regs, i.dst, val, active, afull)
                cost = self.cost[pc]
                if (
                    t.dual_issue_efficiency > 0
                    and op is Op.MUL
                    and (prev_op is Op.MAD or prev_op is Op.FMA)
                    and i.dtype is Scalar.F32
                ):
                    cost *= 1.0 - t.dual_issue_efficiency
                comp += cost * ngr
                prev_op = op  # pairing looks through movs/loads

            cyc[self.hkey[pc]] += comp + memc - c0
            frame[1] = pc + 1

        stats.comp_cycles[cu] += comp
        stats.mem_cycles[cu] += memc
        stats.barriers += barriers
        stats.blocks += 1

    def _memory_access(
        self, regs, i: Instr, pc: int, cu: int, shared, active, afull
    ) -> float:
        size = sizeof(i.dtype)
        WW = self.WW
        if i.op is Op.TEX:
            idx = self._read(regs, i.srcs[0], pc, 0)
            base = int(self.args[i.param])
            if np.ndim(idx) == 0:
                idx = np.full(self.width, idx)
            addr_full = idx.astype(np.int64) * size + base
        else:
            a = self._read(regs, i.srcs[0], pc, 0)
            if np.ndim(a) == 0:
                a = np.full(self.width, a)
            addr_full = a.astype(np.int64)

        cost = 0.0
        # per hardware-warp costing (coalescing is per warp)
        amat = addr_full.reshape(-1, WW)
        mmat = active.reshape(-1, WW)
        rows = np.flatnonzero(mmat.any(axis=1))
        if i.op is Op.TEX:
            for r in rows.tolist():
                aa = amat[r][mmat[r]]
                ss = np.full(aa.shape, size, dtype=np.int64)
                cost += self.memsys.access_texture(cu, aa, ss)
            addrs = addr_full[active]
            val = self.mem.load(addrs, i.dtype)
            dt = np_dtype(i.dtype)
            arr = regs.get(i.dst.idx)
            if arr is None:
                arr = regs[i.dst.idx] = np.zeros(self.width, dtype=dt)
            arr[active] = val
            return cost

        space = i.space
        if space is AddrSpace.SHARED:
            target = shared
            for r in rows.tolist():
                cost += self.memsys.access_shared(cu, amat[r][mmat[r]])
        elif space is AddrSpace.CONST:
            target = self.mem
            for r in rows.tolist():
                cost += self.memsys.access_const(cu, amat[r][mmat[r]])
        else:
            target = self.mem
            is_store = i.op is Op.ST
            for r in rows.tolist():
                aa = amat[r][mmat[r]]
                ss = np.full(aa.shape, size, dtype=np.int64)
                cost += self.memsys.access_global(cu, aa, ss, is_store)

        addrs = addr_full[active]
        if i.op is Op.ST:
            val = self._read(regs, i.srcs[1], pc, 1)
            if np.ndim(val) == 0:
                val = np.full(self.width, val, dtype=np_dtype(i.dtype))
            target.store(addrs, val[active], i.dtype)
        else:
            out = target.load(addrs, i.dtype)
            dt = np_dtype(i.dtype)
            arr = regs.get(i.dst.idx)
            if arr is None:
                arr = regs[i.dst.idx] = np.zeros(self.width, dtype=dt)
            arr[active] = out
        return cost

    def run(self) -> LaunchStats:
        gx, gy, gz = self.grid
        n_cu = self.spec.compute_units
        lin = 0
        with np.errstate(all="ignore"):
            for bz in range(gz):
                for by in range(gy):
                    for bx in range(gx):
                        self.run_block((bx, by, bz), lin % n_cu)
                        lin += 1
        return self.stats


def run_grid(
    kernel: PTXKernel,
    spec: DeviceSpec,
    memsys: MemorySystem,
    mem: FlatMemory,
    args: dict,
    grid: tuple,
    block: tuple,
) -> LaunchStats:
    """Execute ``kernel`` over the ND-range; returns dynamic statistics."""
    return GridRunner(kernel, spec, memsys, mem, args, grid, block).run()
