"""SIMT simulator: flat memory, memory system, interpreter, timing."""
from .device import LaunchFailure, LaunchResult, OutOfDeviceMemory, SimDevice
from .interp import LaunchStats, SimulationError, run_grid
from .memory import FlatMemory
from .memsys import MemorySystem
from .timing import KernelTiming, kernel_time

__all__ = [
    "SimDevice",
    "LaunchResult",
    "LaunchFailure",
    "OutOfDeviceMemory",
    "LaunchStats",
    "SimulationError",
    "run_grid",
    "FlatMemory",
    "MemorySystem",
    "KernelTiming",
    "kernel_time",
]
