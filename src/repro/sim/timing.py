"""Analytical timing: dynamic statistics -> kernel execution time.

A Hong–Kim-flavored model, per compute unit:

* ``comp``  — total warp issue cycles / ALU efficiency
* ``mem``   — total memory latency cycles / memory-level parallelism,
  floored by the CU's slice of effective DRAM bandwidth
* total    — ``max(comp, mem) + leak * min(comp, mem) + ramp``

The kernel takes as long as its slowest CU.  Memory-level parallelism is
``min(active warps, mwp_cap)``: this is how occupancy (registers/shared
usage) becomes time, and how low-occupancy or few-block launches expose
latency (the BFS/Sobel effects).
"""
from __future__ import annotations

import dataclasses

import numpy as np

from ..arch.occupancy import Occupancy
from ..arch.peak import theoretical_bandwidth_gbs
from ..arch.specs import DeviceSpec
from .interp import LaunchStats

__all__ = ["KernelTiming", "kernel_time"]


@dataclasses.dataclass(frozen=True)
class KernelTiming:
    total_s: float
    comp_s: float
    mem_s: float
    dram_bytes: float
    bound: str  # "compute" | "memory"
    occupancy_warps: int
    #: device-wide bandwidth and partition-camping terms of the
    #: ``max(per_cu, bw_total, hot)`` decision (seconds)
    bw_s: float = 0.0
    hot_s: float = 0.0
    #: which term actually won ``total_s``:
    #: "compute" | "latency" | "bandwidth" | "camping"
    bound_term: str = "compute"


def kernel_time(
    spec: DeviceSpec,
    stats: LaunchStats,
    dram_bytes: np.ndarray,
    occ: Occupancy,
    hot_cycles: float = 0.0,
) -> KernelTiming:
    """``dram_bytes``: per-CU DRAM traffic of *this* launch (the caller
    snapshots the memory system before/after, since caches stay warm
    across launches).  ``hot_cycles`` is the device-wide DRAM
    partition-contention serialization of this launch."""
    t = spec.timing
    hz = spec.core_clock_hz()
    warps = max(occ.warps_per_cu, 1)
    conc = min(float(warps) * stats.ilp_factor, t.mwp_cap)

    comp_cy = stats.comp_cycles / max(t.alu_efficiency, 1e-6)
    mem_cy = stats.mem_cycles / conc

    comp_s = comp_cy / hz
    mem_s = mem_cy / hz

    hi = np.maximum(comp_s, mem_s)
    lo = np.minimum(comp_s, mem_s)
    per_cu = hi + t.overlap_leak * lo

    # DRAM bandwidth is a *device-wide* resource: bound the launch by
    # total traffic over effective bandwidth, not per-CU slices (a CU
    # with extra blocks may use more than its 1/N share)
    bw = theoretical_bandwidth_gbs(spec) * 1e9 * t.dram_efficiency
    bw_s = float(dram_bytes.sum()) / bw
    # even a fully bandwidth-bound launch pays a sliver of its issue
    # stream (imperfect overlap) — this is where the mov-richer CUDA
    # stream loses its few percent on DeviceMemory (Fig. 1)
    bw_total = bw_s + t.overlap_leak * float(comp_s.max())
    hot_s = hot_cycles / hz  # device-wide serialization (partition camping)
    per_cu_max = float(per_cu.max())
    winner = max(per_cu_max, bw_total, hot_s)
    total = winner + t.ramp_us * 1e-6

    # classify the bound from the term that actually won the max():
    # summed per-CU comp/mem totals can disagree with the winning term
    # (e.g. a bandwidth-bound launch whose summed comp_s exceeds the
    # summed mem_s), so derive it from the decision itself
    if winner == hot_s and hot_s > 0.0:
        bound_term = "camping"
    elif winner == bw_total and bw_total > per_cu_max:
        bound_term = "bandwidth"
    else:
        slowest = int(np.argmax(per_cu))
        bound_term = (
            "compute" if comp_s[slowest] >= mem_s[slowest] else "latency"
        )

    c_tot, m_tot = float(comp_s.sum()), float(max(mem_s.sum(), bw_s))
    return KernelTiming(
        total_s=total,
        comp_s=c_tot,
        mem_s=m_tot,
        dram_bytes=float(dram_bytes.sum()),
        bound="compute" if bound_term == "compute" else "memory",
        occupancy_warps=occ.warps_per_cu,
        bw_s=bw_s,
        hot_s=hot_s,
        bound_term=bound_term,
    )
