"""A simulated device: memory, caches, launch machinery.

Both runtimes (``repro.runtime.cuda`` / ``repro.runtime.opencl``) sit on
top of :class:`SimDevice`; the runtime layer adds the API surface and
the per-runtime launch overhead, while this layer owns functional
execution and the device-side timing model.
"""
from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

import numpy as np

from ..arch.occupancy import Occupancy, occupancy
from ..arch.specs import DeviceSpec
from ..errors import ReproError
from ..kir.types import Scalar, np_dtype
from ..prof.profile import LaunchProfile, build_launch_profile
from ..ptx.module import PTXKernel
from ..telemetry import metrics
from .interp import LaunchStats, run_grid
from .memo import LaunchMemo, cache_signature, memo_enabled
from .memory import FlatMemory, OutOfDeviceMemory
from .memsys import MemorySystem
from .timing import KernelTiming, kernel_time

__all__ = [
    "SimDevice",
    "LaunchResult",
    "LaunchFailure",
    "OutOfDeviceMemory",
    "admission_error",
]


def admission_error(spec: DeviceSpec, resources, block: tuple) -> Optional[str]:
    """The driver error code a launch would be rejected with, or None.

    A pure function of (DeviceSpec, per-kernel resource usage, block
    shape) — the complete admission control the simulator applies at
    enqueue time.  These are the checks behind Table VI's "ABT" rows,
    and because the sweep engine's preflight guard calls *this same
    function* on the same compiled resources, a preflight verdict
    agrees with the launch-time outcome by construction.
    """
    threads = block[0] * block[1] * block[2]
    if threads > spec.max_threads_per_block:
        return "CL_OUT_OF_RESOURCES"
    if resources.shared_bytes > spec.max_shared_per_block:
        return "CL_OUT_OF_RESOURCES"
    if resources.registers > spec.max_regs_per_thread:
        return "CL_OUT_OF_RESOURCES"
    if resources.registers * threads > spec.regfile_per_cu:
        return "CL_OUT_OF_RESOURCES"
    if resources.uses_texture and not spec.supports_cuda():
        return "CL_INVALID_KERNEL"
    occ = occupancy(spec, threads, resources.registers, resources.shared_bytes)
    if occ.blocks_per_cu == 0:
        return "CL_OUT_OF_RESOURCES"
    return None


class LaunchFailure(ReproError):
    """Kernel could not be launched (resource limits etc.).

    Carries the structured driver error ``code``; classification (e.g.
    ``CL_OUT_OF_RESOURCES`` -> Table VI "ABT") is done by
    :func:`repro.errors.classify` on the code, never on the message.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}", code=code)


@dataclasses.dataclass
class LaunchResult:
    timing: KernelTiming
    stats: LaunchStats
    occupancy: Occupancy
    profile: Optional[LaunchProfile] = None

    @property
    def kernel_seconds(self) -> float:
        return self.timing.total_s


def _norm_dim(d) -> tuple:
    if isinstance(d, int):
        return (d, 1, 1)
    d = tuple(d)
    return d + (1,) * (3 - len(d))


class SimDevice:
    def __init__(self, spec: DeviceSpec, memoize: bool | None = None):
        self.spec = spec
        self.mem = FlatMemory(spec.mem_capacity_mb * (1 << 20))
        self.memsys = MemorySystem(spec)
        self.launch_log: list = []
        #: one LaunchProfile per launch, in launch order
        self.profiles: list[LaunchProfile] = []
        #: in-run launch memo table (None when disabled); guarded replay
        #: of repeated identical launches — see :mod:`repro.sim.memo`
        if memoize is None:
            memoize = memo_enabled()
        self.memo: LaunchMemo | None = LaunchMemo() if memoize else None

    # -- memory -----------------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        return self.mem.alloc(nbytes)

    def free(self, base: int, nbytes: int) -> None:
        self.mem.free(base, nbytes)

    def upload(self, base: int, host: np.ndarray) -> float:
        """Copy host->device; returns the modeled transfer seconds."""
        self.mem.write_bytes(base, host)
        return self._xfer_seconds(host.nbytes)

    def download(self, base: int, count: int, scalar: Scalar) -> tuple:
        arr = self.mem.read_array(base, count, scalar)
        return arr, self._xfer_seconds(arr.nbytes)

    def _xfer_seconds(self, nbytes: int) -> float:
        if self.spec.pcie_gbps <= 0:
            return nbytes / 8e9 + 2e-6  # in-host memcpy
        return nbytes / (self.spec.pcie_gbps * 1e9) + 8e-6

    # -- resource validation ------------------------------------------------
    def check_launch(self, kernel: PTXKernel, block: tuple) -> Optional[str]:
        """Return an error code if the launch cannot run on this device.

        These are the checks behind Table VI's "ABT" rows: the Cell/BE's
        small register file and local store reject FFT/DXTC/RdxS/STNW at
        enqueue time with ``CL_OUT_OF_RESOURCES``.  Delegates to
        :func:`admission_error`, which the sweep engine's preflight
        guard shares.
        """
        return admission_error(self.spec, kernel.resources, block)

    # -- launch ------------------------------------------------------------
    def launch(
        self,
        kernel: PTXKernel,
        grid,
        block,
        args: Mapping[str, object],
    ) -> LaunchResult:
        """Run ``kernel`` over the grid; mutates device memory.

        ``args`` maps parameter names to device base addresses (pointer
        params, as ints) and Python/numpy scalars (value params).
        """
        grid = _norm_dim(grid)
        block = _norm_dim(block)
        err = self.check_launch(kernel, block)
        if err is not None:
            raise LaunchFailure(err, f"kernel {kernel.name!r} block={block}")

        prepared: dict = {}
        for p in kernel.params:
            if p.name not in args:
                raise KeyError(f"missing kernel argument {p.name!r}")
            v = args[p.name]
            if p.is_pointer:
                prepared[p.name] = np.uint32(int(v))
            else:
                prepared[p.name] = np_dtype(p.dtype)(v)

        # admission_error above already rejected occ.blocks_per_cu == 0
        occ = occupancy(
            self.spec,
            block[0] * block[1] * block[2],
            kernel.resources.registers,
            kernel.resources.shared_bytes,
        )

        msnap = self.memsys.prof_snapshot()
        regions_before = dict(self.memsys.region_counts)
        memo = self.memo
        entry = mkey = None
        if memo is not None:
            mkey = memo.key(kernel, prepared, grid, block)
            entry = memo.lookup(mkey, self.mem, self.memsys)
        if entry is not None:
            stats = memo.replay(entry, self.mem, self.memsys)
        elif memo is not None and memo.can_record(mkey):
            pre_caches = cache_signature(self.memsys)
            pre_counters = memo.pre_counters(self.mem, self.memsys)
            pre_banks = memo.pre_banks(self.memsys)
            self.mem.begin_trace()
            self.memsys.begin_dram_log()
            stats = run_grid(
                kernel, self.spec, self.memsys, self.mem, prepared, grid, block
            )
            trace = self.mem.end_trace()
            trace["dram_log"] = self.memsys.end_dram_log()
            memo.record(
                mkey, self.mem, self.memsys, trace, pre_caches,
                pre_counters, pre_banks, regions_before, stats,
            )
        else:
            stats = run_grid(
                kernel, self.spec, self.memsys, self.mem, prepared, grid, block
            )
        mem_delta = self.memsys.prof_since(msnap)
        dram = mem_delta["dram_bytes"]
        t = self.spec.timing
        hot_cycles = 0.0
        if t.partition_service_cycles > 0:
            for region, count in self.memsys.region_counts.items():
                delta = count - regions_before.get(region, 0)
                over = delta - t.partition_hot_threshold
                if over > 0:
                    hot_cycles += over * t.partition_service_cycles
        timing = kernel_time(self.spec, stats, dram, occ, hot_cycles)
        profile = build_launch_profile(
            kernel.name, self.spec.name, grid, block, stats, occ, timing,
            mem_delta,
        )
        self.profiles.append(profile)
        result = LaunchResult(
            timing=timing, stats=stats, occupancy=occ, profile=profile
        )
        self.launch_log.append((kernel.name, grid, block, timing.total_s))
        metrics.counter("sim.launches").inc()
        metrics.counter("sim.dram_bytes").inc(float(np.sum(dram)))
        metrics.counter("sim.warp_instructions").inc(stats.warp_instructions)
        metrics.histogram("sim.kernel_s").observe(timing.total_s)
        return result
