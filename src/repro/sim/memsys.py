"""The memory system: per-CU caches + DRAM cost accounting.

For every executed warp memory instruction the interpreter calls one of
the ``access_*`` methods with the active lanes' byte addresses.  The
method updates cache state, returns the instruction's latency in core
cycles, and accrues DRAM traffic.  Costs follow a simple serialization
model: the slowest miss level sets the base latency and every extra
transaction adds ``tx_cycles``.
"""
from __future__ import annotations

import numpy as np

from ..arch.banks import bank_conflicts
from ..arch.caches import LRUCache, null_cache
from ..arch.coalesce import coalesce
from ..arch.specs import DeviceSpec

__all__ = ["MemorySystem", "AccessCost"]


class MemorySystem:
    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        t = spec.timing
        n = spec.compute_units
        if spec.has_global_cache:
            self.l1 = [LRUCache(spec.l1_bytes, spec.line_bytes) for _ in range(n)]
            self.l2 = LRUCache(spec.l2_bytes, spec.line_bytes, ways=8)
        else:
            self.l1 = [null_cache() for _ in range(n)]
            self.l2 = null_cache()
        self.tex = [
            LRUCache(max(spec.tex_cache_bytes, 32), 32) for _ in range(n)
        ]
        self.const = [
            LRUCache(max(spec.const_cache_bytes, 64), 64) for _ in range(n)
        ]
        # traffic accounting (per CU)
        self.dram_bytes = np.zeros(n, dtype=np.float64)
        # DRAM accesses per 256B region (partition-camping model);
        # only accesses that actually reach DRAM are counted
        from collections import Counter

        self.region_counts: Counter = Counter()
        # profiler counters (cumulative; SimDevice snapshots around each
        # launch to recover per-launch deltas)
        self.gmem_requests = 0
        self.gmem_transactions = 0
        self.shared_accesses = 0
        self.shared_replays = 0
        self.spill_bytes = 0.0
        # address-pattern memos: kernels replay the same few warp access
        # patterns thousands of times, and the pure geometry of a
        # pattern (coalesced segments, touched lines, bank replays) is
        # independent of cache state — memoize it by the address bytes
        self._pat_global: dict = {}
        self._pat_tex: dict = {}
        self._pat_const: dict = {}
        self._pat_shared: dict = {}
        # launch-memo journal of individual dram_bytes adds, or None.
        # dram_bytes is a float fold whose value is summation-order
        # sensitive; memo replay re-applies this exact add sequence.
        self._dram_log: list | None = None

    def begin_dram_log(self) -> None:
        self._dram_log = []

    def end_dram_log(self) -> list:
        log, self._dram_log = self._dram_log, None
        return log

    _PAT_CAP = 1 << 15  # per-table entry cap (memos stop growing past it)

    @staticmethod
    def _pat_put(table: dict, key, value) -> None:
        if len(table) < MemorySystem._PAT_CAP:
            table[key] = value

    def cache_groups(self) -> dict:
        """Named cache banks for per-launch profiling.

        ``null`` is the cache-less GT200 global-load path: every
        transaction is recorded as a miss, which is exactly what the
        hardware does to DRAM.
        """
        groups = {"const": list(self.const), "tex": list(self.tex)}
        if self.spec.has_global_cache:
            groups["l1"] = list(self.l1)
            groups["l2"] = [self.l2]
        else:
            groups["null"] = list(self.l1)
        return groups

    def prof_snapshot(self) -> dict:
        """Snapshot every profiler-visible counter (cheap, per launch)."""
        return {
            "gmem_requests": self.gmem_requests,
            "gmem_transactions": self.gmem_transactions,
            "shared_accesses": self.shared_accesses,
            "shared_replays": self.shared_replays,
            "spill_bytes": self.spill_bytes,
            "dram_bytes": self.dram_bytes.copy(),
            "caches": {
                name: [c.stats.snapshot() for c in caches]
                for name, caches in self.cache_groups().items()
            },
        }

    def prof_since(self, snap: dict) -> dict:
        """Per-launch counter deltas since ``snap``.

        Cache counters are aggregated across the per-CU banks into one
        :class:`~repro.arch.caches.CacheStats` per named group.
        """
        from ..arch.caches import CacheStats

        caches: dict = {}
        for name, banks in self.cache_groups().items():
            agg = CacheStats()
            for cache, s in zip(banks, snap["caches"][name]):
                agg.add(cache.stats.since(s))
            caches[name] = agg
        return {
            "gmem_requests": self.gmem_requests - snap["gmem_requests"],
            "gmem_transactions": self.gmem_transactions
            - snap["gmem_transactions"],
            "shared_accesses": self.shared_accesses - snap["shared_accesses"],
            "shared_replays": self.shared_replays - snap["shared_replays"],
            "spill_bytes": self.spill_bytes - snap["spill_bytes"],
            "dram_bytes": self.dram_bytes - snap["dram_bytes"],
            "caches": caches,
        }

    def _count_regions(self, bases) -> None:
        for b in bases:
            self.region_counts[int(b) >> 8] += 1

    # ------------------------------------------------------------------
    def access_global(
        self, cu: int, addrs: np.ndarray, sizes: np.ndarray, is_store: bool
    ) -> float:
        """Plain global-space access (the ld.global/st.global path)."""
        key = (addrs.dtype.char, addrs.tobytes(), sizes.tobytes())
        hit = self._pat_global.get(key)
        if hit is None:
            segs, traffic = coalesce(self.spec, addrs, sizes)
            hit = (segs.tolist(), traffic)
            self._pat_put(self._pat_global, key, hit)
        seg_list, traffic = hit
        return self.access_global_segs(cu, seg_list, traffic, is_store)

    def access_global_segs(
        self, cu: int, seg_list: list, traffic: int, is_store: bool
    ) -> float:
        """Global access with the coalescing already resolved.

        The interpreter pre-computes line segments for whole visits at
        once (vectorized over every warp of a block batch); this entry
        point applies the cache/DRAM state walk to one warp's segments.
        """
        t = self.spec.timing
        nseg = max(len(seg_list), 1)
        self.gmem_requests += 1
        self.gmem_transactions += nseg
        if is_store:
            # write-through, fire-and-forget: traffic but little stall
            self.dram_bytes[cu] += traffic
            if self._dram_log is not None:
                self._dram_log.append((cu, traffic))
            if self.spec.has_global_cache:
                for b in seg_list:
                    self.l2.access(int(b))
            else:
                self._count_regions(seg_list)
            return t.tx_cycles * nseg
        if not self.spec.has_global_cache:
            self.dram_bytes[cu] += traffic
            if self._dram_log is not None:
                self._dram_log.append((cu, traffic))
            self._count_regions(seg_list)
            self.l1[cu].stats.misses += nseg  # null path: all misses
            return t.dram_latency + t.tx_cycles * (nseg - 1)
        # Fermi-style: L1 -> L2 -> DRAM
        worst = t.l1_hit
        per_seg = traffic / nseg if nseg else 0.0
        for b in seg_list:
            b = int(b)
            if self.l1[cu].access(b):
                continue
            if self.l2.access(b):
                worst = max(worst, t.l2_hit)
            else:
                worst = max(worst, t.dram_latency)
                self.dram_bytes[cu] += per_seg
                if self._dram_log is not None:
                    self._dram_log.append((cu, per_seg))
                self.region_counts[b >> 8] += 1
        return worst + t.tx_cycles * (nseg - 1)

    def access_texture(self, cu: int, addrs: np.ndarray, sizes: np.ndarray) -> float:
        """Texture-path read: small per-CU cache over global data.

        This is what makes the irregular gathers of MD/SPMV look regular
        (paper §IV-B.1) — reuse is captured close to the CU even on
        GT200, which has no other global-read cache.
        """
        t = self.spec.timing
        line = 32
        key = (addrs.dtype.char, addrs.tobytes(), sizes.tobytes())
        line_list = self._pat_tex.get(key)
        if line_list is None:
            first = addrs // line
            last = (addrs + np.maximum(sizes, 1) - 1) // line
            line_list = (np.union1d(first, last) * line).tolist()
            self._pat_put(self._pat_tex, key, line_list)
        nseg = max(len(line_list), 1)
        worst = t.tex_hit
        for b in line_list:
            if not self.tex[cu].access(int(b)):
                worst = max(worst, t.dram_latency)
                self.dram_bytes[cu] += line
                if self._dram_log is not None:
                    self._dram_log.append((cu, line))
                self.region_counts[int(b) >> 8] += 1
        # the texture pipeline is built for many small scattered
        # fetches: extra segments are much cheaper than on the L1 path
        return worst + t.tx_cycles * 0.2 * (nseg - 1)

    def access_const(self, cu: int, addrs: np.ndarray) -> float:
        """Constant-cache read: broadcast when all lanes agree.

        Distinct addresses serialize — the defining behaviour of the
        constant path on every CUDA-class device.
        """
        t = self.spec.timing
        key = (addrs.dtype.char, addrs.tobytes())
        bases = self._pat_const.get(key)
        if bases is None:
            # one entry per *distinct address* in sorted order (two
            # addresses in the same 64B line still serialize)
            bases = [(int(a) // 64) * 64 for a in np.unique(addrs).tolist()]
            self._pat_put(self._pat_const, key, bases)
        cost = 0.0
        for base in bases:
            if self.const[cu].access(base):
                cost += t.const_hit
            else:
                cost += t.dram_latency
                self.dram_bytes[cu] += 64
                if self._dram_log is not None:
                    self._dram_log.append((cu, 64))
                self.region_counts[base >> 8] += 1
        return cost

    def shared_replay_factor(self, addrs: np.ndarray) -> int:
        """Memoized :func:`~repro.arch.banks.bank_conflicts`."""
        key = (addrs.dtype.char, addrs.tobytes())
        replays = self._pat_shared.get(key)
        if replays is None:
            replays = bank_conflicts(self.spec, addrs)
            self._pat_put(self._pat_shared, key, replays)
        return replays

    def access_shared(self, cu: int, addrs: np.ndarray) -> float:
        """Banked shared/local-memory access."""
        t = self.spec.timing
        self.shared_accesses += 1
        if self.spec.local_mem_is_plain_memory:
            # CPU device: "local" memory is ordinary cached memory — the
            # staging copy is pure overhead (paper §V, TranP on Intel920)
            return t.shared_latency
        replays = self.shared_replay_factor(addrs)
        self.shared_replays += replays - 1
        return t.shared_latency + (replays - 1) * 4.0

    def access_local(self, cu: int, nbytes_per_thread: int, width: int) -> float:
        """Register-spill traffic (``ld.local``/``st.local``).

        GT200 spills straight to DRAM (interleaved, hence coalesced);
        Fermi spills are usually caught by L1.
        """
        t = self.spec.timing
        traffic = width * self.spec.warp_width
        self.spill_bytes += traffic
        if self.spec.has_global_cache:
            return t.l1_hit
        self.dram_bytes[cu] += traffic
        if self._dram_log is not None:
            self._dram_log.append((cu, traffic))
        return t.dram_latency * 0.5 + t.tx_cycles
