"""The memory system: per-CU caches + DRAM cost accounting.

For every executed warp memory instruction the interpreter calls one of
the ``access_*`` methods with the active lanes' byte addresses.  The
method updates cache state, returns the instruction's latency in core
cycles, and accrues DRAM traffic.  Costs follow a simple serialization
model: the slowest miss level sets the base latency and every extra
transaction adds ``tx_cycles``.
"""
from __future__ import annotations

import numpy as np

from ..arch.banks import bank_conflicts
from ..arch.caches import LRUCache, null_cache
from ..arch.coalesce import coalesce
from ..arch.specs import DeviceSpec

__all__ = ["MemorySystem", "AccessCost"]


class MemorySystem:
    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        t = spec.timing
        n = spec.compute_units
        if spec.has_global_cache:
            self.l1 = [LRUCache(spec.l1_bytes, spec.line_bytes) for _ in range(n)]
            self.l2 = LRUCache(spec.l2_bytes, spec.line_bytes, ways=8)
        else:
            self.l1 = [null_cache() for _ in range(n)]
            self.l2 = null_cache()
        self.tex = [
            LRUCache(max(spec.tex_cache_bytes, 32), 32) for _ in range(n)
        ]
        self.const = [
            LRUCache(max(spec.const_cache_bytes, 64), 64) for _ in range(n)
        ]
        # traffic accounting (per CU)
        self.dram_bytes = np.zeros(n, dtype=np.float64)
        # DRAM accesses per 256B region (partition-camping model);
        # only accesses that actually reach DRAM are counted
        from collections import Counter

        self.region_counts: Counter = Counter()

    def _count_regions(self, bases) -> None:
        for b in bases:
            self.region_counts[int(b) >> 8] += 1

    # ------------------------------------------------------------------
    def access_global(
        self, cu: int, addrs: np.ndarray, sizes: np.ndarray, is_store: bool
    ) -> float:
        """Plain global-space access (the ld.global/st.global path)."""
        t = self.spec.timing
        segs, traffic = coalesce(self.spec, addrs, sizes)
        nseg = max(int(segs.size), 1)
        if is_store:
            # write-through, fire-and-forget: traffic but little stall
            self.dram_bytes[cu] += traffic
            if self.spec.has_global_cache:
                for b in segs.tolist():
                    self.l2.access(int(b))
            else:
                self._count_regions(segs.tolist())
            return t.tx_cycles * nseg
        if not self.spec.has_global_cache:
            self.dram_bytes[cu] += traffic
            self._count_regions(segs.tolist())
            return t.dram_latency + t.tx_cycles * (nseg - 1)
        # Fermi-style: L1 -> L2 -> DRAM
        worst = t.l1_hit
        per_seg = traffic / nseg if nseg else 0.0
        for b in segs.tolist():
            b = int(b)
            if self.l1[cu].access(b):
                continue
            if self.l2.access(b):
                worst = max(worst, t.l2_hit)
            else:
                worst = max(worst, t.dram_latency)
                self.dram_bytes[cu] += per_seg
                self.region_counts[b >> 8] += 1
        return worst + t.tx_cycles * (nseg - 1)

    def access_texture(self, cu: int, addrs: np.ndarray, sizes: np.ndarray) -> float:
        """Texture-path read: small per-CU cache over global data.

        This is what makes the irregular gathers of MD/SPMV look regular
        (paper §IV-B.1) — reuse is captured close to the CU even on
        GT200, which has no other global-read cache.
        """
        t = self.spec.timing
        line = 32
        first = addrs // line
        last = (addrs + np.maximum(sizes, 1) - 1) // line
        lines = np.union1d(first, last) * line
        nseg = max(int(lines.size), 1)
        worst = t.tex_hit
        for b in lines.tolist():
            if not self.tex[cu].access(int(b)):
                worst = max(worst, t.dram_latency)
                self.dram_bytes[cu] += line
                self.region_counts[int(b) >> 8] += 1
        # the texture pipeline is built for many small scattered
        # fetches: extra segments are much cheaper than on the L1 path
        return worst + t.tx_cycles * 0.2 * (nseg - 1)

    def access_const(self, cu: int, addrs: np.ndarray) -> float:
        """Constant-cache read: broadcast when all lanes agree.

        Distinct addresses serialize — the defining behaviour of the
        constant path on every CUDA-class device.
        """
        t = self.spec.timing
        uniq = np.unique(addrs)
        cost = 0.0
        for a in uniq.tolist():
            base = (int(a) // 64) * 64
            if self.const[cu].access(base):
                cost += t.const_hit
            else:
                cost += t.dram_latency
                self.dram_bytes[cu] += 64
                self.region_counts[base >> 8] += 1
        return cost

    def access_shared(self, cu: int, addrs: np.ndarray) -> float:
        """Banked shared/local-memory access."""
        t = self.spec.timing
        if self.spec.local_mem_is_plain_memory:
            # CPU device: "local" memory is ordinary cached memory — the
            # staging copy is pure overhead (paper §V, TranP on Intel920)
            return t.shared_latency
        replays = bank_conflicts(self.spec, addrs)
        return t.shared_latency + (replays - 1) * 4.0

    def access_local(self, cu: int, nbytes_per_thread: int, width: int) -> float:
        """Register-spill traffic (``ld.local``/``st.local``).

        GT200 spills straight to DRAM (interleaved, hence coalesced);
        Fermi spills are usually caught by L1.
        """
        t = self.spec.timing
        traffic = width * self.spec.warp_width
        if self.spec.has_global_cache:
            return t.l1_hit
        self.dram_bytes[cu] += traffic
        return t.dram_latency * 0.5 + t.tx_cycles
