"""Flat byte-addressed device memory with typed vector access.

One :class:`FlatMemory` instance backs a device's global+constant space
(buffers are allocated at offsets inside it, so the coalescer sees real
byte addresses); small per-block instances back shared memory.  Loads
and stores are numpy-vectorized over warp lanes — per the HPC guides,
the hot path avoids Python-level per-lane loops entirely.

Launch-memoization support: between :meth:`FlatMemory.begin_trace` and
:meth:`FlatMemory.end_trace` every kernel-side access is traced as a
coarse byte interval.  Reads (and the pre-image of write intervals,
which covers any bytes a coarse store range merely straddles) hash
into an input digest in execution order; writes accumulate a merged
interval set whose post-image the memo table snapshots.  Launches with
wrapping (out-of-range) accesses mark the trace unusable — those are
Table-VI "FL"-style buggy kernels and are simply never memoized.
"""
from __future__ import annotations

import hashlib

import numpy as np

from ..kir.types import Scalar, np_dtype, sizeof

__all__ = ["FlatMemory", "OutOfDeviceMemory"]

_ALIGN = 256

#: tracing gives up past this many hashed input bytes per launch
_TRACE_CAP = 64 << 20


def _merge_add(ivs: list, lo: int, hi: int) -> list:
    """``ivs`` with ``[lo, hi)`` merged in (sorted, disjoint)."""
    ivs = ivs + [(lo, hi)]
    ivs.sort()
    out = [list(ivs[0])]
    for a, b in ivs[1:]:
        if a <= out[-1][1]:
            if b > out[-1][1]:
                out[-1][1] = b
        else:
            out.append([a, b])
    return [(a, b) for a, b in out]


def _subtract(lo: int, hi: int, ivs: list):
    """Yield the parts of ``[lo, hi)`` not covered by sorted ``ivs``."""
    cur = lo
    for a, b in ivs:
        if b <= cur:
            continue
        if a >= hi:
            break
        if a > cur:
            yield (cur, min(a, hi))
        cur = b
        if cur >= hi:
            break
    if cur < hi:
        yield (cur, hi)


class OutOfDeviceMemory(MemoryError):
    """Allocation exceeds the device's memory capacity."""


class FlatMemory:
    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        # pad so any aligned typed view fits
        self._buf = np.zeros(self.capacity + 8, dtype=np.uint8)
        self._brk = _ALIGN  # never hand out address 0
        self._free: list[tuple[int, int]] = []
        self._views: dict = {}
        #: count of wrapped out-of-range accesses (kernel bugs; see load)
        self.oob_accesses = 0
        #: active launch trace (see module docstring), or None
        self._tr: dict | None = None

    # -- launch tracing (memoization support) ---------------------------
    def begin_trace(self) -> None:
        self._tr = {
            "ok": True,
            "written": [],  # merged store intervals (post-image extent)
            "hashed": [],  # intervals already folded into the digest
            "reads": [],  # digest input intervals, in hash order
            "hash": hashlib.blake2b(digest_size=16),
            "bytes": 0,
        }

    def end_trace(self) -> dict:
        tr, self._tr = self._tr, None
        tr["digest"] = tr["hash"].digest()
        tr["writes"] = tr["written"]
        return tr

    def _trace_read(self, lo: int, hi: int) -> None:
        """Fold the not-yet-covered parts of ``[lo, hi)`` into the digest.

        Bytes already written this launch are kernel-internal, not
        external input; bytes already hashed need not be re-hashed (a
        guard re-hash at lookup walks the same recorded intervals in
        the same order, so coverage — not repetition — is what matters).
        """
        tr = self._tr
        for a, b in _subtract(lo, hi, tr["written"]):
            for c, d in _subtract(a, b, tr["hashed"]):
                tr["bytes"] += d - c
                if tr["bytes"] > _TRACE_CAP:
                    tr["ok"] = False
                    return
                tr["hash"].update(self._buf[c:d])
                tr["reads"].append((c, d))
                tr["hashed"] = _merge_add(tr["hashed"], c, d)

    # -- allocation -----------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        nbytes = max(int(nbytes), 1)
        need = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        for i, (base, size) in enumerate(self._free):
            if size >= need:
                self._free.pop(i)
                if size > need:
                    self._free.append((base + need, size - need))
                return base
        base = self._brk
        if base + need > self.capacity:
            raise OutOfDeviceMemory(
                f"device memory exhausted: want {need}B at {base}, "
                f"capacity {self.capacity}B"
            )
        self._brk += need
        return base

    def free(self, base: int, nbytes: int) -> None:
        need = (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN
        self._free.append((base, need))

    def reset(self) -> None:
        self._brk = _ALIGN
        self._free.clear()
        self._buf[:] = 0

    # -- typed access ----------------------------------------------------
    def _view(self, scalar: Scalar) -> np.ndarray:
        v = self._views.get(scalar)
        if v is None:
            size = sizeof(scalar)
            usable = (self._buf.size // size) * size
            v = self._buf[:usable].view(np_dtype(scalar))
            self._views[scalar] = v
        return v

    def load(self, addrs: np.ndarray, scalar: Scalar) -> np.ndarray:
        """Gather one value per address (addresses must be aligned).

        Out-of-range addresses wrap around the device memory: real GPUs
        give undefined (but non-faulting) results for wild reads, and
        Table VI's "FL" rows depend on buggy kernels *completing*.
        """
        size = sizeof(scalar)
        view = self._view(scalar)
        raw = addrs // size
        idx = raw % view.size
        if (idx < 0).any() or (raw != idx).any():
            self.oob_accesses += int(np.count_nonzero(raw != idx))
            idx = idx % view.size
            if self._tr is not None:
                self._tr["ok"] = False
        elif self._tr is not None and self._tr["ok"] and idx.size:
            self._trace_read(int(idx.min()) * size, (int(idx.max()) + 1) * size)
        return view[idx]

    def store(self, addrs: np.ndarray, values: np.ndarray, scalar: Scalar) -> None:
        """Scatter ``values`` to byte ``addrs``.

        Intra-warp same-address conflicts resolve to the *last* lane, as
        CUDA/OpenCL leave them undefined but hardware picks one winner.
        Out-of-range addresses wrap (see :meth:`load`).
        """
        size = sizeof(scalar)
        view = self._view(scalar)
        raw = addrs // size
        idx = raw % view.size
        bad = raw != idx
        if bad.any():
            self.oob_accesses += int(np.count_nonzero(bad))
            if self._tr is not None:
                self._tr["ok"] = False
        elif self._tr is not None and self._tr["ok"] and idx.size:
            lo = int(idx.min()) * size
            hi = (int(idx.max()) + 1) * size
            # Hash the pre-image first: the coarse [lo, hi) interval may
            # contain gap bytes no lane actually writes, and treating
            # them as guarded input makes replaying the post-image over
            # the whole interval exact (guard match ⇒ gaps unchanged).
            self._trace_read(lo, hi)
            tr = self._tr
            if tr["ok"]:
                tr["written"] = _merge_add(tr["written"], lo, hi)
        view[idx] = values

    # convenience for the runtimes -----------------------------------------
    def write_bytes(self, base: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._buf[base : base + raw.size] = raw

    def read_bytes(self, base: int, nbytes: int) -> np.ndarray:
        return self._buf[base : base + nbytes].copy()

    def read_array(self, base: int, count: int, scalar: Scalar) -> np.ndarray:
        size = sizeof(scalar)
        raw = self._buf[base : base + count * size]
        return raw.view(np_dtype(scalar)).copy()
