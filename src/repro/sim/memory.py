"""Flat byte-addressed device memory with typed vector access.

One :class:`FlatMemory` instance backs a device's global+constant space
(buffers are allocated at offsets inside it, so the coalescer sees real
byte addresses); small per-block instances back shared memory.  Loads
and stores are numpy-vectorized over warp lanes — per the HPC guides,
the hot path avoids Python-level per-lane loops entirely.
"""
from __future__ import annotations

import numpy as np

from ..kir.types import Scalar, np_dtype, sizeof

__all__ = ["FlatMemory", "OutOfDeviceMemory"]

_ALIGN = 256


class OutOfDeviceMemory(MemoryError):
    """Allocation exceeds the device's memory capacity."""


class FlatMemory:
    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        # pad so any aligned typed view fits
        self._buf = np.zeros(self.capacity + 8, dtype=np.uint8)
        self._brk = _ALIGN  # never hand out address 0
        self._free: list[tuple[int, int]] = []
        self._views: dict = {}
        #: count of wrapped out-of-range accesses (kernel bugs; see load)
        self.oob_accesses = 0

    # -- allocation -----------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        nbytes = max(int(nbytes), 1)
        need = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        for i, (base, size) in enumerate(self._free):
            if size >= need:
                self._free.pop(i)
                if size > need:
                    self._free.append((base + need, size - need))
                return base
        base = self._brk
        if base + need > self.capacity:
            raise OutOfDeviceMemory(
                f"device memory exhausted: want {need}B at {base}, "
                f"capacity {self.capacity}B"
            )
        self._brk += need
        return base

    def free(self, base: int, nbytes: int) -> None:
        need = (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN
        self._free.append((base, need))

    def reset(self) -> None:
        self._brk = _ALIGN
        self._free.clear()
        self._buf[:] = 0

    # -- typed access ----------------------------------------------------
    def _view(self, scalar: Scalar) -> np.ndarray:
        v = self._views.get(scalar)
        if v is None:
            size = sizeof(scalar)
            usable = (self._buf.size // size) * size
            v = self._buf[:usable].view(np_dtype(scalar))
            self._views[scalar] = v
        return v

    def load(self, addrs: np.ndarray, scalar: Scalar) -> np.ndarray:
        """Gather one value per address (addresses must be aligned).

        Out-of-range addresses wrap around the device memory: real GPUs
        give undefined (but non-faulting) results for wild reads, and
        Table VI's "FL" rows depend on buggy kernels *completing*.
        """
        size = sizeof(scalar)
        view = self._view(scalar)
        idx = (addrs // size) % view.size
        if (idx < 0).any() or ((addrs // size) != idx).any():
            self.oob_accesses += int(np.count_nonzero((addrs // size) != idx))
            idx = idx % view.size
        return view[idx]

    def store(self, addrs: np.ndarray, values: np.ndarray, scalar: Scalar) -> None:
        """Scatter ``values`` to byte ``addrs``.

        Intra-warp same-address conflicts resolve to the *last* lane, as
        CUDA/OpenCL leave them undefined but hardware picks one winner.
        Out-of-range addresses wrap (see :meth:`load`).
        """
        size = sizeof(scalar)
        view = self._view(scalar)
        raw = addrs // size
        idx = raw % view.size
        bad = raw != idx
        if bad.any():
            self.oob_accesses += int(np.count_nonzero(bad))
        view[idx] = values

    # convenience for the runtimes -----------------------------------------
    def write_bytes(self, base: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._buf[base : base + raw.size] = raw

    def read_bytes(self, base: int, nbytes: int) -> np.ndarray:
        return self._buf[base : base + nbytes].copy()

    def read_array(self, base: int, count: int, scalar: Scalar) -> np.ndarray:
        size = sizeof(scalar)
        raw = self._buf[base : base + count * size]
        return raw.view(np_dtype(scalar)).copy()
